"""Experiment C7 — §4.4: query maintenance under schema evolution and data drift.

A workload is logged, then the built-in schema-evolution scenario is applied
(column renames, column drops, a table rename, a harmless column addition).
The experiment checks that Query Maintenance:

  * flags exactly the queries whose relations/columns were dropped
    (precision/recall against ground truth derived from query features),
  * automatically repairs queries only affected by renames (and the repaired
    text re-executes on the evolved schema),
  * leaves queries over untouched relations alone,
  * detects data-distribution drift and refreshes statistics of affected
    queries only.
"""

from __future__ import annotations

from bench_common import build_env, print_table
from repro.workloads.evolution import apply_scenario, evolution_scenario


def _ground_truth(env, steps):
    """Which stored queries are broken vs merely rename-affected by the scenario."""
    broken = set()
    rename_affected = set()
    renamed_tables = {s.table.lower() for s in steps if s.kind == "rename_table"}
    renamed_columns = {
        (s.table.lower(), s.column.lower()) for s in steps if s.kind == "rename_column"
    }
    dropped_columns = {
        (s.table.lower(), s.column.lower()) for s in steps if s.kind == "drop_column"
    }
    dropped_tables = {s.table.lower() for s in steps if s.kind == "drop_table"}
    for record in env.store.select_queries():
        if record.features is None:
            continue
        tables = set(record.features.tables)
        attributes = set(record.features.attributes)
        if tables & dropped_tables or any(
            (rel, attr) in dropped_columns for attr, rel in attributes
        ):
            broken.add(record.qid)
        elif tables & renamed_tables or any(
            (rel, attr) in renamed_columns for attr, rel in attributes
        ):
            rename_affected.add(record.qid)
    return broken, rename_affected


class TestSchemaEvolutionMaintenance:
    def test_flagging_and_repair_match_ground_truth(self, benchmark):
        env = build_env(num_sessions=160, seed=33, mine=False)
        steps = evolution_scenario("limnology")
        broken_truth, rename_truth = _ground_truth(env, steps)
        apply_scenario(env.database, steps)

        report = benchmark.pedantic(
            env.cqms.maintenance.check_schema_validity, rounds=1, iterations=1
        )
        flagged = set(report.flagged)
        repaired = set(report.repaired)

        precision = len(flagged & broken_truth) / len(flagged) if flagged else 1.0
        recall = len(flagged & broken_truth) / len(broken_truth) if broken_truth else 1.0
        print_table(
            "C7: schema-evolution maintenance",
            ["metric", "value"],
            [
                ("queries checked", report.checked),
                ("ground-truth broken", len(broken_truth)),
                ("flagged", len(flagged)),
                ("flagging precision", f"{precision:.2f}"),
                ("flagging recall", f"{recall:.2f}"),
                ("ground-truth rename-affected", len(rename_truth)),
                ("auto-repaired", len(repaired)),
            ],
        )
        # Drops must be flagged, renames must be repaired — with no cross-talk.
        assert recall == 1.0
        assert precision == 1.0
        assert repaired, "rename-affected queries must be repaired"
        assert repaired <= rename_truth
        # Every repaired query still parses and runs on the evolved schema.
        for qid in list(repaired)[:25]:
            env.database.execute(env.store.get(qid).text)

    def test_unaffected_queries_untouched(self, benchmark):
        env = build_env(num_sessions=160, seed=33, mine=False)
        steps = evolution_scenario("limnology")
        broken_truth, rename_truth = _ground_truth(env, steps)
        affected = broken_truth | rename_truth

        def untouched_fraction():
            untouched = [
                record.qid
                for record in env.store.select_queries()
                if record.qid not in affected and not record.flagged_invalid
            ]
            return len(untouched)

        untouched = benchmark(untouched_fraction)
        total_unaffected = len(
            [r for r in env.store.select_queries() if r.qid not in affected]
        )
        print_table(
            "C7: unaffected queries preserved",
            ["unaffected queries", "still valid"],
            [(total_unaffected, untouched)],
        )
        assert untouched == total_unaffected

    def test_drift_detection_and_targeted_refresh(self, benchmark):
        env = build_env(num_sessions=120, seed=35, mine=False)
        maintenance = env.cqms.maintenance
        maintenance.snapshot_statistics()
        # A backfill changes the WaterTemp distribution drastically.
        env.database.execute("UPDATE WaterTemp SET temp = temp + 30")

        report = benchmark.pedantic(maintenance.refresh_statistics, rounds=1, iterations=1)
        refreshed_tables = {
            table
            for qid in report.refreshed_queries
            for table in env.store.get(qid).tables
        }
        print_table(
            "C7: data-distribution drift",
            ["drifted tables", "queries re-profiled", "touch drifted table"],
            [(
                ", ".join(report.drifted_tables),
                len(report.refreshed_queries),
                all("watertemp" in env.store.get(qid).tables for qid in report.refreshed_queries),
            )],
        )
        assert "watertemp" in report.drifted_tables
        assert report.refreshed_queries
        assert all(
            "watertemp" in env.store.get(qid).tables for qid in report.refreshed_queries
        )

    def test_maintenance_pass_latency(self, benchmark):
        """Cost of one no-op maintenance pass on an unchanged schema."""
        env = build_env(num_sessions=160, seed=37, mine=False)
        report = benchmark(env.cqms.maintenance.check_schema_validity)
        assert report.flagged == []
