"""Shared infrastructure for the benchmark harness.

Every benchmark module regenerates one experiment from DESIGN.md's
per-experiment index (F1–F4, C1–C8, A1–A2).  The helpers here build replayed
CQMS instances (cached per parameter set so a pytest session reuses them),
format the result tables that each experiment prints, and implement the
recommendation-quality metrics (hit-rate@k, MRR) used by C5/A2.
"""

from __future__ import annotations

import json
import os
import platform
from dataclasses import dataclass
from pathlib import Path

from repro import CQMS, CQMSConfig, SimulatedClock, build_database
from repro.workloads import QueryLogGenerator, WorkloadConfig

#: Where machine-readable benchmark results land (committed alongside the
#: benchmarks so the perf trajectory is tracked across PRs; CI uploads them
#: as artifacts too).
RESULTS_DIR = Path(__file__).resolve().parent


def smoke_mode() -> bool:
    """True when benchmarks should run small and fast (CI smoke runs)."""
    return os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def write_bench_json(name: str, payload: dict) -> Path:
    """Write one benchmark's machine-readable results to ``BENCH_<name>.json``.

    The payload is annotated with the interpreter version (numbers move
    between CPython releases) and whether the run was a smoke run (smoke
    numbers are not comparable to full runs and must not overwrite them in
    version control — CI uploads them as artifacts instead).
    """
    payload = dict(payload)
    payload.setdefault("python", platform.python_version())
    payload.setdefault("smoke", smoke_mode())
    suffix = ".smoke.json" if smoke_mode() else ".json"
    path = RESULTS_DIR / f"BENCH_{name}{suffix}"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path

#: Cache of prepared experiment environments, keyed by their parameters.
_ENV_CACHE: dict[tuple, "ExperimentEnv"] = {}


@dataclass
class ExperimentEnv:
    """A prepared environment: database, CQMS, and the workload it replayed."""

    cqms: CQMS
    clock: SimulatedClock
    workload: list
    domain: str

    @property
    def store(self):
        return self.cqms.store

    @property
    def database(self):
        return self.cqms.database


def build_env(
    domain: str = "limnology",
    num_sessions: int = 120,
    num_users: int = 12,
    scale: int = 1,
    seed: int = 42,
    mine: bool = True,
    config: CQMSConfig | None = None,
    annotation_probability: float = 0.3,
) -> ExperimentEnv:
    """Build (or fetch from cache) a CQMS with a replayed synthetic workload."""
    key = (domain, num_sessions, num_users, scale, seed, mine,
           annotation_probability, config is None)
    if config is None and key in _ENV_CACHE:
        return _ENV_CACHE[key]
    clock = SimulatedClock()
    db = build_database(domain, scale=scale, seed=7, clock=clock)
    cqms = CQMS(db, config=config, clock=clock)
    cqms.register_user("admin", group="ops", is_admin=True)
    workload = QueryLogGenerator(
        WorkloadConfig(
            domain=domain,
            num_users=num_users,
            num_sessions=num_sessions,
            seed=seed,
            annotation_probability=annotation_probability,
        )
    ).generate()
    cqms.replay_workload(workload)
    if mine:
        cqms.run_miner()
    env = ExperimentEnv(cqms=cqms, clock=clock, workload=workload, domain=domain)
    if config is None:
        _ENV_CACHE[key] = env
    return env


def print_table(title: str, headers: list[str], rows: list[tuple]) -> None:
    """Print one experiment's result table in a uniform format."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(headers[i])), max((len(str(row[i])) for row in rows), default=0))
        for i in range(len(headers))
    ]
    header_line = " | ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    print(header_line)
    print("-" * len(header_line))
    for row in rows:
        print(" | ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row)))


# ---------------------------------------------------------------------------
# Recommendation-quality metrics (used by C5 and A2)
# ---------------------------------------------------------------------------


def hit_rate_at_k(hits: list[int | None], k: int) -> float:
    """Fraction of evaluation cases whose relevant item appeared in the top k."""
    if not hits:
        return 0.0
    return sum(1 for rank in hits if rank is not None and rank < k) / len(hits)


def mean_reciprocal_rank(hits: list[int | None]) -> float:
    """Mean reciprocal rank (0 when the relevant item never appears)."""
    if not hits:
        return 0.0
    return sum(1.0 / (rank + 1) for rank in hits if rank is not None) / len(hits)


def rank_of_match(candidates: list[str], target_template: str) -> int | None:
    """Position of the first candidate matching the target template, or None."""
    for position, candidate in enumerate(candidates):
        if candidate == target_template:
            return position
    return None
