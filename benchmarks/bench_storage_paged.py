"""Paged-storage benchmark: buffer-pool scan cost, incremental checkpoints.

The paged heap + buffer pool bound the engine's memory footprint, and the
shadow-paged incremental checkpoint bounds checkpoint cost.  This experiment
quantifies both claims:

* **warm in-pool scan overhead** — scanning a table that fits in the pool
  through the paged path vs the in-memory engine.  The acceptance bar: the
  warm paged scan stays within ~1.2x of in-memory, because both paths read
  the same resident page objects (only the first, cold pass pays pager I/O).
* **cold vs warm and larger-than-pool** — the same scan with a pool smaller
  than the table: every pass faults pages in and out, residency stays
  bounded at the configured capacity, and results stay correct.
* **incremental checkpoint latency vs database size** — after touching one
  row, time `checkpoint()` (flushes one dirty page + small metadata) against
  `export_snapshot()` (serializes every row) as the table grows.  The
  incremental latency must not scale with database size; the full export
  must.

Results land in ``BENCH_paged.json`` (``REPRO_BENCH_SMOKE=1`` shrinks the
workload and relaxes the overhead bars for noisy CI machines).
"""

from __future__ import annotations

import shutil
import tempfile
import time

from bench_common import print_table, smoke_mode, write_bench_json
from repro.storage.database import Database
from repro.storage.exec_settings import ExecutionSettings
from repro.storage.table import HEAP_PAGE_SLOTS

NUM_ROWS = 2_000 if smoke_mode() else 20_000
#: Pool sized to hold the whole table (plus index pages) for the warm run.
LARGE_POOL = max(64, (NUM_ROWS // HEAP_PAGE_SLOTS) * 4)
#: A quarter of the table's heap pages: every scan pass must page in and out.
SMALL_POOL = max(8, NUM_ROWS // HEAP_PAGE_SLOTS // 4)
SCAN_PASSES = 3 if smoke_mode() else 5
WARM_SCAN_BAR = 3.0 if smoke_mode() else 1.2
CHECKPOINT_SIZES = [500, 2_000] if smoke_mode() else [2_000, 8_000, 32_000]


def _fill(db: Database, rows: int) -> None:
    db.execute("CREATE TABLE Readings (id INTEGER, lake TEXT, temp FLOAT)")
    db.insert_rows(
        "Readings",
        [{"id": i, "lake": f"lake{i % 31}", "temp": float(i % 100)} for i in range(rows)],
    )


def _scan_seconds(db: Database, passes: int) -> tuple[float, float]:
    """Return (first-pass seconds, mean of the remaining warm passes)."""
    timings = []
    for _ in range(passes):
        start = time.perf_counter()
        total = db.execute("SELECT SUM(temp) FROM Readings").scalar()
        timings.append(time.perf_counter() - start)
        assert total == float(sum(i % 100 for i in range(NUM_ROWS)))
    return timings[0], sum(timings[1:]) / (len(timings) - 1)


class TestPagedScans:
    def test_warm_scan_overhead_and_bounded_residency(self):
        results: dict[str, dict] = {}

        memory_db = Database(name="mem")
        _fill(memory_db, NUM_ROWS)
        _, memory_warm = _scan_seconds(memory_db, SCAN_PASSES)
        memory_db.close()
        results["in-memory"] = {"warm_seconds": memory_warm, "ratio": 1.0}

        for label, pool in (("paged-large-pool", LARGE_POOL), ("paged-small-pool", SMALL_POOL)):
            data_dir = tempfile.mkdtemp(prefix=f"bench_paged_{pool}_")
            try:
                db = Database.open(
                    data_dir,
                    wal_sync="off",
                    exec_settings=ExecutionSettings(buffer_pool_pages=pool),
                )
                _fill(db, NUM_ROWS)
                db.checkpoint()
                cold, warm = _scan_seconds(db, SCAN_PASSES)
                stats = db.buffer_stats()
                assert stats.resident <= pool
                results[label] = {
                    "pool_pages": pool,
                    "cold_seconds": cold,
                    "warm_seconds": warm,
                    "ratio": warm / memory_warm,
                    "resident": stats.resident,
                    "evictions": stats.evictions,
                    "hit_rate": round(stats.hit_rate, 4),
                }
                db.close()
            finally:
                shutil.rmtree(data_dir, ignore_errors=True)

        print_table(
            f"Scan cost vs in-memory ({NUM_ROWS} rows, {SCAN_PASSES} passes)",
            ["engine", "cold (s)", "warm (s)", "ratio", "resident", "evictions", "hit rate"],
            [
                (
                    label,
                    f"{entry.get('cold_seconds', 0.0):.4f}" if "cold_seconds" in entry else "-",
                    f"{entry['warm_seconds']:.4f}",
                    f"{entry['ratio']:.2f}x",
                    entry.get("resident", "-"),
                    entry.get("evictions", "-"),
                    entry.get("hit_rate", "-"),
                )
                for label, entry in results.items()
            ],
        )
        payload = {
            "experiment": "paged_storage",
            "rows": NUM_ROWS,
            "scan": results,
            "checkpoint": self._checkpoint_series(),
        }
        write_bench_json("paged", payload)
        # Acceptance: a warm in-pool scan is as good as the in-memory path.
        assert results["paged-large-pool"]["ratio"] <= WARM_SCAN_BAR, results
        # The constrained pool stayed bounded yet still answered correctly.
        assert results["paged-small-pool"]["resident"] <= SMALL_POOL
        assert results["paged-small-pool"]["evictions"] > 0

    @staticmethod
    def _checkpoint_series() -> list[dict]:
        series = []
        for rows in CHECKPOINT_SIZES:
            data_dir = tempfile.mkdtemp(prefix="bench_ckpt_")
            try:
                db = Database.open(data_dir, wal_sync="off")
                db.execute("CREATE TABLE Log (qid INTEGER, ts FLOAT)")
                db.insert_rows(
                    "Log", [{"qid": i, "ts": float(i)} for i in range(rows)]
                )
                db.checkpoint()  # baseline image; later work is incremental

                db.execute("UPDATE Log SET ts = -1.0 WHERE qid = 1")
                start = time.perf_counter()
                incremental_bytes = db.checkpoint()
                incremental_seconds = time.perf_counter() - start

                db.execute("UPDATE Log SET ts = -2.0 WHERE qid = 2")
                start = time.perf_counter()
                full_bytes = db.export_snapshot()
                full_seconds = time.perf_counter() - start

                db.close()
                series.append(
                    {
                        "rows": rows,
                        "incremental_seconds": incremental_seconds,
                        "incremental_bytes": incremental_bytes,
                        "full_seconds": full_seconds,
                        "full_bytes": full_bytes,
                    }
                )
            finally:
                shutil.rmtree(data_dir, ignore_errors=True)
        print_table(
            "Checkpoint latency after a one-row update, vs database size",
            ["rows", "incremental (s)", "meta bytes", "full export (s)", "full bytes"],
            [
                (
                    entry["rows"],
                    f"{entry['incremental_seconds']:.4f}",
                    entry["incremental_bytes"],
                    f"{entry['full_seconds']:.4f}",
                    entry["full_bytes"],
                )
                for entry in series
            ],
        )
        # The incremental image stays small while the full export grows with
        # the table — the defining property of the shadow-paged checkpoint.
        assert series[-1]["incremental_bytes"] < series[-1]["full_bytes"]
        assert series[-1]["full_bytes"] > series[0]["full_bytes"]
        return series
