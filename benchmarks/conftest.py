"""Pytest configuration for the benchmark harness."""

import sys
from pathlib import Path

# Allow ``import bench_common`` from benchmark modules regardless of how pytest
# was invoked (rootdir vs. benchmarks/ as cwd).
sys.path.insert(0, str(Path(__file__).resolve().parent))
