"""Pytest configuration for the benchmark harness."""

import sys
from pathlib import Path

import pytest

# Allow ``import bench_common`` from benchmark modules regardless of how pytest
# was invoked (rootdir vs. benchmarks/ as cwd).
sys.path.insert(0, str(Path(__file__).resolve().parent))


def pytest_collection_modifyitems(items):
    """Tag the experiments so `-m "not bench"` can exclude them anywhere.

    The hook sees the session-wide item list, so restrict the marker to items
    collected from this directory.
    """
    bench_dir = Path(__file__).resolve().parent
    for item in items:
        if bench_dir in Path(str(item.fspath)).resolve().parents:
            item.add_marker(pytest.mark.bench)
