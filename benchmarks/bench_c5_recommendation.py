"""Experiment C5 — §2.3/§4.3: query-recommendation quality.

Evaluation protocol (leave-final-query-out): for every session in the
workload, take the session's *middle* query as the user's rough attempt so far
and check whether the recommender surfaces the session's *final* query (the
analysis the user was working towards), which — because groups share goals —
has almost always been issued before by a colleague.  Matching is on
constant-stripped templates.

Reported rows: hit-rate@1 / @5 and MRR for the CQMS recommender, the
popularity-only baseline, and the random baseline (the paper's implicit
comparison: existing systems offer nothing better than browsing popular or
arbitrary log entries).
"""

from __future__ import annotations

from bench_common import build_env, hit_rate_at_k, mean_reciprocal_rank, print_table, rank_of_match
from repro.sql.canonicalize import canonical_text


def _evaluation_cases(env, limit=60):
    """(user, mid-session query sql, final query template) per generated session."""
    sessions: dict[tuple, list] = {}
    for event in env.workload:
        sessions.setdefault((event.user, event.session_ordinal), []).append(event)
    cases = []
    for events in sessions.values():
        ordered = sorted(events, key=lambda e: e.step)
        if len(ordered) < 3:
            continue
        probe, final = ordered[len(ordered) // 2], ordered[-1]
        cases.append(
            (probe.user, probe.sql, canonical_text(final.sql, strip_constants=True))
        )
        if len(cases) >= limit:
            break
    return cases


def _evaluate(env, method, cases, k=5):
    hits = []
    for user, first_sql, final_template in cases:
        recommendations = method(user, first_sql, k)
        templates = [
            item.record.template_text
            or canonical_text(item.record.text, strip_constants=True)
            for item in recommendations
        ]
        hits.append(rank_of_match(templates, final_template))
    return hits


class TestRecommendationQuality:
    def test_cqms_beats_popularity_and_random(self, benchmark):
        env = build_env(num_sessions=200, seed=21)
        recommender = env.cqms.recommender
        cases = _evaluation_cases(env)
        assert len(cases) >= 30

        def evaluate_cqms():
            return _evaluate(
                env, lambda user, sql, k: recommender.recommend(user, sql, k=k), cases
            )

        cqms_hits = benchmark(evaluate_cqms)
        popular_hits = _evaluate(
            env, lambda user, sql, k: recommender.recommend_popular(user, k=k), cases
        )
        random_hits = _evaluate(
            env, lambda user, sql, k: recommender.recommend_random(user, k=k, seed=3), cases
        )

        rows = []
        for name, hits in (
            ("CQMS recommender", cqms_hits),
            ("popularity-only baseline", popular_hits),
            ("random baseline", random_hits),
        ):
            rows.append(
                (
                    name,
                    f"{hit_rate_at_k(hits, 1):.3f}",
                    f"{hit_rate_at_k(hits, 5):.3f}",
                    f"{mean_reciprocal_rank(hits):.3f}",
                )
            )
        print_table(
            f"C5: recommendation quality over {len(cases)} held-out sessions",
            ["method", "hit@1", "hit@5", "MRR"],
            rows,
        )
        # Shape: the similarity-driven recommender wins, clearly.
        assert hit_rate_at_k(cqms_hits, 5) > hit_rate_at_k(popular_hits, 5)
        assert hit_rate_at_k(cqms_hits, 5) > hit_rate_at_k(random_hits, 5)
        assert hit_rate_at_k(cqms_hits, 5) >= 0.4
        assert hit_rate_at_k(cqms_hits, 1) > max(
            hit_rate_at_k(popular_hits, 1), hit_rate_at_k(random_hits, 1)
        )

    def test_recommendation_latency_single_call(self, benchmark):
        env = build_env(num_sessions=200, seed=21)
        probe = "SELECT * FROM WaterSalinity S, WaterTemp T WHERE T.temp < 21"
        recommendations = benchmark(env.cqms.recommend, "admin", probe, 5)
        assert recommendations
