"""Durability benchmark: logged-DML overhead per sync policy, recovery time.

The WAL turns every DML statement into an extra encode + buffered write (and,
depending on the sync policy, an ``fsync``).  This experiment quantifies the
price of each policy against the in-memory engine and measures how recovery
time scales with the length of the log that must be replayed:

* **logged-DML overhead** — a mixed insert/update/delete workload against an
  in-memory database vs durable databases opened with ``wal_sync`` =
  ``off`` / ``batch`` / ``commit``.  The acceptance bar: group commit
  (``batch``) stays within 2.5x of in-memory, because its fsync cost is
  amortized over whole batches.
* **recovery time vs log length** — reopen a ``data_dir`` whose WAL holds N
  records (no checkpoint), timing the replay; then checkpoint and reopen
  again to show the snapshot path collapses recovery to near-constant time.

Results land in ``BENCH_durability.json`` (``REPRO_BENCH_SMOKE=1`` shrinks
the workload and relaxes the overhead bar for noisy CI machines).
"""

from __future__ import annotations

import shutil
import tempfile
import time

from bench_common import print_table, smoke_mode, write_bench_json
from repro.storage.database import Database

NUM_ROWS = 600 if smoke_mode() else 5_000
#: CI machines are noisy and their fsyncs unpredictable; the committed
#: full-run bar is the ISSUE's acceptance criterion.
BATCH_OVERHEAD_BAR = 4.0 if smoke_mode() else 2.5
RECOVERY_LENGTHS = [200, 1_000] if smoke_mode() else [1_000, 5_000, 20_000]


def _run_workload(db: Database) -> None:
    """Mixed DML: the write pattern of the Query Storage's logging hot path."""
    db.execute("CREATE TABLE Log (qid INTEGER, usr TEXT, ts FLOAT, hits INTEGER)")
    db.execute("CREATE INDEX log_qid ON Log (qid)")
    for qid in range(NUM_ROWS):
        db.execute(
            f"INSERT INTO Log (qid, usr, ts, hits) VALUES "
            f"({qid}, 'u{qid % 17}', {float(qid)}, 0)"
        )
    for qid in range(0, NUM_ROWS, 10):
        db.execute(f"UPDATE Log SET hits = hits + 1 WHERE qid = {qid}")
    for qid in range(0, NUM_ROWS, 50):
        db.execute(f"DELETE FROM Log WHERE qid = {qid}")


def _timed_workload(factory) -> tuple[float, Database]:
    db = factory()
    start = time.perf_counter()
    _run_workload(db)
    return time.perf_counter() - start, db


class TestLoggedDmlOverhead:
    def test_overhead_per_sync_policy(self):
        results: dict[str, dict] = {}
        baseline_seconds, baseline_db = _timed_workload(lambda: Database(name="mem"))
        baseline_db.close()
        results["in-memory"] = {"seconds": baseline_seconds, "ratio": 1.0}
        for policy in ("off", "batch", "commit"):
            data_dir = tempfile.mkdtemp(prefix=f"bench_wal_{policy}_")
            try:
                seconds, db = _timed_workload(
                    lambda: Database.open(data_dir, name=policy, wal_sync=policy)
                )
                stats = db.wal_stats()
                db.close()
                results[policy] = {
                    "seconds": seconds,
                    "ratio": seconds / baseline_seconds,
                    "wal_records": stats.records,
                    "wal_bytes": stats.bytes_written,
                    "syncs": stats.syncs,
                    "avg_batch_records": round(stats.avg_batch_records, 2),
                    "max_batch_records": stats.max_batch_records,
                }
            finally:
                shutil.rmtree(data_dir, ignore_errors=True)
        print_table(
            f"Logged-DML overhead vs in-memory ({NUM_ROWS} inserts + updates + deletes)",
            ["policy", "seconds", "ratio", "wal records", "wal bytes", "fsyncs", "avg batch"],
            [
                (
                    policy,
                    f"{entry['seconds']:.3f}",
                    f"{entry['ratio']:.2f}x",
                    entry.get("wal_records", "-"),
                    entry.get("wal_bytes", "-"),
                    entry.get("syncs", "-"),
                    entry.get("avg_batch_records", "-"),
                )
                for policy, entry in results.items()
            ],
        )
        payload = {
            "experiment": "durability",
            "rows": NUM_ROWS,
            "overhead": results,
            "recovery": self._recovery_series(),
        }
        write_bench_json("durability", payload)
        # Acceptance: group commit keeps logged DML within the bar.
        assert results["batch"]["ratio"] <= BATCH_OVERHEAD_BAR, results["batch"]
        # Sanity: every policy logged the same records; only sync counts differ.
        assert results["commit"]["syncs"] >= results["batch"]["syncs"]

    @staticmethod
    def _recovery_series() -> list[dict]:
        series = []
        for length in RECOVERY_LENGTHS:
            data_dir = tempfile.mkdtemp(prefix="bench_recovery_")
            try:
                db = Database.open(data_dir, wal_sync="off")
                db.execute("CREATE TABLE Log (qid INTEGER, ts FLOAT)")
                for qid in range(length):
                    db.execute(f"INSERT INTO Log (qid, ts) VALUES ({qid}, {float(qid)})")
                db.close()

                start = time.perf_counter()
                replayed = Database.open(data_dir, wal_sync="off")
                replay_seconds = time.perf_counter() - start
                assert replayed.last_recovery.wal_records_applied == length + 1
                assert len(replayed.table("Log")) == length
                replayed.checkpoint()
                replayed.close()

                start = time.perf_counter()
                snapshotted = Database.open(data_dir, wal_sync="off")
                snapshot_seconds = time.perf_counter() - start
                assert snapshotted.last_recovery.snapshot_loaded
                assert snapshotted.last_recovery.wal_records_applied == 0
                assert len(snapshotted.table("Log")) == length
                snapshotted.close()

                series.append(
                    {
                        "wal_records": length + 1,
                        "replay_seconds": replay_seconds,
                        "replay_records_per_second": (length + 1) / replay_seconds,
                        "snapshot_open_seconds": snapshot_seconds,
                    }
                )
            finally:
                shutil.rmtree(data_dir, ignore_errors=True)
        print_table(
            "Recovery time vs log length",
            ["wal records", "replay (s)", "records/s", "snapshot open (s)"],
            [
                (
                    entry["wal_records"],
                    f"{entry['replay_seconds']:.3f}",
                    f"{entry['replay_records_per_second']:.0f}",
                    f"{entry['snapshot_open_seconds']:.3f}",
                )
                for entry in series
            ],
        )
        return series
