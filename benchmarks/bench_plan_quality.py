"""Plan-quality micro-benchmark: access paths on feature-relation joins.

The planner/executor split exists so that CQMS meta-queries — ordinary SQL
over the feature relations — stop full-scanning tables whose equality indexes
already exist (the ``qid`` indexes of the Query Storage).  This experiment
isolates that effect on a synthetic feature-relation workload:

* **indexed** — the Figure 1-shaped join runs against tables with hash
  indexes on ``qid``/``relName``, so the planner chooses an ``IndexScan``
  driving side and ``IndexLoopJoin`` probes,
* **seq-only** — the same data without indexes forces sequential scans and
  hash joins.

Reported series: latency per query, rows actually scanned (the honest
``rows_scanned`` metric), and the plan trees.
"""

from __future__ import annotations

import pytest

from bench_common import print_table
from repro.storage.database import Database

NUM_QUERIES = 500
ATTRS_PER_QUERY = 3
RELATIONS = [f"rel{i}" for i in range(10)]

META_JOIN_SQL = (
    "SELECT Q.qid FROM Queries Q, Attributes A "
    "WHERE Q.qid = A.qid AND A.relName = 'rel3'"
)


def _build(indexed: bool) -> Database:
    db = Database(name="plan_quality")
    db.execute("CREATE TABLE Queries (qid INTEGER, qText TEXT)")
    db.execute(
        "CREATE TABLE Attributes (qid INTEGER, attrName TEXT, relName TEXT)"
    )
    db.insert_rows(
        "Queries",
        [{"qid": qid, "qText": f"SELECT * FROM t{qid}"} for qid in range(NUM_QUERIES)],
    )
    db.insert_rows(
        "Attributes",
        [
            {
                "qid": qid,
                "attrName": f"attr{position}",
                "relName": RELATIONS[(qid + position) % len(RELATIONS)],
            }
            for qid in range(NUM_QUERIES)
            for position in range(ATTRS_PER_QUERY)
        ],
    )
    if indexed:
        db.execute("CREATE INDEX queries_qid ON Queries (qid)")
        db.execute("CREATE INDEX attributes_qid ON Attributes (qid)")
        db.execute("CREATE INDEX attributes_relname ON Attributes (relName)")
    return db


class TestPlanQuality:
    def test_indexed_plan_uses_index_scans(self):
        db = _build(indexed=True)
        plan = db.explain(META_JOIN_SQL)
        assert "IndexScan" in plan.text(), plan.text()
        seq_plan = _build(indexed=False).explain(META_JOIN_SQL)
        assert "IndexScan" not in seq_plan.text()
        print_table(
            "Plan quality: chosen plans",
            ["variant", "plan"],
            [("indexed", " / ".join(plan.lines)), ("seq-only", " / ".join(seq_plan.lines))],
        )

    @pytest.mark.parametrize("indexed", [True, False], ids=["indexed", "seq-only"])
    def test_meta_join_latency(self, benchmark, indexed):
        db = _build(indexed=indexed)
        result = benchmark(db.execute, META_JOIN_SQL)
        print_table(
            f"Plan quality: {'indexed' if indexed else 'seq-only'} meta-join",
            ["rows", "rows_scanned", "index_lookups"],
            [(len(result), result.stats.rows_scanned, result.stats.index_lookups)],
        )
        assert len(result) == NUM_QUERIES * ATTRS_PER_QUERY // len(RELATIONS)

    def test_index_scans_touch_fewer_rows(self):
        indexed = _build(indexed=True).execute(META_JOIN_SQL)
        seq_only = _build(indexed=False).execute(META_JOIN_SQL)
        assert indexed.rows == seq_only.rows or sorted(indexed.rows) == sorted(seq_only.rows)
        assert indexed.stats.rows_scanned < seq_only.stats.rows_scanned / 3, (
            indexed.stats,
            seq_only.stats,
        )
        print_table(
            "Plan quality: rows touched by access path",
            ["variant", "rows_scanned", "index_lookups"],
            [
                ("indexed", indexed.stats.rows_scanned, indexed.stats.index_lookups),
                ("seq-only", seq_only.stats.rows_scanned, seq_only.stats.index_lookups),
            ],
        )


class TestJoinFanoutCalibration:
    """Histogram-calibrated join-size estimates (cost-model calibration).

    The planner used to divide |L|·|R| by the *inner* column's distinct count
    only; it now uses max of both sides' distincts and scales both inputs by
    the histogram-estimated overlap of the two key-value ranges.  This
    experiment measures the q-error (max(est/actual, actual/est)) of both
    formulas on key domains with varying overlap — the calibrated estimate
    must dominate.
    """

    def _overlap_db(self, shift: int) -> Database:
        db = Database(name=f"fanout_{shift}")
        db.execute("CREATE TABLE L (k INTEGER)")
        db.execute("CREATE TABLE R (k INTEGER)")
        db.insert_rows("L", [{"k": value} for value in range(0, 1000)])
        db.insert_rows("R", [{"k": value} for value in range(shift, shift + 1000)])
        db.statistics("L", refresh=True)
        db.statistics("R", refresh=True)
        return db

    def test_calibrated_estimates_beat_distinct_only(self):
        def q_error(estimate: float, actual: float) -> float:
            estimate, actual = max(estimate, 1.0), max(actual, 1.0)
            return max(estimate / actual, actual / estimate)

        rows = []
        calibrated_total, naive_total = 0.0, 0.0
        for shift in (0, 250, 500, 750, 1000):
            db = self._overlap_db(shift)
            explanation = db.explain("SELECT * FROM L, R WHERE L.k = R.k")
            estimate = explanation.root.estimate
            actual = len(db.execute("SELECT * FROM L, R WHERE L.k = R.k").rows)
            naive = 1000.0 * 1000.0 / 1000.0  # |L|*|R| / distinct(R.k)
            calibrated_total += q_error(estimate, actual)
            naive_total += q_error(naive, actual)
            rows.append(
                (
                    f"{1000 - shift}/1000",
                    actual,
                    f"{estimate:.0f}",
                    f"{q_error(estimate, actual):.2f}",
                    f"{q_error(naive, actual):.2f}",
                )
            )
        print_table(
            "Cost-model calibration: equi-join size estimates",
            ["key overlap", "actual rows", "calibrated est", "q-err (calibrated)", "q-err (distinct-only)"],
            rows,
        )
        assert calibrated_total < naive_total, (calibrated_total, naive_total)
