"""Experiment F3 — Figure 3: assisted interaction (completion + similar queries).

Figure 3 shows the assisted-composition panel: completions for the query being
typed, corrections, and a ranked similar-query table.  This experiment
evaluates the two learned services behind the panel:

  * series 1 — next-table prediction: for every multi-table session in a
    held-out suffix of the workload, reveal the first FROM table and check
    whether the engine suggests the session's actual next table
    (context-aware rules vs the popularity-only baseline — the paper's
    CityLocations/WaterTemp example, experiment C4),
  * series 2 — the Section 2.3 example itself: given WaterSalinity, the
    context-aware engine must put WaterTemp first even though the baseline
    prefers the globally popular table,
  * series 3 — latency of a full assist() round trip (what the client calls on
    every keystroke burst), which must stay interactive.
"""

from __future__ import annotations

from bench_common import build_env, hit_rate_at_k, print_table
from repro.client import render_assist_panel


def _next_table_cases(env, limit=80):
    """(context tables, next table) cases from multi-table workload sessions."""
    cases = []
    seen_sessions = set()
    for event in env.workload:
        key = (event.user, event.session_ordinal)
        if key in seen_sessions or not event.is_final:
            continue
        seen_sessions.add(key)
        from repro.sql.features import extract_features

        tables = extract_features(event.sql).tables
        if len(tables) >= 2:
            cases.append((tables[0], tables[1]))
        if len(cases) >= limit:
            break
    return cases


class TestAssistedInteraction:
    def test_next_table_prediction_beats_popularity_baseline(self, benchmark):
        env = build_env(num_sessions=160)
        engine = env.cqms.completion
        cases = _next_table_cases(env)
        assert len(cases) >= 20

        def evaluate(context_aware: bool):
            hits = []
            for first_table, next_table in cases:
                partial = f"SELECT * FROM {first_table} X, "
                suggestions = engine.suggest_tables(
                    partial, limit=3, context_aware=context_aware
                )
                ranked = [suggestion.text for suggestion in suggestions]
                hits.append(ranked.index(next_table) if next_table in ranked else None)
            return hits

        aware_hits = benchmark(evaluate, True)
        baseline_hits = evaluate(False)
        rows = [
            (
                "context-aware rules (CQMS)",
                f"{hit_rate_at_k(aware_hits, 1):.3f}",
                f"{hit_rate_at_k(aware_hits, 3):.3f}",
            ),
            (
                "global popularity (baseline)",
                f"{hit_rate_at_k(baseline_hits, 1):.3f}",
                f"{hit_rate_at_k(baseline_hits, 3):.3f}",
            ),
        ]
        print_table(
            f"F3/C4: next-table prediction over {len(cases)} sessions",
            ["method", "hit@1", "hit@3"],
            rows,
        )
        # The shape the paper argues for: context beats popularity.
        assert hit_rate_at_k(aware_hits, 1) >= hit_rate_at_k(baseline_hits, 1)
        assert hit_rate_at_k(aware_hits, 3) >= hit_rate_at_k(baseline_hits, 3)
        assert hit_rate_at_k(aware_hits, 1) > 0.5

    def test_paper_example_watersalinity_implies_watertemp(self, benchmark):
        """Section 2.3: given WaterSalinity, suggest WaterTemp over CityLocations."""
        env = build_env(num_sessions=160)
        engine = env.cqms.completion

        suggestions = benchmark(
            engine.suggest_tables, "SELECT * FROM WaterSalinity S, ", 3
        )
        context_top = suggestions[0].text
        baseline_top = engine.suggest_tables(
            "SELECT * FROM WaterSalinity S, ", limit=3, context_aware=False
        )[0].text
        print_table(
            "F3/C4: the paper's completion example",
            ["method", "top suggestion after WaterSalinity"],
            [
                ("context-aware (CQMS)", context_top),
                ("popularity-only (baseline)", baseline_top),
            ],
        )
        assert context_top == "watertemp"

    def test_similar_query_panel_relevance(self, benchmark):
        """The Figure 3 similar-queries table surfaces same-goal queries on top."""
        env = build_env(num_sessions=160)
        cqms = env.cqms
        # Probe with a rough draft of the salinity/temperature correlation goal.
        draft = "SELECT * FROM WaterSalinity S, WaterTemp T WHERE T.temp < 21"

        recommendations = benchmark(cqms.recommend, "admin", draft, 5)
        assert recommendations
        top_tables = set(recommendations[0].record.features.tables)
        assert {"watersalinity", "watertemp"} <= top_tables
        print_table(
            "F3: similar-query panel for a rough draft",
            ["rank", "score", "query", "diff"],
            [
                (i + 1, f"{item.score:.2f}", item.record.describe(60), item.diff_summary)
                for i, item in enumerate(recommendations)
            ],
        )

    def test_assist_round_trip_latency(self, benchmark):
        """One full assist() call (completions + corrections + recommendations)."""
        env = build_env(num_sessions=160)
        partial = "SELECT * FROM WaterSalinity S, "

        response = benchmark(env.cqms.assist, "admin", partial)
        assert response.completions["tables"]
        panel = render_assist_panel(partial, response)
        assert "Completions" in panel
