"""Experiment F4 — Figure 4: the end-to-end CQMS architecture.

Figure 4 sketches the client–server architecture: SQL flows from the client
through the Query Profiler to the DBMS; meta-queries go to the Meta-Query
Executor; the Query Miner and Query Maintenance run in the background over the
Query Storage.

Reported series:
  * end-to-end throughput of replaying a multi-user workload through the full
    pipeline (profile → execute → log → shred),
  * the latency of each architectural path for a single interaction: a
    traditional submit, a meta-query, an assisted request, a miner pass, and a
    maintenance pass — showing the online components are interactive while the
    heavy analyses sit in the background components, as the paper requires.
"""

from __future__ import annotations

from bench_common import build_env, print_table
from repro import CQMS, SimulatedClock, build_database
from repro.workloads import QueryLogGenerator, WorkloadConfig


class TestArchitecture:
    def test_full_pipeline_replay_throughput(self, benchmark):
        """Queries/second through client → profiler → DBMS → Query Storage."""
        workload = QueryLogGenerator(
            WorkloadConfig(domain="limnology", num_sessions=60, seed=31)
        ).generate()

        def replay():
            clock = SimulatedClock()
            db = build_database("limnology", scale=1, clock=clock)
            cqms = CQMS(db, clock=clock)
            cqms.replay_workload(workload)
            return cqms

        cqms = benchmark(replay)
        assert len(cqms.store) == len(workload)
        print_table(
            "F4: end-to-end pipeline replay",
            ["queries", "logged", "feature rows (Attributes)"],
            [(
                len(workload),
                len(cqms.store),
                cqms.store.execute_meta_sql("SELECT COUNT(*) FROM Attributes").scalar(),
            )],
        )

    def test_online_path_traditional_submit(self, benchmark):
        """One client query through the online path (profiler + DBMS)."""
        env = build_env(num_sessions=120)
        sql = "SELECT L.name, AVG(T.temp) FROM Lakes L, WaterTemp T " \
              "WHERE L.lake_id = T.lake_id GROUP BY L.name"

        execution = benchmark(env.cqms.submit, "admin", sql)
        assert execution.succeeded

    def test_online_path_meta_query(self, benchmark):
        env = build_env(num_sessions=120)
        execution = benchmark(
            env.cqms.search_keyword, "admin", ["watertemp", "temp"]
        )
        assert execution is not None

    def test_online_path_assisted_request(self, benchmark):
        env = build_env(num_sessions=120)
        response = benchmark(env.cqms.assist, "admin", "SELECT * FROM WaterTemp T WHERE ")
        assert response is not None

    def test_background_path_miner(self, benchmark):
        env = build_env(num_sessions=120)
        report = benchmark(env.cqms.run_miner)
        assert report.num_sessions > 0

    def test_background_path_maintenance(self, benchmark):
        env = build_env(num_sessions=120)
        report = benchmark(env.cqms.run_maintenance)
        assert report is not None

    def test_architecture_summary_table(self, benchmark):
        """One row per component with the work it has done on the shared log."""
        env = build_env(num_sessions=120)
        cqms = env.cqms

        def snapshot():
            report = cqms.miner.last_report
            return {
                "queries": len(cqms.store),
                "sessions": report.num_sessions if report else 0,
                "rules": report.num_rules if report else 0,
                "datasource_rows": cqms.store.execute_meta_sql(
                    "SELECT COUNT(*) FROM DataSources"
                ).scalar(),
                "predicate_rows": cqms.store.execute_meta_sql(
                    "SELECT COUNT(*) FROM Predicates"
                ).scalar(),
            }

        stats = benchmark(snapshot)
        print_table(
            "F4: Query Storage and background-component state",
            ["component", "state"],
            [
                ("Query Profiler (logged queries)", stats["queries"]),
                ("Query Storage (DataSources rows)", stats["datasource_rows"]),
                ("Query Storage (Predicates rows)", stats["predicate_rows"]),
                ("Query Miner (sessions)", stats["sessions"]),
                ("Query Miner (association rules)", stats["rules"]),
            ],
        )
        assert stats["queries"] > 0
