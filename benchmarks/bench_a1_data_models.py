"""Experiment A1 — ablation of the query data model (§4.1).

The paper weighs three data models for stored queries: raw text, feature
relations, and canonicalized parse trees, and argues the feature-relation
model "may offer a good trade-off between expressibility and efficiency".

This ablation runs the same search task — "find the logged queries that join
WaterSalinity with WaterTemp and select on temperature" — under all three
models and reports answer quality (precision/recall against ground truth from
the generator's goals) and latency:

  * raw text      → substring search for the two relation names,
  * features      → SQL meta-query over the feature relations,
  * parse tree    → structural TreePattern matching over every stored query.
"""

from __future__ import annotations

from bench_common import build_env, print_table
from repro.sql.parse_tree import TreePattern

FEATURE_SQL = (
    "SELECT Q.qid FROM Queries Q, DataSources D1, DataSources D2, Predicates P "
    "WHERE Q.qid = D1.qid AND Q.qid = D2.qid AND Q.qid = P.qid "
    "AND D1.relName = 'watersalinity' AND D2.relName = 'watertemp' "
    "AND P.relName = 'watertemp' AND P.attrName = 'temp'"
)

TREE_PATTERN = TreePattern(
    label="select",
    children=(
        TreePattern(label="table", value="watersalinity"),
        TreePattern(label="table", value="watertemp"),
        TreePattern(label="op", value="<", children=(
            TreePattern(label="column", value="t.temp"),
        )),
    ),
)

_RESULTS: dict[str, dict] = {}


def _ground_truth(env) -> set[int]:
    truth = set()
    for record in env.store.select_queries():
        features = record.features
        if features is None:
            continue
        if {"watersalinity", "watertemp"} <= features.table_set() and any(
            p.attribute == "temp" and p.relation == "watertemp" for p in features.predicates
        ):
            truth.add(record.qid)
    return truth


def _record_result(name: str, qids: set[int], truth: set[int]) -> None:
    precision = len(qids & truth) / len(qids) if qids else 1.0
    recall = len(qids & truth) / len(truth) if truth else 1.0
    _RESULTS[name] = {"results": len(qids), "precision": precision, "recall": recall}
    if len(_RESULTS) == 3:
        print_table(
            "A1: data-model ablation — same search task under three models",
            ["data model", "results", "precision", "recall"],
            [
                (model, stats["results"], f"{stats['precision']:.2f}", f"{stats['recall']:.2f}")
                for model, stats in _RESULTS.items()
            ],
        )


class TestDataModelAblation:
    def test_raw_text_model(self, benchmark):
        env = build_env(num_sessions=160)
        truth = _ground_truth(env)

        def text_search():
            hits = env.cqms.search_substring("admin", "watersalinity")
            return {
                record.qid
                for record in hits
                if "watertemp" in record.text.lower() and "temp" in record.text.lower()
            }

        qids = benchmark(text_search)
        _record_result("raw text (substring)", qids, truth)
        # Text search cannot tell a selection on temp from a mere mention: it
        # must not beat the feature model's precision.
        assert len(qids & truth) > 0

    def test_feature_relation_model(self, benchmark):
        env = build_env(num_sessions=160)
        truth = _ground_truth(env)

        def feature_search():
            return {int(q) for q in env.store.execute_meta_sql(FEATURE_SQL).column("qid")}

        qids = benchmark(feature_search)
        _record_result("feature relations (SQL)", qids, truth)
        assert qids == truth

    def test_parse_tree_model(self, benchmark):
        env = build_env(num_sessions=160)
        truth = _ground_truth(env)

        def tree_search():
            hits = env.cqms.search_parse_tree("admin", TREE_PATTERN)
            return {record.qid for record in hits}

        qids = benchmark(tree_search)
        _record_result("parse trees (structural match)", qids, truth)
        # The structural pattern requires the temp predicate to be a '<'
        # comparison on the alias 't' — precise but parsing every query makes
        # it the slowest model (the trade-off the paper anticipates).
        precision = len(qids & truth) / len(qids) if qids else 1.0
        assert precision == 1.0
