"""Experiment C2 — §4.2 claim: "meta-querying must be interactive".

Latency of each meta-query class (keyword, substring, query-by-feature SQL,
query-by-parse-tree, query-by-data, kNN) as the query log grows.  The claim
holds if every class stays in interactive territory (well under a second) at
laptop-scale logs, with kNN and parse-tree search being the expensive ones —
exactly the trade-off the paper anticipates.
"""

from __future__ import annotations

import pytest

from bench_common import build_env, print_table
from repro.core.meta_query import DataCondition, FeatureCondition
from repro.sql.parse_tree import TreePattern

LOG_SIZES = [60, 120, 240]

FEATURE_SQL = (
    "SELECT Q.qid FROM Queries Q, DataSources D1, DataSources D2 "
    "WHERE Q.qid = D1.qid AND Q.qid = D2.qid "
    "AND D1.relName = 'watersalinity' AND D2.relName = 'watertemp'"
)

PARSE_TREE_PATTERN = TreePattern(
    label="select",
    children=(
        TreePattern(label="table", value="watertemp"),
        TreePattern(label="op", value="<"),
    ),
)


class TestMetaQueryLatency:
    @pytest.mark.parametrize("num_sessions", LOG_SIZES)
    def test_keyword_search(self, benchmark, num_sessions):
        env = build_env(num_sessions=num_sessions)
        results = benchmark(env.cqms.search_keyword, "admin", ["watertemp"])
        print_table(
            "C2: keyword search",
            ["log size", "matches"],
            [(len(env.store), len(results))],
        )
        assert results

    @pytest.mark.parametrize("num_sessions", LOG_SIZES)
    def test_substring_search(self, benchmark, num_sessions):
        env = build_env(num_sessions=num_sessions)
        results = benchmark(env.cqms.search_substring, "admin", "temp <")
        assert results is not None

    @pytest.mark.parametrize("num_sessions", LOG_SIZES)
    def test_query_by_feature_programmatic(self, benchmark, num_sessions):
        env = build_env(num_sessions=num_sessions)
        condition = FeatureCondition(
            tables_all=["watertemp"], predicates_on=[("temp", "watertemp", "<")]
        )
        results = benchmark(env.cqms.search_features, "admin", condition)
        assert results

    @pytest.mark.parametrize("num_sessions", LOG_SIZES)
    def test_query_by_feature_sql(self, benchmark, num_sessions):
        env = build_env(num_sessions=num_sessions)
        result = benchmark(env.store.execute_meta_sql, FEATURE_SQL)
        assert result.rows is not None

    @pytest.mark.parametrize("num_sessions", LOG_SIZES)
    def test_query_by_parse_tree(self, benchmark, num_sessions):
        env = build_env(num_sessions=num_sessions)
        results = benchmark(env.cqms.search_parse_tree, "admin", PARSE_TREE_PATTERN)
        assert results

    @pytest.mark.parametrize("num_sessions", LOG_SIZES)
    def test_query_by_data(self, benchmark, num_sessions):
        env = build_env(num_sessions=num_sessions)
        condition = DataCondition(include_values=["Lake Washington"])
        results = benchmark(env.cqms.search_by_data, "admin", condition)
        assert results is not None

    @pytest.mark.parametrize("num_sessions", LOG_SIZES)
    def test_knn_similar_queries(self, benchmark, num_sessions):
        env = build_env(num_sessions=num_sessions)
        probe = "SELECT * FROM WaterSalinity S, WaterTemp T WHERE T.temp < 20"
        results = benchmark(env.cqms.similar_queries, "admin", probe, 10)
        print_table(
            "C2: kNN similar-query search",
            ["log size", "neighbours returned"],
            [(len(env.store), len(results))],
        )
        assert results
