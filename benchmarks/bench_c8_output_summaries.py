"""Experiment C8 — §4.1: adaptive output summarization.

"If a query takes two hours to complete and outputs ten rows, then the system
should store the whole output.  However, if a query takes only two seconds and
outputs two million rows, there is no need to store the output."

The experiment sweeps a grid of (execution time, output cardinality) and
reports the stored-summary size and whether the summary is complete, checking
the two corners the paper calls out plus the monotonicity of the budget in
execution time.  It also measures the summarization cost itself (it sits on
the online profiling path).
"""

from __future__ import annotations

import pytest

from bench_common import print_table
from repro.storage.statistics import summarize_output

#: (execution seconds, output rows) grid — from interactive to hours-long.
GRID = [
    (0.5, 10),
    (0.5, 10_000),
    (5.0, 10_000),
    (60.0, 10_000),
    (7200.0, 10),
    (7200.0, 100_000),
]

BASE_BUDGET = 32
SECONDS_PER_ROW = 0.05
MAX_BUDGET = 2000


def _summarize(elapsed: float, rows: int):
    data = [(i, float(i)) for i in range(rows)]
    return summarize_output(
        data,
        ["id", "value"],
        execution_time=elapsed,
        base_budget=BASE_BUDGET,
        seconds_per_extra_row=SECONDS_PER_ROW,
        max_budget=MAX_BUDGET,
    )


class TestAdaptiveOutputSummaries:
    def test_summary_grid(self, benchmark):
        def run_grid():
            return {
                (elapsed, rows): _summarize(elapsed, rows) for elapsed, rows in GRID
            }

        summaries = benchmark(run_grid)
        table_rows = []
        for (elapsed, rows), summary in summaries.items():
            table_rows.append(
                (
                    f"{elapsed:g}s",
                    rows,
                    len(summary),
                    "complete" if len(summary) == rows else "sample",
                )
            )
        print_table(
            "C8: adaptive output summarization grid",
            ["execution time", "output rows", "stored rows", "kind"],
            table_rows,
        )
        # Paper corner 1: a two-hour query with ten rows is stored completely.
        assert len(summaries[(7200.0, 10)]) == 10
        # Paper corner 2: a sub-second query with a huge output is down-sampled
        # to (roughly) the base budget.
        assert len(summaries[(0.5, 10_000)]) <= BASE_BUDGET + int(0.5 / SECONDS_PER_ROW)
        # The budget grows with execution time but is capped.
        assert len(summaries[(0.5, 10_000)]) <= len(summaries[(60.0, 10_000)])
        assert len(summaries[(60.0, 10_000)]) <= len(summaries[(7200.0, 100_000)])
        assert len(summaries[(7200.0, 100_000)]) <= MAX_BUDGET

    @pytest.mark.parametrize("rows", [1_000, 10_000, 100_000])
    def test_summarization_cost(self, benchmark, rows):
        """Cost of summarizing an output of the given size (online path)."""
        summary = benchmark(_summarize, 1.0, rows)
        assert len(summary) <= MAX_BUDGET

    def test_storage_savings_table(self, benchmark):
        """Bytes-ish savings: stored cells vs produced cells across the grid."""
        def compute():
            produced = 0
            stored = 0
            for elapsed, rows in GRID:
                produced += rows * 2
                stored += len(_summarize(elapsed, rows)) * 2
            return produced, stored

        produced, stored = benchmark(compute)
        print_table(
            "C8: storage saved by summarization",
            ["cells produced", "cells stored", "stored fraction"],
            [(produced, stored, f"{stored / produced:.4f}")],
        )
        assert stored < produced * 0.05
