"""Experiment C6 — §4.3: query clustering and association-rule mining.

The workload generator seeds the log with a known number of information goals
(the goal library) and with table co-occurrence structure.  This experiment
checks that the Query Miner recovers both:

  * clustering — queries of the same goal end up in the same cluster
    (cluster purity w.r.t. goal labels, plus silhouette score),
  * association rules — the seeded table pairs (e.g. WaterSalinity ⇒ WaterTemp)
    are mined with high confidence,
  * mining latency — the cost of one full background pass as the log grows.
"""

from __future__ import annotations

from collections import Counter

import pytest

from bench_common import build_env, print_table
from repro.mining.clustering import silhouette_score
from repro.sql.canonicalize import canonical_text


def _template_to_goal(env) -> dict[str, str]:
    """Map constant-stripped query templates to the goal that produced them."""
    mapping: dict[str, str] = {}
    for event in env.workload:
        template = canonical_text(event.sql, strip_constants=True)
        mapping.setdefault(template, event.goal)
    return mapping


class TestQueryClustering:
    def test_cluster_purity_wrt_goals(self, benchmark):
        env = build_env(num_sessions=160)
        miner = env.cqms.miner

        report = benchmark(miner.run)
        clusters = report.query_clusters
        assert clusters is not None
        goal_of = _template_to_goal(env)

        total = 0
        majority = 0
        cluster_rows = []
        for label, members in clusters.clusters().items():
            goals = Counter(
                goal_of.get(
                    clusters.items[index].template_text
                    or canonical_text(clusters.items[index].text, strip_constants=True),
                    "unknown",
                )
                for index in members
            )
            top_goal, top_count = goals.most_common(1)[0]
            total += len(members)
            majority += top_count
            cluster_rows.append((label, len(members), top_goal, f"{top_count / len(members):.2f}"))
        purity = majority / total if total else 0.0
        print_table(
            "C6: query clusters vs seeded information goals",
            ["cluster", "queries (templates)", "majority goal", "purity"],
            cluster_rows + [("overall", total, "", f"{purity:.2f}")],
        )
        assert purity >= 0.6

    def test_silhouette_of_feature_clustering(self, benchmark):
        env = build_env(num_sessions=160)
        report = env.cqms.miner.last_report or env.cqms.run_miner()
        clusters = report.query_clusters

        score = benchmark(silhouette_score, clusters, env.cqms.miner._query_distance)
        print_table(
            "C6: clustering silhouette (feature distance)",
            ["clusters", "items", "silhouette"],
            [(clusters.num_clusters, len(clusters.items), f"{score:.3f}")],
        )
        assert score > 0.1


class TestAssociationRules:
    def test_seeded_table_rules_recovered(self, benchmark):
        env = build_env(num_sessions=160)
        miner = env.cqms.miner

        report = benchmark(miner.run, cluster=False)
        rule_index = report.rule_index
        suggestions = dict(rule_index.suggestions(["table:watersalinity"], limit=10))
        print_table(
            "C6: rules conditioned on WaterSalinity",
            ["consequent", "confidence-weighted score"],
            sorted(suggestions.items(), key=lambda kv: -kv[1])[:5],
        )
        assert "table:watertemp" in suggestions
        # WaterTemp must be the strongest table consequent for WaterSalinity.
        table_suggestions = {k: v for k, v in suggestions.items() if k.startswith("table:")}
        assert max(table_suggestions, key=table_suggestions.get) == "table:watertemp"

    def test_rule_count_and_confidence_distribution(self, benchmark):
        env = build_env(num_sessions=160)
        report = env.cqms.miner.last_report or env.cqms.run_miner()

        def summarize():
            rules = report.rule_index.rules
            high = sum(1 for rule in rules if rule.confidence >= 0.8)
            return len(rules), high

        total, high_confidence = benchmark(summarize)
        print_table(
            "C6: mined association rules",
            ["rules", "confidence >= 0.8"],
            [(total, high_confidence)],
        )
        assert total > 0


class TestMiningLatency:
    @pytest.mark.parametrize("num_sessions", [60, 120, 240])
    def test_full_mining_pass_latency(self, benchmark, num_sessions):
        env = build_env(num_sessions=num_sessions)
        report = benchmark(env.cqms.miner.run)
        print_table(
            "C6: full background mining pass",
            ["log size", "sessions", "rules", "clusters"],
            [(
                len(env.store),
                report.num_sessions,
                report.num_rules,
                report.query_clusters.num_clusters if report.query_clusters else 0,
            )],
        )
        assert report.num_sessions > 0
