"""Experiment F1 — Figure 1: query-by-feature meta-queries.

The paper's Figure 1 example: "find all queries that correlate water salinity
with water temperature data", expressed as a SQL meta-query over the feature
relations, and auto-generated from a partially written query
(``SELECT FROM WaterSalinity, WaterTemperature``).

Reported series:
  * correctness — the meta-query returns exactly the logged queries that
    reference both relations (checked against a scan of the Query Storage),
  * latency of the raw SQL meta-query and of the end-to-end Figure 1 flow
    (generation + execution + access-control filtering), per log size.
"""

from __future__ import annotations

import pytest

from bench_common import build_env, print_table

FIGURE1_PARTIAL = "SELECT FROM WaterSalinity, WaterTemp"

FIGURE1_SQL = (
    "SELECT Q.qid, Q.qText FROM Queries Q, Attributes A1, Attributes A2 "
    "WHERE Q.qid = A1.qid AND Q.qid = A2.qid "
    "AND A1.attrName = 'salinity' AND A1.relName = 'watersalinity' "
    "AND A2.attrName = 'temp' AND A2.relName = 'watertemp'"
)


def _expected_correlating_qids(env) -> set[int]:
    """Ground truth: queries whose features reference both relations' attributes."""
    expected = set()
    for record in env.store.select_queries():
        if record.features is None:
            continue
        attributes = record.features.attribute_set()
        if ("salinity", "watersalinity") in attributes and ("temp", "watertemp") in attributes:
            expected.add(record.qid)
    return expected


class TestFigure1MetaQuery:
    def test_figure1_sql_meta_query(self, benchmark):
        env = build_env(num_sessions=120)
        result = benchmark(env.store.execute_meta_sql, FIGURE1_SQL)
        found = set(result.column("qid"))
        expected = _expected_correlating_qids(env)
        assert found == expected
        assert found, "the workload must contain salinity/temperature correlations"
        print_table(
            "F1: Figure 1 meta-query (SQL over feature relations)",
            ["log size", "matching queries", "precision", "recall"],
            [(len(env.store), len(found), 1.0, 1.0)],
        )

    def test_figure1_generated_from_partial_query(self, benchmark):
        env = build_env(num_sessions=120)
        generated_sql = env.cqms.meta_query.generate_feature_sql(FIGURE1_PARTIAL)
        assert "DataSources" in generated_sql

        def flow():
            return env.cqms.search_like_partial("admin", FIGURE1_PARTIAL)

        results = benchmark(flow)
        result_qids = {record.qid for record in results}
        # Every returned query references both relations.
        for record in results:
            assert {"watersalinity", "watertemp"} <= set(record.features.tables)
        # And it finds every query that does (generation conditions on tables only).
        expected = {
            record.qid
            for record in env.store.select_queries()
            if record.features is not None
            and {"watersalinity", "watertemp"} <= record.features.table_set()
        }
        assert result_qids == expected
        print_table(
            "F1: end-to-end flow (partial query -> generated meta-query -> results)",
            ["partial query", "results"],
            [(FIGURE1_PARTIAL, len(results))],
        )

    @pytest.mark.parametrize("num_sessions", [60, 120, 240])
    def test_meta_query_latency_scaling(self, benchmark, num_sessions):
        """Latency of the Figure 1 meta-query as the query log grows."""
        env = build_env(num_sessions=num_sessions)
        result = benchmark(env.store.execute_meta_sql, FIGURE1_SQL)
        print_table(
            f"F1: meta-query latency (log of {len(env.store)} queries)",
            ["log size", "matches"],
            [(len(env.store), len(result.rows))],
        )
        assert len(result.rows) > 0

    def test_keyword_baseline_is_less_precise(self, benchmark):
        """The existing-systems baseline (keyword search) over-matches.

        Keyword search for 'salinity temp' also returns queries that merely
        mention the two words (e.g. only one of the relations plus a comment),
        and misses nothing only because our generator always spells relation
        names out; its precision w.r.t. the true "correlates the two datasets"
        intent is therefore at most that of the feature meta-query.
        """
        env = build_env(num_sessions=120)
        expected = _expected_correlating_qids(env)

        def keyword():
            return env.cqms.search_keyword("admin", ["watersalinity", "watertemp"])

        keyword_results = benchmark(keyword)
        keyword_qids = {record.qid for record in keyword_results}
        feature_qids = {
            int(q) for q in env.store.execute_meta_sql(FIGURE1_SQL).column("qid")
        }
        keyword_precision = (
            len(keyword_qids & expected) / len(keyword_qids) if keyword_qids else 0.0
        )
        feature_precision = (
            len(feature_qids & expected) / len(feature_qids) if feature_qids else 0.0
        )
        print_table(
            "F1: feature meta-query vs keyword-search baseline",
            ["method", "results", "precision vs intent"],
            [
                ("query-by-feature (CQMS)", len(feature_qids), f"{feature_precision:.2f}"),
                ("keyword search (baseline)", len(keyword_qids), f"{keyword_precision:.2f}"),
            ],
        )
        assert feature_precision >= keyword_precision
