"""Columnar kernel benchmark: batch kernels vs the batched row path.

The columnar execution lane (PR 9) keeps the batched Volcano shape but moves
scan→filter→project pipelines through :class:`ColumnBatch` spans of bare
stored rows: filter conjuncts run as branch-light selection-vector kernels,
projection is one per-batch column gather, and no per-row ``{binding: row}``
wrapper dict is ever allocated.  This experiment quantifies that change on a
NULL-heavy mixed-type table over the engine's compiled-predicate shapes
(comparisons, AND chains, IN, BETWEEN, LIKE, NULL tests, full projection):

* **row-path** — the PR-6 batched engine, reproduced exactly by
  ``ExecutionSettings(columnar_kernels=False)`` (compiled row predicates,
  vectorized aggregation — only the columnar lane is off),
* **columnar** — the shipped defaults (``columnar_kernels=True``).

Acceptance gate: the columnar lane must beat the batched row path by ≥2x in
full mode (≥1.2x smoke) on total time over the filter+project mix, with
exactly equal result sets on every query.

The aggregation experiment times the popularity GROUP BY roll-up under the
process-pool partial-aggregation lane (``process_workers=2``): forked
workers each aggregate one heap span and ship O(groups) accumulator state
back.  On a multi-core host the lane must clear ≥1.3x over single-process
vectorized aggregation; on a single-core host (this container: the forked
children serialize on one CPU) the numbers are reported honestly and the
floor is not asserted — mirroring how the PR-4 thread-lane results are
handled under the GIL.

Results land in ``BENCH_columnar.json`` (``BENCH_columnar.smoke.json`` under
``REPRO_BENCH_SMOKE=1``).
"""

from __future__ import annotations

import os
import time

from bench_common import print_table, smoke_mode, write_bench_json
from repro.storage import Database, ExecutionSettings

NUM_ROWS = 8_000 if smoke_mode() else 60_000
TIMING_LOOPS = 2 if smoke_mode() else 3

#: The filter+project scan mix: every compiled-predicate shape the kernel
#: library covers, over NULL-bearing int/float/text columns.
MIX_SQL = [
    ("narrow-filter", "SELECT id, value FROM readings WHERE value > 25.0"),
    ("selective-and", "SELECT id FROM readings WHERE flag = 1 AND value > 10.0"),
    (
        "triple-and",
        "SELECT id FROM readings "
        "WHERE flag = 1 AND value > 10.0 AND station LIKE 'st%'",
    ),
    ("in-list", "SELECT id, flag FROM readings WHERE station IN ('st1', 'st4', 'st7')"),
    ("between", "SELECT id, value FROM readings WHERE value BETWEEN 10.0 AND 20.0"),
    ("null-test", "SELECT id FROM readings WHERE value IS NOT NULL AND flag IS NOT NULL"),
    ("like-scan", "SELECT id, station FROM readings WHERE station LIKE 'st1%'"),
    ("project-all", "SELECT id, station, value, flag FROM readings"),
]

POPULARITY_SQL = (
    "SELECT station, COUNT(*), COUNT(value), SUM(value), MIN(value), MAX(value) "
    "FROM readings GROUP BY station ORDER BY station"
)

VARIANTS = {
    "row-path": ExecutionSettings(columnar_kernels=False),
    "columnar": ExecutionSettings(),
    "columnar+process": ExecutionSettings(
        process_workers=2, process_threshold=10_000
    ),
}

_DB_CACHE: dict[str, Database] = {}


def _build(variant: str) -> Database:
    if variant in _DB_CACHE:
        return _DB_CACHE[variant]
    db = Database(name=f"columnar_{variant}", exec_settings=VARIANTS[variant])
    db.execute(
        "CREATE TABLE readings (id INTEGER, station TEXT, value FLOAT, flag INTEGER)"
    )
    db.insert_rows(
        "readings",
        [
            {
                "id": i,
                "station": None if i % 11 == 0 else f"st{i % 9}",
                "value": None if i % 7 == 0 else float((i * 13) % 97) / 3.0,
                "flag": None if i % 5 == 0 else i % 3,
            }
            for i in range(NUM_ROWS)
        ],
    )
    # The process-partial cost gate needs cached statistics for its group
    # estimate (without them it assumes one group per input row and vetoes).
    db.table("readings").statistics(refresh=True)
    _DB_CACHE[variant] = db
    return db


def _best_seconds(db: Database, sql: str) -> float:
    best = float("inf")
    for _ in range(TIMING_LOOPS):
        started = time.perf_counter()
        db.execute(sql)
        best = min(best, time.perf_counter() - started)
    return best


def _process_partials(db: Database, sql: str) -> int:
    """The fork fan-out the planner actually chose for ``sql`` (1 = off)."""
    from repro.sql.parser import parse
    from repro.storage.planner import Planner

    plan = Planner(db).plan_select(parse(sql))
    if plan.aggregate is None:
        return 1
    return getattr(plan.aggregate, "process_partials", 1)


class TestColumnarKernels:
    def test_mix_speedup_and_equivalence(self):
        """The headline: ≥2x (full) on the filter+project mix, exact results."""
        row_db = _build("row-path")
        col_db = _build("columnar")
        timings: dict[str, dict[str, float]] = {"row-path": {}, "columnar": {}}
        table_rows = []
        for name, sql in MIX_SQL:
            expected = row_db.execute(sql).rows
            got = col_db.execute(sql).rows
            # Cross-path correctness gate: exact equality, not just speed.
            assert sorted(got) == sorted(expected), name
            row_seconds = _best_seconds(row_db, sql)
            col_seconds = _best_seconds(col_db, sql)
            timings["row-path"][name] = row_seconds
            timings["columnar"][name] = col_seconds
            table_rows.append(
                (
                    name,
                    f"{row_seconds * 1000:.1f}ms",
                    f"{col_seconds * 1000:.1f}ms",
                    f"{row_seconds / col_seconds:.2f}x",
                )
            )
        row_total = sum(timings["row-path"].values())
        col_total = sum(timings["columnar"].values())
        mix_speedup = row_total / col_total
        table_rows.append(
            (
                "mix total",
                f"{row_total * 1000:.1f}ms",
                f"{col_total * 1000:.1f}ms",
                f"{mix_speedup:.2f}x",
            )
        )
        print_table(
            "Columnar kernels: filter+project scan mix",
            ["query", "row-path", "columnar", "speedup"],
            table_rows,
        )
        write_bench_json(
            "columnar",
            {
                "rows": NUM_ROWS,
                "seconds": timings,
                "mix_speedup": round(mix_speedup, 3),
            },
        )
        floor = 1.2 if smoke_mode() else 2.0
        assert mix_speedup >= floor, (
            f"columnar lane only {mix_speedup:.2f}x over the batched row path "
            f"(needed ≥{floor}x)"
        )

    def test_process_pool_aggregation(self):
        """Forked partial aggregation on the popularity roll-up.

        The speedup floor only binds where the forks can actually run in
        parallel (≥2 CPUs and the planner opened the lane); a single-core
        host reports the measured — usually negative — delta honestly.
        """
        sequential = _build("columnar")
        forked = _build("columnar+process")
        expected = sequential.execute(POPULARITY_SQL).rows
        got = forked.execute(POPULARITY_SQL).rows
        # Partial aggregation sums each heap span before merging, so the
        # float SUM column can differ from the sequential fold by an ulp
        # (float addition is not associative); everything else is exact.
        assert len(got) == len(expected)
        for got_row, expected_row in zip(got, expected):
            for got_value, expected_value in zip(got_row, expected_row):
                if isinstance(got_value, float) and isinstance(expected_value, float):
                    tolerance = max(1e-9, 1e-12 * abs(expected_value))
                    assert abs(got_value - expected_value) <= tolerance
                else:
                    assert got_value == expected_value
        seq_seconds = _best_seconds(sequential, POPULARITY_SQL)
        fork_seconds = _best_seconds(forked, POPULARITY_SQL)
        partials = _process_partials(forked, POPULARITY_SQL)
        speedup = seq_seconds / fork_seconds
        cpus = os.cpu_count() or 1
        print_table(
            "Process-pool partial aggregation: popularity GROUP BY",
            ["variant", "best latency", "partials", "speedup"],
            [
                ("vectorized", f"{seq_seconds * 1000:.1f}ms", 1, "1.00x"),
                (
                    "vectorized+process",
                    f"{fork_seconds * 1000:.1f}ms",
                    partials,
                    f"{speedup:.2f}x",
                ),
            ],
        )
        write_bench_json(
            "columnar_process",
            {
                "rows": NUM_ROWS,
                "cpu_count": cpus,
                "process_partials": partials,
                "seconds": {
                    "vectorized": seq_seconds,
                    "vectorized+process": fork_seconds,
                },
                "process_speedup": round(speedup, 3),
            },
        )
        if cpus >= 2 and partials > 1 and not smoke_mode():
            assert speedup >= 1.3, (
                f"process-pool lane only {speedup:.2f}x over single-process "
                f"vectorized aggregation on {cpus} CPUs (needed ≥1.3x)"
            )

    def test_columnar_off_reproduces_row_path_exactly(self):
        """``columnar_kernels=False`` must be byte-for-byte today's engine:
        zero columnar batches and identical rows on every mix query."""
        row_db = _build("row-path")
        for _, sql in MIX_SQL:
            explanation = row_db.explain(sql, analyze=True)
            assert explanation.stats is not None
            assert explanation.stats.columnar_batches == 0
        col_db = _build("columnar")
        grouped = POPULARITY_SQL
        assert row_db.execute(grouped).rows == col_db.execute(grouped).rows
