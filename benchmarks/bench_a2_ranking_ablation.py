"""Experiment A2 — ablation of the composite ranking function (§2.3).

The paper asks how to "construct ranking functions that combine similarity
measures together and with other desired properties (e.g. high popularity,
efficient runtime, small result cardinality)".  This ablation re-runs the C5
recommendation task under different weight settings:

  * similarity only,
  * similarity + popularity,
  * the full default weighting (similarity + popularity + recency + runtime +
    cardinality + quality),
  * popularity only (degenerates to the C5 baseline).

Reported rows: hit-rate@1/@5 and MRR per setting.  The expected shape is that
the kNN similarity pre-filter does the heavy lifting for hit@5, while adding
popularity (and the other components) improves hit@1 over similarity alone —
near-duplicates of the probe stop crowding out the popular, fully developed
analyses — i.e. the composite ranking function the paper asks for is justified.
"""

from __future__ import annotations

import pytest

from bench_common import (
    build_env,
    hit_rate_at_k,
    mean_reciprocal_rank,
    print_table,
    rank_of_match,
)
from repro.core.ranking import RankingFunction, RankingWeights
from repro.core.recommender import QueryRecommender
from repro.sql.canonicalize import canonical_text

WEIGHT_SETTINGS: dict[str, RankingWeights] = {
    "similarity only": RankingWeights.similarity_only(),
    "similarity + popularity": RankingWeights(
        similarity=1.0, popularity=0.4, recency=0.0, runtime=0.0, cardinality=0.0, quality=0.0
    ),
    "full composite (default)": RankingWeights(),
    "popularity only": RankingWeights(
        similarity=0.0, popularity=1.0, recency=0.0, runtime=0.0, cardinality=0.0, quality=0.0
    ),
}

_RESULTS: dict[str, dict[str, float]] = {}


def _cases(env, limit=50):
    sessions: dict[tuple, list] = {}
    for event in env.workload:
        sessions.setdefault((event.user, event.session_ordinal), []).append(event)
    cases = []
    for events in sessions.values():
        ordered = sorted(events, key=lambda e: e.step)
        if len(ordered) < 3:
            continue
        probe, final = ordered[len(ordered) // 2], ordered[-1]
        cases.append((probe.user, probe.sql, canonical_text(final.sql, strip_constants=True)))
        if len(cases) >= limit:
            break
    return cases


def _build_recommender(env, weights: RankingWeights) -> QueryRecommender:
    ranking = RankingFunction(weights)
    return QueryRecommender(
        env.store,
        env.cqms.meta_query,
        env.cqms.access_control,
        env.cqms.config,
        ranking=ranking,
        clock=env.clock,
    )


class TestRankingAblation:
    @pytest.mark.parametrize("setting", list(WEIGHT_SETTINGS))
    def test_weight_setting_quality(self, benchmark, setting):
        env = build_env(num_sessions=200, seed=21)
        cases = _cases(env)
        recommender = _build_recommender(env, WEIGHT_SETTINGS[setting])

        def evaluate():
            hits = []
            for user, probe_sql, final_template in cases:
                recommendations = recommender.recommend(user, probe_sql, k=5)
                templates = [
                    item.record.template_text
                    or canonical_text(item.record.text, strip_constants=True)
                    for item in recommendations
                ]
                hits.append(rank_of_match(templates, final_template))
            return hits

        hits = benchmark(evaluate)
        _RESULTS[setting] = {
            "hit@1": hit_rate_at_k(hits, 1),
            "hit@5": hit_rate_at_k(hits, 5),
            "mrr": mean_reciprocal_rank(hits),
        }
        if len(_RESULTS) == len(WEIGHT_SETTINGS):
            print_table(
                f"A2: ranking-function ablation over {len(cases)} sessions",
                ["weight setting", "hit@1", "hit@5", "MRR"],
                [
                    (
                        name,
                        f"{stats['hit@1']:.3f}",
                        f"{stats['hit@5']:.3f}",
                        f"{stats['mrr']:.3f}",
                    )
                    for name, stats in _RESULTS.items()
                ],
            )
            # Shape checks: combining similarity with popularity (the full
            # composite) is at least as good as either extreme, and it clearly
            # improves top-1 precision over similarity alone.
            full = _RESULTS["full composite (default)"]
            assert full["hit@1"] >= _RESULTS["similarity only"]["hit@1"]
            assert full["hit@5"] >= _RESULTS["popularity only"]["hit@5"] - 1e-9
            assert full["hit@5"] >= _RESULTS["similarity only"]["hit@5"] - 1e-9
            assert full["hit@5"] >= 0.4 and full["hit@1"] >= 0.25

    def test_feature_weight_exclusion(self, benchmark):
        """§2.4: the administrator can exclude a feature class from similarity.

        Zeroing the 'predicates' class must not destroy recommendation quality
        (tables/joins carry most of the signal) — this is the knob's sanity check.
        """
        env = build_env(num_sessions=200, seed=21)
        cases = _cases(env, limit=30)
        original = dict(env.cqms.config.feature_weights)
        env.cqms.config.feature_weights["predicates"] = 0.0
        recommender = _build_recommender(env, RankingWeights())

        def evaluate():
            hits = []
            for user, probe_sql, final_template in cases:
                recommendations = recommender.recommend(user, probe_sql, k=5)
                templates = [item.record.template_text for item in recommendations]
                hits.append(rank_of_match(templates, final_template))
            return hits

        try:
            hits = benchmark(evaluate)
        finally:
            env.cqms.config.feature_weights.update(original)
        print_table(
            "A2: similarity with the 'predicates' feature class excluded",
            ["hit@5"],
            [(f"{hit_rate_at_k(hits, 5):.3f}",)],
        )
        assert hit_rate_at_k(hits, 5) >= 0.3
