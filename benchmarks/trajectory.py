"""Benchmark trajectory: merge per-experiment results, gate regressions.

The perf history used to be scattered across the ``BENCH_*.json`` files with
no gate: a PR could halve a speedup and CI would stay green.  This tool
fixes both:

* ``python benchmarks/trajectory.py merge`` — collect every numeric scalar
  metric from every ``BENCH_*.json`` / ``BENCH_*.smoke.json`` (sorted, so
  the merge is deterministic) and record them in ``BENCH_trajectory.json``
  keyed by the current commit ("unknown" when git metadata is unavailable,
  e.g. a tarball checkout).  Re-running on the same commit updates that
  entry in place, so the committed file holds one row per PR.
* ``python benchmarks/trajectory.py check`` — compare the smoke-run *ratio*
  metrics (``*speedup*`` / ``*_vs_*`` keys: dimensionless and
  machine-comparable, unlike the raw latencies that are recorded as history
  only) currently on disk against the newest committed trajectory entry
  that carries each metric, and exit 1 if any regressed by more than 25%.
  Only smoke metrics are gated (they are what CI regenerates every run);
  full-run numbers are history, not a gate.

Hardware-dependent speedups are excluded per key, not per payload: a result
whose payload reports ``cpu_count`` < 2 (the process-pool lane measured on
a single core times fork serialization, not parallelism) or
``process_partials`` == 1 (the lane never opened, the ratio is noise around
1.0) contributes its other metrics but never its ``*speedup*`` keys.  The
old per-payload exclusion silently produced an empty trajectory on 1-core
CI runners even though bench files existed on disk.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent
TRAJECTORY_PATH = RESULTS_DIR / "BENCH_trajectory.json"

#: A smoke ratio may drop to (1 - tolerance) × baseline before CI fails.
REGRESSION_TOLERANCE = 0.25


def _is_ratio_key(key: str) -> bool:
    return "speedup" in key or "_vs_" in key


def _hardware_excluded(payload: dict) -> bool:
    """Whether this payload's parallel-lane speedups are untrustworthy."""
    if payload.get("cpu_count", 2) < 2:
        return True
    return payload.get("process_partials") == 1


def _payload_metrics(payload: dict) -> dict[str, float]:
    """Every numeric scalar metric of one payload (may be empty).

    Hardware exclusion drops only the ``*speedup*`` keys (parallel-vs-serial
    comparisons that a 1-core runner cannot measure); everything else —
    latencies, throughputs, non-hardware ratios like ``ingest_vs_target`` —
    is always recorded.
    """
    excluded = _hardware_excluded(payload)
    return {
        key: float(value)
        for key, value in sorted(payload.items())
        if isinstance(value, (int, float))
        and not isinstance(value, bool)
        and not (excluded and "speedup" in key)
    }


def collect() -> dict[str, dict[str, float]]:
    """Metrics from every result file, keyed by experiment name.

    ``BENCH_columnar.smoke.json`` → ``columnar.smoke``.  Every result file
    with at least one numeric metric contributes an experiment, so the merge
    never records an empty trajectory while bench files exist on disk.
    """
    collected: dict[str, dict[str, float]] = {}
    for path in sorted(RESULTS_DIR.glob("BENCH_*.json")):
        if path.name == TRAJECTORY_PATH.name:
            continue
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            print(f"trajectory: skipping unreadable {path.name}: {error}")
            continue
        if not isinstance(payload, dict):
            print(f"trajectory: skipping non-object payload {path.name}")
            continue
        metrics = _payload_metrics(payload)
        if metrics:
            name = path.name[len("BENCH_") : -len(".json")]
            collected[name] = metrics
    return collected


def _current_commit() -> str:
    try:
        output = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=RESULTS_DIR,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        return output or "unknown"
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def _load_history() -> list[dict]:
    if not TRAJECTORY_PATH.exists():
        return []
    try:
        history = json.loads(TRAJECTORY_PATH.read_text()).get("history", [])
    except (OSError, json.JSONDecodeError, AttributeError):
        return []
    if not isinstance(history, list):
        return []
    # Tolerate hand-edited or pre-fix entries with missing metadata.
    return [entry for entry in history if isinstance(entry, dict)]


def merge() -> int:
    history = _load_history()
    commit = _current_commit()
    entry = {"commit": commit, "metrics": collect()}
    if not entry["metrics"]:
        print("trajectory: no ratio metrics found; nothing to merge")
        return 1
    for existing in history:
        if existing.get("commit") == commit:
            existing["metrics"] = entry["metrics"]
            break
    else:
        history.append(entry)
    TRAJECTORY_PATH.write_text(
        json.dumps({"history": history}, indent=2, sort_keys=True) + "\n"
    )
    experiments = ", ".join(sorted(entry["metrics"]))
    print(f"trajectory: recorded {commit} ({experiments})")
    return 0


def _baseline_for(history: list[dict], experiment: str) -> dict[str, float]:
    """The newest recorded metrics for one experiment (empty if never seen)."""
    for entry in reversed(history):
        metrics = entry.get("metrics", {}).get(experiment)
        if metrics:
            return metrics
    return {}


def check() -> int:
    history = _load_history()
    if not history:
        print("trajectory: no committed baseline; run merge first")
        return 0
    current = collect()
    failures: list[str] = []
    compared = 0
    for experiment, metrics in sorted(current.items()):
        if not experiment.endswith(".smoke"):
            continue
        baseline = _baseline_for(history, experiment)
        for key, value in sorted(metrics.items()):
            if not _is_ratio_key(key):
                continue  # raw latencies/throughputs are history, not a gate
            base_value = baseline.get(key)
            if base_value is None or base_value <= 0:
                continue
            compared += 1
            floor = base_value * (1.0 - REGRESSION_TOLERANCE)
            status = "ok" if value >= floor else "REGRESSED"
            print(
                f"trajectory: {experiment}:{key} = {value:.3f} "
                f"(baseline {base_value:.3f}, floor {floor:.3f}) {status}"
            )
            if value < floor:
                failures.append(f"{experiment}:{key}")
    if failures:
        print(
            f"trajectory: {len(failures)} smoke metric(s) regressed >"
            f"{REGRESSION_TOLERANCE:.0%}: {', '.join(failures)}"
        )
        return 1
    print(f"trajectory: {compared} smoke ratio metric(s) within tolerance")
    return 0


def main(argv: list[str]) -> int:
    if len(argv) != 2 or argv[1] not in ("merge", "check"):
        print("usage: trajectory.py {merge|check}")
        return 2
    return merge() if argv[1] == "merge" else check()


if __name__ == "__main__":
    sys.exit(main(sys.argv))
