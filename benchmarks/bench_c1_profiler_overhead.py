"""Experiment C1 — §2.1 claim: "the CQMS does not impose significant runtime overhead".

The profiler intercepts every query on its way to the DBMS.  This experiment
replays the same workload through three configurations and compares wall-clock
cost per query:

  * ``off``      — plain DBMS execution (the no-CQMS baseline),
  * ``text``     — log raw text + runtime statistics,
  * ``features`` — full feature shredding + output summarization.

The paper's claim holds if the text mode is close to the baseline and even the
full feature mode stays within a small constant factor (the heavy work —
mining, clustering — is in the background components, not on this path).
"""

from __future__ import annotations

import time

import pytest

from bench_common import build_env, print_table
from repro import CQMS, CQMSConfig, SimulatedClock, build_database
from repro.workloads import QueryLogGenerator, WorkloadConfig

_WORKLOAD = None
_RESULTS: dict[str, float] = {}


def _workload():
    global _WORKLOAD
    if _WORKLOAD is None:
        _WORKLOAD = QueryLogGenerator(
            WorkloadConfig(domain="limnology", num_sessions=50, seed=77)
        ).generate()
    return _WORKLOAD


def _run_mode(mode: str) -> int:
    clock = SimulatedClock()
    db = build_database("limnology", scale=1, clock=clock)
    cqms = CQMS(db, CQMSConfig(profiling_mode=mode), clock=clock)
    count = cqms.replay_workload(_workload())
    return count


class TestProfilerOverhead:
    @pytest.mark.parametrize("mode", ["off", "text", "features"])
    def test_profiling_mode_cost(self, benchmark, mode):
        count = benchmark(_run_mode, mode)
        assert count == len(_workload())
        _RESULTS[mode] = benchmark.stats.stats.mean
        if len(_RESULTS) == 3:
            baseline = _RESULTS["off"]
            rows = [
                (
                    mode_name,
                    f"{_RESULTS[mode_name] * 1000:.1f} ms",
                    f"{_RESULTS[mode_name] * 1000 / count:.3f} ms",
                    f"{_RESULTS[mode_name] / baseline:.2f}x",
                )
                for mode_name in ("off", "text", "features")
            ]
            print_table(
                f"C1: profiling overhead over {count} queries (whole-workload mean)",
                ["profiling mode", "total", "per query", "vs no profiling"],
                rows,
            )
            # Shape check: text-mode overhead is small; full feature shredding
            # stays within a small constant factor of raw execution.
            assert _RESULTS["text"] <= baseline * 2.0
            assert _RESULTS["features"] <= baseline * 5.0

    def test_single_query_profile_latency(self, benchmark):
        """Per-query online cost of the full feature profiler."""
        env = build_env(num_sessions=60)
        sql = "SELECT * FROM WaterSalinity S, WaterTemp T WHERE S.loc_x = T.loc_x AND T.temp < 18"
        execution = benchmark(env.cqms.submit, "admin", sql)
        assert execution.succeeded
