"""Experiment C1 — §2.1 claim: "the CQMS does not impose significant runtime overhead".

The profiler intercepts every query on its way to the DBMS.  This experiment
replays the same workload through three configurations and compares wall-clock
cost per query:

  * ``off``      — plain DBMS execution (the no-CQMS baseline),
  * ``text``     — log raw text + runtime statistics,
  * ``features`` — full feature shredding + output summarization.

The paper's claim holds if the text mode is close to the baseline and even the
full feature mode stays within a small constant factor (the heavy work —
mining, clustering — is in the background components, not on this path).

Since the telemetry PR the profiler reports its own logging overhead into the
metrics registry (``profiler_overhead_seconds{mode=}``), so "should not
hinder" is pinned to a *per-query tail* number: the p99 of the per-statement
logging overhead — not just a whole-workload mean that can hide a bimodal
tail — must stay within a small multiple of the mean plain execution time.
"""

from __future__ import annotations

import pytest

from bench_common import build_env, print_table, write_bench_json
from repro import CQMS, CQMSConfig, SimulatedClock, build_database
from repro.workloads import QueryLogGenerator, WorkloadConfig

_WORKLOAD = None
_RESULTS: dict[str, float] = {}
#: Per-mode ``profiler_overhead_seconds`` deciles from the registry of the
#: most recent ``_run_mode`` invocation (p50/p90/p99/count/mean, seconds).
_OVERHEAD: dict[str, dict[str, float]] = {}
#: p99 logging overhead may cost at most this many mean plain executions.
#: Text logging is nearly free; feature shredding walks the whole AST and
#: summarizes output, so its tail is budgeted wider but still bounded — a
#: quadratic regression in the shredder blows well past 30x.
P99_OVERHEAD_BUDGET_FACTORS = {"text": 10.0, "features": 30.0}


def _workload():
    global _WORKLOAD
    if _WORKLOAD is None:
        _WORKLOAD = QueryLogGenerator(
            WorkloadConfig(domain="limnology", num_sessions=50, seed=77)
        ).generate()
    return _WORKLOAD


def _run_mode(mode: str) -> int:
    clock = SimulatedClock()
    db = build_database("limnology", scale=1, clock=clock)
    cqms = CQMS(db, CQMSConfig(profiling_mode=mode), clock=clock)
    count = cqms.replay_workload(_workload())
    histogram = cqms.metrics.find_histogram("profiler_overhead_seconds", mode=mode)
    _OVERHEAD[mode] = histogram.summary() if histogram is not None else {}
    return count


class TestProfilerOverhead:
    @pytest.mark.parametrize("mode", ["off", "text", "features"])
    def test_profiling_mode_cost(self, benchmark, mode):
        count = benchmark(_run_mode, mode)
        assert count == len(_workload())
        _RESULTS[mode] = benchmark.stats.stats.mean
        if len(_RESULTS) == 3:
            baseline = _RESULTS["off"]
            mean_exec = baseline / count
            rows = [
                (
                    mode_name,
                    f"{_RESULTS[mode_name] * 1000:.1f} ms",
                    f"{_RESULTS[mode_name] * 1000 / count:.3f} ms",
                    f"{_OVERHEAD[mode_name].get('p50', 0.0) * 1000:.3f} ms",
                    f"{_OVERHEAD[mode_name].get('p99', 0.0) * 1000:.3f} ms",
                    f"{_RESULTS[mode_name] / baseline:.2f}x",
                )
                for mode_name in ("off", "text", "features")
            ]
            print_table(
                f"C1: profiling overhead over {count} queries (whole-workload mean)",
                [
                    "profiling mode",
                    "total",
                    "per query",
                    "log p50",
                    "log p99",
                    "vs no profiling",
                ],
                rows,
            )
            write_bench_json(
                "c1_profiler_overhead",
                {
                    "queries": count,
                    "mean_exec_ms": mean_exec * 1000.0,
                    **{
                        f"overhead_{m}_{decile}_ms": _OVERHEAD[m].get(decile, 0.0) * 1000.0
                        for m in ("off", "text", "features")
                        for decile in ("p50", "p90", "p99")
                    },
                    **{
                        f"total_{m}_ms": _RESULTS[m] * 1000.0
                        for m in ("off", "text", "features")
                    },
                },
            )
            # Shape check: text-mode overhead is small; full feature shredding
            # stays within a small constant factor of raw execution.
            assert _RESULTS["text"] <= baseline * 2.0
            assert _RESULTS["features"] <= baseline * 5.0
            # Tail check ("should not hinder"): every mode's p99 per-statement
            # logging overhead fits the per-query budget.  The deciles come
            # from the registry histograms the profiler itself populates.
            for mode_name, factor in P99_OVERHEAD_BUDGET_FACTORS.items():
                p99 = _OVERHEAD[mode_name].get("p99", 0.0)
                assert _OVERHEAD[mode_name].get("count"), mode_name
                assert p99 <= mean_exec * factor, (
                    f"{mode_name} p99 logging overhead {p99 * 1000:.3f} ms exceeds "
                    f"{factor}x the mean execution {mean_exec * 1000:.3f} ms"
                )

    def test_single_query_profile_latency(self, benchmark):
        """Per-query online cost of the full feature profiler."""
        env = build_env(num_sessions=60)
        sql = "SELECT * FROM WaterSalinity S, WaterTemp T WHERE S.loc_x = T.loc_x AND T.temp < 18"
        execution = benchmark(env.cqms.submit, "admin", sql)
        assert execution.succeeded
