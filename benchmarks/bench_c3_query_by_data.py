"""Experiment C3 — §2.2 query-by-data.

The paper's example: the user remembers that some property distinguishes Lake
Washington from Lake Union and asks for "all queries whose output includes
Lake Washington but not Lake Union"; the answer set turns out to be the
queries that select on ``temp < 18``.

The workload database is seeded so that Lake Washington only has readings
below 18°C while Lake Union only has readings above, so a ``temp < 18``
selection is exactly what separates the two.  The experiment checks that the
query-by-data answer consists of such queries and reports search latency and
sensitivity to the stored output-sample size.
"""

from __future__ import annotations

import pytest

from bench_common import build_env, print_table
from repro import CQMSConfig
from repro.core.meta_query import DataCondition

CONDITION = DataCondition(
    include_values=["Lake Washington"], exclude_values=["Lake Union"]
)


def _has_cool_temperature_predicate(record) -> bool:
    """Whether the query selects WaterTemp.temp below 18 (or joins on it)."""
    for predicate in record.features.predicates:
        if (
            predicate.attribute == "temp"
            and predicate.op in ("<", "<=")
            and isinstance(predicate.constant, (int, float))
            and predicate.constant <= 18
        ):
            return True
    return False


class TestQueryByData:
    def test_paper_example_lake_washington_not_lake_union(self, benchmark):
        env = build_env(num_sessions=160)

        results = benchmark(env.cqms.search_by_data, "admin", CONDITION)
        assert results, "the workload contains lake-name-producing queries"
        # Every answer must genuinely distinguish the two lakes in its stored output.
        for record in results:
            assert record.output.contains_value("Lake Washington")
            assert not record.output.contains_value("Lake Union")
        # The paper's observation: among the temperature queries in the answer
        # set, (virtually) all specify a 'temp < 18'-style selection — that is
        # the property that distinguishes the two lakes.  Queries over other
        # relations (e.g. Lakes filtered by depth/area) may also separate the
        # lakes and legitimately appear in the answer; they are reported too.
        temperature_queries = [
            record for record in results if "watertemp" in record.features.table_set()
        ]
        cool = [
            record
            for record in temperature_queries
            if _has_cool_temperature_predicate(record)
        ]
        fraction = len(cool) / len(temperature_queries) if temperature_queries else 0.0
        print_table(
            "C3: 'output includes Lake Washington but not Lake Union'",
            [
                "matching queries",
                "over WaterTemp",
                "of those, with temp < 18-style predicate",
            ],
            [(len(results), len(temperature_queries), f"{fraction:.2f}")],
        )
        assert temperature_queries, "temperature queries must appear in the answer"
        assert fraction >= 0.8

    def test_negative_control_returns_nothing(self, benchmark):
        """Asking for an impossible output signature returns the empty set."""
        env = build_env(num_sessions=160)
        impossible = DataCondition(include_values=["No Such Lake Anywhere"])
        results = benchmark(env.cqms.search_by_data, "admin", impossible)
        assert results == []

    @pytest.mark.parametrize("sample_budget", [8, 32, 128])
    def test_sensitivity_to_output_sample_size(self, benchmark, sample_budget):
        """Recall of query-by-data as the administrator tunes the sample size.

        This is the §2.4 administrative knob ("adjust tunable parameters such
        as the sample size for the query-by-data approach"): tiny samples may
        miss Lake Washington rows in large outputs and lose recall.
        """
        config = CQMSConfig(output_sample_base_budget=sample_budget)
        env = build_env(num_sessions=80, seed=13, config=config, mine=False)

        results = benchmark(env.cqms.search_by_data, "admin", CONDITION)
        reference_env = build_env(num_sessions=80, seed=13, mine=False,
                                  config=CQMSConfig(output_sample_base_budget=2000))
        reference = reference_env.cqms.search_by_data("admin", CONDITION)
        recall = (
            len({r.canonical_text for r in results} & {r.canonical_text for r in reference})
            / max(1, len({r.canonical_text for r in reference}))
        )
        print_table(
            f"C3: sample-size sensitivity (budget={sample_budget})",
            ["sample budget", "matches", "recall vs full-sample reference"],
            [(sample_budget, len(results), f"{recall:.2f}")],
        )
        assert recall >= 0.4
