"""Firehose experiment — streaming ingest under live telemetry + admission control.

The CQMS scenario from the paper's deployment sketch: a sensor firehose
streams readings into the DBMS while analysts run meta-query traffic through
the CQMS front door.  With the telemetry PR every statement on both lanes is
traced and histogrammed, so this experiment answers three questions with the
registry itself as the measuring instrument:

* **Does telemetry keep up?**  Batched ``INSERT`` statements stream into
  ``SensorReadings`` with tracing, slow-query logging, and per-statement
  histograms live.  The achieved ingest rate must meet an absolute target
  (conservative, CI-safe) both solo and with concurrent analyst traffic.
* **Is the tail bounded?**  The p99 of ``statement_seconds{engine=database}``
  — which covers every insert batch *and* every analyst query — must stay
  under :data:`P99_BUDGET_SECONDS`.
* **Does admission control shed load?**  A rate-limited principal bursting
  above its token budget gets exactly ``burst`` admissions and typed
  :class:`~repro.errors.RateLimitedError` rejections for the rest, while the
  firehose and the other analysts are untouched; after the simulated clock
  refills the bucket the principal is admitted again.

Results go to ``BENCH_firehose.json`` (``.smoke`` under
``REPRO_BENCH_SMOKE=1``).  The trajectory gate watches the ratio keys:
``ingest_vs_target`` (achieved over target, clamped at
:data:`INGEST_HEADROOM_CAP` so a fast developer machine does not bake an
unmeetable baseline into CI) and ``shed_vs_expected`` (deterministic 1.0 —
any drift means the token bucket broke).
"""

from __future__ import annotations

import time

from bench_common import print_table, smoke_mode, write_bench_json
from repro import CQMS, CQMSConfig, SimulatedClock
from repro.errors import RateLimitedError
from repro.obs import QueryLimits
from repro.workloads import build_database

#: Rows/second the firehose must sustain (deliberately conservative so slow
#: CI runners pass; the real rate is recorded alongside for the history).
TARGET_ROWS_PER_SEC = 500.0 if smoke_mode() else 2_000.0
#: ``ingest_vs_target`` is clamped here: "met the target with 2x headroom" is
#: the maximum claim, so the committed baseline stays meetable on any runner.
INGEST_HEADROOM_CAP = 2.0
#: Bound on the DBMS per-statement p99 (insert batches + analyst queries).
P99_BUDGET_SECONDS = 0.25

NUM_BATCHES = 40 if smoke_mode() else 200
BATCH_ROWS = 50 if smoke_mode() else 100
#: One analyst meta-query interleaved per this many ingest batches.
INGEST_PER_META = 5
#: reading_id space far above the seeded data.
ID_BASE = 1_000_000

GREEDY_BURST = 2.0
GREEDY_ATTEMPTS = 8

ANALYST_QUERIES = (
    "SELECT sensor_id, count(*) FROM SensorReadings GROUP BY sensor_id",
    "SELECT * FROM Sensors S, SensorReadings R WHERE S.sensor_id = R.sensor_id AND R.value > 7",
    "SELECT month, count(*) FROM SensorReadings WHERE value < 3 GROUP BY month",
)


def _build() -> tuple[CQMS, SimulatedClock]:
    clock = SimulatedClock()
    database = build_database("limnology", scale=1, clock=clock)
    cqms = CQMS(database, CQMSConfig(slow_query_threshold_seconds=0.5), clock=clock)
    cqms.register_user("analyst", "limno")
    cqms.register_user("greedy", "limno")
    cqms.set_user_limits(
        "greedy", QueryLimits(rate_limit_qps=GREEDY_BURST, rate_limit_burst=GREEDY_BURST)
    )
    return cqms, clock


def _insert_batch(cqms: CQMS, batch: int) -> None:
    base = ID_BASE + batch * BATCH_ROWS
    values = ", ".join(
        f"({base + i}, {(base + i) % 12 + 1}, {(base + i) % 12 + 1}, {float(i % 50) / 5.0})"
        for i in range(BATCH_ROWS)
    )
    result = cqms.database.execute(
        f"INSERT INTO SensorReadings (reading_id, sensor_id, month, value) VALUES {values}"
    )
    assert result.rowcount == BATCH_ROWS


def _ingest(cqms: CQMS, clock: SimulatedClock, with_meta: bool) -> float:
    """Stream every batch; returns achieved rows/second over the whole loop."""
    started = time.perf_counter()
    for batch in range(NUM_BATCHES):
        _insert_batch(cqms, batch)
        if with_meta and batch % INGEST_PER_META == 0:
            clock.advance(1.0)
            execution = cqms.submit(
                "analyst", ANALYST_QUERIES[batch // INGEST_PER_META % len(ANALYST_QUERIES)]
            )
            assert execution.succeeded, execution.error
    elapsed = time.perf_counter() - started
    return NUM_BATCHES * BATCH_ROWS / elapsed


def _registry_counter(cqms: CQMS, name: str, **labels) -> float:
    for series_name, series_labels, instance in cqms.metrics.series():
        if name in series_name and all(
            series_labels.get(key) == value for key, value in labels.items()
        ):
            return float(instance.value)
    return 0.0


class TestFirehose:
    def test_firehose_sustains_target_with_bounded_tail(self):
        solo_cqms, _ = _build()
        solo_rate = _ingest(solo_cqms, SimulatedClock(), with_meta=False)

        cqms, clock = _build()
        mixed_rate = _ingest(cqms, clock, with_meta=True)

        # Load shedding: the greedy principal bursts above its token budget
        # inside one simulated tick — exactly ``burst`` statements are
        # admitted, the rest get the typed rejection, the firehose keeps
        # running, and a refilled bucket admits again.
        admitted = rejected = 0
        for attempt in range(GREEDY_ATTEMPTS):
            try:
                execution = cqms.submit("greedy", ANALYST_QUERIES[attempt % len(ANALYST_QUERIES)])
            except RateLimitedError:
                rejected += 1
            else:
                admitted += 1
                assert execution.succeeded, execution.error
            _insert_batch(cqms, NUM_BATCHES + attempt)  # firehose unaffected
        expected_rejections = GREEDY_ATTEMPTS - int(GREEDY_BURST)
        assert admitted == int(GREEDY_BURST), (admitted, rejected)
        assert rejected == expected_rejections, (admitted, rejected)
        assert _registry_counter(cqms, "queries_rejected", principal="greedy") == rejected
        clock.advance(2.0)
        assert cqms.submit("greedy", ANALYST_QUERIES[0]).succeeded

        histogram = cqms.metrics.find_histogram("statement_seconds", engine="database")
        assert histogram is not None
        summary = histogram.summary()

        ingest_vs_target = min(mixed_rate / TARGET_ROWS_PER_SEC, INGEST_HEADROOM_CAP)
        payload = {
            "rows_ingested": NUM_BATCHES * BATCH_ROWS,
            "batch_rows": BATCH_ROWS,
            "target_rows_per_sec": TARGET_ROWS_PER_SEC,
            "solo_rows_per_sec": solo_rate,
            "mixed_rows_per_sec": mixed_rate,
            "mixed_over_solo_fraction": mixed_rate / solo_rate,
            "ingest_vs_target": ingest_vs_target,
            "shed_vs_expected": rejected / expected_rejections,
            "db_statement_p50_ms": summary["p50"] * 1000.0,
            "db_statement_p99_ms": summary["p99"] * 1000.0,
            "db_statements": summary["count"],
            "greedy_admitted": admitted,
            "greedy_rejected": rejected,
        }
        write_bench_json("firehose", payload)
        print_table(
            f"Firehose: {NUM_BATCHES}x{BATCH_ROWS}-row batches + analyst traffic",
            ["metric", "value"],
            [
                ("solo ingest", f"{solo_rate:,.0f} rows/s"),
                ("with meta traffic", f"{mixed_rate:,.0f} rows/s"),
                ("target", f"{TARGET_ROWS_PER_SEC:,.0f} rows/s"),
                ("db statement p50", f"{summary['p50'] * 1000:.3f} ms"),
                ("db statement p99", f"{summary['p99'] * 1000:.3f} ms"),
                ("greedy admitted/rejected", f"{admitted}/{rejected}"),
            ],
        )

        assert solo_rate >= TARGET_ROWS_PER_SEC, (solo_rate, TARGET_ROWS_PER_SEC)
        assert mixed_rate >= TARGET_ROWS_PER_SEC, (mixed_rate, TARGET_ROWS_PER_SEC)
        assert summary["p99"] <= P99_BUDGET_SECONDS, summary
        # The store logged every admitted analyst statement (none lost to
        # shedding accounting) and the slow-query ring stayed bounded.
        assert len(cqms.store) >= NUM_BATCHES // INGEST_PER_META
        assert len(cqms.slow_queries()) <= cqms.config.slow_query_log_size
