"""DML and range-scan benchmark: planner-routed UPDATE/DELETE and RangeScan.

The CQMS maintenance hot path is write-heavy — every logged query updates
popularity counters, flips validity bits, and prunes stale feature rows.
Before DML went through the planner, every UPDATE/DELETE full-scanned its
target table; this experiment quantifies the access-path win:

* **indexed UPDATE/DELETE** — the WHERE clause probes a hash index (equality)
  or a sorted index (range), so ``rows_scanned`` collapses from the table
  cardinality to the matching rows,
* **range SELECT** — the same data with and without a sorted index on the
  timestamp column, comparing a ``RangeScan`` walk against a filtered
  ``SeqScan``,
* **ORDER BY ... LIMIT** — the sorted index eliminates the sort and
  short-circuits at the LIMIT.

Reported series: wall latency (pytest-benchmark), honest ``rows_scanned``
and ``index_lookups``, and the chosen plans.
"""

from __future__ import annotations

import time

import pytest

from bench_common import print_table
from repro.storage.database import Database

NUM_ROWS = 2_000
#: One timestamp decile — the window the range statements target.
WINDOW_LOW = NUM_ROWS * 0.45
WINDOW_HIGH = NUM_ROWS * 0.55

RANGE_SELECT = f"SELECT qid FROM Log WHERE ts > {WINDOW_LOW} AND ts <= {WINDOW_HIGH}"
RANGE_UPDATE = f"UPDATE Log SET hits = hits + 1 WHERE ts BETWEEN {WINDOW_LOW} AND {WINDOW_HIGH}"
POINT_UPDATE = "UPDATE Log SET hits = hits + 1 WHERE qid = 1234"
RANGE_DELETE = f"DELETE FROM Log WHERE ts > {WINDOW_LOW} AND ts <= {WINDOW_HIGH}"
TOP_K = "SELECT qid FROM Log ORDER BY ts DESC LIMIT 10"


def _build(indexed: bool) -> Database:
    db = Database(name="dml_bench")
    db.execute("CREATE TABLE Log (qid INTEGER, ts FLOAT, hits INTEGER, tag TEXT)")
    db.insert_rows(
        "Log",
        [
            {"qid": qid, "ts": float(qid), "hits": 0, "tag": f"t{qid % 7}"}
            for qid in range(NUM_ROWS)
        ],
    )
    if indexed:
        db.execute("CREATE INDEX log_qid ON Log (qid)")
        db.execute("CREATE INDEX log_ts ON Log (ts) USING SORTED")
    return db


class TestDmlPlans:
    def test_indexed_dml_plans_prune(self):
        db = _build(indexed=True)
        point = db.explain(POINT_UPDATE)
        assert "IndexScan Log (qid = 1234)" in point.text(), point.text()
        ranged = db.explain(RANGE_DELETE)
        assert "RangeScan Log" in ranged.text(), ranged.text()
        seq = _build(indexed=False).explain(RANGE_DELETE)
        assert "SeqScan Log" in seq.text()
        print_table(
            "DML plans",
            ["statement", "plan"],
            [
                ("point update", " / ".join(point.lines)),
                ("range delete", " / ".join(ranged.lines)),
                ("range delete (no idx)", " / ".join(seq.lines)),
            ],
        )

    def test_indexed_dml_scans_fewer_rows(self):
        indexed = _build(indexed=True)
        seq_only = _build(indexed=False)
        rows = []
        for label, db in (("indexed", indexed), ("seq-only", seq_only)):
            point = db.execute(POINT_UPDATE)
            ranged = db.execute(RANGE_UPDATE)
            deleted = db.execute(RANGE_DELETE)
            rows.append(
                (
                    label,
                    point.stats.rows_scanned,
                    ranged.stats.rows_scanned,
                    deleted.stats.rows_scanned,
                    point.stats.index_lookups
                    + ranged.stats.index_lookups
                    + deleted.stats.index_lookups,
                )
            )
            assert point.rowcount == 1
            assert ranged.rowcount > 0 and deleted.rowcount > 0
        print_table(
            "DML rows touched (table cardinality = %d)" % NUM_ROWS,
            ["variant", "point-update", "range-update", "range-delete", "index_lookups"],
            rows,
        )
        (_, idx_point, idx_range, idx_delete, idx_lookups) = rows[0]
        (_, seq_point, seq_range, seq_delete, seq_lookups) = rows[1]
        # Indexed DML touches only the matching rows, far below cardinality.
        assert idx_point == 1 and seq_point == NUM_ROWS
        assert idx_range < NUM_ROWS / 4 < seq_range
        assert idx_delete < NUM_ROWS / 4 <= seq_delete
        assert idx_lookups >= 3 and seq_lookups == 0


class TestDmlLatency:
    @pytest.mark.parametrize("indexed", [True, False], ids=["indexed", "seq-only"])
    def test_point_update_latency(self, benchmark, indexed):
        db = _build(indexed=indexed)
        result = benchmark(db.execute, POINT_UPDATE)
        assert result.rowcount == 1

    @pytest.mark.parametrize("indexed", [True, False], ids=["indexed", "seq-only"])
    def test_range_select_latency(self, benchmark, indexed):
        db = _build(indexed=indexed)
        result = benchmark(db.execute, RANGE_SELECT)
        assert len(result) == int(WINDOW_HIGH - WINDOW_LOW)

    def test_range_select_speedup_over_seq_scan(self):
        indexed = _build(indexed=True)
        seq_only = _build(indexed=False)

        def best_of(db, sql, repeats=5):
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                db.execute(sql)
                best = min(best, time.perf_counter() - start)
            return best

        indexed_result = indexed.execute(RANGE_SELECT)
        seq_result = seq_only.execute(RANGE_SELECT)
        assert sorted(indexed_result.rows) == sorted(seq_result.rows)
        indexed_time = best_of(indexed, RANGE_SELECT)
        seq_time = best_of(seq_only, RANGE_SELECT)
        print_table(
            "Range SELECT: RangeScan vs SeqScan",
            ["variant", "best latency (ms)", "rows_scanned", "index_lookups"],
            [
                (
                    "indexed",
                    f"{indexed_time * 1e3:.3f}",
                    indexed_result.stats.rows_scanned,
                    indexed_result.stats.index_lookups,
                ),
                (
                    "seq-only",
                    f"{seq_time * 1e3:.3f}",
                    seq_result.stats.rows_scanned,
                    seq_result.stats.index_lookups,
                ),
            ],
        )
        # The honest metric is deterministic: the walk touches only the window.
        assert indexed_result.stats.rows_scanned < NUM_ROWS / 4
        assert seq_result.stats.rows_scanned == NUM_ROWS
        # Wall clock is noisy in CI; demand a speedup but a modest one.
        assert indexed_time < seq_time, (indexed_time, seq_time)

    def test_top_k_avoids_sort_and_short_circuits(self):
        indexed = _build(indexed=True)
        seq_only = _build(indexed=False)
        plan = indexed.explain(TOP_K)
        assert "Sort" not in plan.text(), plan.text()
        assert "RangeScan Log (ORDER BY ts DESC)" in plan.text()
        fast = indexed.execute(TOP_K)
        slow = seq_only.execute(TOP_K)
        assert fast.rows == slow.rows
        print_table(
            "ORDER BY ts DESC LIMIT 10",
            ["variant", "rows_scanned"],
            [("indexed", fast.stats.rows_scanned), ("seq-only", slow.stats.rows_scanned)],
        )
        assert fast.stats.rows_scanned == 10
        assert slow.stats.rows_scanned == NUM_ROWS
