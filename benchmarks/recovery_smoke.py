"""Crash-recovery smoke test: SIGKILL a writing process, reopen, verify.

This is the end-to-end version of the property the unit tests prove byte by
byte: a *real* child process appends rows under ``wal_sync="commit"``,
acknowledging each durable insert through an atomically-replaced progress
file; the parent SIGKILLs it mid-write, reopens the ``data_dir`` (the dead
child's flock was released by the kernel), and verifies that

* every acknowledged row survived (the ``commit`` policy's contract),
* at most one unacknowledged in-flight row appears beyond that,
* the recovered table and its indexes agree (point lookups work).

Run directly (CI does)::

    PYTHONPATH=src python benchmarks/recovery_smoke.py
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time

ACK_FILE = "acknowledged"
TARGET_ACKS = 200
KILL_TIMEOUT_SECONDS = 60.0


def child(data_dir: str) -> None:
    """Insert rows forever, acknowledging each durable commit."""
    from repro.storage.database import Database

    db = Database.open(data_dir, wal_sync="commit")
    if not db.has_table("events"):
        db.execute("CREATE TABLE events (id INTEGER PRIMARY KEY, payload TEXT)")
        db.execute("CREATE INDEX events_payload ON events (payload)")
    ack_path = os.path.join(data_dir, ACK_FILE)
    tmp_path = ack_path + ".tmp"
    i = 0
    while True:
        db.execute(f"INSERT INTO events (id, payload) VALUES ({i}, 'p{i % 13}')")
        # The insert is fsynced (wal_sync="commit"): acknowledge it.  The ack
        # file is replaced atomically so the parent never reads a torn count.
        with open(tmp_path, "w") as handle:
            handle.write(str(i + 1))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, ack_path)
        i += 1


def parent() -> int:
    data_dir = tempfile.mkdtemp(prefix="recovery_smoke_")
    ack_path = os.path.join(data_dir, ACK_FILE)
    env = dict(os.environ)
    process = subprocess.Popen(
        [sys.executable, os.path.abspath(__file__), "--child", data_dir], env=env
    )
    try:
        deadline = time.monotonic() + KILL_TIMEOUT_SECONDS
        acknowledged = 0
        while acknowledged < TARGET_ACKS:
            if process.poll() is not None:
                raise SystemExit(
                    f"child exited early with code {process.returncode}"
                )
            if time.monotonic() > deadline:
                raise SystemExit(
                    f"child acknowledged only {acknowledged} rows in "
                    f"{KILL_TIMEOUT_SECONDS}s"
                )
            try:
                with open(ack_path) as handle:
                    acknowledged = int(handle.read().strip() or 0)
            except (FileNotFoundError, ValueError):
                pass
            time.sleep(0.01)
        # Kill the writer with no chance to clean up: the WAL tail may be
        # torn, and only the kernel releases its flock.
        os.kill(process.pid, signal.SIGKILL)
        process.wait()
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()

    with open(ack_path) as handle:
        acknowledged = int(handle.read().strip())

    from repro.storage.database import Database

    # Reopen: the dead child's flock is gone; recovery replays the log.
    with Database.open(data_dir) as db:
        report = db.last_recovery
        count = db.execute("SELECT COUNT(*) FROM events").scalar()
        assert count >= acknowledged, (
            f"lost acknowledged commits: recovered {count} < acked {acknowledged}"
        )
        assert count <= acknowledged + 1, (
            f"recovered {count} rows but only {acknowledged + 1} were ever written"
        )
        # Index consistency: the recovered hash index answers point queries.
        probe = db.execute("SELECT COUNT(*) FROM events WHERE id = 0")
        assert probe.scalar() == 1
        by_payload = db.execute("SELECT COUNT(*) FROM events WHERE payload = 'p0'")
        assert by_payload.scalar() == len(
            [i for i in range(count) if i % 13 == 0]
        )
        print(
            f"recovery smoke OK: killed after {acknowledged} acked inserts, "
            f"recovered {count} rows "
            f"(replayed {report.wal_records_applied} WAL records, "
            f"torn tail dropped {report.torn_bytes_dropped} bytes)"
        )
    return 0


if __name__ == "__main__":
    if len(sys.argv) == 3 and sys.argv[1] == "--child":
        child(sys.argv[2])
    else:
        sys.exit(parent())
