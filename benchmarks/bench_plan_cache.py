"""Plan-cache benchmark: the repeated Figure 1 meta-query mix.

The CQMS meta-query workload is highly templated — browsing, recommendation,
and maintenance issue the same statement shapes over and over with different
constants.  This experiment replays a workload into the Query Storage and then
drives the Figure 1 meta-query mix against the feature relations:

* **hit rate** — every template is planned once; all later instances re-bind
  the cached plan (target: >= 90% on the mix),
* **end-to-end latency** — the same mix with the plan cache disabled vs
  enabled (identical data, identical results),
* **planning amortization** — the per-statement cost of a cold planning pass
  vs a cache lookup + constant re-bind on a hot template.

Run: PYTHONPATH=src python -m pytest benchmarks/bench_plan_cache.py -q -s
"""

from __future__ import annotations

import time

from bench_common import build_env, print_table
from repro.storage.planner import Planner

#: The Figure 1 meta-query mix: one template per interaction mode, each
#: instantiated with a rotating constant.
def _mix(store, round_index: int) -> list[str]:
    users = [f"user{i}" for i in range(8)]
    relations = ["lakes", "samples", "sensors", "stations", "readings"]
    user = users[round_index % len(users)]
    relation = relations[round_index % len(relations)]
    threshold = float(round_index % 7)
    qid = 1 + round_index % max(len(store), 1)
    return [
        # Browse: a user's recent queries.
        f"SELECT qid, qText FROM Queries WHERE userName = '{user}' "
        "ORDER BY ts DESC LIMIT 10",
        # Recommendation: who else reads this relation (query-by-feature join).
        "SELECT DISTINCT Queries.userName FROM Queries, DataSources "
        f"WHERE Queries.qid = DataSources.qid AND DataSources.relName = '{relation}'",
        # Query-by-feature: queries filtering a relation on a given attribute.
        "SELECT DataSources.qid FROM DataSources, Predicates "
        "WHERE DataSources.qid = Predicates.qid "
        f"AND DataSources.relName = '{relation}' AND Predicates.relName = '{relation}'",
        # Maintenance: expensive queries past a runtime threshold.
        f"SELECT qid FROM RuntimeStats WHERE elapsedSeconds > {threshold} LIMIT 20",
        # Annotation lookup for one query.
        f"SELECT author, body FROM Annotations WHERE qid = {qid}",
    ]


def _run_mix(meta_db, store, rounds: int) -> tuple[float, list[list[tuple]]]:
    """Execute ``rounds`` rounds of the mix; returns (seconds, result rows)."""
    results: list[list[tuple]] = []
    start = time.perf_counter()
    for round_index in range(rounds):
        for sql in _mix(store, round_index):
            results.append(meta_db.execute(sql).rows)
    return time.perf_counter() - start, results


class TestPlanCacheMix:
    ROUNDS = 40

    def test_hit_rate_and_end_to_end_speedup(self):
        env = build_env(num_sessions=80, num_users=8)
        meta_db = env.store.meta_database
        statements = self.ROUNDS * len(_mix(env.store, 0))

        # Cold: plan cache disabled — every statement pays a planning pass.
        meta_db.set_plan_cache_size(0)
        cold_best = float("inf")
        for _ in range(3):
            elapsed, cold_results = _run_mix(meta_db, env.store, self.ROUNDS)
            cold_best = min(cold_best, elapsed)

        # Warm: plan cache enabled — templates plan once, then re-bind.
        meta_db.set_plan_cache_size(128)
        warm_best = float("inf")
        for _ in range(3):
            elapsed, warm_results = _run_mix(meta_db, env.store, self.ROUNDS)
            warm_best = min(warm_best, elapsed)
        stats = meta_db.plan_cache_stats()

        assert warm_results == cold_results  # re-bound plans are correct
        assert stats.hit_rate >= 0.90, stats
        assert warm_best < cold_best, (warm_best, cold_best)
        print_table(
            f"Figure 1 meta-query mix ({statements} statements/run, best of 3)",
            ["variant", "seconds", "per-statement (us)", "hit rate"],
            [
                ("cold planning", f"{cold_best:.4f}", f"{cold_best / statements * 1e6:.0f}", "-"),
                (
                    "plan cache",
                    f"{warm_best:.4f}",
                    f"{warm_best / statements * 1e6:.0f}",
                    f"{stats.hit_rate:.1%}",
                ),
                ("speedup", f"{cold_best / warm_best:.2f}x", "", ""),
            ],
        )

    def test_planning_amortized_on_hot_template(self):
        """A cache lookup + re-bind is far cheaper than a planning pass."""
        env = build_env(num_sessions=80, num_users=8)
        meta_db = env.store.meta_database
        meta_db.set_plan_cache_size(128)
        sql = _mix(env.store, 0)[2]  # the two-table query-by-feature join
        from repro.sql.parser import parse

        statement = parse(sql)
        repeats = 300

        start = time.perf_counter()
        for _ in range(repeats):
            Planner(meta_db).plan_select(statement)
        plan_cost = (time.perf_counter() - start) / repeats

        meta_db.execute(sql)  # populate the cache
        cache = meta_db._plan_cache
        start = time.perf_counter()
        for _ in range(repeats):
            prepared = cache.prepare(statement)
            hit = cache.lookup(prepared, count=False)
            assert hit is not None
        hot_cost = (time.perf_counter() - start) / repeats

        print_table(
            "Planning amortization (hot query-by-feature template)",
            ["path", "per-statement (us)"],
            [
                ("cold plan_select", f"{plan_cost * 1e6:.1f}"),
                ("cache lookup + re-bind", f"{hot_cost * 1e6:.1f}"),
                ("ratio", f"{plan_cost / hot_cost:.1f}x"),
            ],
        )
        assert hot_cost < plan_cost

    def test_invalidation_keeps_plans_honest(self):
        """DDL on a feature relation forces a re-plan that uses the new index."""
        env = build_env(num_sessions=80, num_users=8)
        meta_db = env.store.meta_database
        meta_db.set_plan_cache_size(128)
        sql = "SELECT qid FROM Queries WHERE statementKind = 'select' LIMIT 5"
        meta_db.execute(sql)
        assert meta_db.execute(sql).plan_cache_hit
        meta_db.execute("CREATE INDEX q_kind ON Queries (statementKind)")
        refreshed = meta_db.execute(sql)
        assert not refreshed.plan_cache_hit
        assert "IndexScan" in meta_db.explain(sql).text()
