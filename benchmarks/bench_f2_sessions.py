"""Experiment F2 — Figure 2: query-session identification and visualization.

Figure 2 shows one session as a chain of queries whose edges are labelled with
the difference between consecutive queries ("added WaterSalinity", tried
``temp < 22 / < 10 / < 18``, added two join predicates).

Reported series:
  * the scripted Figure 2 session reproduced edge by edge (labels checked),
  * session-detection quality (pairwise precision/recall/F1 against the
    workload generator's ground-truth sessions) as the session gap varies,
  * session-detection + graph-construction latency per log size.
"""

from __future__ import annotations

import pytest

from bench_common import build_env, print_table
from repro.client import render_session_graph
from repro.core.sessions import SessionDetector, pairwise_session_metrics

#: The exact query sequence of the paper's Figure 2.
FIGURE2_SESSION = [
    "SELECT * FROM WaterTemp T WHERE T.temp < 22",
    "SELECT * FROM WaterSalinity S, WaterTemp T WHERE T.temp < 22",
    "SELECT * FROM WaterSalinity S, WaterTemp T WHERE T.temp < 10",
    "SELECT * FROM WaterSalinity S, WaterTemp T WHERE T.temp < 18",
    "SELECT * FROM WaterSalinity S, WaterTemp T, CityLocations L "
    "WHERE T.temp < 18 AND S.loc_x = T.loc_x AND S.loc_y = T.loc_y",
]


def _ground_truth_pairs(env):
    """Ground-truth same-session pairs from the generator's session ordinals."""
    truth = set()
    by_key: dict[tuple, list[int]] = {}
    for record, event in zip(env.store.all_queries(), env.workload):
        by_key.setdefault((event.user, event.session_ordinal), []).append(record.qid)
    for qids in by_key.values():
        for i, first in enumerate(qids):
            for second in qids[i + 1:]:
                truth.add((min(first, second), max(first, second)))
    return truth


class TestFigure2:
    def test_figure2_session_reconstructed(self, benchmark):
        """Replaying the paper's exact session yields the figure's edge labels."""
        env = build_env(num_sessions=10, seed=5)
        cqms = env.cqms
        cqms.register_user("figure2-user", group="ops")
        start = env.clock.now + 10_000
        for offset, sql in enumerate(FIGURE2_SESSION):
            cqms.submit("figure2-user", sql, timestamp=start + offset * 60)

        def mine():
            return cqms.run_miner()

        report = benchmark(mine)
        session = next(s for s in report.sessions if s.user == "figure2-user")
        assert len(session.qids) == len(FIGURE2_SESSION)
        labels = [edge.diff_summary for edge in session.edges]
        assert "+1 table" in labels[0]                 # added WaterSalinity
        assert "~1 const" in labels[1]                 # tried temp < 10
        assert "~1 const" in labels[2]                 # settled on temp < 18
        assert "+2 join" in labels[3] and "+1 table" in labels[3]  # added CityLocations + join preds
        graph = render_session_graph(session, cqms.store)
        assert graph.count("[q") == len(FIGURE2_SESSION)
        print_table(
            "F2: the paper's Figure 2 session, edge by edge",
            ["edge", "type", "diff label"],
            [
                (i + 1, edge.edge_type, edge.diff_summary)
                for i, edge in enumerate(session.edges)
            ],
        )

    @pytest.mark.parametrize("gap_seconds", [300.0, 900.0, 3600.0])
    def test_session_detection_quality(self, benchmark, gap_seconds):
        """Pairwise P/R/F1 of detected sessions vs the generator's ground truth."""
        env = build_env(num_sessions=120)
        records = [r for r in env.store.select_queries() if r.features is not None]
        detector = SessionDetector(gap_seconds=gap_seconds, min_similarity=0.05)

        sessions = benchmark(detector.detect, records)
        metrics = pairwise_session_metrics(sessions, _ground_truth_pairs(env))
        print_table(
            f"F2: session detection quality (gap={gap_seconds:.0f}s)",
            ["gap (s)", "detected sessions", "precision", "recall", "f1"],
            [(
                f"{gap_seconds:.0f}",
                len(sessions),
                f"{metrics['precision']:.3f}",
                f"{metrics['recall']:.3f}",
                f"{metrics['f1']:.3f}",
            )],
        )
        # The workload uses inter-session gaps >= 1800s and intra-session gaps
        # <= 120s, so any gap threshold in this range must detect sessions well.
        assert metrics["f1"] > 0.9

    @pytest.mark.parametrize("num_sessions", [60, 120, 240])
    def test_session_detection_latency(self, benchmark, num_sessions):
        env = build_env(num_sessions=num_sessions)
        records = [r for r in env.store.select_queries() if r.features is not None]
        detector = SessionDetector(gap_seconds=900.0)
        sessions = benchmark(detector.detect, records)
        print_table(
            "F2: detection + graph construction latency",
            ["log size", "sessions", "edges"],
            [(len(records), len(sessions), sum(len(s.edges) for s in sessions))],
        )
        assert sessions

    def test_session_summaries_render(self, benchmark):
        """Browsing: summarizing every session of the log (the Figure 2 window)."""
        env = build_env(num_sessions=120)
        report = env.cqms.miner.last_report
        browser = env.cqms.browser()

        def summarize_all():
            return [browser.summarize_session(session) for session in report.sessions]

        summaries = benchmark(summarize_all)
        assert len(summaries) == len(report.sessions)
        longest = max(summaries, key=lambda s: s.num_queries)
        print_table(
            "F2: session summaries (longest session shown)",
            ["sessions", "longest (queries)", "steps in longest"],
            [(len(summaries), longest.num_queries, len(longest.steps))],
        )
