"""Execution-engine benchmark: row-at-a-time vs batched vs parallel scans.

The batched execution refactor moves rows through the operator tree in
~256-row batches with compiled predicate/projection fast paths, replacing the
seed engine's one-row-per-``next()`` Volcano loop (per-row Scope construction
and recursive ``evaluate`` dispatch).  This experiment quantifies that change
on the Figure 1 meta-query mix over a 50k-row feature-relation shape:

* **row-at-a-time** — the historical engine model, reproduced exactly by
  ``ExecutionSettings(batch_size=1, compile_expressions=False)``,
* **batched** — the shipped defaults (batch_size=256, compiled expressions),
* **batched+parallel** — batching plus ``ParallelSeqScan`` fan-out across 4
  workers.  Under CPython's GIL the workers' pure-Python row construction
  serializes, so the fan-out's barrier materialization is a measured *cost*
  at this scale — reported honestly below; the engine therefore ships with
  ``parallel_workers=1`` and the planner only parallelizes when configured.

Acceptance gate: the batched engine must beat row-at-a-time by ≥2x on the
SeqScan+HashJoin meta-query, with identical result sets (and identical order
under ORDER BY) across batch sizes 1/256 and 1–4 workers.

The aggregation experiment (``TestAggEngine``) isolates the vectorized
aggregation stage added on top of the batched engine: grouped queries now run
through ``HashAggregate``/``SortedGroupAggregate`` with incremental
accumulators (and parallel partial aggregation under ``ParallelSeqScan``)
instead of the executor's historical materialize-then-rewalk pass.  Its
variants hold the batched scan machinery fixed and toggle only
``vectorized_aggregation``, so the measured delta is the aggregation rewrite
itself; the parallel lane is reported honestly even where the GIL makes it a
wash.

Results are written to ``BENCH_exec.json`` / ``BENCH_agg.json``
(machine-readable, tracked across PRs); ``REPRO_BENCH_SMOKE=1`` shrinks the
tables for CI smoke runs (smoke results go to ``BENCH_*.smoke.json`` and are
uploaded as CI artifacts).
"""

from __future__ import annotations

import time

from bench_common import print_table, smoke_mode, write_bench_json
from repro.storage import Database, ExecutionSettings

NUM_QUERIES = 2_000 if smoke_mode() else 10_000
ATTRS_PER_QUERY = 5  # Attributes rows = NUM_QUERIES * ATTRS_PER_QUERY (50k full)
RELATIONS = [f"rel{i}" for i in range(10)]
TIMING_LOOPS = 2 if smoke_mode() else 3

#: The headline SeqScan+HashJoin meta-query (Figure 1's query-by-feature
#: shape, unindexed so the scan/join engine — not an index — does the work).
JOIN_SQL = (
    "SELECT Q.qid, A.attrName FROM Queries Q, Attributes A "
    "WHERE Q.qid = A.qid AND A.relName = 'rel3'"
)

#: The rest of the interactive meta-query mix: browse refresh (filter scan),
#: session timeline (ORDER BY + LIMIT), and a grouped popularity roll-up.
MIX_SQL = [
    ("filter-scan", "SELECT qid, userName FROM Queries WHERE userName = 'user7'"),
    (
        "timeline",
        "SELECT qid, ts FROM Queries WHERE ts > 100.0 ORDER BY ts DESC LIMIT 50",
    ),
    (
        "popularity",
        "SELECT relName, COUNT(*) FROM Attributes GROUP BY relName ORDER BY relName",
    ),
]

VARIANTS = {
    "row-at-a-time": ExecutionSettings(
        batch_size=1,
        parallel_workers=1,
        compile_expressions=False,
        vectorized_aggregation=False,
    ),
    "batched": ExecutionSettings(batch_size=256, parallel_workers=1),
    "batched+parallel": ExecutionSettings(
        batch_size=256, parallel_workers=4, parallel_threshold=4096
    ),
}

#: Aggregation-stage variants: identical batched scans, only the aggregation
#: path differs — ``batched-baseline`` is what PR 4 shipped (grouping in the
#: executor), the delta to ``vectorized`` is the aggregation rewrite alone.
AGG_VARIANTS = {
    "row-at-a-time": VARIANTS["row-at-a-time"],
    "batched-baseline": ExecutionSettings(
        batch_size=256, parallel_workers=1, vectorized_aggregation=False
    ),
    "vectorized": ExecutionSettings(batch_size=256, parallel_workers=1),
    "vectorized+parallel": ExecutionSettings(
        batch_size=256, parallel_workers=4, parallel_threshold=4096
    ),
}

_DB_CACHE: dict[str, Database] = {}


def _build(variant: str) -> Database:
    if variant in _DB_CACHE:
        return _DB_CACHE[variant]
    settings = VARIANTS[variant] if variant in VARIANTS else AGG_VARIANTS[variant]
    db = Database(name=f"exec_{variant}", exec_settings=settings)
    db.execute("CREATE TABLE Queries (qid INTEGER, userName TEXT, ts FLOAT)")
    db.execute("CREATE TABLE Attributes (qid INTEGER, attrName TEXT, relName TEXT)")
    db.insert_rows(
        "Queries",
        [
            {"qid": qid, "userName": f"user{qid % 20}", "ts": float(qid)}
            for qid in range(NUM_QUERIES)
        ],
    )
    db.insert_rows(
        "Attributes",
        [
            {
                "qid": i // ATTRS_PER_QUERY,
                "attrName": f"attr{i % 7}",
                "relName": RELATIONS[i % len(RELATIONS)],
            }
            for i in range(NUM_QUERIES * ATTRS_PER_QUERY)
        ],
    )
    _DB_CACHE[variant] = db
    return db


def _best_seconds(db: Database, sql: str) -> float:
    best = float("inf")
    for _ in range(TIMING_LOOPS):
        started = time.perf_counter()
        db.execute(sql)
        best = min(best, time.perf_counter() - started)
    return best


class TestExecEngine:
    def test_join_speedup_and_trajectory(self):
        """The headline: ≥2x on the 50k-row SeqScan+HashJoin meta-query."""
        timings: dict[str, dict[str, float]] = {}
        for variant in VARIANTS:
            db = _build(variant)
            timings[variant] = {"join": _best_seconds(db, JOIN_SQL)}
            for name, sql in MIX_SQL:
                timings[variant][name] = _best_seconds(db, sql)
        base = timings["row-at-a-time"]
        rows = []
        for variant, by_query in timings.items():
            for name, seconds in by_query.items():
                rows.append(
                    (
                        variant,
                        name,
                        f"{seconds * 1000:.1f}ms",
                        f"{base[name] / seconds:.2f}x",
                    )
                )
        print_table(
            "Execution engine: Figure 1 meta-query mix",
            ["variant", "query", "best latency", "speedup vs row-at-a-time"],
            rows,
        )
        batched_speedup = base["join"] / timings["batched"]["join"]
        parallel_speedup = base["join"] / timings["batched+parallel"]["join"]
        write_bench_json(
            "exec",
            {
                "rows": {
                    "Queries": NUM_QUERIES,
                    "Attributes": NUM_QUERIES * ATTRS_PER_QUERY,
                },
                "seconds": timings,
                "join_speedup_batched": round(batched_speedup, 3),
                "join_speedup_parallel": round(parallel_speedup, 3),
            },
        )
        # Smoke runs shrink the tables until fixed costs dominate; the full
        # run enforces the acceptance bar.
        floor = 1.2 if smoke_mode() else 2.0
        assert batched_speedup >= floor, (
            f"batched engine only {batched_speedup:.2f}x over row-at-a-time "
            f"(needed ≥{floor}x)"
        )

    def test_identical_results_across_batch_sizes_and_workers(self):
        expected = {sql: _build("row-at-a-time").execute(sql).rows
                    for _, sql in MIX_SQL}
        expected[JOIN_SQL] = _build("row-at-a-time").execute(JOIN_SQL).rows
        for batch_size in (1, 256):
            for workers in (1, 2, 4):
                db = Database(
                    exec_settings=ExecutionSettings(
                        batch_size=batch_size,
                        parallel_workers=workers,
                        parallel_threshold=1024,
                    )
                )
                source = _build("batched")
                for table in ("Queries", "Attributes"):
                    schema = source.table(table).schema
                    db.create_table(schema)
                    db.insert_rows(table, source.table(table).rows())
                for sql, rows in expected.items():
                    got = db.execute(sql).rows
                    if "ORDER BY" in sql:
                        assert got == rows, (batch_size, workers, sql)
                    else:
                        assert sorted(got) == sorted(rows), (batch_size, workers, sql)

    def test_explain_analyze_row_counts_match_metrics(self):
        db = _build("batched")
        explanation = db.explain(JOIN_SQL, analyze=True)
        result = db.execute(JOIN_SQL)
        assert explanation.analyzed and explanation.stats is not None
        # Per-operator actuals are consistent with the engine's honest
        # rows_scanned metric: both scans touch every heap row once.
        total_heap = len(db.table("Queries")) + len(db.table("Attributes"))
        assert explanation.stats.rows_scanned == total_heap == result.stats.rows_scanned
        text = explanation.text()
        assert f"(actual rows={len(db.table('Attributes'))}" in text
        assert f"(actual rows={len(db.table('Queries'))}" in text
        assert f"Execution: {len(result.rows)} rows" in text


#: The grouped meta-query workload: the Figure 1 popularity roll-up plus
#: multi-aggregate, HAVING, and high-cardinality group-key variants.
AGG_SQL = [
    (
        "popularity",
        "SELECT relName, COUNT(*) FROM Attributes GROUP BY relName ORDER BY relName",
    ),
    (
        "multi-agg",
        "SELECT userName, COUNT(*), AVG(ts), MAX(ts) FROM Queries GROUP BY userName",
    ),
    (
        "having",
        "SELECT relName, COUNT(*) FROM Attributes GROUP BY relName "
        "HAVING COUNT(*) > 100 ORDER BY relName",
    ),
    (
        "high-cardinality",
        "SELECT qid, COUNT(*), MAX(attrName) FROM Attributes GROUP BY qid",
    ),
]


class TestAggEngine:
    def test_agg_speedups_and_parallel_lane(self):
        """Vectorized aggregation ≥3x on the popularity GROUP BY (full run);
        the parallel partial-aggregation lane is reported honestly."""
        timings: dict[str, dict[str, float]] = {}
        for variant in AGG_VARIANTS:
            db = _build(variant)
            timings[variant] = {
                name: _best_seconds(db, sql) for name, sql in AGG_SQL
            }
        base = timings["batched-baseline"]
        rows = []
        for variant, by_query in timings.items():
            for name, seconds in by_query.items():
                rows.append(
                    (
                        variant,
                        name,
                        f"{seconds * 1000:.1f}ms",
                        f"{base[name] / seconds:.2f}x",
                    )
                )
        print_table(
            "Vectorized aggregation: grouped meta-query mix",
            ["variant", "query", "best latency", "speedup vs batched-baseline"],
            rows,
        )
        speedups = {
            name: {
                variant: round(base[name] / timings[variant][name], 3)
                for variant in AGG_VARIANTS
            }
            for name, _ in AGG_SQL
        }
        popularity_speedup = base["popularity"] / timings["vectorized"]["popularity"]
        parallel_vs_vectorized = (
            timings["vectorized"]["popularity"]
            / timings["vectorized+parallel"]["popularity"]
        )
        write_bench_json(
            "agg",
            {
                "rows": {
                    "Queries": NUM_QUERIES,
                    "Attributes": NUM_QUERIES * ATTRS_PER_QUERY,
                },
                "seconds": timings,
                "speedups_vs_batched_baseline": speedups,
                "popularity_speedup_vectorized": round(popularity_speedup, 3),
                "parallel_vs_vectorized_popularity": round(parallel_vs_vectorized, 3),
            },
        )
        floor = 1.2 if smoke_mode() else 3.0
        assert popularity_speedup >= floor, (
            f"vectorized aggregation only {popularity_speedup:.2f}x over the "
            f"batched baseline on popularity (needed ≥{floor}x)"
        )
        # The parallel lane must not regress vs single-threaded vectorized
        # aggregation (the merged states are O(groups), so the fan-out no
        # longer pays the O(rows) barrier cost).  Generous slack in smoke
        # mode where fixed pool costs dominate the tiny tables.
        slack = 0.5 if smoke_mode() else 0.85
        assert parallel_vs_vectorized >= slack, (
            f"parallel partial aggregation is {parallel_vs_vectorized:.2f}x of "
            f"single-threaded vectorized (needed ≥{slack:.2f}x)"
        )

    def test_grouped_results_identical_across_variants(self):
        """CI correctness gate: the vectorized and parallel aggregation paths
        must return exactly what the historical row-at-a-time engine returns
        (``ts`` is integral-valued, so even float sums are exact)."""
        expected = {
            sql: _build("row-at-a-time").execute(sql).rows for _, sql in AGG_SQL
        }
        for variant in ("batched-baseline", "vectorized", "vectorized+parallel"):
            db = _build(variant)
            for sql, rows in expected.items():
                got = db.execute(sql).rows
                if "ORDER BY" in sql:
                    assert got == rows, (variant, sql)
                else:
                    assert sorted(got) == sorted(rows), (variant, sql)
