"""Tests for the structural query diff (Figure 2 / Figure 3 'Diff' column)."""

from repro.sql.diff import diff_queries, feature_distance


class TestDiffEntries:
    def test_identical_queries_have_empty_diff(self):
        diff = diff_queries("SELECT * FROM t WHERE t.a = 1", "SELECT * FROM t WHERE t.a = 1")
        assert diff.is_empty
        assert diff.summary() == "none"
        assert diff.distance() == 0

    def test_added_table(self):
        diff = diff_queries("SELECT * FROM a", "SELECT * FROM a, b")
        assert diff.count(kind="table", change="added") == 1
        assert "+1 table" in diff.summary()

    def test_removed_table(self):
        diff = diff_queries("SELECT * FROM a, b", "SELECT * FROM a")
        assert diff.count(kind="table", change="removed") == 1

    def test_added_predicate(self):
        diff = diff_queries("SELECT * FROM t", "SELECT * FROM t WHERE t.x > 1")
        assert diff.count(kind="predicate", change="added") == 1

    def test_constant_change_reported_as_constant_not_predicate(self):
        diff = diff_queries(
            "SELECT * FROM t WHERE t.temp < 22", "SELECT * FROM t WHERE t.temp < 18"
        )
        assert diff.count(kind="constant", change="changed") == 1
        assert diff.count(kind="predicate") == 0
        assert "~1 const" in diff.summary()

    def test_operator_change_is_predicate_change(self):
        diff = diff_queries(
            "SELECT * FROM t WHERE t.temp < 18", "SELECT * FROM t WHERE t.temp > 18"
        )
        assert diff.count(kind="predicate", change="added") == 1
        assert diff.count(kind="predicate", change="removed") == 1

    def test_added_join(self):
        diff = diff_queries(
            "SELECT * FROM a, b", "SELECT * FROM a, b WHERE a.id = b.id"
        )
        assert diff.count(kind="join", change="added") == 1

    def test_projection_change(self):
        diff = diff_queries("SELECT t.a FROM t", "SELECT t.a, t.b FROM t")
        assert diff.count(kind="projection", change="added") == 1

    def test_aggregate_and_group_by(self):
        diff = diff_queries(
            "SELECT t.a FROM t", "SELECT t.a, COUNT(*) FROM t GROUP BY t.a"
        )
        assert diff.count(kind="aggregate", change="added") == 1
        assert diff.count(kind="group_by", change="added") == 1

    def test_described_lines_are_readable(self):
        diff = diff_queries("SELECT * FROM a", "SELECT * FROM a, b")
        lines = diff.described()
        assert any("added relation b" in line for line in lines)


class TestFigure2Session:
    """The exact session of the paper's Figure 2, edge by edge."""

    Q1 = "SELECT * FROM WaterTemp T WHERE T.temp < 22"
    Q2 = "SELECT * FROM WaterSalinity S, WaterTemp T WHERE T.temp < 22"
    Q3 = "SELECT * FROM WaterSalinity S, WaterTemp T WHERE T.temp < 10"
    Q4 = "SELECT * FROM WaterSalinity S, WaterTemp T WHERE T.temp < 18"
    Q5 = (
        "SELECT * FROM WaterSalinity S, WaterTemp T, CityLocations L "
        "WHERE T.temp < 18 AND S.loc_x = T.loc_x AND S.loc_y = T.loc_y"
    )

    def test_edge1_adds_watersalinity(self):
        diff = diff_queries(self.Q1, self.Q2)
        assert diff.count(kind="table", change="added") == 1
        assert "watersalinity" in diff.entries[0].detail

    def test_edge2_and_3_try_constants(self):
        diff = diff_queries(self.Q2, self.Q3)
        assert diff.count(kind="constant", change="changed") == 1
        diff = diff_queries(self.Q3, self.Q4)
        assert diff.count(kind="constant", change="changed") == 1

    def test_edge4_adds_table_and_join_predicates(self):
        diff = diff_queries(self.Q4, self.Q5)
        assert diff.count(kind="table", change="added") == 1
        assert diff.count(kind="join", change="added") == 2


class TestDistance:
    def test_distance_zero_only_for_equal_features(self):
        assert feature_distance("SELECT * FROM a", "SELECT * FROM a") == 0
        assert feature_distance("SELECT * FROM a", "SELECT * FROM b") > 0

    def test_distance_symmetric_in_size(self):
        forward = feature_distance("SELECT * FROM a", "SELECT * FROM a, b")
        backward = feature_distance("SELECT * FROM a, b", "SELECT * FROM a")
        assert forward == backward

    def test_summary_aggregates_counts(self):
        diff = diff_queries("SELECT * FROM a", "SELECT * FROM a, b, c")
        assert diff.summary() == "+2 table"

    def test_accepts_feature_objects(self):
        from repro.sql.features import extract_features

        first = extract_features("SELECT * FROM a")
        second = extract_features("SELECT * FROM a, b")
        assert diff_queries(first, second).count(kind="table", change="added") == 1
