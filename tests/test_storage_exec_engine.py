"""Batched execution engine: batch semantics, parallel scans, EXPLAIN ANALYZE,
the statement cache, and the calibrated join-fanout estimates."""

from __future__ import annotations

import pytest
from hypothesis import given, settings as hsettings
from hypothesis import strategies as st

from repro.storage import Database, ExecutionSettings
from repro.storage.executor import ExecutorMetrics
from repro.storage.operators import ExecutionContext, ParallelSeqScan, SeqScan
from repro.storage.statistics import partition_spans


def _make_db(exec_settings: ExecutionSettings | None = None, **kwargs) -> Database:
    db = Database(exec_settings=exec_settings, **kwargs)
    db.execute("CREATE TABLE lakes (lake_id INTEGER, name TEXT, area FLOAT, state TEXT)")
    db.execute("CREATE TABLE samples (lake_id INTEGER, depth INTEGER, temp FLOAT)")
    db.insert_rows(
        "lakes",
        [
            {"lake_id": i, "name": f"lake{i}", "area": float((i * 37) % 101), "state": f"s{i % 7}"}
            for i in range(200)
        ],
    )
    db.insert_rows(
        "samples",
        [
            {"lake_id": i % 200, "depth": i % 30, "temp": 4.0 + (i % 17)}
            for i in range(1000)
        ],
    )
    return db


#: A mixed bag of statements exercising filters, joins, ordering, grouping,
#: DISTINCT, LIMIT, LIKE, IN, BETWEEN, and subqueries.
QUERIES = [
    "SELECT * FROM lakes",
    "SELECT name, area FROM lakes WHERE area > 50 AND state = 's3'",
    "SELECT name FROM lakes WHERE name LIKE 'lake1%' ORDER BY name",
    "SELECT name FROM lakes WHERE lake_id IN (1, 5, 7, 300)",
    "SELECT name FROM lakes WHERE area BETWEEN 10 AND 20 ORDER BY area, name",
    "SELECT l.name, s.depth FROM lakes l, samples s "
    "WHERE l.lake_id = s.lake_id AND s.depth < 3 ORDER BY l.name, s.depth",
    "SELECT DISTINCT state FROM lakes ORDER BY state",
    "SELECT state, COUNT(*), AVG(area) FROM lakes GROUP BY state ORDER BY state",
    "SELECT name FROM lakes ORDER BY area DESC LIMIT 7",
    "SELECT name FROM lakes WHERE area > (SELECT AVG(area) FROM lakes) ORDER BY name LIMIT 5",
    "SELECT l.state, COUNT(*) FROM lakes l LEFT JOIN samples s "
    "ON l.lake_id = s.lake_id GROUP BY l.state ORDER BY l.state",
]


class TestBatchSemantics:
    @pytest.mark.parametrize("batch_size", [1, 2, 256])
    def test_results_identical_across_batch_sizes(self, batch_size):
        baseline = _make_db(ExecutionSettings(batch_size=256))
        db = _make_db(ExecutionSettings(batch_size=batch_size))
        for sql in QUERIES:
            expected = baseline.execute(sql)
            got = db.execute(sql)
            assert got.columns == expected.columns, sql
            assert got.rows == expected.rows, sql

    def test_compiled_and_evaluated_filters_agree(self):
        compiled = _make_db(ExecutionSettings(compile_expressions=True))
        evaluated = _make_db(ExecutionSettings(compile_expressions=False))
        for sql in QUERIES:
            assert compiled.execute(sql).rows == evaluated.execute(sql).rows, sql

    def test_limit_short_circuit_still_honest(self):
        db = _make_db()
        db.execute("CREATE INDEX lakes_area ON lakes (area) USING SORTED")
        result = db.execute("SELECT name FROM lakes ORDER BY area DESC LIMIT 3")
        assert len(result.rows) == 3
        # Batch size is capped at the LIMIT budget: only 3 heap rows fetched.
        assert result.stats.rows_scanned == 3

    def test_large_limit_does_not_overscan(self):
        """The batch size tracks the remaining LIMIT budget, so limits larger
        than one batch still touch exactly LIMIT heap rows."""
        db = Database(exec_settings=ExecutionSettings(batch_size=256))
        db.execute("CREATE TABLE t (a INTEGER)")
        db.insert_rows("t", [{"a": i} for i in range(1000)])
        result = db.execute("SELECT a FROM t LIMIT 300")
        assert len(result.rows) == 300
        assert result.stats.rows_scanned == 300

    def test_compiled_artifacts_memoized_across_executions(self):
        """A cached plan compiles its filter closures once, and re-binding the
        plan's parameters stays visible to the memoized closures."""
        from repro.storage.operators import Filter

        db = _make_db()
        first = db.execute("SELECT name FROM lakes WHERE state = 's1'")
        root = db.explain("SELECT name FROM lakes WHERE state = 's1'").root
        assert isinstance(root, Filter)
        checks_after_first = root._compiled
        assert checks_after_first is not None  # the conjunct compiled
        second = db.execute("SELECT name FROM lakes WHERE state = 's2'")
        assert second.stats.plan_cache_hit
        assert root._compiled is checks_after_first  # compiled once, reused
        expected = [
            (row["name"],) for row in db.table("lakes").rows() if row["state"] == "s2"
        ]
        assert sorted(second.rows) == sorted(expected)
        assert first.rows != second.rows

    def test_batches_metric_reported(self):
        db = _make_db(ExecutionSettings(batch_size=64))
        result = db.execute("SELECT * FROM lakes")
        assert result.stats.batches == 200 // 64 + 1

    def test_rows_shim_matches_batches(self):
        db = _make_db()
        table = db.table("lakes")
        scan = SeqScan(table, "lakes", float(len(table)))
        shim = list(scan.rows(ExecutionContext(metrics=ExecutorMetrics())))
        batched = [
            row
            for batch in scan.batches(ExecutionContext(metrics=ExecutorMetrics()))
            for row in batch
        ]
        assert shim == batched


class TestPartitioning:
    def test_partition_spans_cover_everything_once(self):
        assert partition_spans(10, 3) == [(0, 4), (4, 7), (7, 10)]
        assert partition_spans(2, 4) == [(0, 1), (1, 2)]
        assert partition_spans(0, 4) == []
        assert partition_spans(5, 1) == [(0, 5)]

    def test_scan_partitions_reassemble_to_scan(self):
        db = _make_db()
        table = db.table("lakes")
        flat = [pair for part in table.scan_partitions(4) for pair in part]
        assert flat == list(table.scan())

    def test_scan_span_matches_partition_boundaries(self):
        db = _make_db()
        table = db.table("lakes")
        spans = partition_spans(len(table), 3)
        flat = [pair for span in spans for pair in table.scan_span(*span)]
        assert flat == list(table.scan())

    def test_limit_budget_skips_join_pipelines(self):
        """The LIMIT batch cap applies to scan/filter pipelines only — a join
        keeps full batches (its build side consumes everything anyway)."""
        from repro.storage.executor import _limit_budget_applies
        from repro.storage.operators import Filter as FilterOp

        db = _make_db(ExecutionSettings(batch_size=64))
        join_root = db.explain(
            "SELECT l.name FROM lakes l, samples s WHERE l.lake_id = s.lake_id LIMIT 1"
        ).root
        scan_root = db.explain("SELECT name FROM lakes WHERE area > 5 LIMIT 1").root
        assert not _limit_budget_applies(join_root)
        assert isinstance(scan_root, FilterOp) and _limit_budget_applies(scan_root)
        result = db.execute(
            "SELECT l.name FROM lakes l, samples s WHERE l.lake_id = s.lake_id LIMIT 1"
        )
        assert len(result.rows) == 1

    def test_parallel_scan_preserves_heap_order(self):
        db = _make_db()
        table = db.table("samples")
        seq = SeqScan(table, "s", float(len(table)))
        par = ParallelSeqScan(table, "s", float(len(table)), workers=4)
        seq_rows = list(seq.rows(ExecutionContext(metrics=ExecutorMetrics())))
        par_rows = list(par.rows(ExecutionContext(metrics=ExecutorMetrics())))
        assert par_rows == seq_rows

    def test_parallel_scan_counts_all_rows(self):
        db = _make_db()
        table = db.table("samples")
        metrics = ExecutorMetrics()
        par = ParallelSeqScan(table, "s", float(len(table)), workers=3)
        total = sum(len(b) for b in par.batches(ExecutionContext(metrics=metrics)))
        assert total == len(table) == metrics.rows_scanned

    @pytest.mark.parametrize("workers", [1, 2, 3, 4])
    def test_results_identical_across_worker_counts(self, workers):
        baseline = _make_db(ExecutionSettings(parallel_workers=1))
        db = _make_db(
            ExecutionSettings(parallel_workers=workers, parallel_threshold=100)
        )
        for sql in QUERIES:
            assert db.execute(sql).rows == baseline.execute(sql).rows, sql

    @hsettings(max_examples=25, deadline=None)
    @given(
        values=st.lists(
            st.one_of(st.integers(-50, 50), st.none()), min_size=0, max_size=500
        ),
        workers=st.integers(1, 4),
        threshold=st.integers(-40, 40),
    )
    def test_parallel_filter_property(self, values, workers, threshold):
        """Random tables: a filtered parallel scan equals the sequential scan,
        rows in heap order."""
        db = Database(
            exec_settings=ExecutionSettings(parallel_workers=workers, parallel_threshold=1)
        )
        db.execute("CREATE TABLE t (v INTEGER)")
        db.insert_rows("t", [{"v": value} for value in values])
        plain = Database()
        plain.execute("CREATE TABLE t (v INTEGER)")
        plain.insert_rows("t", [{"v": value} for value in values])
        sql = f"SELECT v FROM t WHERE v >= {threshold}"
        assert db.execute(sql).rows == plain.execute(sql).rows

    def test_planner_parallelizes_above_threshold_only(self):
        settings = ExecutionSettings(parallel_workers=4, parallel_threshold=150)
        db = _make_db(settings)
        big = db.explain("SELECT * FROM samples").text()     # 1000 rows
        small = db.explain("SELECT * FROM lakes WHERE state = 'zzz'").text()  # 200 rows
        assert "ParallelSeqScan samples [workers=4" in big
        assert "ParallelSeqScan" not in small

    def test_planner_keeps_seq_scan_with_one_worker(self):
        db = _make_db(ExecutionSettings(parallel_workers=1, parallel_threshold=1))
        assert "ParallelSeqScan" not in db.explain("SELECT * FROM samples").text()

    def test_dml_never_parallelizes(self):
        db = _make_db(ExecutionSettings(parallel_workers=4, parallel_threshold=1))
        plan = db.explain("UPDATE samples SET temp = 0 WHERE depth > 40").text()
        assert "ParallelSeqScan" not in plan
        # And the DML path still works end to end with parallel settings on.
        assert db.execute("DELETE FROM samples WHERE depth = 29").rowcount > 0


class TestExplainAnalyze:
    def test_actual_rows_match_rows_scanned(self):
        db = _make_db()
        explanation = db.explain("SELECT * FROM lakes", analyze=True)
        assert explanation.analyzed
        assert explanation.stats is not None
        text = explanation.text()
        assert f"SeqScan lakes [est=200] (actual rows={explanation.stats.rows_scanned}" in text
        assert explanation.stats.rows_scanned == 200

    def test_filter_and_join_actuals(self):
        db = _make_db()
        explanation = db.explain(
            "SELECT l.name FROM lakes l, samples s "
            "WHERE l.lake_id = s.lake_id AND s.depth < 3",
            analyze=True,
        )
        expected = db.execute(
            "SELECT l.name FROM lakes l, samples s "
            "WHERE l.lake_id = s.lake_id AND s.depth < 3"
        )
        text = explanation.text()
        # The filter's actual output must equal the count of qualifying rows.
        matching = sum(1 for row in db.table("samples").rows() if row["depth"] < 3)
        assert f"(actual rows={matching}" in text
        assert f"Execution: {len(expected.rows)} rows" in text
        assert f"(actual rows={len(expected.rows)})" in text  # Project line

    def test_batches_and_time_reported(self):
        db = _make_db(ExecutionSettings(batch_size=64))
        text = db.explain("SELECT * FROM samples", analyze=True).text()
        assert "batches=16" in text
        assert "time=" in text

    def test_analyze_rejects_dml(self):
        db = _make_db()
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError):
            db.explain("DELETE FROM lakes WHERE lake_id = 1", analyze=True)

    def test_analyze_of_cached_plan_is_marked(self):
        db = _make_db()
        db.execute("SELECT name FROM lakes WHERE state = 's1'")
        explanation = db.explain(
            "SELECT name FROM lakes WHERE state = 's2'", analyze=True
        )
        assert "(cached)" in explanation.text()
        assert explanation.plan_cache_hit
        # The re-bound constant must drive the actual execution.
        expected = sum(1 for row in db.table("lakes").rows() if row["state"] == "s2")
        assert f"Execution: {expected} rows" in explanation.text()

    def test_index_probe_loops_reported(self):
        db = _make_db()
        db.execute("CREATE INDEX samples_lake ON samples (lake_id)")
        text = db.explain(
            "SELECT l.name FROM lakes l, samples s WHERE l.lake_id = s.lake_id",
            analyze=True,
        ).text()
        assert "IndexLoopJoin" in text
        assert "loops=" in text

    def test_workbench_renders_analyzed_plan(self):
        from repro.client.render import render_plan

        db = _make_db()
        rendered = render_plan(db.explain("SELECT * FROM lakes", analyze=True))
        assert "(analyzed)" in rendered
        assert "actual rows=" in rendered


class TestStatementCache:
    def test_identical_text_skips_parser(self):
        db = _make_db()
        sql = "SELECT name FROM lakes WHERE state = 's1'"
        first = db.execute(sql)
        second = db.execute(sql)
        assert first.rows == second.rows
        assert not first.stats.statement_cache_hit
        assert second.stats.statement_cache_hit
        stats = db.plan_cache_stats()
        assert stats.statement_hits == 1
        assert stats.statement_misses == 1
        assert stats.statement_hit_rate == 0.5

    def test_different_constants_miss_statement_cache_but_hit_plan_cache(self):
        db = _make_db()
        db.execute("SELECT name FROM lakes WHERE state = 's1'")
        result = db.execute("SELECT name FROM lakes WHERE state = 's2'")
        assert not result.stats.statement_cache_hit
        assert result.stats.plan_cache_hit
        expected = [
            (row["name"],) for row in db.table("lakes").rows() if row["state"] == "s2"
        ]
        assert sorted(result.rows) == sorted(expected)

    def test_interleaved_templates_rebind_correctly(self):
        """A statement-cache hit must re-bind its own constants even after a
        different instance of the same template executed in between."""
        db = _make_db()
        sql_one = "SELECT COUNT(*) FROM lakes WHERE state = 's1'"
        sql_two = "SELECT COUNT(*) FROM lakes WHERE state = 's5'"
        count_one = db.execute(sql_one).scalar()
        count_two = db.execute(sql_two).scalar()
        assert count_one != count_two
        assert db.execute(sql_one).scalar() == count_one
        assert db.execute(sql_two).scalar() == count_two
        assert db.execute(sql_one).scalar() == count_one

    def test_dml_statement_cache_roundtrip(self):
        db = _make_db()
        sql = "UPDATE samples SET temp = 0.0 WHERE depth = 5"
        first = db.execute(sql)
        second = db.execute(sql)
        assert second.stats.statement_cache_hit
        assert second.rowcount == first.rowcount
        assert all(
            row["temp"] == 0.0 for row in db.table("samples").rows() if row["depth"] == 5
        )

    def test_ddl_not_statement_cached(self):
        db = _make_db()
        db.execute("CREATE TABLE extra (x INTEGER)")
        stats = db.plan_cache_stats()
        assert stats.statement_lookups == 0

    def test_disabled_plan_cache_disables_statement_cache(self):
        db = _make_db(plan_cache_size=0)
        sql = "SELECT COUNT(*) FROM lakes"
        db.execute(sql)
        result = db.execute(sql)
        assert not result.stats.statement_cache_hit


class TestJoinFanoutCalibration:
    def _db_with_ranges(self, left_range, right_range):
        db = Database()
        db.execute("CREATE TABLE l (k INTEGER)")
        db.execute("CREATE TABLE r (k INTEGER)")
        db.insert_rows("l", [{"k": v} for v in left_range])
        db.insert_rows("r", [{"k": v} for v in right_range])
        db.statistics("l", refresh=True)
        db.statistics("r", refresh=True)
        return db

    def _join_estimate(self, db) -> float:
        explanation = db.explain("SELECT * FROM l, r WHERE l.k = r.k")
        assert explanation.root is not None
        return explanation.root.estimate

    def test_disjoint_key_ranges_estimate_near_zero(self):
        db = self._db_with_ranges(range(0, 500), range(1000, 1500))
        assert self._join_estimate(db) <= 2.0
        assert len(db.execute("SELECT * FROM l, r WHERE l.k = r.k").rows) == 0

    def test_overlapping_ranges_beat_distinct_only_estimate(self):
        # Keys overlap on [250, 500): the true join size is 250.
        db = self._db_with_ranges(range(0, 500), range(250, 750))
        estimate = self._join_estimate(db)
        actual = len(db.execute("SELECT * FROM l, r WHERE l.k = r.k").rows)
        assert actual == 250
        # The distinct-only formula says |L|*|R|/max(d) = 500; the histogram
        # overlap scaling must land meaningfully closer to the truth.
        distinct_only = 500.0 * 500.0 / 500.0
        assert abs(estimate - actual) < abs(distinct_only - actual)

    def test_identical_ranges_keep_classical_estimate(self):
        db = self._db_with_ranges(range(0, 300), range(0, 300))
        estimate = self._join_estimate(db)
        actual = len(db.execute("SELECT * FROM l, r WHERE l.k = r.k").rows)
        assert actual == 300
        assert 150.0 <= estimate <= 600.0
