"""Tests for the client: workbench and text renderers."""

import pytest

from repro.client import (
    Workbench,
    render_assist_panel,
    render_query_table,
    render_recommendations,
    render_session_graph,
)
from repro.client.render import render_session_summary


@pytest.fixture()
def client_cqms(fresh_cqms):
    cqms = fresh_cqms
    queries = [
        "SELECT S.salinity, T.temp FROM WaterSalinity S, WaterTemp T "
        "WHERE S.loc_x = T.loc_x AND T.temp < 18",
        "SELECT * FROM WaterSalinity S, WaterTemp T WHERE T.temp < 18",
        "SELECT * FROM CityLocations C WHERE C.state = 'WA'",
        "SELECT * FROM WaterTemp T WHERE T.temp < 18",
    ]
    for sql in queries:
        cqms.submit("alice", sql)
        cqms.clock.advance(45)
    cqms.annotate("alice", 1, "find temp and salinity of seattle lakes")
    cqms.run_miner()
    return cqms


class TestWorkbench:
    def test_typing_accumulates_buffer(self, client_cqms):
        workbench = Workbench(cqms=client_cqms, user="bob")
        workbench.type("SELECT * ").type("FROM WaterSalinity S, ")
        assert workbench.buffer == "SELECT * FROM WaterSalinity S, "
        assert len(workbench.history) == 2

    def test_assist_returns_response_and_records_history(self, client_cqms):
        workbench = Workbench(cqms=client_cqms, user="bob")
        workbench.type("SELECT * FROM WaterSalinity S, ")
        response = workbench.assist()
        assert response.completions["tables"]
        assert workbench.last_response is response
        assert workbench.history[-1].kind == "assist"

    def test_apply_table_suggestion_extends_from_clause(self, client_cqms):
        workbench = Workbench(cqms=client_cqms, user="bob")
        workbench.type("SELECT * FROM WaterSalinity S, ")
        workbench.assist()
        workbench.apply_table_suggestion(0)
        assert "watertemp" in workbench.buffer.lower()

    def test_apply_correction_fixes_typo(self, client_cqms):
        workbench = Workbench(cqms=client_cqms, user="bob")
        workbench.type("SELECT * FROM WaterSalinty")
        workbench.assist()
        workbench.apply_correction(0)
        assert "watersalinity" in workbench.buffer.lower()

    def test_apply_with_no_suggestions_is_noop(self, client_cqms):
        workbench = Workbench(cqms=client_cqms, user="bob")
        workbench.type("SELECT 1")
        workbench.assist()
        before = workbench.buffer
        workbench.apply_correction(0)
        assert workbench.buffer == before

    def test_submit_logs_query(self, client_cqms):
        workbench = Workbench(cqms=client_cqms, user="bob")
        workbench.type("SELECT * FROM Lakes")
        execution = workbench.submit()
        assert execution.succeeded
        assert client_cqms.store.get(execution.record.qid).user == "bob"

    def test_recommendations_and_adopt(self, client_cqms):
        workbench = Workbench(cqms=client_cqms, user="bob")
        workbench.type("SELECT * FROM WaterSalinity S, WaterTemp T WHERE T.temp < 20")
        recommendations = workbench.recommendations(k=2)
        assert recommendations
        workbench.adopt_recommendation(recommendations[0])
        assert workbench.buffer == recommendations[0].record.text

    def test_clear(self, client_cqms):
        workbench = Workbench(cqms=client_cqms, user="bob").type("SELECT 1")
        workbench.clear()
        assert workbench.buffer == ""

    def test_panel_renders_figure3_sections(self, client_cqms):
        workbench = Workbench(cqms=client_cqms, user="bob")
        workbench.type("SELECT * FROM WaterSalinity S, ")
        panel = workbench.panel()
        assert "--- Completions ---" in panel
        assert "--- Similar queries ---" in panel
        assert "Score" in panel


class TestRenderers:
    def test_render_session_graph_shows_nodes_and_edges(self, client_cqms):
        report = client_cqms.miner.last_report
        session = max(report.sessions, key=len)
        text = render_session_graph(session, client_cqms.store)
        assert text.count("[q") == len(session.qids)
        assert "|--(" in text

    def test_render_session_summary(self, client_cqms):
        report = client_cqms.miner.last_report
        session = max(report.sessions, key=len)
        summary = client_cqms.browser().summarize_session(session)
        text = render_session_summary(summary)
        assert "final:" in text

    def test_render_recommendations_table(self, client_cqms):
        recommendations = client_cqms.recommend(
            "alice", "SELECT * FROM WaterSalinity S, WaterTemp T", k=2
        )
        table = render_recommendations(recommendations)
        assert "Score" in table and "Diff" in table
        assert "%" in table

    def test_render_recommendations_includes_annotations(self, client_cqms):
        recommendations = client_cqms.recommend(
            "alice",
            "SELECT S.salinity, T.temp FROM WaterSalinity S, WaterTemp T WHERE T.temp < 19",
            k=3,
        )
        table = render_recommendations(recommendations)
        assert "seattle lakes" in table

    def test_render_assist_panel_empty_buffer(self, client_cqms):
        response = client_cqms.assist("alice", "")
        panel = render_assist_panel("", response)
        assert "(empty)" in panel

    def test_render_query_table(self, client_cqms):
        records = client_cqms.browser().my_queries("alice")
        table = render_query_table(records)
        assert "qid" in table
        assert str(records[0].qid) in table
