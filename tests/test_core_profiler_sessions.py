"""Tests for the Query Profiler and session detection."""

import pytest

from repro.clock import SimulatedClock
from repro.core.config import CQMSConfig
from repro.core.profiler import ProfilingMode, QueryProfiler
from repro.core.query_store import QueryStore
from repro.core.records import LoggedQuery
from repro.core.sessions import SessionDetector, pairwise_session_metrics, sessions_as_ground_truth_pairs
from repro.sql.canonicalize import canonical_text
from repro.sql.features import extract_features
from repro.workloads import build_database


@pytest.fixture()
def profiler_setup():
    clock = SimulatedClock()
    db = build_database("limnology", scale=1, clock=clock)
    store = QueryStore(clock=clock)
    profiler = QueryProfiler(db, store, CQMSConfig(), clock=clock)
    return clock, db, store, profiler


class TestProfilerModes:
    def test_features_mode_records_everything(self, profiler_setup):
        _, _, store, profiler = profiler_setup
        execution = profiler.profile(
            "alice", "lab1", "SELECT * FROM WaterTemp T WHERE T.temp < 18"
        )
        assert execution.succeeded
        record = execution.record
        assert record is not None
        assert record.features is not None
        assert record.canonical_text
        assert record.output is not None
        assert record.runtime.result_cardinality == len(execution.result.rows)
        assert len(store) == 1

    def test_text_mode_skips_features(self, profiler_setup):
        _, _, store, profiler = profiler_setup
        profiler.set_mode("text")
        execution = profiler.profile("alice", "lab1", "SELECT * FROM Lakes")
        assert execution.record.features is None
        assert execution.record.canonical_text
        assert execution.record.output is None

    def test_off_mode_logs_nothing(self, profiler_setup):
        _, _, store, profiler = profiler_setup
        profiler.set_mode(ProfilingMode.OFF)
        execution = profiler.profile("alice", "lab1", "SELECT * FROM Lakes")
        assert execution.result is not None
        assert execution.record is None
        assert len(store) == 0

    def test_mode_parse_rejects_unknown(self):
        with pytest.raises(ValueError):
            ProfilingMode.parse("verbose")


class TestProfilerBehaviour:
    def test_failed_query_is_still_logged(self, profiler_setup):
        _, _, store, profiler = profiler_setup
        execution = profiler.profile("alice", "lab1", "SELECT * FROM NoSuchTable")
        assert not execution.succeeded
        assert execution.record.runtime.succeeded is False
        assert execution.record.runtime.error
        assert len(store) == 1

    def test_unparseable_query_logged_as_invalid_kind(self, profiler_setup):
        _, _, store, profiler = profiler_setup
        execution = profiler.profile("alice", "lab1", "SELEKT * FRM lakes")
        assert execution.record.statement_kind == "invalid"

    def test_comments_stripped_from_stored_text(self, profiler_setup):
        _, _, store, profiler = profiler_setup
        execution = profiler.profile(
            "alice", "lab1", "SELECT * FROM Lakes -- my favourite query"
        )
        assert "favourite" not in execution.record.text

    def test_qids_monotonically_increase(self, profiler_setup):
        _, _, _, profiler = profiler_setup
        first = profiler.profile("alice", "lab1", "SELECT * FROM Lakes")
        second = profiler.profile("alice", "lab1", "SELECT * FROM Sensors")
        assert second.record.qid == first.record.qid + 1

    def test_annotation_requested_for_complex_queries(self, profiler_setup):
        _, _, _, profiler = profiler_setup
        simple = profiler.profile("alice", "lab1", "SELECT * FROM Lakes")
        complex_query = profiler.profile(
            "alice",
            "lab1",
            "SELECT * FROM WaterSalinity S, WaterTemp T, CityLocations L "
            "WHERE S.loc_x = T.loc_x AND L.loc_x = T.loc_x",
        )
        nested = profiler.profile(
            "alice",
            "lab1",
            "SELECT * FROM Lakes WHERE lake_id IN (SELECT lake_id FROM WaterTemp WHERE temp < 10)",
        )
        assert not simple.annotation_requested
        assert complex_query.annotation_requested
        assert nested.annotation_requested

    def test_visibility_defaults_from_config(self, profiler_setup):
        _, _, _, profiler = profiler_setup
        execution = profiler.profile("alice", "lab1", "SELECT * FROM Lakes")
        assert execution.record.visibility == "group"
        override = profiler.profile("alice", "lab1", "SELECT * FROM Lakes", visibility="public")
        assert override.record.visibility == "public"

    def test_timestamps_follow_clock(self, profiler_setup):
        clock, _, _, profiler = profiler_setup
        clock.advance(100.0)
        execution = profiler.profile("alice", "lab1", "SELECT * FROM Lakes")
        assert execution.record.timestamp == pytest.approx(100.0)

    def test_output_summary_respects_budget(self, profiler_setup):
        _, _, _, profiler = profiler_setup
        execution = profiler.profile("alice", "lab1", "SELECT * FROM WaterTemp")
        output = execution.record.output
        assert output.total_rows == len(execution.result.rows)
        assert len(output.rows) <= CQMSConfig().output_sample_base_budget + 1
        assert not output.complete

    def test_dml_is_logged_with_kind(self, profiler_setup):
        _, db, store, profiler = profiler_setup
        execution = profiler.profile(
            "alice", "lab1", "INSERT INTO Lakes (lake_id, name, state, area_km2, max_depth_m) "
            "VALUES (99, 'New Lake', 'WA', 1.0, 5.0)"
        )
        assert execution.record.statement_kind == "insert"
        assert execution.record.output is None

    def test_catalog_version_recorded(self, profiler_setup):
        _, db, _, profiler = profiler_setup
        execution = profiler.profile("alice", "lab1", "SELECT * FROM Lakes")
        assert execution.record.catalog_version == db.catalog.version


def make_record(qid, sql, user, timestamp):
    return LoggedQuery(
        qid=qid,
        user=user,
        group="lab1",
        text=sql,
        timestamp=timestamp,
        canonical_text=canonical_text(sql),
        features=extract_features(sql),
    )


class TestSessionDetection:
    def test_time_gap_splits_sessions(self):
        records = [
            make_record(1, "SELECT * FROM WaterTemp T WHERE T.temp < 22", "alice", 0.0),
            make_record(2, "SELECT * FROM WaterTemp T WHERE T.temp < 18", "alice", 60.0),
            make_record(3, "SELECT * FROM WaterTemp T WHERE T.temp < 10", "alice", 5000.0),
        ]
        sessions = SessionDetector(gap_seconds=900).detect(records)
        assert len(sessions) == 2
        assert sessions[0].qids == [1, 2]
        assert sessions[1].qids == [3]

    def test_topic_shift_splits_sessions(self):
        records = [
            make_record(1, "SELECT * FROM WaterTemp T WHERE T.temp < 22", "alice", 0.0),
            make_record(2, "SELECT * FROM CityLocations", "alice", 60.0),
        ]
        sessions = SessionDetector(gap_seconds=900, min_similarity=0.1).detect(records)
        assert len(sessions) == 2

    def test_sessions_are_per_user(self):
        records = [
            make_record(1, "SELECT * FROM WaterTemp", "alice", 0.0),
            make_record(2, "SELECT * FROM WaterTemp", "bob", 10.0),
        ]
        sessions = SessionDetector().detect(records)
        assert len(sessions) == 2
        assert {session.user for session in sessions} == {"alice", "bob"}

    def test_session_ids_unique_and_chronological(self):
        records = [
            make_record(1, "SELECT * FROM WaterTemp", "alice", 100.0),
            make_record(2, "SELECT * FROM Lakes", "bob", 0.0),
        ]
        sessions = SessionDetector().detect(records)
        assert [session.session_id for session in sessions] == [1, 2]
        assert sessions[0].user == "bob"

    def test_edges_carry_diff_summaries(self):
        records = [
            make_record(1, "SELECT * FROM WaterTemp T WHERE T.temp < 22", "alice", 0.0),
            make_record(2, "SELECT * FROM WaterSalinity S, WaterTemp T WHERE T.temp < 22", "alice", 30.0),
            make_record(3, "SELECT * FROM WaterSalinity S, WaterTemp T WHERE T.temp < 18", "alice", 60.0),
        ]
        sessions = SessionDetector().detect(records)
        assert len(sessions) == 1
        edges = sessions[0].edges
        assert edges[0].edge_type == "modification"
        assert "+1 table" in edges[0].diff_summary
        assert edges[1].edge_type == "investigation"
        assert "const" in edges[1].diff_summary

    def test_identical_query_reexecution_is_temporal_edge(self):
        records = [
            make_record(1, "SELECT * FROM Lakes", "alice", 0.0),
            make_record(2, "SELECT * FROM Lakes", "alice", 30.0),
        ]
        sessions = SessionDetector().detect(records)
        assert sessions[0].edges[0].edge_type == "temporal"

    def test_final_qid_and_duration(self):
        records = [
            make_record(1, "SELECT * FROM Lakes", "alice", 0.0),
            make_record(2, "SELECT * FROM Lakes WHERE state = 'WA'", "alice", 120.0),
        ]
        session = SessionDetector().detect(records)[0]
        assert session.final_qid == 2
        assert session.duration == 120.0

    def test_records_without_features_stay_together(self):
        records = [
            LoggedQuery(qid=1, user="a", group="g", text="x", timestamp=0.0),
            LoggedQuery(qid=2, user="a", group="g", text="y", timestamp=10.0),
        ]
        sessions = SessionDetector().detect(records)
        assert len(sessions) == 1

    def test_empty_input(self):
        assert SessionDetector().detect([]) == []


class TestSessionMetrics:
    def test_ground_truth_pairs(self):
        records = [
            make_record(1, "SELECT * FROM Lakes", "alice", 0.0),
            make_record(2, "SELECT * FROM Lakes", "alice", 10.0),
            make_record(3, "SELECT * FROM Lakes", "alice", 20.0),
        ]
        sessions = SessionDetector().detect(records)
        pairs = sessions_as_ground_truth_pairs(sessions)
        assert pairs == {(1, 2), (1, 3), (2, 3)}

    def test_perfect_detection_scores_one(self):
        records = [
            make_record(1, "SELECT * FROM Lakes", "alice", 0.0),
            make_record(2, "SELECT * FROM Lakes", "alice", 10.0),
        ]
        sessions = SessionDetector().detect(records)
        truth = sessions_as_ground_truth_pairs(sessions)
        metrics = pairwise_session_metrics(sessions, truth)
        assert metrics == {"precision": 1.0, "recall": 1.0, "f1": 1.0}

    def test_empty_case(self):
        metrics = pairwise_session_metrics([], set())
        assert metrics["f1"] == 1.0
