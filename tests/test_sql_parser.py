"""Tests for the SQL parser."""

import pytest

from repro.errors import ParseError
from repro.sql.ast_nodes import (
    AlterTableStatement,
    Between,
    BinaryOp,
    ColumnRef,
    CreateIndexStatement,
    CreateTableStatement,
    DeleteStatement,
    DropTableStatement,
    ExistsSubquery,
    FunctionCall,
    InList,
    InSubquery,
    InsertStatement,
    Join,
    Literal,
    ScalarSubquery,
    SelectStatement,
    Star,
    SubqueryRef,
    TableRef,
    UnaryOp,
    UpdateStatement,
)
from repro.sql.parser import parse, parse_expression, parse_many


class TestSelectBasics:
    def test_select_star(self):
        statement = parse("SELECT * FROM lakes")
        assert isinstance(statement, SelectStatement)
        assert isinstance(statement.select_items[0].expression, Star)
        assert statement.from_items == (TableRef(name="lakes", alias=None),)

    def test_select_columns_with_aliases(self):
        statement = parse("SELECT name AS n, area_km2 area FROM lakes")
        assert statement.select_items[0].alias == "n"
        assert statement.select_items[1].alias == "area"

    def test_table_alias_with_and_without_as(self):
        first = parse("SELECT * FROM lakes AS L")
        second = parse("SELECT * FROM lakes L")
        assert first.from_items[0].alias == "L"
        assert second.from_items[0].alias == "L"

    def test_qualified_star(self):
        statement = parse("SELECT L.* FROM lakes L")
        star = statement.select_items[0].expression
        assert isinstance(star, Star)
        assert star.table == "L"

    def test_distinct(self):
        assert parse("SELECT DISTINCT state FROM lakes").distinct is True

    def test_where_comparison(self):
        statement = parse("SELECT * FROM t WHERE a < 5")
        assert isinstance(statement.where, BinaryOp)
        assert statement.where.op == "<"
        assert statement.where.right == Literal(5)

    def test_not_equal_normalized(self):
        statement = parse("SELECT * FROM t WHERE a != 5")
        assert statement.where.op == "<>"

    def test_group_by_having(self):
        statement = parse(
            "SELECT state, COUNT(*) FROM lakes GROUP BY state HAVING COUNT(*) > 2"
        )
        assert len(statement.group_by) == 1
        assert isinstance(statement.having, BinaryOp)

    def test_order_by_directions(self):
        statement = parse("SELECT * FROM t ORDER BY a, b DESC, c ASC")
        assert [item.ascending for item in statement.order_by] == [True, False, True]

    def test_limit_offset(self):
        statement = parse("SELECT * FROM t LIMIT 10 OFFSET 5")
        assert statement.limit == 10
        assert statement.offset == 5

    def test_trailing_semicolon_allowed(self):
        assert isinstance(parse("SELECT 1;"), SelectStatement)

    def test_select_without_from(self):
        statement = parse("SELECT 1 + 2")
        assert statement.from_items == ()


class TestJoins:
    def test_explicit_inner_join(self):
        statement = parse("SELECT * FROM a JOIN b ON a.id = b.id")
        join = statement.from_items[0]
        assert isinstance(join, Join)
        assert join.join_type == "INNER"
        assert isinstance(join.condition, BinaryOp)

    def test_left_outer_join(self):
        statement = parse("SELECT * FROM a LEFT OUTER JOIN b ON a.id = b.id")
        assert statement.from_items[0].join_type == "LEFT"

    def test_cross_join_has_no_condition(self):
        statement = parse("SELECT * FROM a CROSS JOIN b")
        join = statement.from_items[0]
        assert join.join_type == "CROSS"
        assert join.condition is None

    def test_chained_joins_left_associative(self):
        statement = parse("SELECT * FROM a JOIN b ON a.x = b.x JOIN c ON b.y = c.y")
        outer = statement.from_items[0]
        assert isinstance(outer, Join)
        assert isinstance(outer.left, Join)
        assert isinstance(outer.right, TableRef)

    def test_comma_separated_tables(self):
        statement = parse("SELECT * FROM a, b, c")
        assert len(statement.from_items) == 3

    def test_derived_table(self):
        statement = parse("SELECT * FROM (SELECT id FROM t) sub")
        item = statement.from_items[0]
        assert isinstance(item, SubqueryRef)
        assert item.alias == "sub"


class TestExpressions:
    def test_precedence_and_or(self):
        expr = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert expr.op == "OR"
        assert expr.right.op == "AND"

    def test_not(self):
        expr = parse_expression("NOT a = 1")
        assert isinstance(expr, UnaryOp)
        assert expr.op == "NOT"

    def test_arithmetic_precedence(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parentheses_override_precedence(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.op == "*"

    def test_unary_minus(self):
        expr = parse_expression("-5")
        assert isinstance(expr, UnaryOp)
        assert expr.operand == Literal(5)

    def test_between(self):
        expr = parse_expression("a BETWEEN 1 AND 10")
        assert isinstance(expr, Between)
        assert expr.low == Literal(1)
        assert expr.high == Literal(10)

    def test_not_between(self):
        assert parse_expression("a NOT BETWEEN 1 AND 2").negated is True

    def test_in_list(self):
        expr = parse_expression("x IN (1, 2, 3)")
        assert isinstance(expr, InList)
        assert len(expr.values) == 3

    def test_not_in_list(self):
        assert parse_expression("x NOT IN (1)").negated is True

    def test_in_subquery(self):
        expr = parse_expression("x IN (SELECT id FROM t)")
        assert isinstance(expr, InSubquery)

    def test_exists(self):
        expr = parse_expression("EXISTS (SELECT 1 FROM t)")
        assert isinstance(expr, ExistsSubquery)

    def test_scalar_subquery(self):
        expr = parse_expression("(SELECT MAX(x) FROM t)")
        assert isinstance(expr, ScalarSubquery)

    def test_like(self):
        expr = parse_expression("name LIKE 'Lake%'")
        assert expr.op == "LIKE"

    def test_not_like_wraps_in_not(self):
        expr = parse_expression("name NOT LIKE 'x%'")
        assert isinstance(expr, UnaryOp)
        assert expr.op == "NOT"

    def test_is_null_and_is_not_null(self):
        assert parse_expression("a IS NULL").op == "IS NULL"
        assert parse_expression("a IS NOT NULL").op == "IS NOT NULL"

    def test_case_expression(self):
        expr = parse_expression("CASE WHEN a > 1 THEN 'big' ELSE 'small' END")
        assert len(expr.whens) == 1
        assert expr.default == Literal("small")

    def test_case_requires_when(self):
        with pytest.raises(ParseError):
            parse_expression("CASE END")

    def test_aggregate_count_star(self):
        expr = parse_expression("COUNT(*)")
        assert isinstance(expr, FunctionCall)
        assert isinstance(expr.args[0], Star)

    def test_count_distinct(self):
        expr = parse_expression("COUNT(DISTINCT name)")
        assert expr.distinct is True

    def test_cast(self):
        expr = parse_expression("CAST(a AS INTEGER)")
        assert expr.name == "CAST"
        assert expr.args[1] == Literal("INTEGER")

    def test_boolean_and_null_literals(self):
        assert parse_expression("TRUE") == Literal(True)
        assert parse_expression("FALSE") == Literal(False)
        assert parse_expression("NULL") == Literal(None)

    def test_string_concatenation(self):
        assert parse_expression("a || b").op == "||"

    def test_qualified_column(self):
        expr = parse_expression("T.temp")
        assert expr == ColumnRef(name="temp", table="T")


class TestDml:
    def test_insert_values(self):
        statement = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert isinstance(statement, InsertStatement)
        assert statement.columns == ("a", "b")
        assert len(statement.rows) == 2

    def test_insert_without_columns(self):
        statement = parse("INSERT INTO t VALUES (1, 2)")
        assert statement.columns == ()

    def test_insert_select(self):
        statement = parse("INSERT INTO t (a) SELECT b FROM s")
        assert statement.select is not None

    def test_update(self):
        statement = parse("UPDATE t SET a = 1, b = 'x' WHERE id = 3")
        assert isinstance(statement, UpdateStatement)
        assert len(statement.assignments) == 2
        assert statement.where is not None

    def test_delete(self):
        statement = parse("DELETE FROM t WHERE a < 0")
        assert isinstance(statement, DeleteStatement)

    def test_delete_without_where(self):
        assert parse("DELETE FROM t").where is None


class TestDdl:
    def test_create_table(self):
        statement = parse(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, name VARCHAR(32) NOT NULL, score FLOAT)"
        )
        assert isinstance(statement, CreateTableStatement)
        assert statement.columns[0].primary_key is True
        assert statement.columns[1].not_null is True

    def test_create_table_if_not_exists(self):
        assert parse("CREATE TABLE IF NOT EXISTS t (a INT)").if_not_exists is True

    def test_drop_table(self):
        statement = parse("DROP TABLE IF EXISTS t")
        assert isinstance(statement, DropTableStatement)
        assert statement.if_exists is True

    def test_alter_add_column(self):
        statement = parse("ALTER TABLE t ADD COLUMN c TEXT")
        assert isinstance(statement, AlterTableStatement)
        assert statement.action == "add_column"
        assert statement.column.name == "c"

    def test_alter_drop_column(self):
        statement = parse("ALTER TABLE t DROP COLUMN c")
        assert statement.action == "drop_column"
        assert statement.column_name == "c"

    def test_alter_rename_column(self):
        statement = parse("ALTER TABLE t RENAME COLUMN a TO b")
        assert statement.action == "rename_column"
        assert (statement.column_name, statement.new_name) == ("a", "b")

    def test_alter_rename_table(self):
        statement = parse("ALTER TABLE t RENAME TO s")
        assert statement.action == "rename_table"
        assert statement.new_name == "s"

    def test_create_index(self):
        statement = parse("CREATE UNIQUE INDEX idx ON t (a)")
        assert isinstance(statement, CreateIndexStatement)
        assert statement.unique is True
        assert statement.kind == "hash"

    def test_create_index_using_kind(self):
        statement = parse("CREATE INDEX idx ON t (a) USING SORTED")
        assert isinstance(statement, CreateIndexStatement)
        assert statement.kind == "sorted"

    def test_using_stays_a_plain_identifier(self):
        # USING is matched contextually, not reserved: logged workloads may
        # use it as a column name.
        statement = parse("SELECT using FROM t WHERE using = 'x'")
        assert statement.select_items[0].expression.name == "using"


class TestErrorsAndScripts:
    def test_unknown_statement_raises(self):
        with pytest.raises(ParseError):
            parse("GRANT ALL TO bob")

    def test_trailing_garbage_raises(self):
        with pytest.raises(ParseError):
            parse("SELECT 1 FROM t extra garbage here ,,")

    def test_missing_from_table_raises(self):
        with pytest.raises(ParseError):
            parse("SELECT * FROM WHERE a = 1")

    def test_structural_keyword_not_an_identifier(self):
        with pytest.raises(ParseError):
            parse("SELECT FROM WaterSalinity")

    def test_unbalanced_parenthesis_raises(self):
        with pytest.raises(ParseError):
            parse("SELECT * FROM t WHERE (a = 1")

    def test_parse_many(self):
        statements = parse_many("SELECT 1; SELECT 2; ")
        assert len(statements) == 2

    def test_parse_error_carries_token(self):
        with pytest.raises(ParseError) as excinfo:
            parse("SELECT * FROM t WHERE a ==")
        assert excinfo.value.token is not None

    def test_paper_figure1_meta_query_parses(self):
        sql = (
            "SELECT Q.qid, Q.qText FROM Queries Q, Attributes A1, Attributes A2 "
            "WHERE Q.qid = A1.qid AND Q.qid = A2.qid "
            "AND A1.attrName = 'salinity' AND A1.relName = 'WaterSalinity' "
            "AND A2.attrName = 'temp' AND A2.relName = 'WaterTemp'"
        )
        statement = parse(sql)
        assert len(statement.from_items) == 3
