"""Tests for the SQL executor via the Database facade."""

import pytest

from repro.errors import CatalogError, ExecutionError
from repro.storage.database import Database


@pytest.fixture()
def db():
    database = Database()
    database.execute(
        "CREATE TABLE lakes (id INTEGER PRIMARY KEY, name TEXT, state TEXT, area FLOAT)"
    )
    database.execute(
        "CREATE TABLE readings (lake_id INTEGER, temp FLOAT, depth FLOAT, month INTEGER)"
    )
    database.execute(
        "INSERT INTO lakes (id, name, state, area) VALUES "
        "(1, 'Washington', 'WA', 87.6), (2, 'Union', 'WA', 2.3), "
        "(3, 'Michigan', 'MI', 58000.0), (4, 'Chelan', 'WA', 135.0)"
    )
    database.execute(
        "INSERT INTO readings (lake_id, temp, depth, month) VALUES "
        "(1, 15.0, 5.0, 6), (1, 17.5, 10.0, 7), (1, 12.0, 20.0, 8), "
        "(2, 20.0, 3.0, 6), (2, 22.5, 4.0, 7), "
        "(3, 9.0, 30.0, 6), (4, 11.0, 12.0, 7)"
    )
    return database


class TestSelectBasics:
    def test_select_star(self, db):
        result = db.execute("SELECT * FROM lakes")
        assert len(result) == 4
        assert result.columns == ["id", "name", "state", "area"]

    def test_projection_and_alias(self, db):
        result = db.execute("SELECT name AS lake, area FROM lakes WHERE id = 1")
        assert result.columns == ["lake", "area"]
        assert result.rows == [("Washington", 87.6)]

    def test_where_filters(self, db):
        result = db.execute("SELECT name FROM lakes WHERE state = 'WA' AND area > 50")
        assert {row[0] for row in result.rows} == {"Washington", "Chelan"}

    def test_expression_in_select_list(self, db):
        result = db.execute("SELECT area * 2 FROM lakes WHERE id = 2")
        assert result.scalar() == 4.6

    def test_order_by_asc_desc(self, db):
        ascending = db.execute("SELECT name FROM lakes ORDER BY area")
        descending = db.execute("SELECT name FROM lakes ORDER BY area DESC")
        assert ascending.column("name") == list(reversed(descending.column("name")))

    def test_order_by_alias(self, db):
        result = db.execute("SELECT name, area * 2 AS doubled FROM lakes ORDER BY doubled DESC")
        assert result.rows[0][0] == "Michigan"

    def test_limit_offset(self, db):
        result = db.execute("SELECT name FROM lakes ORDER BY name LIMIT 2 OFFSET 1")
        assert result.column("name") == ["Michigan", "Union"]

    def test_distinct(self, db):
        result = db.execute("SELECT DISTINCT state FROM lakes")
        assert sorted(result.column("state")) == ["MI", "WA"]

    def test_select_without_from(self, db):
        assert db.execute("SELECT 1 + 2").scalar() == 3

    def test_like_predicate(self, db):
        result = db.execute("SELECT name FROM lakes WHERE name LIKE '%ington'")
        assert result.column("name") == ["Washington"]

    def test_in_list(self, db):
        result = db.execute("SELECT name FROM lakes WHERE id IN (1, 3)")
        assert set(result.column("name")) == {"Washington", "Michigan"}

    def test_between(self, db):
        result = db.execute("SELECT name FROM lakes WHERE area BETWEEN 2 AND 200")
        assert set(result.column("name")) == {"Washington", "Union", "Chelan"}

    def test_result_helpers(self, db):
        result = db.execute("SELECT id, name FROM lakes WHERE id = 1")
        assert result.as_dicts() == [{"id": 1, "name": "Washington"}]
        with pytest.raises(ExecutionError):
            result.column("missing")

    def test_unknown_table_raises(self, db):
        with pytest.raises(CatalogError):
            db.execute("SELECT * FROM nope")

    def test_ambiguous_column_raises(self, db):
        with pytest.raises(ExecutionError):
            db.execute("SELECT * FROM lakes a, lakes b WHERE name = 'Union'")


class TestJoins:
    def test_comma_join_with_where(self, db):
        result = db.execute(
            "SELECT L.name, R.temp FROM lakes L, readings R WHERE L.id = R.lake_id AND R.temp < 12"
        )
        assert set(result.rows) == {("Michigan", 9.0), ("Chelan", 11.0)}

    def test_explicit_inner_join(self, db):
        result = db.execute(
            "SELECT L.name FROM lakes L JOIN readings R ON L.id = R.lake_id WHERE R.month = 8"
        )
        assert result.column("name") == ["Washington"]

    def test_left_join_keeps_unmatched(self, db):
        db.execute("INSERT INTO lakes (id, name, state, area) VALUES (9, 'Dry', 'NV', 0.1)")
        result = db.execute(
            "SELECT L.name, R.temp FROM lakes L LEFT JOIN readings R ON L.id = R.lake_id "
            "WHERE R.temp IS NULL"
        )
        assert result.column("name") == ["Dry"]

    def test_right_join_equivalent_to_swapped_left(self, db):
        left = db.execute(
            "SELECT L.name, R.temp FROM readings R RIGHT JOIN lakes L ON L.id = R.lake_id"
        )
        right = db.execute(
            "SELECT L.name, R.temp FROM lakes L LEFT JOIN readings R ON L.id = R.lake_id"
        )
        assert sorted(left.rows, key=str) == sorted(right.rows, key=str)

    def test_cross_join_cardinality(self, db):
        result = db.execute("SELECT * FROM lakes CROSS JOIN readings")
        assert len(result) == 4 * 7

    def test_three_way_join(self, db):
        db.execute("CREATE TABLE states (code TEXT, region TEXT)")
        db.execute("INSERT INTO states VALUES ('WA', 'west'), ('MI', 'midwest')")
        result = db.execute(
            "SELECT DISTINCT S.region FROM lakes L, readings R, states S "
            "WHERE L.id = R.lake_id AND L.state = S.code AND R.temp < 12"
        )
        assert sorted(result.column("region")) == ["midwest", "west"]

    def test_self_join(self, db):
        result = db.execute(
            "SELECT a.name, b.name FROM lakes a, lakes b WHERE a.state = b.state AND a.id < b.id"
        )
        assert ("Washington", "Union") in result.rows

    def test_derived_table(self, db):
        result = db.execute(
            "SELECT big.name FROM (SELECT name, area FROM lakes WHERE area > 100) big"
        )
        assert set(result.column("name")) == {"Michigan", "Chelan"}


class TestAggregation:
    def test_count_star(self, db):
        assert db.execute("SELECT COUNT(*) FROM readings").scalar() == 7

    def test_aggregates_without_group_by(self, db):
        result = db.execute("SELECT MIN(temp), MAX(temp), AVG(depth) FROM readings")
        low, high, avg_depth = result.rows[0]
        assert low == 9.0 and high == 22.5
        assert abs(avg_depth - 12.0) < 0.01

    def test_group_by_with_having(self, db):
        result = db.execute(
            "SELECT lake_id, COUNT(*) AS n, AVG(temp) FROM readings "
            "GROUP BY lake_id HAVING COUNT(*) > 1 ORDER BY n DESC"
        )
        assert result.rows[0][0] == 1
        assert {row[0] for row in result.rows} == {1, 2}

    def test_count_distinct(self, db):
        assert db.execute("SELECT COUNT(DISTINCT state) FROM lakes").scalar() == 2

    def test_sum_ignores_nulls(self, db):
        db.execute("INSERT INTO readings (lake_id, temp, depth, month) VALUES (4, NULL, 1.0, 9)")
        assert db.execute("SELECT COUNT(temp) FROM readings").scalar() == 7

    def test_empty_group_aggregate(self, db):
        result = db.execute("SELECT COUNT(*), MAX(temp) FROM readings WHERE temp > 100")
        assert result.rows == [(0, None)]

    def test_group_by_join_result(self, db):
        result = db.execute(
            "SELECT L.state, COUNT(*) FROM lakes L, readings R WHERE L.id = R.lake_id "
            "GROUP BY L.state ORDER BY L.state"
        )
        assert result.rows == [("MI", 1), ("WA", 6)]

    def test_order_by_aggregate(self, db):
        result = db.execute(
            "SELECT lake_id, AVG(temp) a FROM readings GROUP BY lake_id ORDER BY a DESC LIMIT 1"
        )
        assert result.rows[0][0] == 2

    def test_arithmetic_over_aggregates(self, db):
        value = db.execute("SELECT MAX(temp) - MIN(temp) FROM readings").scalar()
        assert value == 13.5


class TestSubqueries:
    def test_in_subquery(self, db):
        result = db.execute(
            "SELECT name FROM lakes WHERE id IN (SELECT lake_id FROM readings WHERE temp > 20)"
        )
        assert result.column("name") == ["Union"]

    def test_not_in_subquery(self, db):
        result = db.execute(
            "SELECT name FROM lakes WHERE id NOT IN (SELECT lake_id FROM readings)"
        )
        assert result.rows == []

    def test_correlated_exists(self, db):
        result = db.execute(
            "SELECT name FROM lakes WHERE EXISTS "
            "(SELECT 1 FROM readings R WHERE R.lake_id = lakes.id AND R.depth > 25)"
        )
        assert result.column("name") == ["Michigan"]

    def test_scalar_subquery_in_select(self, db):
        result = db.execute(
            "SELECT name, (SELECT MAX(temp) FROM readings R WHERE R.lake_id = lakes.id) m "
            "FROM lakes ORDER BY m DESC LIMIT 1"
        )
        assert result.rows[0] == ("Union", 22.5)

    def test_scalar_subquery_comparison(self, db):
        result = db.execute(
            "SELECT name FROM lakes WHERE area > (SELECT AVG(area) FROM lakes)"
        )
        assert result.column("name") == ["Michigan"]


class TestDmlAndDdl:
    def test_insert_select(self, db):
        db.execute("CREATE TABLE wa_lakes (id INTEGER, name TEXT)")
        count = db.execute(
            "INSERT INTO wa_lakes (id, name) SELECT id, name FROM lakes WHERE state = 'WA'"
        ).rowcount
        assert count == 3
        assert len(db.execute("SELECT * FROM wa_lakes")) == 3

    def test_update_with_expression(self, db):
        updated = db.execute("UPDATE lakes SET area = area + 1 WHERE state = 'WA'").rowcount
        assert updated == 3
        assert db.execute("SELECT area FROM lakes WHERE id = 2").scalar() == 3.3

    def test_delete_with_subquery(self, db):
        db.execute(
            "DELETE FROM readings WHERE lake_id IN (SELECT id FROM lakes WHERE state = 'MI')"
        )
        assert db.execute("SELECT COUNT(*) FROM readings").scalar() == 6

    def test_insert_wrong_arity_raises(self, db):
        with pytest.raises(ExecutionError):
            db.execute("INSERT INTO lakes (id, name) VALUES (10)")

    def test_insert_select_wrong_arity_raises(self, db):
        # Regression: a SELECT wider or narrower than the target column list
        # must fail loudly instead of silently dropping / NULL-filling values.
        db.execute("CREATE TABLE wa_lakes (id INTEGER, name TEXT)")
        with pytest.raises(ExecutionError):
            db.execute("INSERT INTO wa_lakes (id, name) SELECT id, name, state FROM lakes")
        with pytest.raises(ExecutionError):
            db.execute("INSERT INTO wa_lakes SELECT id FROM lakes")
        assert len(db.execute("SELECT * FROM wa_lakes")) == 0

    def test_create_table_if_not_exists_is_idempotent(self, db):
        db.execute("CREATE TABLE IF NOT EXISTS lakes (id INTEGER)")
        assert len(db.execute("SELECT * FROM lakes")) == 4

    def test_duplicate_create_raises(self, db):
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE lakes (id INTEGER)")

    def test_drop_table(self, db):
        db.execute("DROP TABLE readings")
        assert not db.has_table("readings")
        with pytest.raises(CatalogError):
            db.execute("SELECT * FROM readings")

    def test_drop_if_exists_missing_ok(self, db):
        db.execute("DROP TABLE IF EXISTS nothing_here")

    def test_alter_add_and_drop_column(self, db):
        db.execute("ALTER TABLE lakes ADD COLUMN trophic TEXT")
        assert db.execute("SELECT trophic FROM lakes WHERE id = 1").scalar() is None
        db.execute("ALTER TABLE lakes DROP COLUMN trophic")
        with pytest.raises(ExecutionError):
            db.execute("SELECT trophic FROM lakes")

    def test_alter_rename_column_and_table(self, db):
        db.execute("ALTER TABLE readings RENAME COLUMN temp TO temperature")
        assert db.execute("SELECT MAX(temperature) FROM readings").scalar() == 22.5
        db.execute("ALTER TABLE readings RENAME TO measurements")
        assert db.has_table("measurements") and not db.has_table("readings")

    def test_create_index_statement(self, db):
        db.execute("CREATE INDEX idx_state ON lakes (state)")
        assert db.table("lakes").index_for("state") is not None

    def test_catalog_changes_recorded_for_ddl(self, db):
        before = db.catalog.version
        db.execute("ALTER TABLE lakes RENAME COLUMN area TO surface")
        assert db.catalog.version == before + 1
        assert db.catalog.changes()[-1].kind == "rename_column"


class TestExecutionStats:
    def test_select_stats_populated(self, db):
        result = db.execute("SELECT * FROM lakes WHERE state = 'WA'")
        assert result.stats.statement_kind == "select"
        assert result.stats.result_cardinality == 3
        assert result.stats.rows_scanned >= 4
        assert result.stats.elapsed_seconds >= 0.0

    def test_join_stats_count_joined_rows(self, db):
        result = db.execute(
            "SELECT * FROM lakes L, readings R WHERE L.id = R.lake_id"
        )
        assert result.stats.rows_joined >= 7

    def test_insert_stats(self, db):
        result = db.execute("INSERT INTO lakes (id, name, state, area) VALUES (99, 'X', 'OR', 1.0)")
        assert result.stats.statement_kind == "insert"
        assert result.rowcount == 1
        assert result.stats.result_cardinality == 1
        # A VALUES insert reads nothing.
        assert result.stats.rows_scanned == 0
        assert result.stats.index_lookups == 0

    def test_insert_select_stats_charge_the_source_read(self, db):
        db.execute("CREATE TABLE ids (id INTEGER)")
        result = db.execute("INSERT INTO ids (id) SELECT id FROM lakes WHERE id = 1")
        assert result.stats.statement_kind == "insert"
        assert result.stats.result_cardinality == 1
        # The id = 1 probe goes through the lakes primary-key index.
        assert result.stats.index_lookups == 1
        assert result.stats.rows_scanned == 1

    def test_update_stats_full_scan(self, db):
        result = db.execute("UPDATE readings SET depth = depth + 1 WHERE month = 7")
        assert result.stats.statement_kind == "update"
        assert result.stats.result_cardinality == 3
        # month is unindexed: every heap row is scanned, no index lookups.
        assert result.stats.rows_scanned == 7
        assert result.stats.index_lookups == 0

    def test_update_stats_indexed_probe(self, db):
        result = db.execute("UPDATE lakes SET area = 0.0 WHERE id = 3")
        assert result.rowcount == 1
        assert result.stats.index_lookups == 1
        # The primary-key probe touches only the matching row, not the heap.
        assert result.stats.rows_scanned == 1

    def test_delete_stats_indexed_probe(self, db):
        result = db.execute("DELETE FROM lakes WHERE id = 4")
        assert result.rowcount == 1
        assert result.stats.statement_kind == "delete"
        assert result.stats.index_lookups == 1
        assert result.stats.rows_scanned == 1

    def test_delete_stats_full_scan(self, db):
        result = db.execute("DELETE FROM readings WHERE temp > 100")
        assert result.rowcount == 0
        assert result.stats.rows_scanned == 7
        assert result.stats.index_lookups == 0
