"""Tests for the Prometheus exposition-format lint (analysis/exposition_lint)."""

import pytest

from repro.analysis.exposition_lint import lint_exposition, lint_live_engine
from repro.obs import MetricsRegistry

VALID = """\
# HELP repro_statements_total executed statements
# TYPE repro_statements_total counter
repro_statements_total{engine="database",kind="select"} 3
repro_statements_total{engine="query_storage",kind="select"} 1
# HELP repro_statement_seconds latency
# TYPE repro_statement_seconds histogram
repro_statement_seconds_bucket{engine="database",le="0.1"} 2
repro_statement_seconds_bucket{engine="database",le="+Inf"} 3
repro_statement_seconds_sum{engine="database"} 0.4
repro_statement_seconds_count{engine="database"} 3
"""


def _rules(report):
    return sorted({d.rule for d in report.diagnostics})


class TestLintExposition:
    def test_valid_document_is_clean(self):
        report = lint_exposition(VALID)
        assert not len(report), report.render()

    def test_registry_render_is_clean(self):
        registry = MetricsRegistry()
        registry.counter("statements", "n", engine="database", kind="select").inc()
        registry.gauge("plan_cache_size", "entries", engine="database").set(7)
        registry.histogram("statement_seconds", "s", engine="database").observe(0.01)
        report = lint_exposition(registry.render())
        assert not len(report), report.render()

    def test_malformed_lines(self):
        report = lint_exposition(
            'garbage line here {\nrepro_x_total{engine="db"} notanumber\n'
            '# TYPE repro_y_total weirdkind\n'
        )
        assert _rules(report) == ["exposition-format"]
        assert len(report) == 3  # bad line, bad value, unknown kind

    def test_malformed_label_block(self):
        report = lint_exposition('repro_x_total{engine="db} 1\n')
        assert "exposition-format" in _rules(report)

    def test_missing_metadata(self):
        report = lint_exposition('repro_x_total{engine="db"} 1\n')
        assert "missing-metadata" in _rules(report)
        no_help = (
            "# TYPE repro_x_total counter\n"
            'repro_x_total{engine="db"} 1\n'
        )
        assert "missing-metadata" in _rules(lint_exposition(no_help))

    def test_duplicate_series(self):
        text = VALID + 'repro_statements_total{kind="select",engine="database"} 9\n'
        report = lint_exposition(text)
        assert "duplicate-series" in _rules(report)  # label order normalized

    def test_unlabelled_series(self):
        text = (
            "# HELP repro_x_total x\n# TYPE repro_x_total counter\n"
            "repro_x_total 1\n"
        )
        assert "unlabelled-series" in _rules(lint_exposition(text))

    def test_naming_scheme(self):
        foreign = (
            "# HELP other_x_total x\n# TYPE other_x_total counter\n"
            'other_x_total{engine="db"} 1\n'
        )
        assert "metric-naming" in _rules(lint_exposition(foreign))
        missing_total = (
            "# HELP repro_x x\n# TYPE repro_x counter\n"
            'repro_x{engine="db"} 1\n'
        )
        assert "metric-naming" in _rules(lint_exposition(missing_total))

    def test_histogram_consistency(self):
        shrinking = (
            "# HELP repro_h h\n# TYPE repro_h histogram\n"
            'repro_h_bucket{engine="db",le="0.1"} 5\n'
            'repro_h_bucket{engine="db",le="1"} 3\n'
            'repro_h_bucket{engine="db",le="+Inf"} 3\n'
            'repro_h_count{engine="db"} 3\n'
        )
        assert "histogram-consistency" in _rules(lint_exposition(shrinking))
        inf_mismatch = (
            "# HELP repro_h h\n# TYPE repro_h histogram\n"
            'repro_h_bucket{engine="db",le="+Inf"} 2\n'
            'repro_h_count{engine="db"} 3\n'
        )
        assert "histogram-consistency" in _rules(lint_exposition(inf_mismatch))
        no_inf = (
            "# HELP repro_h h\n# TYPE repro_h histogram\n"
            'repro_h_bucket{engine="db",le="1"} 2\n'
            'repro_h_count{engine="db"} 2\n'
        )
        assert "histogram-consistency" in _rules(lint_exposition(no_inf))

    def test_min_series_floor(self):
        assert "min-series" in _rules(lint_exposition(VALID, min_series=10))
        assert "min-series" not in _rules(lint_exposition(VALID, min_series=3))

    def test_every_error_is_error_severity(self):
        report = lint_exposition("garbage {\n", min_series=1)
        assert report.has_errors


class TestLiveEngine:
    def test_live_engine_exposition_is_clean_and_wide(self):
        report, series = lint_live_engine(min_series=25)
        assert not report.has_errors, report.render()
        assert series >= 25

    def test_cli_lint_metrics(self, capsys):
        from repro.analysis.__main__ import main

        assert main(["lint-metrics", "--min-series", "25"]) == 0
        out = capsys.readouterr().out
        assert "distinct series" in out

    def test_cli_lint_metrics_unreachable_floor_fails(self, capsys):
        from repro.analysis.__main__ import main

        assert main(["lint-metrics", "--min-series", "100000"]) == 1
        assert "min-series" in capsys.readouterr().out
