"""Tests for query-feature extraction (the Figure 1 data model)."""

from repro.sql.features import UNKNOWN_RELATION, extract_features


SCHEMA = {
    "watersalinity": {"salinity", "loc_x", "loc_y", "depth", "lake_id"},
    "watertemp": {"temp", "loc_x", "loc_y", "depth", "lake_id"},
    "citylocations": {"city", "state", "loc_x", "loc_y", "population"},
    "lakes": {"lake_id", "name", "state", "area_km2"},
}


class TestTables:
    def test_single_table(self):
        features = extract_features("SELECT * FROM Lakes")
        assert features.tables == ["lakes"]
        assert features.num_tables == 1

    def test_multiple_tables_with_aliases(self):
        features = extract_features("SELECT * FROM WaterSalinity S, WaterTemp T")
        assert set(features.tables) == {"watersalinity", "watertemp"}

    def test_join_tables_counted(self):
        features = extract_features("SELECT * FROM a JOIN b ON a.x = b.x")
        assert set(features.tables) == {"a", "b"}

    def test_subquery_tables_included(self):
        features = extract_features(
            "SELECT * FROM a WHERE a.id IN (SELECT b.id FROM b)"
        )
        assert set(features.tables) == {"a", "b"}
        assert features.num_subqueries == 1

    def test_derived_table_subquery_counted(self):
        features = extract_features("SELECT * FROM (SELECT x FROM inner_t) d")
        assert "inner_t" in features.tables
        assert features.num_subqueries == 1

    def test_statement_kind_for_dml(self):
        features = extract_features("DELETE FROM lakes WHERE lake_id = 1")
        assert features.statement_kind == "delete"
        assert features.tables == ["lakes"]


class TestPredicates:
    def test_simple_predicate(self):
        features = extract_features("SELECT * FROM WaterTemp T WHERE T.temp < 18")
        assert len(features.predicates) == 1
        predicate = features.predicates[0]
        assert (predicate.attribute, predicate.relation, predicate.op, predicate.constant) == (
            "temp",
            "watertemp",
            "<",
            18,
        )

    def test_reversed_literal_predicate_mirrored(self):
        features = extract_features("SELECT * FROM WaterTemp T WHERE 18 > T.temp")
        assert features.predicates[0].op == "<"

    def test_between_becomes_two_predicates(self):
        features = extract_features("SELECT * FROM t WHERE t.x BETWEEN 1 AND 5")
        ops = {p.op for p in features.predicates}
        assert ops == {">=", "<="}

    def test_in_list_predicate(self):
        features = extract_features("SELECT * FROM t WHERE t.x IN (1, 2, 3)")
        predicate = features.predicates[0]
        assert predicate.op == "IN"
        assert predicate.constant == (1, 2, 3)

    def test_like_predicate(self):
        features = extract_features("SELECT * FROM t WHERE t.name LIKE 'Lake%'")
        assert features.predicates[0].op == "LIKE"

    def test_is_null_predicate(self):
        features = extract_features("SELECT * FROM t WHERE t.x IS NULL")
        assert features.predicates[0].op == "IS NULL"

    def test_unqualified_column_resolved_via_schema(self):
        features = extract_features(
            "SELECT * FROM WaterSalinity, CityLocations WHERE salinity > 0.2",
            SCHEMA,
        )
        assert features.predicates[0].relation == "watersalinity"

    def test_ambiguous_unqualified_column_unknown(self):
        features = extract_features(
            "SELECT * FROM WaterSalinity, WaterTemp WHERE depth > 5", SCHEMA
        )
        assert features.predicates[0].relation == UNKNOWN_RELATION

    def test_single_table_unqualified_column_resolved(self):
        features = extract_features("SELECT * FROM WaterTemp WHERE temp < 10")
        assert features.predicates[0].relation == "watertemp"

    def test_having_predicates_on_attributes_recorded(self):
        features = extract_features(
            "SELECT state FROM lakes GROUP BY state HAVING COUNT(*) > 2"
        )
        # COUNT(*) > 2 is not an attribute predicate but grouping is captured.
        assert ("state", "lakes") in features.group_by


class TestJoins:
    def test_where_equi_join_detected(self):
        features = extract_features(
            "SELECT * FROM WaterSalinity S, WaterTemp T WHERE S.loc_x = T.loc_x"
        )
        assert features.num_joins == 1
        join = features.joins[0].normalized()
        assert {join.left_relation, join.right_relation} == {"watersalinity", "watertemp"}

    def test_on_clause_join_detected(self):
        features = extract_features("SELECT * FROM a JOIN b ON a.id = b.id")
        assert features.num_joins == 1

    def test_join_signature_is_order_independent(self):
        first = extract_features("SELECT * FROM a, b WHERE a.id = b.id")
        second = extract_features("SELECT * FROM a, b WHERE b.id = a.id")
        assert first.join_signatures() == second.join_signatures()

    def test_join_not_counted_as_predicate(self):
        features = extract_features("SELECT * FROM a, b WHERE a.id = b.id")
        assert features.num_predicates == 0


class TestProjectionsAndMore:
    def test_select_star_flag(self):
        assert extract_features("SELECT * FROM t").select_star is True

    def test_projection_columns(self):
        features = extract_features("SELECT T.temp, T.depth FROM WaterTemp T")
        assert ("temp", "watertemp") in features.projections
        assert ("depth", "watertemp") in features.projections

    def test_aggregates_recorded(self):
        features = extract_features("SELECT AVG(T.temp), COUNT(*) FROM WaterTemp T")
        assert "AVG" in features.aggregates
        assert "COUNT" in features.aggregates

    def test_group_and_order_by(self):
        features = extract_features(
            "SELECT T.month FROM WaterTemp T GROUP BY T.month ORDER BY T.month"
        )
        assert ("month", "watertemp") in features.group_by
        assert ("month", "watertemp") in features.order_by

    def test_distinct_and_limit(self):
        features = extract_features("SELECT DISTINCT state FROM lakes LIMIT 7")
        assert features.distinct is True
        assert features.limit == 7

    def test_nesting_depth(self):
        features = extract_features(
            "SELECT * FROM a WHERE a.x IN (SELECT b.x FROM b WHERE b.y IN (SELECT c.y FROM c))"
        )
        assert features.nesting_depth == 2
        assert features.num_subqueries == 2

    def test_token_bag_contains_all_feature_classes(self):
        features = extract_features(
            "SELECT S.salinity, AVG(T.temp) FROM WaterSalinity S, WaterTemp T "
            "WHERE S.loc_x = T.loc_x AND T.temp < 18 GROUP BY S.salinity"
        )
        bag = features.token_bag()
        assert any(token.startswith("table:") for token in bag)
        assert any(token.startswith("join:") for token in bag)
        assert any(token.startswith("pred:") for token in bag)
        assert any(token.startswith("agg:") for token in bag)
        assert any(token.startswith("group:") for token in bag)

    def test_feature_sets_are_frozensets(self):
        features = extract_features("SELECT * FROM t WHERE t.a = 1")
        assert isinstance(features.table_set(), frozenset)
        assert isinstance(features.predicate_signatures(), frozenset)

    def test_predicate_signatures_with_constants(self):
        features = extract_features("SELECT * FROM t WHERE t.a = 1")
        with_constants = features.predicate_signatures(with_constants=True)
        assert ("a", "t", "=", 1) in with_constants

    def test_accepts_preparsed_statement(self):
        from repro.sql.parser import parse

        features = extract_features(parse("SELECT * FROM lakes"))
        assert features.tables == ["lakes"]
