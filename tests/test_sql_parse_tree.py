"""Tests for the parse-tree model, structural matching, and tree edit distance."""

import pytest

from repro.sql.parse_tree import (
    ParseTreeNode,
    TreePattern,
    match_pattern,
    normalized_tree_distance,
    to_parse_tree,
    tree_depth,
    tree_edit_distance,
    tree_size,
)


class TestTreeConstruction:
    def test_simple_select_tree_shape(self):
        tree = to_parse_tree("SELECT name FROM lakes WHERE area_km2 > 10")
        assert tree.label == "select"
        labels = {node.label for node in tree.walk()}
        assert {"projection", "from", "where", "table", "column", "op", "literal"} <= labels

    def test_table_nodes_lowercased(self):
        tree = to_parse_tree("SELECT * FROM WaterTemp")
        tables = [node.value for node in tree.find("table")]
        assert tables == ["watertemp"]

    def test_strip_constants_replaces_literals(self):
        tree = to_parse_tree("SELECT * FROM t WHERE t.x = 5", strip_constants=True)
        literals = [node.value for node in tree.find("literal")]
        assert literals == ["?"]

    def test_join_tree(self):
        tree = to_parse_tree("SELECT * FROM a JOIN b ON a.id = b.id")
        joins = tree.find("join")
        assert len(joins) == 1
        assert joins[0].value == "inner"

    def test_group_order_limit_nodes(self):
        tree = to_parse_tree("SELECT a FROM t GROUP BY a ORDER BY a DESC LIMIT 3")
        assert tree.find("group_by")
        assert tree.find("order_by")
        assert tree.find("limit")[0].value == "3"

    def test_subquery_nested_select(self):
        tree = to_parse_tree("SELECT * FROM t WHERE t.x IN (SELECT y FROM s)")
        selects = tree.find("select")
        assert len(selects) == 2

    def test_non_select_statement_tree(self):
        tree = to_parse_tree("DELETE FROM lakes WHERE lake_id = 1")
        assert tree.label == "statement"
        assert tree.find("table")[0].value == "lakes"

    def test_tree_size_and_depth(self):
        tree = to_parse_tree("SELECT a FROM t")
        assert tree_size(tree) >= 5
        assert tree_depth(tree) >= 3

    def test_signature_includes_value(self):
        node = ParseTreeNode("table", "lakes")
        assert node.signature() == "table:lakes"
        assert ParseTreeNode("where").signature() == "where"


class TestPatternMatching:
    def test_match_single_table(self):
        tree = to_parse_tree("SELECT * FROM WaterTemp T WHERE T.temp < 18")
        assert match_pattern(tree, TreePattern(label="table", value="watertemp"))
        assert not match_pattern(tree, TreePattern(label="table", value="lakes"))

    def test_match_join_of_two_relations(self):
        tree = to_parse_tree(
            "SELECT * FROM WaterSalinity S, WaterTemp T WHERE S.loc_x = T.loc_x"
        )
        pattern = TreePattern(
            label="select",
            children=(
                TreePattern(label="table", value="watersalinity"),
                TreePattern(label="table", value="watertemp"),
            ),
        )
        assert match_pattern(tree, pattern)

    def test_match_selection_on_column(self):
        tree = to_parse_tree("SELECT * FROM WaterTemp T WHERE T.temp < 18")
        pattern = TreePattern(
            label="where",
            children=(
                TreePattern(label="op", value="<", children=(
                    TreePattern(label="column", value="t.temp"),
                )),
            ),
        )
        assert match_pattern(tree, pattern)

    def test_unordered_containment_semantics(self):
        """Pattern children may match in any order and at any depth."""
        tree = to_parse_tree(
            "SELECT * FROM a, b WHERE a.x = b.x AND a.y > 3"
        )
        pattern = TreePattern(
            label="select",
            children=(
                TreePattern(label="table", value="b"),
                TreePattern(label="table", value="a"),
                TreePattern(label="op", value=">"),
            ),
        )
        assert match_pattern(tree, pattern)

    def test_pattern_with_missing_child_fails(self):
        tree = to_parse_tree("SELECT * FROM a")
        pattern = TreePattern(
            label="select", children=(TreePattern(label="table", value="zzz"),)
        )
        assert not match_pattern(tree, pattern)

    def test_pattern_on_nested_subquery(self):
        tree = to_parse_tree("SELECT * FROM a WHERE a.x IN (SELECT b.x FROM b)")
        assert match_pattern(tree, TreePattern(label="table", value="b"))


class TestTreeEditDistance:
    def test_identical_trees_distance_zero(self):
        first = to_parse_tree("SELECT * FROM t WHERE t.a = 1")
        second = to_parse_tree("SELECT * FROM t WHERE t.a = 1")
        assert tree_edit_distance(first, second) == 0

    def test_constant_change_costs_one(self):
        first = to_parse_tree("SELECT * FROM t WHERE t.a = 1")
        second = to_parse_tree("SELECT * FROM t WHERE t.a = 2")
        assert tree_edit_distance(first, second) == 1

    def test_symmetry(self):
        first = to_parse_tree("SELECT * FROM a, b WHERE a.x = b.x")
        second = to_parse_tree("SELECT * FROM a")
        assert tree_edit_distance(first, second) == tree_edit_distance(second, first)

    def test_bigger_changes_cost_more(self):
        base = to_parse_tree("SELECT * FROM a")
        small = to_parse_tree("SELECT * FROM a WHERE a.x = 1")
        large = to_parse_tree(
            "SELECT a.x, COUNT(*) FROM a, b WHERE a.x = b.x GROUP BY a.x"
        )
        assert tree_edit_distance(base, small) < tree_edit_distance(base, large)

    def test_distance_bounded_by_sum_of_sizes(self):
        first = to_parse_tree("SELECT * FROM a")
        second = to_parse_tree("SELECT b.x FROM b WHERE b.y < 3")
        assert tree_edit_distance(first, second) <= tree_size(first) + tree_size(second)

    def test_normalized_distance_in_unit_interval(self):
        first = to_parse_tree("SELECT * FROM a")
        second = to_parse_tree("SELECT b.x, b.y FROM b, c WHERE b.k = c.k")
        value = normalized_tree_distance(first, second)
        assert 0.0 <= value <= 1.0

    def test_stripping_constants_reduces_distance(self):
        q1 = "SELECT * FROM t WHERE t.a = 1 AND t.b = 'x'"
        q2 = "SELECT * FROM t WHERE t.a = 9 AND t.b = 'y'"
        raw = tree_edit_distance(to_parse_tree(q1), to_parse_tree(q2))
        stripped = tree_edit_distance(
            to_parse_tree(q1, strip_constants=True), to_parse_tree(q2, strip_constants=True)
        )
        assert stripped < raw
        assert stripped == 0
