"""Tests for the Meta-Query Executor (all meta-query classes + access control)."""

import pytest

from repro.core.meta_query import DataCondition, FeatureCondition
from repro.errors import MetaQueryError
from repro.sql.parse_tree import TreePattern


@pytest.fixture()
def loaded_cqms(fresh_cqms):
    """A CQMS with a handful of hand-crafted queries from several users."""
    cqms = fresh_cqms
    queries = [
        ("alice", "SELECT * FROM WaterSalinity S, WaterTemp T WHERE S.loc_x = T.loc_x AND T.temp < 18"),
        ("alice", "SELECT T.temp FROM WaterTemp T WHERE T.temp < 18"),
        ("bob", "SELECT * FROM CityLocations C WHERE C.population > 100000"),
        ("bob", "SELECT L.name, T.temp FROM Lakes L, WaterTemp T WHERE L.lake_id = T.lake_id AND T.temp < 18"),
        ("carol", "SELECT * FROM Sensors N WHERE N.installed_year < 2005"),
        ("alice", "SELECT C.city FROM CityLocations C WHERE C.state = 'WA'"),
    ]
    for user, sql in queries:
        execution = cqms.submit(user, sql)
        assert execution.succeeded, execution.error
    cqms.annotate("alice", 1, "correlates salinity and temperature for Seattle lakes")
    return cqms


class TestKeywordAndSubstring:
    def test_keyword_search_matches_text(self, loaded_cqms):
        results = loaded_cqms.search_keyword("alice", "watersalinity")
        assert len(results) == 1

    def test_keyword_search_matches_annotations(self, loaded_cqms):
        results = loaded_cqms.search_keyword("alice", ["seattle", "salinity"])
        assert [record.qid for record in results] == [1]

    def test_keyword_search_requires_all_keywords(self, loaded_cqms):
        assert loaded_cqms.search_keyword("alice", ["salinity", "neverappears"]) == []

    def test_keyword_search_empty_raises(self, loaded_cqms):
        with pytest.raises(MetaQueryError):
            loaded_cqms.search_keyword("alice", [])

    def test_substring_search(self, loaded_cqms):
        results = loaded_cqms.search_substring("alice", "temp < 18")
        assert len(results) >= 2

    def test_substring_search_case_insensitive(self, loaded_cqms):
        assert loaded_cqms.search_substring("alice", "WATERTEMP")

    def test_substring_empty_raises(self, loaded_cqms):
        with pytest.raises(MetaQueryError):
            loaded_cqms.search_substring("alice", "")

    def test_limit_respected(self, loaded_cqms):
        assert len(loaded_cqms.search_substring("alice", "SELECT", limit=2)) == 2


class TestAccessControlFiltering:
    def test_group_member_sees_group_queries(self, loaded_cqms):
        # bob is in lab1 with alice: he sees alice's group-visible queries.
        results = loaded_cqms.search_substring("bob", "WaterSalinity")
        assert len(results) == 1

    def test_other_group_does_not_see(self, loaded_cqms):
        # carol is in lab2: she must not see alice's group-visible queries.
        assert loaded_cqms.search_substring("carol", "WaterSalinity") == []

    def test_admin_sees_everything(self, loaded_cqms):
        assert len(loaded_cqms.search_substring("root", "SELECT")) == 6

    def test_own_queries_always_visible(self, loaded_cqms):
        assert loaded_cqms.search_substring("carol", "Sensors")


class TestQueryByFeature:
    def test_tables_all(self, loaded_cqms):
        condition = FeatureCondition(tables_all=["watersalinity", "watertemp"])
        results = loaded_cqms.search_features("alice", condition)
        assert [record.qid for record in results] == [1]

    def test_tables_any(self, loaded_cqms):
        condition = FeatureCondition(tables_any=["citylocations", "sensors"])
        results = loaded_cqms.search_features("root", condition)
        assert len(results) == 3

    def test_attributes_condition(self, loaded_cqms):
        condition = FeatureCondition(attributes=[("temp", "watertemp")])
        results = loaded_cqms.search_features("root", condition)
        assert len(results) == 3

    def test_predicates_on_with_operator(self, loaded_cqms):
        condition = FeatureCondition(predicates_on=[("temp", "watertemp", "<")])
        assert len(loaded_cqms.search_features("root", condition)) == 3
        condition = FeatureCondition(predicates_on=[("temp", "watertemp", ">")])
        assert loaded_cqms.search_features("root", condition) == []

    def test_author_and_kind(self, loaded_cqms):
        condition = FeatureCondition(author="bob", statement_kind="select")
        assert len(loaded_cqms.search_features("root", condition)) == 2

    def test_cardinality_bounds(self, loaded_cqms):
        condition = FeatureCondition(min_cardinality=1)
        results = loaded_cqms.search_features("root", condition)
        assert all(record.runtime.result_cardinality >= 1 for record in results)

    def test_text_contains(self, loaded_cqms):
        condition = FeatureCondition(text_contains="population")
        assert len(loaded_cqms.search_features("root", condition)) == 1

    def test_feature_sql_figure1(self, loaded_cqms):
        sql = (
            "SELECT Q.qid, Q.qText FROM Queries Q, Attributes A1, Attributes A2 "
            "WHERE Q.qid = A1.qid AND Q.qid = A2.qid "
            "AND A1.attrName = 'salinity' AND A1.relName = 'watersalinity' "
            "AND A2.attrName = 'temp' AND A2.relName = 'watertemp'"
        )
        results = loaded_cqms.search_sql("alice", sql)
        # qid 1 references both loc_x/temp; salinity attribute appears via S.loc_x?  It must
        # match only queries that actually touch both attributes.
        assert all(
            "watersalinity" in record.features.tables for record in results
        )

    def test_feature_sql_requires_qid_column(self, loaded_cqms):
        with pytest.raises(MetaQueryError):
            loaded_cqms.search_sql("alice", "SELECT qText FROM Queries")

    def test_generate_feature_sql_from_partial(self, loaded_cqms):
        sql = loaded_cqms.meta_query.generate_feature_sql(
            "SELECT FROM WaterSalinity, WaterTemp"
        )
        assert "DataSources" in sql
        assert "watersalinity" in sql and "watertemp" in sql

    def test_generate_feature_sql_includes_attributes(self, loaded_cqms):
        sql = loaded_cqms.meta_query.generate_feature_sql(
            "SELECT T.temp FROM WaterTemp T WHERE T.temp < 18"
        )
        assert "Attributes" in sql and "'temp'" in sql

    def test_generate_feature_sql_no_tables_raises(self, loaded_cqms):
        with pytest.raises(MetaQueryError):
            loaded_cqms.meta_query.generate_feature_sql("SELECT 1 + 1")

    def test_find_queries_like_partial_end_to_end(self, loaded_cqms):
        results = loaded_cqms.search_like_partial(
            "alice", "SELECT FROM WaterSalinity, WaterTemp"
        )
        assert [record.qid for record in results] == [1]


class TestQueryByParseTree:
    def test_structural_match_on_table(self, loaded_cqms):
        pattern = TreePattern(label="table", value="sensors")
        results = loaded_cqms.search_parse_tree("root", pattern)
        assert len(results) == 1

    def test_structural_match_join_and_predicate(self, loaded_cqms):
        pattern = TreePattern(
            label="select",
            children=(
                TreePattern(label="table", value="lakes"),
                TreePattern(label="table", value="watertemp"),
                TreePattern(label="op", value="<"),
            ),
        )
        results = loaded_cqms.search_parse_tree("root", pattern)
        assert [record.qid for record in results] == [4]

    def test_no_match(self, loaded_cqms):
        pattern = TreePattern(label="table", value="nonexistent")
        assert loaded_cqms.search_parse_tree("root", pattern) == []

    def test_limit(self, loaded_cqms):
        pattern = TreePattern(label="select")
        assert len(loaded_cqms.search_parse_tree("root", pattern, limit=2)) == 2


class TestQueryByData:
    def test_include_value(self, loaded_cqms):
        condition = DataCondition(include_values=["Lake Washington"])
        results = loaded_cqms.search_by_data("root", condition)
        assert results
        for record in results:
            assert record.output.contains_value("Lake Washington")

    def test_include_and_exclude(self, loaded_cqms):
        condition = DataCondition(
            include_values=["Lake Washington"], exclude_values=["Lake Union"]
        )
        results = loaded_cqms.search_by_data("root", condition)
        # Only the temp < 18 join query distinguishes the two lakes (paper example).
        assert [record.qid for record in results] == [4]

    def test_exclude_only(self, loaded_cqms):
        condition = DataCondition(exclude_values=["NeverAValue"])
        results = loaded_cqms.search_by_data("root", condition)
        assert results  # every query with output qualifies

    def test_queries_without_output_not_matched(self, loaded_cqms):
        condition = DataCondition(include_values=["anything"])
        results = loaded_cqms.search_by_data("root", condition)
        assert all(record.output is not None for record in results)


class TestKnn:
    def test_knn_returns_similar_first(self, loaded_cqms):
        results = loaded_cqms.similar_queries(
            "root", "SELECT * FROM WaterSalinity S, WaterTemp T WHERE T.temp < 20", k=3
        )
        assert results
        assert results[0].qid == 1

    def test_knn_respects_access_control(self, loaded_cqms):
        results = loaded_cqms.similar_queries(
            "carol", "SELECT * FROM WaterSalinity S, WaterTemp T WHERE T.temp < 20", k=5
        )
        assert all(record.user == "carol" or record.visibility == "public" for record in results)

    def test_knn_exclude_qids(self, loaded_cqms):
        results = loaded_cqms.meta_query.knn(
            "root", "SELECT * FROM WaterTemp T WHERE T.temp < 18", k=5, exclude_qids={2}
        )
        assert all(record.qid != 2 for record in results)

    def test_knn_ranked_returns_scores(self, loaded_cqms):
        ranked = loaded_cqms.meta_query.knn(
            "root", "SELECT * FROM WaterTemp T WHERE T.temp < 18", k=3, ranked=True
        )
        assert all(0.0 <= item.score <= 1.0 for item in ranked)
        scores = [item.score for item in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_knn_probe_by_qid(self, loaded_cqms):
        results = loaded_cqms.meta_query.knn("root", 1, k=3, exclude_qids={1})
        assert results

    def test_knn_with_unparseable_probe(self, loaded_cqms):
        assert loaded_cqms.meta_query.knn("root", "complete nonsense ~~~", k=3) == []

    def test_knn_unsupported_probe_type_raises(self, loaded_cqms):
        with pytest.raises(MetaQueryError):
            loaded_cqms.meta_query.knn("root", 3.14, k=3)
