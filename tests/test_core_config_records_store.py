"""Tests for CQMS configuration, query records, and the Query Storage."""

import pytest

from repro.core.config import CQMSConfig
from repro.core.query_store import QueryStore
from repro.core.records import LoggedQuery, OutputSummary, RuntimeStats
from repro.errors import MetaQueryError
from repro.sql.canonicalize import canonical_text
from repro.sql.features import extract_features


def make_record(qid, sql="SELECT * FROM WaterTemp T WHERE T.temp < 18", user="alice",
                group="lab1", timestamp=0.0, **kwargs):
    record = LoggedQuery(
        qid=qid,
        user=user,
        group=group,
        text=sql,
        timestamp=timestamp,
        canonical_text=canonical_text(sql),
        template_text=canonical_text(sql, strip_constants=True),
        features=extract_features(sql),
        **kwargs,
    )
    return record


class TestConfig:
    def test_default_config_is_valid(self):
        CQMSConfig().validate()

    def test_invalid_profiling_mode(self):
        config = CQMSConfig(profiling_mode="everything")
        with pytest.raises(ValueError):
            config.validate()

    def test_invalid_visibility(self):
        with pytest.raises(ValueError):
            CQMSConfig(default_visibility="everyone").validate()

    def test_invalid_session_gap(self):
        with pytest.raises(ValueError):
            CQMSConfig(session_gap_seconds=0).validate()

    def test_invalid_support(self):
        with pytest.raises(ValueError):
            CQMSConfig(rule_min_support=2.0).validate()

    def test_invalid_knn_k(self):
        with pytest.raises(ValueError):
            CQMSConfig(knn_default_k=0).validate()

    def test_feature_weights_default_present(self):
        config = CQMSConfig()
        assert "tables" in config.feature_weights


class TestRecords:
    def test_feature_tokens_empty_without_features(self):
        record = LoggedQuery(qid=1, user="a", group="g", text="x", timestamp=0.0)
        assert record.feature_tokens() == []
        assert record.feature_sets() == {}
        assert record.tables == []

    def test_feature_sets_keys(self):
        record = make_record(1)
        assert set(record.feature_sets()) == {
            "tables", "joins", "predicates", "projections", "group_by", "aggregates",
        }

    def test_describe_truncates(self):
        record = make_record(1, sql="SELECT * FROM WaterTemp WHERE " + "temp < 18 AND " * 30 + "1 = 1")
        assert len(record.describe(max_length=50)) == 50
        assert record.describe(max_length=50).endswith("...")

    def test_output_summary_contains(self):
        output = OutputSummary(columns=["name"], rows=[("Lake Washington",), ("Green Lake",)])
        assert output.contains(("Green Lake",))
        assert output.contains_value("Lake Washington")
        assert not output.contains_value("Lake Union")

    def test_runtime_defaults(self):
        stats = RuntimeStats()
        assert stats.succeeded is True and stats.error is None


class TestQueryStoreBasics:
    def test_add_and_get(self):
        store = QueryStore()
        record = make_record(store.next_qid())
        store.add(record)
        assert store.get(record.qid) is record
        assert len(store) == 1
        assert record.qid in store

    def test_duplicate_qid_rejected(self):
        store = QueryStore()
        record = make_record(1)
        store.add(record)
        with pytest.raises(MetaQueryError):
            store.add(make_record(1))

    def test_unknown_qid_raises(self):
        with pytest.raises(MetaQueryError):
            QueryStore().get(99)

    def test_all_queries_sorted_by_qid(self):
        store = QueryStore()
        store.add(make_record(2))
        store.add(make_record(1, sql="SELECT * FROM Lakes"))
        assert [record.qid for record in store.all_queries()] == [1, 2]

    def test_queries_of_user_and_group(self):
        store = QueryStore()
        store.add(make_record(1, user="alice", group="lab1"))
        store.add(make_record(2, user="bob", group="lab2"))
        assert [r.qid for r in store.queries_of_user("alice")] == [1]
        assert [r.qid for r in store.queries_of_group("lab2")] == [2]

    def test_select_queries_filters_dml(self):
        store = QueryStore()
        store.add(make_record(1))
        dml = LoggedQuery(
            qid=2, user="a", group="g", text="DELETE FROM Lakes", timestamp=0.0,
            statement_kind="delete",
        )
        store.add(dml)
        assert [r.qid for r in store.select_queries()] == [1]


class TestFeatureRelations:
    def test_feature_relations_populated(self):
        store = QueryStore()
        record = make_record(
            1,
            sql=(
                "SELECT S.salinity, T.temp FROM WaterSalinity S, WaterTemp T "
                "WHERE S.loc_x = T.loc_x AND T.temp < 18"
            ),
        )
        store.add(record)
        sources = store.execute_meta_sql("SELECT relName FROM DataSources WHERE qid = 1")
        assert set(sources.column("relName")) == {"watersalinity", "watertemp"}
        predicates = store.execute_meta_sql("SELECT attrName, op FROM Predicates WHERE qid = 1")
        assert ("temp", "<") in predicates.rows
        joins = store.execute_meta_sql("SELECT leftAttr FROM Joins WHERE qid = 1")
        assert joins.rows
        projections = store.execute_meta_sql("SELECT attrName FROM Projections WHERE qid = 1")
        assert set(projections.column("attrName")) == {"salinity", "temp"}

    def test_figure1_meta_query_over_relations(self):
        store = QueryStore()
        store.add(make_record(1, sql=(
            "SELECT * FROM WaterSalinity S, WaterTemp T "
            "WHERE S.salinity > 0.1 AND T.temp < 18"
        )))
        store.add(make_record(2, sql="SELECT * FROM CityLocations"))
        result = store.execute_meta_sql(
            "SELECT Q.qid, Q.qText FROM Queries Q, Attributes A1, Attributes A2 "
            "WHERE Q.qid = A1.qid AND Q.qid = A2.qid "
            "AND A1.attrName = 'salinity' AND A1.relName = 'watersalinity' "
            "AND A2.attrName = 'temp' AND A2.relName = 'watertemp'"
        )
        assert result.column("qid") == [1]

    def test_output_samples_stored(self):
        store = QueryStore()
        record = make_record(1)
        record.output = OutputSummary(columns=["name"], rows=[("Lake Washington",)], total_rows=1)
        store.add(record)
        samples = store.execute_meta_sql("SELECT cellValue FROM OutputSamples WHERE qid = 1")
        assert samples.column("cellValue") == ["Lake Washington"]

    def test_runtime_stats_stored(self):
        store = QueryStore()
        record = make_record(1)
        record.runtime = RuntimeStats(elapsed_seconds=1.5, result_cardinality=7, rows_scanned=40)
        store.add(record)
        stats = store.execute_meta_sql("SELECT cardinality FROM RuntimeStats WHERE qid = 1")
        assert stats.scalar() == 7

    def test_remove_deletes_all_shredded_rows(self):
        store = QueryStore()
        store.add(make_record(1))
        store.remove(1)
        assert len(store) == 0
        for table in ("Queries", "DataSources", "Attributes", "Predicates"):
            assert store.execute_meta_sql(f"SELECT * FROM {table} WHERE qid = 1").rows == []

    def test_meta_sql_unconstrained(self):
        store = QueryStore()
        store.add(make_record(1))
        assert store.execute_meta_sql("SELECT COUNT(*) FROM Queries").scalar() == 1


class TestAnnotationsAndFlags:
    def test_add_annotation(self):
        store = QueryStore()
        store.add(make_record(1))
        store.add_annotation(1, author="bob", body="finds cool lakes", timestamp=5.0)
        assert store.annotations_for(1) == ["finds cool lakes"]
        rows = store.execute_meta_sql("SELECT author, body FROM Annotations WHERE qid = 1").rows
        assert rows == [("bob", "finds cool lakes")]

    def test_mark_invalid_and_valid(self):
        store = QueryStore()
        store.add(make_record(1))
        store.mark_invalid(1, reason="missing relation")
        assert store.get(1).flagged_invalid
        assert store.execute_meta_sql("SELECT valid FROM Queries WHERE qid = 1").scalar() is False
        store.mark_valid(1)
        assert not store.get(1).flagged_invalid

    def test_replace_text_keeps_annotations_and_session(self):
        store = QueryStore()
        record = make_record(1)
        record.session_id = 7
        store.add(record)
        store.add_annotation(1, "alice", "note")
        new_sql = "SELECT * FROM WaterTemp T WHERE T.temp < 20"
        store.replace_text(
            1, new_sql, extract_features(new_sql), canonical_text(new_sql),
            canonical_text(new_sql, strip_constants=True),
        )
        updated = store.get(1)
        assert updated.text == new_sql
        assert updated.annotations == ["note"]
        assert updated.session_id == 7
        assert not updated.flagged_invalid


class TestPopularity:
    def test_popularity_counts_canonical_duplicates(self):
        store = QueryStore()
        store.add(make_record(1, sql="SELECT * FROM Lakes WHERE state = 'WA'"))
        store.add(make_record(2, sql="select * from lakes where state = 'WA'"))
        store.add(make_record(3, sql="SELECT * FROM Lakes WHERE state = 'MI'"))
        popularity = store.popularity()
        assert max(popularity.values()) == 2

    def test_table_popularity(self):
        store = QueryStore()
        store.add(make_record(1, sql="SELECT * FROM Lakes"))
        store.add(make_record(2, sql="SELECT * FROM Lakes L, WaterTemp T WHERE L.lake_id = T.lake_id"))
        popularity = store.table_popularity()
        assert popularity["lakes"] == 2
        assert popularity["watertemp"] == 1
