"""End-to-end integration tests of the CQMS facade across all interaction modes."""

import pytest

from repro import CQMS, CQMSConfig, SimulatedClock, build_database
from repro.core.meta_query import DataCondition, FeatureCondition
from repro.errors import AccessControlError
from repro.workloads import QueryLogGenerator, WorkloadConfig
from repro.workloads.evolution import apply_scenario, evolution_scenario


class TestTraditionalMode:
    def test_submit_executes_and_logs(self, fresh_cqms):
        execution = fresh_cqms.submit("alice", "SELECT COUNT(*) FROM Lakes")
        assert execution.succeeded
        assert execution.result.scalar() == 8
        assert len(fresh_cqms.store) == 1

    def test_submit_unknown_user_raises(self, fresh_cqms):
        with pytest.raises(AccessControlError):
            fresh_cqms.submit("mallory", "SELECT 1")

    def test_failed_query_reports_error(self, fresh_cqms):
        execution = fresh_cqms.submit("alice", "SELECT * FROM NotThere")
        assert not execution.succeeded
        assert execution.error

    def test_annotate_requires_visibility(self, fresh_cqms):
        fresh_cqms.submit("carol", "SELECT * FROM Lakes", visibility="private")
        with pytest.raises(AccessControlError):
            fresh_cqms.annotate("alice", 1, "I should not see this")
        fresh_cqms.annotate("carol", 1, "my own note")
        assert fresh_cqms.store.annotations_for(1) == ["my own note"]

    def test_simulated_clock_drives_timestamps(self, fresh_cqms):
        fresh_cqms.clock.advance(1000)
        execution = fresh_cqms.submit("alice", "SELECT * FROM Lakes")
        assert execution.record.timestamp == pytest.approx(1000.0)

    def test_profiling_mode_off_via_config(self):
        clock = SimulatedClock()
        db = build_database("limnology", clock=clock)
        cqms = CQMS(db, CQMSConfig(profiling_mode="off"), clock=clock)
        cqms.register_user("alice", "lab1")
        cqms.submit("alice", "SELECT * FROM Lakes")
        assert len(cqms.store) == 0


class TestWorkloadReplay:
    def test_replay_registers_users_and_annotations(self):
        clock = SimulatedClock()
        db = build_database("limnology", clock=clock)
        cqms = CQMS(db, clock=clock)
        log = QueryLogGenerator(
            WorkloadConfig(num_sessions=10, seed=11, annotation_probability=1.0)
        ).generate()
        submitted = cqms.replay_workload(log)
        assert submitted == len(log)
        assert len(cqms.store) == len(log)
        assert any(record.annotations for record in cqms.store.all_queries())
        # The clock followed the last event.
        assert cqms.clock.now >= log[-1].timestamp

    def test_replay_with_periodic_mining(self):
        clock = SimulatedClock()
        db = build_database("limnology", clock=clock)
        cqms = CQMS(db, clock=clock)
        log = QueryLogGenerator(WorkloadConfig(num_sessions=8, seed=3)).generate()
        cqms.replay_workload(log, run_miner_every=10)
        assert cqms.miner.last_report is not None


class TestSearchAndBrowseMode:
    def test_all_search_paths_work_together(self, replayed_cqms):
        cqms = replayed_cqms
        user = cqms.store.all_queries()[0].user
        assert cqms.search_keyword(user, "watertemp") or cqms.search_keyword(user, "citylocations")
        assert cqms.search_substring(user, "SELECT")
        assert cqms.search_features(
            user, FeatureCondition(tables_any=["watertemp", "citylocations"])
        )
        results = cqms.search_by_data("root", DataCondition(exclude_values=["__nope__"]))
        assert results

    def test_figure1_flow_on_real_log(self, replayed_cqms):
        cqms = replayed_cqms
        results = cqms.search_like_partial("root", "SELECT FROM WaterSalinity, WaterTemp")
        assert results
        for record in results:
            assert {"watersalinity", "watertemp"} <= set(record.features.tables)

    def test_browser_session_graph_renders(self, replayed_cqms):
        from repro.client import render_session_graph

        report = replayed_cqms.miner.last_report
        session = max(report.sessions, key=len)
        text = render_session_graph(session, replayed_cqms.store)
        assert f"Session {session.session_id}" in text
        assert text.count("[q") == len(session.qids)


class TestAssistedMode:
    def test_assist_bundle(self, replayed_cqms):
        user = replayed_cqms.store.all_queries()[0].user
        response = replayed_cqms.assist(user, "SELECT * FROM WaterSalinity S, ")
        assert response.has_content
        tables = [s.text for s in response.completions["tables"]]
        assert "watertemp" in tables

    def test_correct_flow_with_empty_result(self, fresh_cqms):
        cqms = fresh_cqms
        cqms.submit("alice", "SELECT * FROM WaterTemp T WHERE T.temp < 17")
        corrections = cqms.correct("alice", "SELECT * FROM WaterTemp T WHERE T.temp < 1")
        assert any(correction.kind == "predicate" for correction in corrections)

    def test_correct_flow_with_typo(self, fresh_cqms):
        corrections = fresh_cqms.correct("alice", "SELECT * FROM WatrTemp")
        assert any(correction.kind == "table_name" for correction in corrections)

    def test_recommend_after_mining(self, replayed_cqms):
        user = replayed_cqms.store.all_queries()[0].user
        recommendations = replayed_cqms.recommend(
            user, "SELECT * FROM WaterTemp T WHERE T.temp < 20", k=3
        )
        assert recommendations


class TestAdministrativeMode:
    def test_maintenance_after_evolution_scenario(self):
        clock = SimulatedClock()
        db = build_database("limnology", clock=clock)
        cqms = CQMS(db, clock=clock)
        log = QueryLogGenerator(WorkloadConfig(num_sessions=30, seed=17)).generate()
        cqms.replay_workload(log)
        steps = evolution_scenario("limnology")
        apply_scenario(db, steps)
        report = cqms.run_maintenance()
        # Some queries are broken by the scenario; renames are repaired, drops flagged.
        assert report.checked > 0
        assert report.num_repaired + report.num_flagged > 0
        for qid in report.repaired:
            repaired = cqms.store.get(qid)
            assert cqms.database.execute(repaired.text) is not None

    def test_full_lifecycle(self, fresh_cqms):
        """Submit → annotate → mine → search → recommend → evolve → maintain → purge."""
        cqms = fresh_cqms
        for _ in range(2):
            cqms.submit("alice", "SELECT S.salinity, T.temp FROM WaterSalinity S, WaterTemp T "
                                 "WHERE S.loc_x = T.loc_x AND T.temp < 18")
            cqms.clock.advance(30)
        cqms.submit("bob", "SELECT * FROM CityLocations C WHERE C.population > 50000")
        cqms.annotate("alice", 1, "salinity vs temperature")
        mining = cqms.run_miner()
        assert mining.num_sessions >= 2
        assert cqms.search_keyword("bob", "salinity")  # group visibility
        recommendations = cqms.recommend("bob", "SELECT * FROM WaterSalinity S", k=2)
        assert recommendations
        cqms.database.execute("ALTER TABLE CityLocations DROP COLUMN population")
        maintenance = cqms.run_maintenance()
        assert 3 in maintenance.flagged
        cqms.config.drop_invalid_after_flags = 1
        purge = cqms.admin().purge_invalid("root")
        assert 3 in purge.dropped
        assert len(cqms.store) == 2
