"""Query-log linting end to end: ``QueryStore.lint_log`` auto-populating
``Queries.invalidReason``, the append-safe ``mark_invalid``, the CQMS
query-health panel, and the ``python -m repro.analysis`` CLI."""

import pytest

from repro.analysis.framework import Severity
from repro.analysis.__main__ import main as analysis_main
from repro.client.workbench import Workbench
from repro.core.cqms import CQMS
from repro.core.query_store import QueryStore
from repro.core.records import LoggedQuery
from repro.errors import MetaQueryError
from repro.sql.canonicalize import canonical_text
from repro.sql.features import extract_features
from repro.workloads.schemas import build_database

VALID_SQL = "SELECT T.temp FROM WaterTemp T WHERE T.temp < 18"
UNKNOWN_COLUMN_SQL = "SELECT T.wetness FROM WaterTemp T"
CARTESIAN_SQL = (
    "SELECT S.salinity, T.temp FROM WaterSalinity S, WaterTemp T WHERE T.temp < 18"
)


def make_record(qid, sql=VALID_SQL, user="alice", group="lab1", timestamp=0.0):
    return LoggedQuery(
        qid=qid,
        user=user,
        group=group,
        text=sql,
        timestamp=timestamp,
        canonical_text=canonical_text(sql),
        template_text=canonical_text(sql, strip_constants=True),
        features=extract_features(sql),
    )


@pytest.fixture
def database():
    return build_database("limnology")


@pytest.fixture
def store(database):
    store = QueryStore(schema_columns=database.schema_columns())
    store.add(make_record(1, VALID_SQL))
    store.add(make_record(2, UNKNOWN_COLUMN_SQL, user="bob"))
    store.add(make_record(3, CARTESIAN_SQL, user="bob", timestamp=1.0))
    return store


class TestLintLog:
    def test_seeded_invalid_queries_flagged(self, store):
        findings = store.lint_log()
        assert 2 in findings and 3 in findings
        assert store.get(2).flagged_invalid
        assert "wetness" in store.get(2).invalid_reason
        assert store.get(3).flagged_invalid
        assert "cartesian" in store.get(3).invalid_reason.lower()

    def test_valid_queries_untouched(self, store):
        store.lint_log()
        record = store.get(1)
        assert not record.flagged_invalid
        assert record.invalid_reason is None
        assert record.flag_count == 0

    def test_invalid_reason_lands_in_meta_relation(self, store):
        store.lint_log()
        result = store.execute_meta_sql(
            "SELECT valid, invalidReason FROM Queries WHERE qid = 2"
        )
        (valid, reason), = result.rows
        assert valid is False
        assert "wetness" in reason

    def test_mark_false_reports_without_flagging(self, store):
        findings = store.lint_log(mark=False)
        assert 2 in findings
        assert not store.get(2).flagged_invalid

    def test_catalog_view_adds_type_rules(self, database, store):
        store.add(make_record(4, "SELECT name FROM Lakes WHERE area_km2 > 'large'"))
        names_only = store.lint_log(mark=False)
        with_catalog = store.lint_log(
            catalog=database.catalog, table_provider=database, mark=False
        )
        assert 4 not in names_only
        assert any(d.rule == "type-mismatch" for d in with_catalog[4])

    def test_composes_with_user_flags(self, store):
        store.mark_invalid(2, "bob: looks wrong")
        store.lint_log()
        reason = store.get(2).invalid_reason
        assert reason.startswith("bob: looks wrong; ")
        assert "wetness" in reason

    def test_lint_log_without_schema_raises(self):
        store = QueryStore()
        store.add(make_record(1))
        with pytest.raises(MetaQueryError):
            store.lint_log()


class TestMarkInvalidAppendSafe:
    def test_same_reason_twice_not_duplicated(self, store):
        store.mark_invalid(1, "missing relation")
        store.mark_invalid(1, "missing relation")
        record = store.get(1)
        assert record.invalid_reason == "missing relation"
        assert record.flag_count == 2

    def test_distinct_reasons_compose(self, store):
        store.mark_invalid(1, "missing relation")
        store.mark_invalid(1, "stale snapshot")
        assert store.get(1).invalid_reason == "missing relation; stale snapshot"

    def test_relint_is_idempotent(self, store):
        store.lint_log()
        first = store.get(2).invalid_reason
        store.lint_log()
        assert store.get(2).invalid_reason == first

    def test_flag_count_reaches_meta_relation(self, store):
        store.mark_invalid(1, "missing relation")
        store.mark_invalid(1, "missing relation")
        assert (
            store.execute_meta_sql(
                "SELECT flagCount FROM Queries WHERE qid = 1"
            ).scalar()
            == 2
        )


class TestQueryHealth:
    @pytest.fixture
    def cqms(self, database):
        cqms = CQMS(database)
        cqms.register_user("alice", "lab1")
        cqms.register_user("bob", "lab1")
        cqms.submit("alice", VALID_SQL)
        cqms.store.add(make_record(101, UNKNOWN_COLUMN_SQL, user="bob"))
        cqms.store.add(make_record(102, "SELECT * FROM Lakes", user="bob"))
        return cqms

    def test_cqms_lint_log_flags_errors(self, cqms):
        findings = cqms.lint_log()
        assert 101 in findings
        assert cqms.store.get(101).flagged_invalid

    def test_query_health_counts(self, cqms):
        health = cqms.query_health()
        assert health["bob"]["queries"] == 2
        assert health["bob"]["errors"] >= 1
        assert health["bob"]["info"] >= 1  # SELECT *
        assert health["alice"]["errors"] == 0
        assert health["bob"]["examples"]

    def test_health_never_marks(self, cqms):
        cqms.query_health()
        assert not cqms.store.get(101).flagged_invalid

    def test_workbench_panel_renders(self, cqms):
        panel = Workbench(cqms=cqms, user="alice").query_health_panel()
        assert "=== Query health ===" in panel
        assert "alice" in panel and "bob" in panel

    def test_empty_panel(self, database):
        cqms = CQMS(database)
        panel = Workbench(cqms=cqms, user="alice").query_health_panel()
        assert "(no logged queries)" in panel


class TestCli:
    def test_lint_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "fine.py").write_text("def add(a, b):\n    return a + b\n")
        assert analysis_main(["lint", str(tmp_path)]) == 0

    def test_lint_hazard_exits_one(self, tmp_path, capsys):
        (tmp_path / "storage").mkdir()
        (tmp_path / "storage" / "bad.py").write_text(
            "import time\n\ndef stamp():\n    return time.time()\n"
        )
        assert analysis_main(["lint", str(tmp_path)]) == 1
        assert "wall-clock" in capsys.readouterr().out

    def test_lint_sql_invalid_exits_one(self, capsys):
        assert analysis_main(["lint-sql", UNKNOWN_COLUMN_SQL]) == 1
        assert "unknown-column" in capsys.readouterr().out

    def test_lint_sql_valid_exits_zero(self, capsys):
        assert analysis_main(["lint-sql", VALID_SQL]) == 0

    def test_verify_plans_small_corpus(self, capsys):
        assert (
            analysis_main(
                ["verify-plans", "--domains", "limnology", "--sessions", "6"]
            )
            == 0
        )
        assert "verified" in capsys.readouterr().out
