"""Tests for the browser, administrative interaction, and tutorial generation."""

import pytest

from repro.errors import AccessControlError


@pytest.fixture()
def busy_cqms(fresh_cqms):
    cqms = fresh_cqms
    cqms.submit("alice", "SELECT * FROM WaterTemp T WHERE T.temp < 18")
    cqms.clock.advance(60)
    cqms.submit("alice", "SELECT * FROM WaterSalinity S, WaterTemp T WHERE T.temp < 18")
    cqms.clock.advance(5000)
    cqms.submit("alice", "SELECT * FROM CityLocations C WHERE C.population > 100000")
    cqms.clock.advance(60)
    cqms.submit("bob", "SELECT * FROM Lakes L WHERE L.area_km2 > 10")
    cqms.submit("carol", "SELECT * FROM Sensors", visibility="private")
    cqms.annotate("alice", 2, "correlate salinity with temperature")
    cqms.run_miner()
    return cqms


class TestBrowser:
    def test_my_queries_most_recent_first(self, busy_cqms):
        browser = busy_cqms.browser()
        mine = browser.my_queries("alice")
        assert [record.qid for record in mine] == [3, 2, 1]

    def test_my_queries_limit(self, busy_cqms):
        assert len(busy_cqms.browser().my_queries("alice", limit=2)) == 2

    def test_visible_queries_respect_acl(self, busy_cqms):
        visible_to_bob = busy_cqms.browser().visible_queries("bob")
        assert {record.user for record in visible_to_bob} == {"alice", "bob"}
        visible_to_alice = busy_cqms.browser().visible_queries("alice")
        assert all(record.user != "carol" for record in visible_to_alice)

    def test_ranked_log_returns_limit(self, busy_cqms):
        ranked = busy_cqms.browser().ranked_log("alice", limit=3)
        assert len(ranked) == 3

    def test_sessions_of_user(self, busy_cqms):
        report = busy_cqms.miner.last_report
        browser = busy_cqms.browser()
        alice_sessions = browser.sessions_of("alice", report.sessions, user="alice")
        assert len(alice_sessions) == 2
        assert all(session.user == "alice" for session in alice_sessions)

    def test_sessions_hidden_from_other_groups(self, busy_cqms):
        report = busy_cqms.miner.last_report
        browser = busy_cqms.browser()
        carol_view = browser.sessions_of("carol", report.sessions, user="alice")
        assert carol_view == []

    def test_session_summary_contents(self, busy_cqms):
        report = busy_cqms.miner.last_report
        session = next(s for s in report.sessions if s.user == "alice" and len(s) == 2)
        summary = busy_cqms.browser().summarize_session(session)
        assert summary.num_queries == 2
        assert summary.final_query
        assert any("table" in step for step in summary.steps)
        assert "correlate salinity with temperature" in summary.annotations


class TestUserAdministration:
    def test_owner_can_delete_own_query(self, busy_cqms):
        admin = busy_cqms.admin()
        admin.delete_query("alice", 1)
        assert 1 not in busy_cqms.store

    def test_non_owner_cannot_delete(self, busy_cqms):
        with pytest.raises(AccessControlError):
            busy_cqms.admin().delete_query("bob", 1)

    def test_admin_can_delete_any(self, busy_cqms):
        busy_cqms.admin().delete_query("root", 1)
        assert 1 not in busy_cqms.store

    def test_set_visibility(self, busy_cqms):
        admin = busy_cqms.admin()
        admin.set_visibility("carol", 5, "public")
        assert busy_cqms.store.get(5).visibility == "public"
        # Now everyone can see it.
        assert busy_cqms.access_control.can_see("alice", busy_cqms.store.get(5))

    def test_set_visibility_rejects_stranger(self, busy_cqms):
        with pytest.raises(AccessControlError):
            busy_cqms.admin().set_visibility("bob", 5, "public")

    def test_share_and_unshare(self, busy_cqms):
        admin = busy_cqms.admin()
        admin.share_query("carol", 5, "alice")
        assert busy_cqms.access_control.can_see("alice", busy_cqms.store.get(5))
        admin.unshare_query("carol", 5, "alice")
        assert not busy_cqms.access_control.can_see("alice", busy_cqms.store.get(5))


class TestSystemAdministration:
    def test_non_admin_rejected(self, busy_cqms):
        with pytest.raises(AccessControlError):
            busy_cqms.admin().run_miner("alice")
        with pytest.raises(AccessControlError):
            busy_cqms.admin().set_parameter("alice", "knn_default_k", 5)

    def test_set_ranking_weight(self, busy_cqms):
        busy_cqms.admin().set_ranking_weight("root", "popularity", 0.9)
        assert busy_cqms.config.ranking.popularity == 0.9

    def test_set_ranking_weight_validation(self, busy_cqms):
        with pytest.raises(ValueError):
            busy_cqms.admin().set_ranking_weight("root", "nonsense", 0.5)
        with pytest.raises(ValueError):
            busy_cqms.admin().set_ranking_weight("root", "popularity", -1)

    def test_set_feature_weight_excludes_class(self, busy_cqms):
        busy_cqms.admin().set_feature_weight("root", "predicates", 0.0)
        assert busy_cqms.config.feature_weights["predicates"] == 0.0

    def test_set_parameter_validates_config(self, busy_cqms):
        busy_cqms.admin().set_parameter("root", "knn_default_k", 20)
        assert busy_cqms.config.knn_default_k == 20
        with pytest.raises(ValueError):
            busy_cqms.admin().set_parameter("root", "knn_default_k", 0)
        with pytest.raises(ValueError):
            busy_cqms.admin().set_parameter("root", "no_such_param", 1)

    def test_run_miner_and_maintenance_as_admin(self, busy_cqms):
        mining = busy_cqms.admin().run_miner("root")
        assert mining.num_queries > 0
        maintenance = busy_cqms.admin().run_maintenance("root")
        assert maintenance.flagged == []

    def test_mark_obsolete_and_purge(self, busy_cqms):
        admin = busy_cqms.admin()
        busy_cqms.config.drop_invalid_after_flags = 1
        admin.mark_obsolete("root", 4, reason="superseded")
        assert busy_cqms.store.get(4).flagged_invalid
        report = admin.purge_invalid("root")
        assert 4 in report.dropped

    def test_overview(self, busy_cqms):
        overview = busy_cqms.admin().overview("root")
        assert overview.num_queries == 5
        assert overview.num_users == 3
        assert overview.num_annotated == 1
        assert overview.table_popularity
        with pytest.raises(AccessControlError):
            busy_cqms.admin().overview("alice")


class TestTutorial:
    def test_tutorial_sections_cover_relations(self, busy_cqms):
        sections = busy_cqms.tutorial()
        titles = [section.title for section in sections]
        assert any("watertemp" in title.lower() for title in titles)

    def test_tutorial_sections_ordered_by_popularity(self, busy_cqms):
        sections = busy_cqms.tutorial()
        first_relation = sections[0].title.replace("Relation ", "")
        popularity = busy_cqms.store.table_popularity()
        assert popularity[first_relation] == max(popularity.values())

    def test_tutorial_max_relations(self, busy_cqms):
        sections = busy_cqms.tutorial(max_relations=2)
        relation_sections = [s for s in sections if s.title.startswith("Relation ")]
        assert len(relation_sections) == 2

    def test_tutorial_examples_and_annotations(self, busy_cqms):
        sections = busy_cqms.tutorial()
        salinity_section = next(s for s in sections if "watersalinity" in s.title)
        assert salinity_section.example_queries
        assert any("correlate salinity" in example for example in salinity_section.example_queries)

    def test_tutorial_includes_mistakes_section_when_corrections_exist(self, busy_cqms):
        busy_cqms.correction.correct_names("SELECT * FROM WaterSalinty")
        sections = busy_cqms.tutorial()
        assert any("mistakes" in section.title.lower() for section in sections)

    def test_tutorial_render_is_text(self, busy_cqms):
        from repro.core.tutorial import TutorialGenerator

        generator = TutorialGenerator(busy_cqms.store, busy_cqms.database.schema_columns())
        text = generator.render()
        assert "== Relation" in text
        assert "Popular queries:" in text
