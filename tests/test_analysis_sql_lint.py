"""Golden-corpus tests for the SQL semantic linter.

Every rule has at least one firing and one non-firing fixture, run against
the real limnology schema (so index- and type-aware rules exercise genuine
catalog metadata).
"""

import pytest

from repro.analysis.framework import Severity
from repro.analysis.sql_lint import SchemaView, SqlLinter
from repro.workloads.schemas import build_database


@pytest.fixture(scope="module")
def linter():
    database = build_database("limnology")
    return SqlLinter(SchemaView.from_database(database))


@pytest.fixture(scope="module")
def names_only_linter():
    """A linter with only table/column names (the Query Storage's view)."""
    database = build_database("limnology")
    return SqlLinter(SchemaView(schema_columns=database.schema_columns()))


def rules_of(linter, sql):
    return {diagnostic.rule for diagnostic in linter.lint_sql(sql)}


# Each entry: (rule, firing SQL, non-firing SQL)
GOLDEN = [
    (
        "unknown-table",
        "SELECT * FROM Rivers",
        "SELECT * FROM Lakes",
    ),
    (
        "unknown-column",
        "SELECT T.wetness FROM WaterTemp T",
        "SELECT T.temp FROM WaterTemp T",
    ),
    (
        "ambiguous-column",
        "SELECT depth FROM WaterTemp T, WaterSalinity S WHERE T.loc_x = S.loc_x",
        "SELECT T.depth FROM WaterTemp T, WaterSalinity S WHERE T.loc_x = S.loc_x",
    ),
    (
        "cartesian-join",
        "SELECT S.salinity, T.temp FROM WaterSalinity S, WaterTemp T WHERE T.temp < 18",
        "SELECT S.salinity, T.temp FROM WaterSalinity S, WaterTemp T "
        "WHERE S.loc_x = T.loc_x AND S.loc_y = T.loc_y",
    ),
    (
        "aggregate-misuse",
        "SELECT name FROM Lakes WHERE COUNT(*) > 3",
        "SELECT state, COUNT(*) FROM Lakes GROUP BY state HAVING COUNT(*) > 3",
    ),
    (
        "ungrouped-column",
        "SELECT state, name, COUNT(*) FROM Lakes GROUP BY state",
        "SELECT state, COUNT(*) FROM Lakes GROUP BY state",
    ),
    (
        "type-mismatch",
        "SELECT name FROM Lakes WHERE area_km2 > 'large'",
        "SELECT name FROM Lakes WHERE area_km2 > 100",
    ),
    (
        "non-sargable",
        "SELECT name FROM Lakes WHERE ABS(lake_id) = 7",
        "SELECT name FROM Lakes WHERE lake_id = 7",
    ),
    (
        "constant-predicate",
        "SELECT name FROM Lakes WHERE 1 = 1",
        "SELECT name FROM Lakes WHERE state = 'WA'",
    ),
    (
        "select-star",
        "SELECT * FROM Lakes",
        "SELECT name, state FROM Lakes",
    ),
    (
        "parse-error",
        "SELEC name FROM Lakes",
        "SELECT name FROM Lakes",
    ),
]


@pytest.mark.parametrize(
    "rule,firing,clean", GOLDEN, ids=[entry[0] for entry in GOLDEN]
)
def test_golden_fixture(linter, rule, firing, clean):
    assert rule in rules_of(linter, firing)
    assert rule not in rules_of(linter, clean)


class TestSeverities:
    def test_hard_errors_are_error_severity(self, linter):
        for sql in (
            "SELECT * FROM Rivers",
            "SELECT T.wetness FROM WaterTemp T",
            "SELECT a.name, b.city FROM Lakes a, CityLocations b",
        ):
            severities = {d.severity for d in linter.lint_sql(sql) if d.rule != "select-star"}
            assert Severity.ERROR in severities

    def test_style_rules_never_error(self, linter):
        diagnostics = linter.lint_sql(
            "SELECT * FROM Lakes WHERE 1 = 1 AND ABS(lake_id) = 3 AND name = 5"
        )
        assert diagnostics
        assert all(d.severity is not Severity.ERROR for d in diagnostics)


class TestDmlAndSubqueries:
    def test_update_unknown_column(self, linter):
        assert "unknown-column" in rules_of(
            linter, "UPDATE Lakes SET wetness = 1 WHERE lake_id = 3"
        )

    def test_update_clean(self, linter):
        assert rules_of(linter, "UPDATE Lakes SET state = 'WA' WHERE lake_id = 3") == set()

    def test_delete_unknown_table(self, linter):
        assert "unknown-table" in rules_of(linter, "DELETE FROM Rivers WHERE x = 1")

    def test_insert_unknown_column(self, linter):
        assert "unknown-column" in rules_of(
            linter, "INSERT INTO Lakes (lake_id, wetness) VALUES (1, 2)"
        )

    def test_subquery_columns_resolve(self, linter):
        assert rules_of(
            linter, "SELECT x.name FROM (SELECT name FROM Lakes) x"
        ) == set()

    def test_subquery_unknown_output_column(self, linter):
        assert "unknown-column" in rules_of(
            linter, "SELECT x.volume FROM (SELECT name FROM Lakes) x"
        )

    def test_correlated_subquery_outer_reference(self, linter):
        sql = (
            "SELECT name FROM Lakes L WHERE EXISTS "
            "(SELECT 1 FROM Sensors S WHERE S.lake_id = L.lake_id)"
        )
        assert rules_of(linter, sql) == set()

    def test_in_subquery_body_is_linted(self, linter):
        sql = "SELECT name FROM Lakes WHERE lake_id IN (SELECT bogus FROM Sensors)"
        assert "unknown-column" in rules_of(linter, sql)


class TestNamesOnlyView:
    """Without a catalog the type/index rules stand down but name checks hold."""

    def test_unknown_column_still_fires(self, names_only_linter):
        assert "unknown-column" in rules_of(
            names_only_linter, "SELECT T.wetness FROM WaterTemp T"
        )

    def test_type_rules_stand_down(self, names_only_linter):
        assert rules_of(
            names_only_linter, "SELECT name FROM Lakes WHERE area_km2 > 'large'"
        ) == set()

    def test_sargability_stands_down(self, names_only_linter):
        assert rules_of(
            names_only_linter, "SELECT name FROM Lakes WHERE ABS(lake_id) = 7"
        ) == set()
