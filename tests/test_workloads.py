"""Tests for the synthetic schemas, data generators, and workload generator."""

import pytest

from repro.errors import WorkloadError
from repro.sql.features import extract_features
from repro.storage.database import Database
from repro.workloads import (
    GOAL_LIBRARY,
    QueryLogGenerator,
    WorkloadConfig,
    build_database,
    evolution_scenario,
)
from repro.workloads.evolution import apply_scenario
from repro.workloads.generator import Goal, _SessionState


class TestSchemasAndData:
    @pytest.mark.parametrize("domain", ["limnology", "sky_survey", "web_analytics"])
    def test_build_database_populates_all_tables(self, domain):
        db = build_database(domain, scale=1)
        assert isinstance(db, Database)
        for table in db.table_names():
            assert len(db.table(table)) > 0

    def test_unknown_domain_raises(self):
        with pytest.raises(ValueError):
            build_database("genomics")

    def test_scale_increases_data_volume(self):
        small = build_database("limnology", scale=1)
        large = build_database("limnology", scale=2)
        assert large.total_rows() > small.total_rows()

    def test_generation_is_deterministic_for_seed(self):
        first = build_database("limnology", scale=1, seed=3)
        second = build_database("limnology", scale=1, seed=3)
        assert first.execute("SELECT COUNT(*), AVG(temp) FROM WaterTemp").rows == \
            second.execute("SELECT COUNT(*), AVG(temp) FROM WaterTemp").rows

    def test_lake_washington_seeded_cool(self, limnology_db_readonly):
        """Lake Washington (lake_id 1) must only have temp < 18 readings (C3 seed)."""
        max_temp = limnology_db_readonly.execute(
            "SELECT MAX(temp) FROM WaterTemp WHERE lake_id = 1"
        ).scalar()
        assert max_temp < 18

    def test_lake_union_has_warm_readings(self, limnology_db_readonly):
        count = limnology_db_readonly.execute(
            "SELECT COUNT(*) FROM WaterTemp WHERE lake_id = 2 AND temp >= 18"
        ).scalar()
        assert count > 0


class TestGoalLibrary:
    @pytest.mark.parametrize("domain", sorted(GOAL_LIBRARY))
    def test_goal_final_queries_execute_on_their_domain(self, domain):
        db = build_database(domain, scale=1)
        for goal in GOAL_LIBRARY[domain]:
            result = db.execute(goal.final_sql())
            assert result.stats.statement_kind == "select"

    def test_goal_final_sql_includes_all_tables(self):
        for goal in GOAL_LIBRARY["limnology"]:
            features = extract_features(goal.final_sql())
            assert len(features.tables) == len(goal.tables)

    def test_session_state_progresses_to_completion(self):
        import random

        goal = GOAL_LIBRARY["limnology"][0]
        state = _SessionState.initial(goal, random.Random(0))
        steps = 0
        while not state.is_complete and steps < 30:
            state.apply(state.possible_steps()[0], random.Random(0))
            steps += 1
        assert state.is_complete
        assert state.render() == _SessionState.full(goal).render()

    def test_unknown_session_step_raises(self):
        import random

        goal = GOAL_LIBRARY["limnology"][0]
        state = _SessionState.initial(goal, random.Random(0))
        with pytest.raises(WorkloadError):
            state.apply("fly_to_the_moon", random.Random(0))


class TestWorkloadGenerator:
    def test_generates_requested_sessions(self, small_workload):
        finals = [event for event in small_workload if event.is_final]
        assert len(finals) == 40

    def test_log_sorted_by_timestamp(self, small_workload):
        timestamps = [event.timestamp for event in small_workload]
        assert timestamps == sorted(timestamps)

    def test_every_query_parses_and_executes(self, small_workload, limnology_db_readonly):
        for event in small_workload[:100]:
            result = limnology_db_readonly.execute(event.sql)
            assert result.stats.statement_kind == "select"

    def test_deterministic_for_seed(self):
        first = QueryLogGenerator(WorkloadConfig(num_sessions=10, seed=9)).generate()
        second = QueryLogGenerator(WorkloadConfig(num_sessions=10, seed=9)).generate()
        assert [e.sql for e in first] == [e.sql for e in second]

    def test_different_seeds_differ(self):
        first = QueryLogGenerator(WorkloadConfig(num_sessions=10, seed=1)).generate()
        second = QueryLogGenerator(WorkloadConfig(num_sessions=10, seed=2)).generate()
        assert [e.sql for e in first] != [e.sql for e in second]

    def test_sessions_have_small_intra_gaps(self, small_workload):
        by_session = {}
        for event in small_workload:
            by_session.setdefault((event.user, event.session_ordinal), []).append(event)
        for events in by_session.values():
            ordered = sorted(events, key=lambda e: e.step)
            for previous, current in zip(ordered, ordered[1:]):
                assert 0 < current.timestamp - previous.timestamp <= 120.0

    def test_consecutive_session_queries_share_tables(self, small_workload):
        by_session = {}
        for event in small_workload:
            by_session.setdefault((event.user, event.session_ordinal), []).append(event)
        for events in by_session.values():
            ordered = sorted(events, key=lambda e: e.step)
            for previous, current in zip(ordered, ordered[1:]):
                first = set(extract_features(previous.sql).tables)
                second = set(extract_features(current.sql).tables)
                assert first & second

    def test_some_annotations_present(self):
        log = QueryLogGenerator(
            WorkloadConfig(num_sessions=60, seed=2, annotation_probability=0.8)
        ).generate()
        assert any(event.annotation for event in log)

    def test_users_and_groups_assigned(self, small_workload):
        users = {event.user for event in small_workload}
        groups = {event.group for event in small_workload}
        assert len(users) > 1
        assert len(groups) > 1

    def test_final_queries_helper(self, small_workload):
        generator = QueryLogGenerator(WorkloadConfig(num_sessions=5, seed=1))
        log = generator.generate()
        finals = generator.final_queries(log)
        assert all(event.is_final for event in finals)
        assert len(finals) == 5

    def test_invalid_config_rejected(self):
        with pytest.raises(WorkloadError):
            QueryLogGenerator(WorkloadConfig(domain="unknown"))
        with pytest.raises(WorkloadError):
            QueryLogGenerator(WorkloadConfig(num_users=2, num_groups=5))
        with pytest.raises(WorkloadError):
            QueryLogGenerator(WorkloadConfig(num_sessions=0))

    def test_config_and_overrides_mutually_exclusive(self):
        with pytest.raises(WorkloadError):
            QueryLogGenerator(WorkloadConfig(), num_sessions=5)

    def test_overrides_shortcut(self):
        generator = QueryLogGenerator(num_sessions=3, seed=1)
        assert generator.config.num_sessions == 3


class TestEvolutionScenarios:
    @pytest.mark.parametrize("domain", ["limnology", "sky_survey", "web_analytics"])
    def test_scenarios_apply_cleanly(self, domain):
        db = build_database(domain, scale=1)
        steps = evolution_scenario(domain)
        apply_scenario(db, steps)
        # Each step is reflected in the catalog change log.
        kinds = [change.kind for change in db.catalog.changes()]
        for step in steps:
            assert step.kind in kinds

    def test_unknown_domain_raises(self):
        with pytest.raises(WorkloadError):
            evolution_scenario("nope")

    def test_breaks_queries_flag(self):
        steps = evolution_scenario("limnology")
        add_steps = [step for step in steps if step.kind == "add_column"]
        assert all(not step.breaks_queries for step in add_steps)
        assert any(step.breaks_queries for step in steps)

    def test_rename_column_actually_renames(self):
        db = build_database("limnology", scale=1)
        apply_scenario(db, [step for step in evolution_scenario("limnology") if step.kind == "rename_column"])
        columns = db.schema_columns()["watertemp"]
        assert "depth_m" in columns and "depth" not in columns
