"""Plan cache: template hits, constant re-binding, version/drift invalidation."""

from __future__ import annotations

import pytest

from repro.sql.canonicalize import ParamLiteral, collect_parameters, parameterize_statement
from repro.sql.parser import parse
from repro.storage.database import Database
from repro.storage.schema import ColumnSchema, TableSchema
from repro.storage.types import DataType


def make_db(rows: int = 60, plan_cache_size: int = 32) -> Database:
    db = Database(plan_cache_size=plan_cache_size)
    db.create_table(
        TableSchema(
            name="Events",
            columns=[
                ColumnSchema("id", DataType.INTEGER, primary_key=True),
                ColumnSchema("kind", DataType.TEXT),
                ColumnSchema("ts", DataType.FLOAT),
            ],
        )
    )
    db.insert_rows(
        "Events",
        [{"id": i, "kind": f"k{i % 4}", "ts": float(i)} for i in range(rows)],
    )
    return db


class TestParameterize:
    def test_parameterize_collects_literals_and_preserves_values(self):
        statement = parse("SELECT id FROM Events WHERE kind = 'a' AND ts > 5 LIMIT 3")
        rewritten, params = parameterize_statement(statement)
        assert [p.value for p in params] == ["a", 5]
        assert all(isinstance(p, ParamLiteral) for p in params)
        assert rewritten.limit == 3  # LIMIT stays part of the template

    def test_null_literals_are_not_parameters(self):
        statement = parse("SELECT id FROM Events WHERE kind = NULL AND ts > 1")
        _, params = parameterize_statement(statement)
        assert [p.value for p in params] == [1]

    def test_collect_is_deterministic_for_a_template(self):
        first = parameterize_statement(
            parse("SELECT id FROM Events WHERE ts > 1 AND kind = 'x'")
        )[0]
        second = parameterize_statement(
            parse("SELECT id FROM Events WHERE ts > 9 AND kind = 'y'")
        )[0]
        from repro.sql.canonicalize import canonical_statement

        first_values = [p.value for p in collect_parameters(canonical_statement(first))]
        second_values = [p.value for p in collect_parameters(canonical_statement(second))]
        # Positional correspondence: site i of one instance is site i of the other.
        assert first_values == [1, "x"] or first_values == ["x", 1]
        assert (first_values == [1, "x"]) == (second_values == [9, "y"])


class TestTemplateHits:
    def test_repeated_template_different_constants_hits_and_rebinds(self):
        db = make_db()
        first = db.execute("SELECT id FROM Events WHERE kind = 'k1' ORDER BY id")
        second = db.execute("SELECT id FROM Events WHERE kind = 'k2' ORDER BY id")
        assert not first.plan_cache_hit
        assert second.plan_cache_hit
        assert first.rows != second.rows
        assert second.rows == [(i,) for i in range(60) if i % 4 == 2]
        stats = db.plan_cache_stats()
        assert stats.hits == 1 and stats.misses == 1 and stats.size == 1

    def test_in_list_rebinding(self):
        db = make_db()
        first = db.execute("SELECT COUNT(*) FROM Events WHERE id IN (1, 2, 3)")
        second = db.execute("SELECT COUNT(*) FROM Events WHERE id IN (4, 5, 600)")
        assert second.plan_cache_hit
        assert first.scalar() == 3
        assert second.scalar() == 2  # 600 does not exist

    def test_in_list_length_is_part_of_template(self):
        db = make_db()
        db.execute("SELECT COUNT(*) FROM Events WHERE id IN (1, 2, 3)")
        other = db.execute("SELECT COUNT(*) FROM Events WHERE id IN (1, 2)")
        assert not other.plan_cache_hit
        assert other.scalar() == 2

    def test_null_vs_constant_templates_do_not_share_plans(self):
        db = make_db()
        db.execute("SELECT COUNT(*) FROM Events WHERE kind = 'k1'")
        null_result = db.execute("SELECT COUNT(*) FROM Events WHERE kind = NULL")
        assert not null_result.plan_cache_hit
        assert null_result.scalar() == 0

    def test_constant_type_is_part_of_the_key(self):
        db = make_db()
        db.execute("SELECT COUNT(*) FROM Events WHERE id = 3")
        as_text = db.execute("SELECT COUNT(*) FROM Events WHERE id = 'x'")
        assert not as_text.plan_cache_hit

    def test_projected_constants_rebind(self):
        db = make_db()
        db.execute("SELECT 'first' FROM Events WHERE id = 1")
        second = db.execute("SELECT 'second' FROM Events WHERE id = 2")
        assert second.plan_cache_hit
        assert second.rows == [("second",)]

    def test_update_template_rebinds_set_and_where(self):
        db = make_db()
        db.execute("UPDATE Events SET ts = 100.0 WHERE id = 1")
        second = db.execute("UPDATE Events SET ts = 200.0 WHERE id = 2")
        assert second.plan_cache_hit and second.rowcount == 1
        assert db.execute("SELECT ts FROM Events WHERE id = 1").scalar() == 100.0
        assert db.execute("SELECT ts FROM Events WHERE id = 2").scalar() == 200.0

    def test_delete_template_rebinds(self):
        db = make_db()
        db.execute("DELETE FROM Events WHERE id = 0")
        second = db.execute("DELETE FROM Events WHERE id = 1")
        assert second.plan_cache_hit and second.rowcount == 1
        assert len(db.table("Events")) == 58

    def test_subquery_parameters_rebind(self):
        db = make_db()
        template = (
            "SELECT COUNT(*) FROM Events WHERE id IN "
            "(SELECT id FROM Events WHERE kind = '{kind}')"
        )
        first = db.execute(template.format(kind="k1"))
        second = db.execute(template.format(kind="nope"))
        assert second.plan_cache_hit
        assert first.scalar() == 15
        assert second.scalar() == 0


class TestInvalidation:
    def test_create_index_invalidates_and_new_plan_uses_it(self):
        db = make_db()
        db.execute("SELECT id FROM Events WHERE kind = 'k1'")
        assert "SeqScan" in db.explain("SELECT id FROM Events WHERE kind = 'k1'").text()
        db.execute("CREATE INDEX ev_kind ON Events (kind)")
        result = db.execute("SELECT id FROM Events WHERE kind = 'k1'")
        assert not result.plan_cache_hit  # the stale SeqScan plan was discarded
        assert db.plan_cache_stats().invalidated_ddl >= 1
        explanation = db.explain("SELECT id FROM Events WHERE kind = 'k3'")
        assert "IndexScan" in explanation.text()
        assert result.stats.index_lookups >= 1

    def test_alter_table_invalidates_star_plans(self):
        db = make_db()
        db.execute("SELECT * FROM Events WHERE id = 1")
        db.execute("ALTER TABLE Events ADD COLUMN note TEXT")
        widened = db.execute("SELECT * FROM Events WHERE id = 2")
        assert not widened.plan_cache_hit
        assert widened.columns == ["id", "kind", "ts", "note"]

    def test_small_churn_keeps_plan_large_drift_invalidates(self):
        db = make_db(rows=100)
        db.execute("SELECT COUNT(*) FROM Events WHERE ts > 5")
        db.insert_rows("Events", [{"id": 1000, "kind": "k0", "ts": 1000.0}])
        small = db.execute("SELECT COUNT(*) FROM Events WHERE ts > 5")
        assert small.plan_cache_hit  # 1% row churn is under the budget
        db.insert_rows(
            "Events",
            [{"id": 2000 + i, "kind": "k0", "ts": float(i)} for i in range(80)],
        )
        big = db.execute("SELECT COUNT(*) FROM Events WHERE ts > 5")
        assert not big.plan_cache_hit
        assert db.plan_cache_stats().invalidated_drift >= 1

    def test_update_churn_with_stable_row_count_invalidates(self):
        # UPDATEs rewrite values without moving the row count; the mutation
        # churn itself must count against the staleness budget.
        db = make_db(rows=100)
        db.execute("SELECT COUNT(*) FROM Events WHERE ts > 5")
        for i in range(100):
            db.table("Events").update(i, {"ts": 5000.0 + i})
        churned = db.execute("SELECT COUNT(*) FROM Events WHERE ts > 5")
        assert not churned.plan_cache_hit
        assert db.plan_cache_stats().invalidated_drift >= 1
        assert churned.scalar() == 100

    def test_drop_and_recreate_table_discards_plans(self):
        db = make_db()
        db.execute("SELECT COUNT(*) FROM Events WHERE id = 1")
        db.execute("DROP TABLE Events")
        db.execute("CREATE TABLE Events (id INTEGER PRIMARY KEY, kind TEXT, ts FLOAT)")
        db.insert_rows("Events", [{"id": 1, "kind": "new", "ts": 0.0}])
        result = db.execute("SELECT COUNT(*) FROM Events WHERE id = 1")
        assert not result.plan_cache_hit
        assert result.scalar() == 1

    def test_merged_redundant_range_bounds_are_not_cached(self):
        db = make_db()
        db.table("Events").create_index("ev_ts", "ts", kind="sorted")
        # Two lower bounds on one column: the plan folds them to the tighter
        # one, so positional re-binding would be unsound — never cached.
        first = db.execute("SELECT COUNT(*) FROM Events WHERE ts > 50 AND ts > 10")
        second = db.execute("SELECT COUNT(*) FROM Events WHERE ts > 10 AND ts > 50")
        third = db.execute("SELECT COUNT(*) FROM Events WHERE ts > 20 AND ts > 58")
        assert not second.plan_cache_hit and not third.plan_cache_hit
        assert first.scalar() == 9 and second.scalar() == 9 and third.scalar() == 1


class TestCacheManagement:
    def test_capacity_evicts_lru(self):
        db = make_db(plan_cache_size=2)
        db.execute("SELECT COUNT(*) FROM Events WHERE id = 1")
        db.execute("SELECT COUNT(*) FROM Events WHERE kind = 'k1'")
        db.execute("SELECT COUNT(*) FROM Events WHERE ts = 2.0")  # evicts the first
        stats = db.plan_cache_stats()
        assert stats.size == 2 and stats.evictions == 1
        refetch = db.execute("SELECT COUNT(*) FROM Events WHERE id = 1")
        assert not refetch.plan_cache_hit

    def test_disabled_cache_still_executes(self):
        db = make_db(plan_cache_size=0)
        first = db.execute("SELECT COUNT(*) FROM Events WHERE id = 1")
        second = db.execute("SELECT COUNT(*) FROM Events WHERE id = 2")
        assert not first.plan_cache_hit and not second.plan_cache_hit
        stats = db.plan_cache_stats()
        assert stats.capacity == 0 and stats.lookups == 0

    def test_resize_clears_entries(self):
        db = make_db()
        db.execute("SELECT COUNT(*) FROM Events WHERE id = 1")
        db.set_plan_cache_size(16)
        again = db.execute("SELECT COUNT(*) FROM Events WHERE id = 1")
        assert not again.plan_cache_hit

    def test_explain_marks_cached_plans_without_counting(self):
        db = make_db()
        db.execute("SELECT id FROM Events WHERE kind = 'k1'")
        before = db.plan_cache_stats().lookups
        explanation = db.explain("SELECT id FROM Events WHERE kind = 'k9'")
        assert "(cached)" in explanation
        assert explanation.plan_cache_hit
        assert db.plan_cache_stats().lookups == before
        cold = db.explain("SELECT ts FROM Events WHERE id = 1 AND kind = 'a'")
        assert "(cached)" not in cold.text()


class TestMetaQueryIntegration:
    def test_meta_query_mix_hit_rate(self, fresh_cqms):
        cqms = fresh_cqms
        for i in range(8):
            cqms.submit("alice", f"SELECT * FROM Lakes WHERE lakeId = {i}")
        store = cqms.store
        for relation in ("lakes", "samples", "sensors", "stations"):
            store.execute_meta_sql(
                f"SELECT qid FROM DataSources WHERE relName = '{relation}'"
            )
        stats = store.plan_cache_stats()
        assert stats.hits >= 3  # one template, four constants
        assert 0.0 < stats.hit_rate <= 1.0
        surface = cqms.plan_cache_stats()
        assert surface["query_storage"].hits == stats.hits

    def test_workbench_renders_hit_rate(self, fresh_cqms):
        from repro.client.workbench import Workbench

        bench = Workbench(cqms=fresh_cqms, user="alice")
        fresh_cqms.store.execute_meta_sql("SELECT qid FROM Queries WHERE userName = 'a'")
        fresh_cqms.store.execute_meta_sql("SELECT qid FROM Queries WHERE userName = 'b'")
        panel = bench.plan_cache_panel()
        assert "Plan cache" in panel
        assert "query_storage" in panel
        assert "hit rate" in panel
