"""Tests for the engine hazard lint (ast-walking rules over engine source).

Each rule gets a firing and a non-firing fixture written to ``tmp_path``
(under a ``storage/`` directory where the rule's severity depends on it),
plus one test that the real engine tree is ERROR-free — the invariant the CI
``lint-and-verify`` step enforces.
"""

import textwrap
from pathlib import Path

import pytest

from repro.analysis.framework import Severity
from repro.analysis.hazard_lint import lint_paths

REPO_SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def lint_snippet(tmp_path, code, *, storage=True):
    directory = tmp_path / ("storage" if storage else "client")
    directory.mkdir(exist_ok=True)
    (directory / "fixture.py").write_text(textwrap.dedent(code))
    return list(lint_paths([tmp_path]))


def rules_of(diagnostics):
    return {d.rule for d in diagnostics}


class TestWalPairing:
    def test_unpaired_heap_mutation_fires(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            class Table:
                def insert(self, row_id, row):
                    self._rows[row_id] = row

                def delete(self, row_id):
                    try:
                        del self._rows[row_id]
                        self.wal_emit("delete", row_id)
                    except BaseException:
                        raise
            """,
        )
        assert "wal-pairing" in rules_of(diagnostics)
        assert len([d for d in diagnostics if d.rule == "wal-pairing"]) == 1

    def test_guarded_mutation_is_clean(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            class Table:
                def insert(self, row_id, row):
                    try:
                        self._rows[row_id] = row
                        self.wal_emit("insert", row_id)
                    except BaseException:
                        del self._rows[row_id]
                        raise
            """,
        )
        assert "wal-pairing" not in rules_of(diagnostics)

    def test_restore_methods_exempt(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            class Table:
                def wal_hook(self):
                    self.wal_emit("noop")

                def restore_row(self, row_id, row):
                    self._rows[row_id] = row
            """,
        )
        assert "wal-pairing" not in rules_of(diagnostics)

    def test_classes_without_wal_are_exempt(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            class Cache:
                def put(self, key, value):
                    self._rows[key] = value
            """,
        )
        assert "wal-pairing" not in rules_of(diagnostics)


class TestLockAcrossYield:
    def test_yield_under_lock_fires(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            def scan(self):
                with self._lock:
                    for row in self._rows.values():
                        yield row
            """,
        )
        assert "lock-across-yield" in rules_of(diagnostics)

    def test_snapshot_then_yield_is_clean(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            def scan(self):
                with self._lock:
                    snapshot = list(self._rows.values())
                for row in snapshot:
                    yield row
            """,
        )
        assert "lock-across-yield" not in rules_of(diagnostics)

    def test_nested_generator_not_attributed(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            def build(self):
                with self._lock:
                    def inner():
                        yield 1
                    return inner
            """,
        )
        assert "lock-across-yield" not in rules_of(diagnostics)


class TestBroadExcept:
    def test_storage_broad_except_is_error(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            def load(path):
                try:
                    return open(path)
                except Exception:
                    return None
            """,
            storage=True,
        )
        found = [d for d in diagnostics if d.rule == "broad-except"]
        assert found and found[0].severity is Severity.ERROR

    def test_swallowing_outside_storage_is_warning(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            def load(path):
                try:
                    return open(path)
                except Exception:
                    return None
            """,
            storage=False,
        )
        found = [d for d in diagnostics if d.rule == "broad-except"]
        assert found and found[0].severity is Severity.WARNING

    def test_narrow_except_is_clean(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            def load(path):
                try:
                    return open(path)
                except (OSError, ValueError):
                    return None
            """,
            storage=True,
        )
        assert "broad-except" not in rules_of(diagnostics)

    def test_base_exception_with_reraise_is_clean(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            def apply(self):
                try:
                    self.mutate()
                except BaseException:
                    self.rollback()
                    raise
            """,
            storage=True,
        )
        assert "broad-except" not in rules_of(diagnostics)

    def test_base_exception_swallowed_is_error(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            def apply(self):
                try:
                    self.mutate()
                except BaseException:
                    pass
            """,
            storage=False,
        )
        found = [d for d in diagnostics if d.rule == "broad-except"]
        assert found and found[0].severity is Severity.ERROR


class TestWallClock:
    def test_time_time_call_fires(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            import time

            def stamp():
                return time.time()
            """,
        )
        found = [d for d in diagnostics if d.rule == "wall-clock"]
        assert found and found[0].severity is Severity.ERROR

    def test_datetime_now_fires(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            from datetime import datetime

            def stamp():
                return datetime.now()
            """,
        )
        assert "wall-clock" in rules_of(diagnostics)

    def test_monotonic_call_is_warning(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            import time

            def stamp():
                return time.monotonic()
            """,
        )
        found = [d for d in diagnostics if d.rule == "wall-clock"]
        assert found and found[0].severity is Severity.WARNING

    def test_uncalled_reference_and_perf_counter_are_clean(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            import time

            def make_clock(clock=None):
                tick = clock or time.monotonic
                started = time.perf_counter()
                return tick, started
            """,
        )
        assert "wall-clock" not in rules_of(diagnostics)

    def test_clock_module_exempt(self, tmp_path):
        (tmp_path / "clock.py").write_text(
            "import time\n\ndef now():\n    return time.time()\n"
        )
        assert "wall-clock" not in rules_of(lint_paths([tmp_path]))


class TestMetricsSingleWriter:
    def test_metrics_write_in_pool_worker_fires(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            def scan(self, pool):
                def worker(chunk):
                    self.metrics.rows_scanned += len(chunk)
                    return chunk
                return pool.submit(worker, [])
            """,
        )
        assert "metrics-single-writer" in rules_of(diagnostics)

    def test_worker_without_metrics_write_is_clean(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            def scan(self, pool):
                def worker(chunk):
                    return [row for row in chunk if row]
                return pool.submit(worker, [])
            """,
        )
        assert "metrics-single-writer" not in rules_of(diagnostics)

    def test_coordinator_metrics_write_is_clean(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            def scan(self, pool):
                def worker(chunk):
                    return len(chunk)
                counted = pool.submit(worker, [])
                self.metrics.rows_scanned += counted
                return counted
            """,
        )
        assert "metrics-single-writer" not in rules_of(diagnostics)


class TestPagePinProtocol:
    def test_mutating_read_page_fires(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            def corrupt(self, page_id, codec):
                page = self._store.read(page_id, codec)
                page[0] = "row"
            """,
        )
        assert "page-pin-protocol" in rules_of(diagnostics)

    def test_pinned_mutation_without_mark_dirty_fires(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            def silent_write(self, page_id, codec):
                page = self._store.fetch(page_id, codec)
                try:
                    page.pop(3, None)
                finally:
                    self._store.unpin(page_id)
            """,
        )
        fired = [d for d in diagnostics if d.rule == "page-pin-protocol"]
        assert len(fired) == 1
        assert "mark_dirty" in fired[0].message

    def test_fetch_without_unpin_fires(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            def leak_pin(self, page_id, codec):
                page = self._store.fetch(page_id, codec)
                page[0] = "row"
                self._store.mark_dirty(page_id)
                return page
            """,
        )
        fired = [d for d in diagnostics if d.rule == "page-pin-protocol"]
        assert len(fired) == 1
        assert "unpin" in fired[0].message

    def test_full_protocol_is_clean(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            def store_slot(self, page_id, codec, slot, row):
                page = self._store.fetch(page_id, codec)
                try:
                    page[slot] = row
                    self._store.mark_dirty(page_id)
                finally:
                    self._store.unpin(page_id)
            """,
        )
        assert "page-pin-protocol" not in rules_of(diagnostics)

    def test_readonly_iteration_is_clean(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            def scan(self, page_id, codec):
                page = self._store.read(page_id, codec)
                return [row for row in page.values()]
            """,
        )
        assert "page-pin-protocol" not in rules_of(diagnostics)

    def test_non_store_receivers_are_ignored(self, tmp_path):
        diagnostics = lint_snippet(
            tmp_path,
            """
            def load(self, path):
                data = self._file.read(4096)
                cache = self._cache.fetch(path)
                cache["data"] = data
                return cache
            """,
        )
        assert "page-pin-protocol" not in rules_of(diagnostics)


class TestEngineTree:
    def test_engine_source_has_no_errors(self):
        report = lint_paths([REPO_SRC])
        assert report.errors == [], "\n" + report.render()
