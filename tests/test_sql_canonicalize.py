"""Tests for query canonicalization."""

from repro.sql.canonicalize import canonical_text, canonicalize, queries_equivalent
from repro.sql.parser import parse


class TestCanonicalEquivalence:
    def test_case_insensitivity(self):
        assert queries_equivalent(
            "SELECT * FROM Lakes WHERE Name = 'x'",
            "select * from lakes where name = 'x'",
        )

    def test_from_order_ignored(self):
        assert queries_equivalent(
            "SELECT * FROM a, b WHERE a.id = b.id",
            "SELECT * FROM b, a WHERE a.id = b.id",
        )

    def test_conjunct_order_ignored(self):
        assert queries_equivalent(
            "SELECT * FROM t WHERE a = 1 AND b = 2",
            "SELECT * FROM t WHERE b = 2 AND a = 1",
        )

    def test_alias_resolution_to_table_name(self):
        text = canonical_text("SELECT S.salinity FROM WaterSalinity S")
        assert "watersalinity.salinity" in text
        assert " s." not in text

    def test_alias_names_do_not_matter(self):
        assert queries_equivalent(
            "SELECT S.salinity FROM WaterSalinity S",
            "SELECT W.salinity FROM WaterSalinity W",
        )

    def test_literal_flipped_comparison_oriented(self):
        assert queries_equivalent(
            "SELECT * FROM t WHERE 18 > temp",
            "SELECT * FROM t WHERE temp < 18",
        )

    def test_different_constants_not_equivalent(self):
        assert not queries_equivalent(
            "SELECT * FROM t WHERE temp < 18",
            "SELECT * FROM t WHERE temp < 22",
        )

    def test_strip_constants_makes_them_equivalent(self):
        assert queries_equivalent(
            "SELECT * FROM t WHERE temp < 18",
            "SELECT * FROM t WHERE temp < 22",
            strip_constants=True,
        )

    def test_different_tables_not_equivalent(self):
        assert not queries_equivalent("SELECT * FROM a", "SELECT * FROM b")

    def test_self_join_aliases_preserved(self):
        # A self join must not collapse the two occurrences of the table.
        sql = "SELECT * FROM person a, person b WHERE a.boss = b.id"
        text = canonical_text(sql)
        assert text.count("person") >= 2
        reparsed = parse(text)
        assert len(reparsed.from_items) == 2


class TestCanonicalForm:
    def test_canonicalization_is_idempotent(self):
        sql = "SELECT B.y, a.x FROM bbb B, aaa a WHERE B.k = a.k AND a.x > 5"
        once = canonical_text(sql)
        twice = canonical_text(once)
        assert once == twice

    def test_in_list_values_sorted(self):
        first = canonical_text("SELECT * FROM t WHERE x IN (3, 1, 2)")
        second = canonical_text("SELECT * FROM t WHERE x IN (2, 3, 1)")
        assert first == second

    def test_group_by_sorted(self):
        first = canonical_text("SELECT a, b FROM t GROUP BY b, a")
        second = canonical_text("SELECT a, b FROM t GROUP BY a, b")
        assert first == second

    def test_subquery_canonicalized_too(self):
        text = canonical_text(
            "SELECT * FROM t WHERE x IN (SELECT Y.v FROM Other Y WHERE Y.k = 1)"
        )
        assert "other.v" in text

    def test_canonicalize_returns_select_statement(self):
        statement = canonicalize(parse("SELECT A.x FROM T A"))
        assert statement.from_items[0].name == "t"

    def test_non_select_passthrough(self):
        text = canonical_text("DELETE FROM t WHERE a = 1")
        assert text.startswith("DELETE FROM")

    def test_limit_preserved(self):
        assert "LIMIT 5" in canonical_text("SELECT * FROM t LIMIT 5")

    def test_join_equality_orientation_deterministic(self):
        first = canonical_text("SELECT * FROM a, b WHERE a.id = b.id")
        second = canonical_text("SELECT * FROM a, b WHERE b.id = a.id")
        assert first == second
