"""Tests for the ranking function, completion engine, and correction engine."""

import pytest

from repro.core.completion import CompletionEngine
from repro.core.config import CQMSConfig
from repro.core.correction import CorrectionEngine
from repro.core.query_store import QueryStore
from repro.core.ranking import RankingContext, RankingFunction, RankingWeights
from repro.core.records import LoggedQuery, RuntimeStats
from repro.sql.canonicalize import canonical_text
from repro.sql.features import extract_features


def make_record(qid, sql, timestamp=0.0, elapsed=0.0, cardinality=0, quality=0.5,
                succeeded=True, annotations=None):
    return LoggedQuery(
        qid=qid,
        user="alice",
        group="lab1",
        text=sql,
        timestamp=timestamp,
        canonical_text=canonical_text(sql),
        template_text=canonical_text(sql, strip_constants=True),
        features=extract_features(sql),
        runtime=RuntimeStats(
            elapsed_seconds=elapsed, result_cardinality=cardinality, succeeded=succeeded
        ),
        quality=quality,
        annotations=annotations or [],
    )


class TestRankingWeights:
    def test_from_config(self):
        config = CQMSConfig()
        weights = RankingWeights.from_config(config.ranking)
        assert weights.similarity == config.ranking.similarity

    def test_similarity_only_zeroes_others(self):
        weights = RankingWeights.similarity_only()
        assert weights.popularity == 0.0 and weights.similarity == 1.0

    def test_total(self):
        assert RankingWeights(similarity=1, popularity=1, recency=0, runtime=0,
                              cardinality=0, quality=0).total() == 2


class TestRankingFunction:
    def test_score_in_unit_interval(self):
        ranking = RankingFunction()
        record = make_record(1, "SELECT * FROM Lakes", elapsed=2.0, cardinality=100)
        ranked = ranking.score(record, similarity=0.7, context=RankingContext(now=10.0))
        assert 0.0 <= ranked.score <= 1.0
        assert set(ranked.components) == {
            "similarity", "popularity", "recency", "runtime", "cardinality", "quality",
        }

    def test_similarity_dominates_with_similarity_only_weights(self):
        ranking = RankingFunction(RankingWeights.similarity_only())
        similar = make_record(1, "SELECT * FROM Lakes")
        dissimilar = make_record(2, "SELECT * FROM Sensors")
        context = RankingContext(now=0.0)
        assert ranking.score(similar, 0.9, context).score > ranking.score(dissimilar, 0.1, context).score

    def test_popularity_component_uses_store_counts(self):
        store = QueryStore()
        for qid in (1, 2, 3):
            store.add(make_record(qid, "SELECT * FROM Lakes"))
        store.add(make_record(4, "SELECT * FROM Sensors"))
        context = RankingContext.from_store(store, now=0.0)
        ranking = RankingFunction(RankingWeights(similarity=0, popularity=1, recency=0,
                                                 runtime=0, cardinality=0, quality=0))
        popular = ranking.score(store.get(1), 0.0, context)
        rare = ranking.score(store.get(4), 0.0, context)
        assert popular.score > rare.score

    def test_recency_decays_with_age(self):
        ranking = RankingFunction(RankingWeights(similarity=0, popularity=0, recency=1,
                                                 runtime=0, cardinality=0, quality=0))
        context = RankingContext(now=1_000_000.0)
        recent = make_record(1, "SELECT * FROM Lakes", timestamp=999_000.0)
        old = make_record(2, "SELECT * FROM Lakes", timestamp=0.0)
        assert ranking.score(recent, 0, context).score > ranking.score(old, 0, context).score

    def test_runtime_prefers_fast_queries(self):
        ranking = RankingFunction(RankingWeights(similarity=0, popularity=0, recency=0,
                                                 runtime=1, cardinality=0, quality=0))
        fast = make_record(1, "SELECT * FROM Lakes", elapsed=0.01)
        slow = make_record(2, "SELECT * FROM Lakes", elapsed=100.0)
        context = RankingContext(now=0.0)
        assert ranking.score(fast, 0, context).score > ranking.score(slow, 0, context).score

    def test_cardinality_prefers_small_results(self):
        ranking = RankingFunction(RankingWeights(similarity=0, popularity=0, recency=0,
                                                 runtime=0, cardinality=1, quality=0))
        small = make_record(1, "SELECT * FROM Lakes", cardinality=5)
        huge = make_record(2, "SELECT * FROM Lakes", cardinality=1_000_000)
        context = RankingContext(now=0.0)
        assert ranking.score(small, 0, context).score > ranking.score(huge, 0, context).score

    def test_zero_weights_score_zero(self):
        ranking = RankingFunction(RankingWeights(similarity=0, popularity=0, recency=0,
                                                 runtime=0, cardinality=0, quality=0))
        record = make_record(1, "SELECT * FROM Lakes")
        assert ranking.score(record, 1.0, RankingContext(now=0.0)).score == 0.0

    def test_rank_orders_and_limits(self):
        ranking = RankingFunction(RankingWeights.similarity_only())
        records = [make_record(i, "SELECT * FROM Lakes") for i in range(1, 5)]
        candidates = [(record, 0.1 * record.qid) for record in records]
        ranked = ranking.rank(candidates, RankingContext(now=0.0), limit=2)
        assert len(ranked) == 2
        assert ranked[0].record.qid == 4

    def test_explanation_string(self):
        ranking = RankingFunction()
        ranked = ranking.score(make_record(1, "SELECT 1"), 0.5, RankingContext(now=0.0))
        assert "similarity=" in ranked.explanation()


@pytest.fixture()
def completion_store():
    """A store whose log exhibits the paper's CityLocations/WaterTemp example.

    CityLocations is globally the most popular table, but *given* WaterSalinity
    the most frequent companion is WaterTemp.
    """
    store = QueryStore()
    qid = 0
    def add(sql):
        nonlocal qid
        qid += 1
        store.add(make_record(qid, sql, cardinality=3))
    for _ in range(6):
        add("SELECT * FROM CityLocations C WHERE C.population > 100000")
    for _ in range(4):
        add("SELECT S.salinity, T.temp FROM WaterSalinity S, WaterTemp T WHERE S.loc_x = T.loc_x AND T.temp < 18")
    add("SELECT * FROM WaterSalinity S, CityLocations C WHERE S.loc_x = C.loc_x")
    for _ in range(2):
        add("SELECT * FROM WaterTemp T WHERE T.temp < 18")
    return store


SCHEMA = {
    "watersalinity": {"salinity", "loc_x", "loc_y", "depth", "lake_id"},
    "watertemp": {"temp", "loc_x", "loc_y", "depth", "lake_id"},
    "citylocations": {"city", "state", "loc_x", "loc_y", "population"},
    "lakes": {"lake_id", "name", "state", "area_km2"},
}


class TestCompletionEngine:
    def test_global_popularity_baseline_prefers_citylocations(self, completion_store):
        engine = CompletionEngine(completion_store, SCHEMA)
        popular = engine.popular_tables(limit=3)
        assert popular[0].text == "citylocations"

    def test_context_aware_suggests_watertemp_given_watersalinity(self, completion_store):
        """The paper's Section 2.3 example, reproduced exactly."""
        engine = CompletionEngine(completion_store, SCHEMA)
        suggestions = engine.suggest_tables("SELECT * FROM WaterSalinity S, ", limit=3)
        assert suggestions[0].text == "watertemp"
        assert suggestions[0].source == "rule"

    def test_popularity_baseline_ignores_context(self, completion_store):
        engine = CompletionEngine(completion_store, SCHEMA)
        suggestions = engine.suggest_tables(
            "SELECT * FROM WaterSalinity S, ", limit=3, context_aware=False
        )
        assert suggestions[0].text == "citylocations"

    def test_context_tables_never_suggested_again(self, completion_store):
        engine = CompletionEngine(completion_store, SCHEMA)
        suggestions = engine.suggest_tables("SELECT * FROM WaterSalinity S, WaterTemp T, ", limit=5)
        assert all(s.text not in ("watersalinity", "watertemp") for s in suggestions)

    def test_empty_context_falls_back_to_popularity(self, completion_store):
        engine = CompletionEngine(completion_store, SCHEMA)
        suggestions = engine.suggest_tables("SELECT * FROM ", limit=2)
        assert suggestions and suggestions[0].text == "citylocations"

    def test_suggest_attributes_for_context_tables(self, completion_store):
        engine = CompletionEngine(completion_store, SCHEMA)
        suggestions = engine.suggest_attributes("SELECT * FROM WaterTemp T WHERE ", limit=5)
        assert any(s.text == "watertemp.temp" for s in suggestions)

    def test_suggest_attributes_schema_fallback(self, completion_store):
        engine = CompletionEngine(completion_store, SCHEMA)
        suggestions = engine.suggest_attributes("SELECT * FROM Lakes", limit=10)
        assert any(s.source == "schema" for s in suggestions)

    def test_suggest_attributes_without_tables_empty(self, completion_store):
        engine = CompletionEngine(completion_store, SCHEMA)
        assert engine.suggest_attributes("SELECT 1") == []

    def test_suggest_predicates(self, completion_store):
        engine = CompletionEngine(completion_store, SCHEMA)
        suggestions = engine.suggest_predicates("SELECT * FROM WaterTemp T", limit=3)
        assert any("temp < 18" in s.text for s in suggestions)

    def test_suggest_joins(self, completion_store):
        engine = CompletionEngine(completion_store, SCHEMA)
        suggestions = engine.suggest_joins("SELECT * FROM WaterSalinity S, WaterTemp T", limit=3)
        assert any("loc_x" in s.text for s in suggestions)

    def test_suggest_joins_requires_two_tables(self, completion_store):
        engine = CompletionEngine(completion_store, SCHEMA)
        assert engine.suggest_joins("SELECT * FROM WaterTemp") == []

    def test_suggest_bundle_has_all_kinds(self, completion_store):
        engine = CompletionEngine(completion_store, SCHEMA)
        bundle = engine.suggest("SELECT * FROM WaterSalinity S, WaterTemp T WHERE ")
        assert set(bundle) == {"tables", "attributes", "predicates", "joins"}

    def test_refresh_with_external_rule_index(self, completion_store):
        from repro.mining.association_rules import RuleIndex, mine_rules

        engine = CompletionEngine(completion_store, SCHEMA)
        rules = mine_rules([["table:a", "table:b"]] * 5, min_support=0.5, min_confidence=0.5)
        engine.refresh(rule_index=RuleIndex(rules))
        suggestions = engine.suggest_tables("SELECT * FROM a", limit=2)
        assert suggestions  # falls back to popularity for unknown context

    def test_partial_with_trailing_where(self, completion_store):
        engine = CompletionEngine(completion_store, SCHEMA)
        suggestions = engine.suggest_tables("SELECT * FROM WaterSalinity S WHERE", limit=2)
        assert suggestions[0].text == "watertemp"


class TestCorrectionEngine:
    def test_table_name_spellcheck(self, completion_store):
        engine = CorrectionEngine(completion_store, SCHEMA)
        corrections = engine.correct_names("SELECT * FROM WaterSalinty WHERE salinity > 1")
        assert corrections
        assert corrections[0].kind == "table_name"
        assert corrections[0].suggestion == "watersalinity"

    def test_attribute_name_spellcheck(self, completion_store):
        engine = CorrectionEngine(completion_store, SCHEMA)
        corrections = engine.correct_names("SELECT T.temperatur FROM WaterTemp T")
        assert any(c.kind == "attribute_name" and c.suggestion.endswith("temp") for c in corrections)

    def test_correct_names_on_valid_query_is_empty(self, completion_store):
        engine = CorrectionEngine(completion_store, SCHEMA)
        assert engine.correct_names("SELECT T.temp FROM WaterTemp T") == []

    def test_correct_names_on_unparseable_text(self, completion_store):
        engine = CorrectionEngine(completion_store, SCHEMA)
        assert engine.correct_names("not sql at all !!!") == []

    def test_empty_result_predicate_correction(self, completion_store):
        engine = CorrectionEngine(completion_store, SCHEMA)
        corrections = engine.correct_empty_result(
            "SELECT * FROM WaterTemp T WHERE T.temp < 2"
        )
        assert corrections
        assert corrections[0].kind == "predicate"
        assert "temp < 18" in corrections[0].suggestion

    def test_empty_result_correction_skips_unknown_attributes(self, completion_store):
        engine = CorrectionEngine(completion_store, SCHEMA)
        assert engine.correct_empty_result("SELECT * FROM Lakes K WHERE K.area_km2 > 999") == []

    def test_correction_log_accumulates(self, completion_store):
        engine = CorrectionEngine(completion_store, SCHEMA)
        engine.correct_names("SELECT * FROM WaterSalinty")
        engine.correct_empty_result("SELECT * FROM WaterTemp T WHERE T.temp < 2")
        assert len(engine.correction_log) >= 2

    def test_update_schema(self, completion_store):
        engine = CorrectionEngine(completion_store, {})
        assert engine.correct_names("SELECT * FROM WaterSalinty") == []
        engine.update_schema(SCHEMA)
        assert engine.correct_names("SELECT * FROM WaterSalinty")
