"""Feature-relation consistency: Annotations and SessionEdges stay in sync
with the in-memory record index across remove/repair cycles."""

from __future__ import annotations

import pytest

from repro.core.query_store import QueryStore
from repro.core.records import LoggedQuery
from repro.core.sessions import QuerySession, SessionEdge
from repro.sql.canonicalize import canonical_text
from repro.sql.features import extract_features


def logged(qid: int, text: str, user: str = "alice", ts: float = 0.0) -> LoggedQuery:
    return LoggedQuery(
        qid=qid,
        user=user,
        group="lab",
        text=text,
        timestamp=ts,
        canonical_text=canonical_text(text),
        template_text=canonical_text(text, strip_constants=True),
        features=extract_features(text),
    )


@pytest.fixture()
def store_with_session() -> QueryStore:
    store = QueryStore()
    store.add(logged(1, "SELECT a FROM t WHERE x = 1", ts=0.0))
    store.add(logged(2, "SELECT a FROM t WHERE x = 2", ts=10.0))
    store.add(logged(3, "SELECT a, b FROM t WHERE x = 2", ts=20.0))
    session = QuerySession(
        session_id=7,
        user="alice",
        qids=[1, 2, 3],
        start_time=0.0,
        end_time=20.0,
        edges=[
            SessionEdge(1, 2, "modification", "changed constant", 1),
            SessionEdge(2, 3, "modification", "added projection", 1),
        ],
    )
    store.record_sessions([session])
    return store


def annotation_rows(store: QueryStore, qid: int) -> list[dict]:
    return store.execute_meta_sql(
        f"SELECT author, ts, body FROM Annotations WHERE qid = {qid} ORDER BY ts"
    ).as_dicts()


class TestReplaceTextAnnotations:
    def test_annotation_rows_survive_repair(self):
        store = QueryStore()
        store.add(logged(1, "SELECT a FROM old_t"))
        store.add_annotation(1, author="bob", body="baseline analysis", timestamp=5.0)
        store.add_annotation(1, author="carol", body="verified", timestamp=9.0)
        new_text = "SELECT a FROM new_t"
        store.replace_text(
            1,
            new_text,
            extract_features(new_text),
            canonical_text(new_text),
            canonical_text(new_text, strip_constants=True),
        )
        # The meta-relation agrees with the in-memory annotation list again.
        rows = annotation_rows(store, 1)
        assert [(row["author"], row["ts"], row["body"]) for row in rows] == [
            ("bob", 5.0, "baseline analysis"),
            ("carol", 9.0, "verified"),
        ]
        assert store.annotations_for(1) == ["baseline analysis", "verified"]

    def test_repair_without_annotations_adds_none(self):
        store = QueryStore()
        store.add(logged(1, "SELECT a FROM old_t"))
        new_text = "SELECT a FROM new_t"
        store.replace_text(
            1,
            new_text,
            extract_features(new_text),
            canonical_text(new_text),
            canonical_text(new_text, strip_constants=True),
        )
        assert annotation_rows(store, 1) == []


class TestRemoveSessionConsistency:
    def test_remove_deletes_dangling_edges(self, store_with_session):
        store = store_with_session
        store.remove(2)
        remaining = store.execute_meta_sql(
            "SELECT fromQid, toQid FROM SessionEdges"
        ).rows
        assert remaining == []  # both edges referenced qid 2

    def test_remove_decrements_num_queries(self, store_with_session):
        store = store_with_session
        store.remove(3)
        row = store.execute_meta_sql(
            "SELECT numQueries FROM Sessions WHERE sessionId = 7"
        )
        assert row.scalar() == 2
        edges = store.execute_meta_sql(
            "SELECT fromQid, toQid FROM SessionEdges ORDER BY fromQid"
        ).rows
        assert edges == [(1, 2)]

    def test_remove_unsessioned_query_leaves_sessions_alone(self, store_with_session):
        store = store_with_session
        store.add(logged(9, "SELECT 1", ts=99.0))
        store.remove(9)
        assert store.execute_meta_sql(
            "SELECT numQueries FROM Sessions WHERE sessionId = 7"
        ).scalar() == 3

    def test_replace_text_preserves_session_rows(self, store_with_session):
        store = store_with_session
        new_text = "SELECT a FROM t WHERE x = 20"
        store.replace_text(
            2,
            new_text,
            extract_features(new_text),
            canonical_text(new_text),
            canonical_text(new_text, strip_constants=True),
        )
        assert store.get(2).session_id == 7
        assert store.execute_meta_sql(
            "SELECT numQueries FROM Sessions WHERE sessionId = 7"
        ).scalar() == 3
        edges = store.execute_meta_sql(
            "SELECT fromQid, toQid FROM SessionEdges ORDER BY fromQid"
        ).rows
        assert edges == [(1, 2), (2, 3)]
