"""Tests for the cost-based planner: access paths, join order, EXPLAIN."""

import pytest

from repro.storage.database import Database
from repro.storage.planner import Planner
from repro.sql.parser import parse


@pytest.fixture()
def db():
    database = Database()
    database.execute(
        "CREATE TABLE lakes (id INTEGER PRIMARY KEY, name TEXT, state TEXT, area FLOAT)"
    )
    database.execute(
        "CREATE TABLE readings (lake_id INTEGER, temp FLOAT, depth FLOAT, month INTEGER)"
    )
    database.execute(
        "INSERT INTO lakes (id, name, state, area) VALUES "
        "(1, 'Washington', 'WA', 87.6), (2, 'Union', 'WA', 2.3), "
        "(3, 'Michigan', 'MI', 58000.0), (4, 'Chelan', 'WA', 135.0)"
    )
    database.execute(
        "INSERT INTO readings (lake_id, temp, depth, month) VALUES "
        "(1, 15.0, 5.0, 6), (1, 17.5, 10.0, 7), (1, 12.0, 20.0, 8), "
        "(2, 20.0, 3.0, 6), (2, 22.5, 4.0, 7), "
        "(3, 9.0, 30.0, 6), (4, 11.0, 12.0, 7)"
    )
    return database


class TestAccessPathSelection:
    def test_equality_on_indexed_column_uses_index_scan(self, db):
        plan = db.explain("SELECT name FROM lakes WHERE id = 2")
        assert "IndexScan lakes (id = 2)" in plan.text()
        assert "SeqScan" not in plan.text()

    def test_equality_on_unindexed_column_uses_seq_scan(self, db):
        plan = db.explain("SELECT name FROM lakes WHERE state = 'WA'")
        assert "SeqScan lakes" in plan.text()
        assert "Filter (state = 'WA')" in plan.text()

    def test_created_index_is_picked_up(self, db):
        before = db.explain("SELECT * FROM readings WHERE month = 7")
        assert "SeqScan readings" in before.text()
        db.execute("CREATE INDEX idx_month ON readings (month)")
        after = db.explain("SELECT * FROM readings WHERE month = 7")
        assert "IndexScan readings (month = 7)" in after.text()

    def test_non_equality_predicates_stay_as_filters(self, db):
        plan = db.explain("SELECT name FROM lakes WHERE id > 2")
        assert "SeqScan lakes" in plan.text()

    def test_remaining_predicates_filter_above_index_scan(self, db):
        plan = db.explain("SELECT name FROM lakes WHERE id = 2 AND area > 1")
        text = plan.text()
        assert "IndexScan lakes (id = 2)" in text
        assert "Filter (area > 1" in text

    def test_index_scan_results_match_seq_scan(self, db):
        statement = parse("SELECT name FROM lakes WHERE id = 3")
        indexed = Planner(db).plan_select(statement)
        seq_only = Planner(db, use_indexes=False).plan_select(statement)
        assert "IndexScan" in "\n".join(indexed.explain_lines())
        assert "IndexScan" not in "\n".join(seq_only.explain_lines())
        assert db.execute(statement).rows == [("Michigan",)]

    def test_index_probe_matches_engine_equality_semantics(self, db):
        # compare_values string-compares mixed number/text, so indexed and
        # unindexed execution must agree on cross-type equality.
        assert db.execute("SELECT name FROM lakes WHERE id = '2'").rows == [("Union",)]
        assert db.execute("SELECT name FROM lakes WHERE id = '02'").rows == []
        db.execute("CREATE INDEX idx_name ON lakes (name)")
        assert db.execute("SELECT id FROM lakes WHERE name = 'Union'").rows == [(2,)]
        # Numeric probe against the indexed TEXT column: str-comparison match.
        db.execute("INSERT INTO lakes (id, name, state, area) VALUES (7, '42', 'ZZ', 1.0)")
        assert db.execute("SELECT id FROM lakes WHERE name = 42").rows == [(7,)]

    def test_boolean_probe_on_numeric_index_falls_back_to_scan(self, db):
        # TRUE against an INTEGER column matches by truthiness (every nonzero
        # id); that cannot be one hash probe, so the planner must not claim an
        # IndexScan and execution must keep compare_values semantics.
        plan = db.explain("SELECT name FROM lakes WHERE id = TRUE")
        assert "IndexScan" not in plan.text()
        result = db.execute("SELECT name FROM lakes WHERE id = TRUE")
        assert len(result.rows) == 4

    def test_index_scan_scans_fewer_rows(self, db):
        by_index = db.execute("SELECT name FROM lakes WHERE id = 1")
        assert by_index.stats.rows_scanned == 1
        assert by_index.stats.index_lookups == 1
        by_scan = db.execute("SELECT name FROM lakes WHERE state = 'WA'")
        assert by_scan.stats.rows_scanned == 4
        assert by_scan.stats.index_lookups == 0


class TestRangeScanSelection:
    @pytest.fixture()
    def sorted_db(self, db):
        db.execute("CREATE INDEX lakes_area_sorted ON lakes (area) USING SORTED")
        return db

    def test_range_predicate_uses_range_scan(self, sorted_db):
        plan = sorted_db.explain("SELECT name FROM lakes WHERE area > 50")
        assert "RangeScan lakes (area > 50)" in plan.text(), plan.text()
        assert "SeqScan" not in plan.text()
        result = sorted_db.execute("SELECT name FROM lakes WHERE area > 50")
        assert set(result.column("name")) == {"Washington", "Michigan", "Chelan"}
        assert result.stats.index_lookups == 1
        assert result.stats.rows_scanned == 3

    def test_between_uses_range_scan(self, sorted_db):
        plan = sorted_db.explain("SELECT name FROM lakes WHERE area BETWEEN 2 AND 200")
        assert "RangeScan lakes (area >= 2 AND area <= 200)" in plan.text()
        result = sorted_db.execute("SELECT name FROM lakes WHERE area BETWEEN 2 AND 200")
        assert set(result.column("name")) == {"Washington", "Union", "Chelan"}

    def test_bounds_on_same_column_merge_into_one_scan(self, sorted_db):
        plan = sorted_db.explain(
            "SELECT name FROM lakes WHERE area > 2 AND area <= 200 AND area > 3"
        )
        text = plan.text()
        assert "RangeScan lakes (area > 3 AND area <= 200)" in text, text
        result = sorted_db.execute(
            "SELECT name FROM lakes WHERE area > 2 AND area <= 200 AND area > 3"
        )
        assert set(result.column("name")) == {"Washington", "Chelan"}

    def test_range_scan_without_sorted_index_stays_seq(self, db):
        plan = db.explain("SELECT name FROM lakes WHERE area > 50")
        assert "RangeScan" not in plan.text()
        assert "SeqScan lakes" in plan.text()

    def test_range_results_match_seq_scan(self, sorted_db):
        sql = "SELECT name FROM lakes WHERE area >= 2.3 AND area < 135"
        statement = parse(sql)
        indexed = sorted_db.execute(statement)
        seq_plan = Planner(sorted_db, use_indexes=False).plan_select(statement)
        assert "RangeScan" not in "\n".join(seq_plan.explain_lines())
        from repro.storage.executor import Executor

        executor = Executor(sorted_db)
        _, seq_rows = executor._execute_plan(seq_plan, None)
        assert sorted(indexed.rows) == sorted(seq_rows)

    def test_string_bound_on_numeric_column_degrades_to_scan(self, sorted_db):
        # compare_values string-compares a numeric column against a string
        # bound; that order is not the index order, so no RangeScan.
        plan = sorted_db.explain("SELECT name FROM lakes WHERE area < '50'")
        assert "RangeScan" not in plan.text()

    def test_equality_pick_beats_looser_range(self, sorted_db):
        # id = 2 (one row via the pk hash index) must win over the wide range.
        plan = sorted_db.explain("SELECT name FROM lakes WHERE id = 2 AND area > 1")
        assert "IndexScan lakes (id = 2)" in plan.text()


class TestSortElimination:
    @pytest.fixture()
    def sorted_db(self, db):
        db.execute("CREATE INDEX lakes_area_sorted ON lakes (area) USING SORTED")
        return db

    def test_order_by_sorted_column_drops_sort(self, sorted_db):
        plan = sorted_db.explain("SELECT name FROM lakes ORDER BY area")
        assert "Sort" not in plan.text(), plan.text()
        assert "RangeScan lakes (ORDER BY area)" in plan.text()
        result = sorted_db.execute("SELECT name FROM lakes ORDER BY area")
        assert result.column("name") == ["Union", "Washington", "Chelan", "Michigan"]

    def test_order_by_desc_drops_sort(self, sorted_db):
        plan = sorted_db.explain("SELECT name FROM lakes ORDER BY area DESC")
        assert "Sort" not in plan.text()
        result = sorted_db.execute("SELECT name FROM lakes ORDER BY area DESC")
        assert result.column("name") == ["Michigan", "Chelan", "Washington", "Union"]

    def test_order_by_limit_short_circuits(self, sorted_db):
        result = sorted_db.execute("SELECT name FROM lakes ORDER BY area DESC LIMIT 2")
        assert result.column("name") == ["Michigan", "Chelan"]
        # Only the two delivered rows are fetched from the heap.
        assert result.stats.rows_scanned == 2

    def test_range_predicate_and_matching_order_share_the_scan(self, sorted_db):
        plan = sorted_db.explain(
            "SELECT name FROM lakes WHERE area > 3 ORDER BY area DESC"
        )
        text = plan.text()
        assert "Sort" not in text, text
        assert "RangeScan" in text and "desc" in text
        result = sorted_db.execute(
            "SELECT name FROM lakes WHERE area > 3 ORDER BY area DESC"
        )
        assert result.column("name") == ["Michigan", "Chelan", "Washington"]

    def test_order_by_unindexed_column_keeps_sort(self, sorted_db):
        plan = sorted_db.explain("SELECT name FROM lakes ORDER BY name")
        assert "Sort [name]" in plan.text()

    def test_order_by_alias_shadowing_column_keeps_sort(self, sorted_db):
        # ORDER BY resolves select-list aliases first; the sort must stay.
        plan = sorted_db.explain("SELECT name, id * -1 AS area FROM lakes ORDER BY area")
        assert "Sort [area]" in plan.text()
        result = sorted_db.execute("SELECT name, id * -1 AS area FROM lakes ORDER BY area")
        assert result.column("name") == ["Chelan", "Michigan", "Union", "Washington"]

    def test_multi_key_order_partial_sorts_on_index_prefix(self, sorted_db):
        # The sorted index covers the first ORDER BY key; the remaining keys
        # are sorted within runs of equal area instead of a full sort.
        plan = sorted_db.explain("SELECT name FROM lakes ORDER BY area, name")
        assert "PartialSort [area, name] (prefix area via index order)" in plan.text()
        assert "RangeScan lakes (ORDER BY area)" in plan.text()

    def test_multi_key_order_without_index_on_first_key_keeps_sort(self, sorted_db):
        plan = sorted_db.explain("SELECT name FROM lakes ORDER BY name, area")
        assert "Sort [name, area]" in plan.text()
        assert "PartialSort" not in plan.text()

    def test_partial_sort_matches_full_sort(self):
        db = Database()
        db.execute("CREATE TABLE events (usr TEXT, ts INTEGER, seq INTEGER)")
        rows = [
            {"usr": f"u{(i * 7) % 5}", "ts": (i * 13) % 17, "seq": i}
            for i in range(120)
        ]
        db.insert_rows("events", rows)
        baseline = db.execute("SELECT usr, ts, seq FROM events ORDER BY usr, ts DESC")
        db.execute("CREATE INDEX events_usr ON events (usr) USING SORTED")
        plan = db.explain("SELECT usr, ts, seq FROM events ORDER BY usr, ts DESC")
        assert "PartialSort [usr, ts DESC]" in plan.text(), plan.text()
        indexed = db.execute("SELECT usr, ts, seq FROM events ORDER BY usr, ts DESC")
        assert indexed.rows == baseline.rows

    def test_partial_sort_desc_prefix_flips_scan_direction(self, sorted_db):
        plan = sorted_db.explain("SELECT name FROM lakes ORDER BY area DESC, name")
        assert "PartialSort" in plan.text()
        assert "RangeScan lakes (ORDER BY area DESC)" in plan.text()
        result = sorted_db.execute("SELECT name FROM lakes ORDER BY area DESC, name")
        assert result.column("name") == ["Michigan", "Chelan", "Washington", "Union"]

    def test_partial_sort_limit_short_circuits(self):
        db = Database()
        db.execute("CREATE TABLE events (usr TEXT, ts INTEGER)")
        db.insert_rows(
            "events",
            [{"usr": f"u{i % 4}", "ts": i} for i in range(2000)],
        )
        db.execute("CREATE INDEX events_usr ON events (usr) USING SORTED")
        result = db.execute("SELECT usr, ts FROM events ORDER BY usr, ts LIMIT 5")
        assert result.rows == [("u0", ts) for ts in (0, 4, 8, 12, 16)]
        # Consumption stops at the first run boundary past the limit budget;
        # the full table is never materialized for a sort.
        assert result.stats.rows_scanned < 2000

    def test_join_keeps_sort(self, sorted_db):
        plan = sorted_db.explain(
            "SELECT L.name FROM lakes L, readings R WHERE L.id = R.lake_id ORDER BY L.area"
        )
        assert "Sort" in plan.text()


class TestDmlPlanning:
    def test_update_with_indexed_where_probes_index(self, db):
        plan = db.explain("UPDATE lakes SET area = 0.0 WHERE id = 2")
        text = plan.text()
        assert plan.statement_kind == "update"
        assert text.startswith("Update [lakes]")
        assert "IndexScan lakes (id = 2)" in text
        assert "SeqScan" not in text

    def test_delete_with_indexed_where_probes_index(self, db):
        plan = db.explain("DELETE FROM lakes WHERE id = 2")
        assert plan.statement_kind == "delete"
        assert "Delete [lakes]" in plan.text()
        assert "IndexScan lakes (id = 2)" in plan.text()

    def test_dml_range_predicate_uses_range_scan(self, db):
        db.execute("CREATE INDEX readings_temp_sorted ON readings (temp) USING SORTED")
        plan = db.explain("DELETE FROM readings WHERE temp < 12")
        assert "RangeScan readings (temp < 12)" in plan.text(), plan.text()
        result = db.execute("DELETE FROM readings WHERE temp < 12")
        assert result.rowcount == 2
        assert result.stats.rows_scanned == 2
        assert result.stats.index_lookups == 1

    def test_dml_without_usable_index_full_scans(self, db):
        plan = db.explain("UPDATE readings SET depth = 0.0 WHERE month = 7")
        assert "SeqScan readings" in plan.text()
        assert "Filter (month = 7)" in plan.text()

    def test_dml_without_where_full_scans(self, db):
        plan = db.explain("DELETE FROM readings")
        assert "SeqScan readings" in plan.text()
        assert "Filter" not in plan.text()

    def test_dml_subquery_predicate_stays_residual(self, db):
        plan = db.explain(
            "DELETE FROM readings WHERE lake_id IN (SELECT id FROM lakes WHERE state = 'MI')"
        )
        assert "Filter (lake_id IN" in plan.text()
        result = db.execute(
            "DELETE FROM readings WHERE lake_id IN (SELECT id FROM lakes WHERE state = 'MI')"
        )
        assert result.rowcount == 1

    def test_planned_update_matches_full_scan_semantics(self, db):
        db.execute("UPDATE lakes SET area = area + 1 WHERE id = 2")
        assert db.execute("SELECT area FROM lakes WHERE id = 2").scalar() == 3.3

    def test_update_of_the_probed_column_is_safe(self, db):
        # The access path drives through the index being rewritten: the
        # candidate list must be materialized before mutation.
        result = db.execute("UPDATE lakes SET id = id + 10 WHERE id > 0")
        assert result.rowcount == 4
        assert sorted(db.execute("SELECT id FROM lakes").column("id")) == [11, 12, 13, 14]


class TestJoinPlanning:
    def test_index_loop_join_probes_indexed_side(self, db):
        plan = db.explain(
            "SELECT L.name, R.temp FROM lakes L, readings R "
            "WHERE L.id = R.lake_id AND R.temp < 12"
        )
        text = plan.text()
        assert "IndexLoopJoin" in text
        assert "IndexScan lakes AS L (id = R.lake_id)" in text

    def test_hash_join_without_usable_index(self, db):
        db.execute("CREATE TABLE states (code TEXT, region TEXT)")
        db.execute("INSERT INTO states VALUES ('WA', 'west'), ('MI', 'midwest')")
        plan = db.explain("SELECT * FROM lakes L, states S WHERE L.state = S.code")
        assert "HashJoin" in plan.text()

    def test_join_order_starts_with_smaller_estimate(self, db):
        # With fresh statistics, the skew is visible to the planner: the
        # filtered readings side (temp < 10 matches one row) must drive the
        # join rather than the 4-row lakes table being scanned per row.
        db.statistics("lakes", refresh=True)
        db.statistics("readings", refresh=True)
        plan = db.explain(
            "SELECT L.name FROM lakes L, readings R "
            "WHERE L.id = R.lake_id AND R.temp < 10"
        )
        lines = plan.lines
        scan_lines = [l for l in lines if "Scan" in l]
        # The first access path in the tree is the driving (outer) side.
        assert "readings" in scan_lines[0]

    def test_join_order_with_skewed_statistics(self):
        db = Database()
        db.execute("CREATE TABLE big (k INTEGER, payload TEXT)")
        db.execute("CREATE TABLE small (k INTEGER, tag TEXT)")
        db.insert_rows("big", [{"k": i % 50, "payload": "x"} for i in range(400)])
        db.insert_rows("small", [{"k": i, "tag": "t"} for i in range(5)])
        db.statistics("big", refresh=True)
        db.statistics("small", refresh=True)
        plan = db.explain("SELECT * FROM big B, small S WHERE B.k = S.k")
        scan_lines = [l for l in plan.lines if "Scan" in l]
        assert "small" in scan_lines[0], plan.text()
        result = db.execute("SELECT COUNT(*) FROM big B, small S WHERE B.k = S.k")
        assert result.scalar() == 5 * 8

    def test_hash_join_build_side_is_smaller_input(self, db):
        db.execute("CREATE TABLE tiny (state TEXT)")
        db.execute("INSERT INTO tiny VALUES ('WA')")
        plan = db.explain("SELECT * FROM lakes L, tiny T WHERE L.state = T.state")
        join_line = next(l for l in plan.lines if "HashJoin" in l)
        assert "build=left" in join_line  # tiny drives, so build side is left

    def test_cross_join_is_nested_loop(self, db):
        plan = db.explain("SELECT * FROM lakes CROSS JOIN readings")
        assert "NestedLoopJoin (cross)" in plan.text()


class TestExplain:
    def test_explain_is_stable_across_calls(self, db):
        sql = (
            "SELECT L.state, COUNT(*) AS n FROM lakes L, readings R "
            "WHERE L.id = R.lake_id AND R.temp < 20 "
            "GROUP BY L.state HAVING COUNT(*) > 1 ORDER BY n DESC LIMIT 3"
        )
        first = db.explain(sql)
        second = db.explain(sql)
        assert first.lines == second.lines

    def test_explain_decorations(self, db):
        plan = db.explain(
            "SELECT DISTINCT state FROM lakes ORDER BY state LIMIT 2 OFFSET 1"
        )
        text = plan.text()
        for marker in ("Limit [limit=2, offset=1]", "Distinct", "Sort [state]", "Project [state]"):
            assert marker in text
        # Decorations nest top-down: Limit above Distinct above Sort.
        assert plan.lines[0].startswith("Limit")

    def test_explain_aggregate_node(self, db):
        plan = db.explain("SELECT state, COUNT(*) FROM lakes GROUP BY state")
        assert "Aggregate [group by state]" in plan.text()

    def test_explain_select_without_from(self, db):
        plan = db.explain("SELECT 1 + 2")
        assert "Result" in plan.text()

    def test_explain_does_not_execute(self, db):
        db.explain("SELECT * FROM lakes")
        # A plan is produced without touching row counts.
        assert db.explain("SELECT * FROM lakes").statement_kind == "select"

    def test_explain_dml_statements(self, db):
        assert "Insert [lakes]" in db.explain(
            "INSERT INTO lakes (id, name, state, area) VALUES (9, 'X', 'OR', 1.0)"
        ).text()
        assert db.explain("DELETE FROM readings WHERE temp > 50").statement_kind == "delete"

    def test_explain_subquery_scan(self, db):
        plan = db.explain(
            "SELECT big.name FROM (SELECT name, area FROM lakes WHERE area > 100) big"
        )
        assert "SubqueryScan AS big" in plan.text()

    def test_explain_outer_join(self, db):
        plan = db.explain(
            "SELECT L.name FROM lakes L LEFT JOIN readings R ON L.id = R.lake_id"
        )
        assert "LeftOuterJoin" in plan.text()


class TestPlannerSemantics:
    """The planner must not change results, only how they are produced."""

    QUERIES = [
        "SELECT * FROM lakes WHERE id = 2",
        "SELECT name FROM lakes WHERE id = 2 AND state = 'WA'",
        "SELECT L.name, R.temp FROM lakes L, readings R WHERE L.id = R.lake_id",
        "SELECT L.name FROM lakes L JOIN readings R ON L.id = R.lake_id WHERE R.month = 8",
        "SELECT lake_id, COUNT(*) FROM readings GROUP BY lake_id",
        "SELECT * FROM lakes WHERE id = (SELECT MAX(lake_id) FROM readings)",
    ]

    @pytest.mark.parametrize("sql", QUERIES)
    def test_same_rows_with_and_without_indexes(self, db, sql):
        statement = parse(sql)
        from repro.storage.executor import Executor

        with_indexes = db.execute(statement)
        # Plan the same statement with indexes disabled and compare rows.
        executor = Executor(db)
        plan = Planner(db, use_indexes=False).plan_select(statement)
        columns, rows = executor._execute_plan(plan, None)
        assert sorted(map(repr, rows)) == sorted(map(repr, with_indexes.rows))
        assert columns == with_indexes.columns

    def test_select_star_order_follows_from_clause(self, db):
        # Even when the planner reorders the join, * expands in FROM order.
        result = db.execute(
            "SELECT * FROM lakes L, readings R WHERE L.id = R.lake_id AND R.temp < 10"
        )
        assert result.columns == [
            "id", "name", "state", "area", "lake_id", "temp", "depth", "month",
        ]
        assert result.rows == [(3, "Michigan", "MI", 58000.0, 3, 9.0, 30.0, 6)]

    def test_limit_short_circuits_scan(self, db):
        result = db.execute("SELECT name FROM lakes LIMIT 2")
        assert len(result.rows) == 2
        # The streaming pipeline stops as soon as LIMIT is satisfied.
        assert result.stats.rows_scanned == 2


class TestMetaQueryExplain:
    def test_feature_relation_join_uses_qid_index(self, fresh_cqms):
        fresh_cqms.submit("alice", "SELECT * FROM WaterTemp T WHERE T.temp < 18")
        fresh_cqms.submit(
            "alice",
            "SELECT S.salinity, T.temp FROM WaterSalinity S, WaterTemp T "
            "WHERE S.lake = T.lake",
        )
        meta_sql = (
            "SELECT Q.qid FROM Queries Q, Attributes A "
            "WHERE Q.qid = A.qid AND A.relName = 'watertemp'"
        )
        explanation = fresh_cqms.explain_meta("alice", meta_sql)
        assert "IndexScan" in explanation.text()
        # The planner's answer matches the executed meta-query.
        result = fresh_cqms.store.execute_meta_sql(meta_sql)
        assert result.stats.index_lookups > 0

    def test_workbench_renders_plans(self, fresh_cqms):
        from repro.client.workbench import Workbench

        workbench = Workbench(fresh_cqms, "alice")
        workbench.type("SELECT * FROM WaterTemp WHERE lake = 'Lake Union'")
        panel = workbench.explain()
        assert panel.startswith("=== Query plan ===")
        assert "WaterTemp" in panel
        meta_panel = workbench.explain_meta("SELECT qid FROM Queries WHERE qid = 1")
        assert meta_panel.startswith("=== Meta-query plan ===")
        assert "IndexScan" in meta_panel
        assert workbench.history[-1].kind == "explain"
