"""Tests for kNN search, clustering, and association-rule mining."""

import pytest

from repro.mining.association_rules import RuleIndex, apriori, mine_rules
from repro.mining.clustering import agglomerative, k_medoids, silhouette_score
from repro.mining.knn import KNNIndex


class TestKNNIndex:
    def build(self):
        index = KNNIndex()
        index.add("q1", ["table:a", "table:b", "pred:x"])
        index.add("q2", ["table:a", "table:b"])
        index.add("q3", ["table:c"])
        index.add("q4", ["table:a", "pred:x", "pred:y"])
        return index

    def test_len_and_contains(self):
        index = self.build()
        assert len(index) == 4
        assert "q1" in index and "zzz" not in index

    def test_nearest_orders_by_similarity(self):
        index = self.build()
        neighbors = index.nearest(["table:a", "table:b", "pred:x"], k=3)
        assert neighbors[0].key == "q1"
        assert neighbors[0].similarity == 1.0
        assert neighbors[1].key == "q2"

    def test_candidates_share_a_token(self):
        index = self.build()
        assert index.candidates(["table:c"]) == {"q3"}

    def test_disjoint_probe_returns_nothing_in_candidate_mode(self):
        index = self.build()
        assert index.nearest(["table:zzz"], k=5) == []

    def test_exclude(self):
        index = self.build()
        neighbors = index.nearest(["table:a", "table:b"], k=5, exclude={"q2"})
        assert all(neighbor.key != "q2" for neighbor in neighbors)

    def test_remove(self):
        index = self.build()
        index.remove("q1")
        assert "q1" not in index
        assert all(n.key != "q1" for n in index.nearest(["table:a"], k=10))

    def test_re_add_replaces_tokens(self):
        index = self.build()
        index.add("q3", ["table:a"])
        assert index.candidates(["table:c"]) == set()

    def test_k_limits_results(self):
        index = self.build()
        assert len(index.nearest(["table:a"], k=2)) == 2

    def test_custom_similarity(self):
        index = KNNIndex(similarity=lambda probe, item: float(len(set(probe) & set(item))))
        index.add("x", ["a", "b"])
        index.add("y", ["a"])
        neighbors = index.nearest(["a", "b"], k=2)
        assert neighbors[0].key == "x" and neighbors[0].similarity == 2.0

    def test_min_similarity_filters(self):
        index = self.build()
        neighbors = index.nearest(["table:a", "table:b", "pred:x"], k=10, min_similarity=0.9)
        assert [n.key for n in neighbors] == ["q1"]


def _grouped_items():
    """Two well-separated groups of token sets plus labels."""
    group_a = [frozenset({"a", "b", f"x{i}"}) for i in range(5)]
    group_b = [frozenset({"c", "d", f"y{i}"}) for i in range(5)]
    return group_a + group_b


def _set_distance(first, second):
    union = first | second
    if not union:
        return 0.0
    return 1.0 - len(first & second) / len(union)


class TestKMedoids:
    def test_two_obvious_clusters_recovered(self):
        items = _grouped_items()
        result = k_medoids(items, k=2, distance=_set_distance, seed=1)
        first_half = {result.labels[i] for i in range(5)}
        second_half = {result.labels[i] for i in range(5, 10)}
        assert len(first_half) == 1 and len(second_half) == 1
        assert first_half != second_half

    def test_k_greater_than_items_gives_singletons(self):
        result = k_medoids(["a", "b"], k=5, distance=lambda x, y: 1.0)
        assert result.num_clusters == 2

    def test_empty_input(self):
        result = k_medoids([], k=3, distance=lambda x, y: 0.0)
        assert result.labels == [] and result.num_clusters == 0

    def test_deterministic_for_seed(self):
        items = _grouped_items()
        first = k_medoids(items, k=2, distance=_set_distance, seed=3)
        second = k_medoids(items, k=2, distance=_set_distance, seed=3)
        assert first.labels == second.labels

    def test_medoid_is_member_of_cluster(self):
        items = _grouped_items()
        result = k_medoids(items, k=2, distance=_set_distance, seed=0)
        for label, medoid_index in result.medoids.items():
            assert result.labels[medoid_index] == label

    def test_clusters_and_members_helpers(self):
        items = _grouped_items()
        result = k_medoids(items, k=2, distance=_set_distance, seed=0)
        clusters = result.clusters()
        assert sum(len(v) for v in clusters.values()) == len(items)
        label = result.label_of(0)
        assert items[0] in result.members(label)
        assert result.representative(label) in items

    def test_silhouette_high_for_separated_clusters(self):
        items = _grouped_items()
        result = k_medoids(items, k=2, distance=_set_distance, seed=0)
        assert silhouette_score(result, _set_distance) > 0.3


class TestAgglomerative:
    def test_num_clusters_target(self):
        items = _grouped_items()
        result = agglomerative(items, distance=_set_distance, num_clusters=2)
        assert result.num_clusters == 2

    def test_distance_threshold_stops_merging(self):
        items = _grouped_items()
        result = agglomerative(items, distance=_set_distance, distance_threshold=0.5)
        # The two groups are far apart (distance ~1.0) so they never merge.
        assert result.num_clusters >= 2

    def test_requires_a_stopping_criterion(self):
        with pytest.raises(ValueError):
            agglomerative(["a"], distance=lambda x, y: 0.0)

    @pytest.mark.parametrize("linkage", ["single", "complete", "average"])
    def test_linkages_work(self, linkage):
        items = _grouped_items()
        result = agglomerative(items, distance=_set_distance, num_clusters=2, linkage=linkage)
        assert result.num_clusters == 2

    def test_empty_input(self):
        result = agglomerative([], distance=_set_distance, num_clusters=2)
        assert result.labels == []


class TestApriori:
    TRANSACTIONS = [
        {"salinity", "temp"},
        {"salinity", "temp"},
        {"salinity", "temp", "city"},
        {"city"},
        {"city", "lakes"},
        {"temp"},
    ]

    def test_frequent_single_items(self):
        itemsets = apriori(self.TRANSACTIONS, min_support=0.3, max_size=1)
        names = {tuple(sorted(i.items)) for i in itemsets}
        assert ("temp",) in names and ("salinity",) in names and ("city",) in names

    def test_frequent_pairs(self):
        itemsets = apriori(self.TRANSACTIONS, min_support=0.4, max_size=2)
        assert frozenset({"salinity", "temp"}) in {i.items for i in itemsets}

    def test_min_support_filters(self):
        itemsets = apriori(self.TRANSACTIONS, min_support=0.9, max_size=2)
        assert itemsets == []

    def test_support_counts_correct(self):
        itemsets = apriori(self.TRANSACTIONS, min_support=0.3, max_size=2)
        by_items = {i.items: i.support_count for i in itemsets}
        assert by_items[frozenset({"salinity", "temp"})] == 3
        assert by_items[frozenset({"temp"})] == 4

    def test_empty_transactions(self):
        assert apriori([], min_support=0.1) == []

    def test_itemset_support_fraction(self):
        itemsets = apriori(self.TRANSACTIONS, min_support=0.3, max_size=1)
        temp = next(i for i in itemsets if i.items == frozenset({"temp"}))
        assert temp.support(len(self.TRANSACTIONS)) == pytest.approx(4 / 6)


class TestRules:
    TRANSACTIONS = TestApriori.TRANSACTIONS

    def test_salinity_implies_temp(self):
        rules = mine_rules(self.TRANSACTIONS, min_support=0.3, min_confidence=0.8)
        matching = [
            rule
            for rule in rules
            if rule.antecedent == frozenset({"salinity"}) and rule.consequent == frozenset({"temp"})
        ]
        assert matching
        assert matching[0].confidence == pytest.approx(1.0)
        assert matching[0].lift > 1.0

    def test_min_confidence_filters(self):
        rules = mine_rules(self.TRANSACTIONS, min_support=0.1, min_confidence=0.99)
        assert all(rule.confidence >= 0.99 for rule in rules)

    def test_rules_sorted_by_confidence(self):
        rules = mine_rules(self.TRANSACTIONS, min_support=0.2, min_confidence=0.3)
        confidences = [rule.confidence for rule in rules]
        assert confidences == sorted(confidences, reverse=True)

    def test_rule_string_rendering(self):
        rules = mine_rules(self.TRANSACTIONS, min_support=0.3, min_confidence=0.8)
        assert "->" in str(rules[0])

    def test_rule_index_suggestions_context_aware(self):
        rules = mine_rules(self.TRANSACTIONS, min_support=0.2, min_confidence=0.5)
        index = RuleIndex(rules)
        suggestions = dict(index.suggestions(["salinity"]))
        assert "temp" in suggestions
        assert "salinity" not in suggestions  # context tokens excluded

    def test_rule_index_empty_context(self):
        index = RuleIndex(mine_rules(self.TRANSACTIONS, min_support=0.2, min_confidence=0.5))
        assert index.suggestions(["unknown-token"]) == []

    def test_rule_index_len_and_rules(self):
        rules = mine_rules(self.TRANSACTIONS, min_support=0.2, min_confidence=0.5)
        index = RuleIndex(rules)
        assert len(index) == len(rules)
        assert index.rules == rules
