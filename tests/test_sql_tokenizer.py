"""Tests for the SQL tokenizer."""

import pytest

from repro.errors import TokenizeError
from repro.sql.tokenizer import Token, TokenType, strip_comments, tokenize


def kinds(sql):
    return [token.type for token in tokenize(sql)]


def values(sql):
    return [token.value for token in tokenize(sql)[:-1]]


class TestBasicTokens:
    def test_empty_input_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.EOF

    def test_keywords_are_uppercased(self):
        assert values("select from where") == ["SELECT", "FROM", "WHERE"]

    def test_identifiers_keep_case(self):
        tokens = tokenize("WaterSalinity")
        assert tokens[0].type is TokenType.IDENTIFIER
        assert tokens[0].value == "WaterSalinity"

    def test_integer_literal(self):
        tokens = tokenize("42")
        assert tokens[0].type is TokenType.NUMBER
        assert tokens[0].value == "42"

    def test_float_literal(self):
        assert tokenize("3.14")[0].value == "3.14"

    def test_scientific_notation(self):
        assert tokenize("1.5e10")[0].value == "1.5e10"
        assert tokenize("2E-3")[0].value == "2E-3"

    def test_string_literal_strips_quotes(self):
        token = tokenize("'Lake Washington'")[0]
        assert token.type is TokenType.STRING
        assert token.value == "Lake Washington"

    def test_string_literal_escaped_quote(self):
        token = tokenize("'it''s'")[0]
        assert token.value == "it's"

    def test_quoted_identifier(self):
        token = tokenize('"Weird Name"')[0]
        assert token.type is TokenType.IDENTIFIER
        assert token.value == "Weird Name"

    def test_parameter_token(self):
        token = tokenize("?")[0]
        assert token.type is TokenType.PARAMETER

    def test_positions_point_to_source(self):
        tokens = tokenize("SELECT a")
        assert tokens[0].position == 0
        assert tokens[1].position == 7


class TestOperators:
    @pytest.mark.parametrize("op", ["=", "<", ">", "<=", ">=", "<>", "!=", "+", "-", "*", "/", "%", "||"])
    def test_operator_recognized(self, op):
        token = tokenize(f"a {op} b")[1]
        assert token.type is TokenType.OPERATOR
        assert token.value == op

    def test_multi_char_operator_wins_over_single(self):
        tokens = tokenize("a <= b")
        assert tokens[1].value == "<="

    def test_punctuation(self):
        assert [t.value for t in tokenize("(a, b);")[:-1]] == ["(", "a", ",", "b", ")", ";"]


class TestCommentsAndErrors:
    def test_line_comment_skipped(self):
        assert values("SELECT a -- comment\nFROM t") == ["SELECT", "a", "FROM", "t"]

    def test_block_comment_skipped(self):
        assert values("SELECT /* hi */ a") == ["SELECT", "a"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(TokenizeError):
            tokenize("SELECT /* oops")

    def test_unterminated_string_raises(self):
        with pytest.raises(TokenizeError):
            tokenize("SELECT 'oops")

    def test_illegal_character_raises_with_position(self):
        with pytest.raises(TokenizeError) as excinfo:
            tokenize("SELECT @")
        assert excinfo.value.position == 7

    def test_strip_comments_preserves_strings(self):
        text = "SELECT '--not a comment' -- real comment"
        assert strip_comments(text) == "SELECT '--not a comment' "

    def test_strip_comments_block(self):
        assert strip_comments("a /* b */ c") == "a  c"


class TestTokenHelpers:
    def test_is_keyword(self):
        token = Token(TokenType.KEYWORD, "SELECT", 0)
        assert token.is_keyword("SELECT")
        assert token.is_keyword("SELECT", "FROM")
        assert not token.is_keyword("FROM")

    def test_identifier_is_not_keyword(self):
        token = Token(TokenType.IDENTIFIER, "SELECT", 0)
        assert not token.is_keyword("SELECT")

    def test_full_query_token_stream(self):
        sql = "SELECT name, COUNT(*) FROM lakes WHERE area > 10.5 GROUP BY name"
        types = kinds(sql)
        assert types[-1] is TokenType.EOF
        assert TokenType.NUMBER in types
        assert TokenType.KEYWORD in types
