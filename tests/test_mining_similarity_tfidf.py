"""Tests for similarity measures and the TF-IDF vectorizer."""

import math

import pytest

from repro.mining.similarity import (
    best_match,
    dice_similarity,
    edit_distance,
    jaccard_similarity,
    normalized_edit_similarity,
    overlap_coefficient,
    rank_by_similarity,
    text_trigram_similarity,
    weighted_feature_similarity,
)
from repro.mining.tfidf import TfIdfVectorizer, cosine_similarity


class TestSetSimilarities:
    def test_jaccard_identical(self):
        assert jaccard_similarity({"a", "b"}, {"a", "b"}) == 1.0

    def test_jaccard_disjoint(self):
        assert jaccard_similarity({"a"}, {"b"}) == 0.0

    def test_jaccard_partial(self):
        assert jaccard_similarity({"a", "b"}, {"b", "c"}) == pytest.approx(1 / 3)

    def test_jaccard_both_empty(self):
        assert jaccard_similarity([], []) == 1.0

    def test_overlap_coefficient(self):
        assert overlap_coefficient({"a", "b", "c"}, {"a"}) == 1.0
        assert overlap_coefficient({"a"}, set()) == 0.0

    def test_dice(self):
        assert dice_similarity({"a", "b"}, {"b", "c"}) == pytest.approx(0.5)

    def test_weighted_feature_similarity_weights_matter(self):
        first = {"tables": {"a", "b"}, "predicates": {"p"}}
        second = {"tables": {"a", "b"}, "predicates": {"q"}}
        table_heavy = weighted_feature_similarity(first, second, {"tables": 10, "predicates": 1})
        predicate_heavy = weighted_feature_similarity(first, second, {"tables": 1, "predicates": 10})
        assert table_heavy > predicate_heavy

    def test_weighted_feature_similarity_skips_empty_classes(self):
        first = {"tables": {"a"}, "joins": set()}
        second = {"tables": {"a"}, "joins": set()}
        assert weighted_feature_similarity(first, second) == 1.0

    def test_weighted_feature_similarity_zero_weight_excludes_class(self):
        first = {"tables": {"a"}, "predicates": {"p"}}
        second = {"tables": {"a"}, "predicates": {"q"}}
        assert weighted_feature_similarity(first, second, {"predicates": 0.0}) == 1.0

    def test_weighted_similarity_bounds(self):
        first = {"tables": {"a", "b"}, "predicates": {"p", "q"}}
        second = {"tables": {"b", "c"}, "predicates": set()}
        value = weighted_feature_similarity(first, second)
        assert 0.0 <= value <= 1.0


class TestEditDistance:
    def test_identical(self):
        assert edit_distance("abc", "abc") == 0

    def test_insertions_deletions(self):
        assert edit_distance("abc", "abcd") == 1
        assert edit_distance("abcd", "abc") == 1

    def test_substitution(self):
        assert edit_distance("kitten", "sitten") == 1

    def test_classic_example(self):
        assert edit_distance("kitten", "sitting") == 3

    def test_empty_sequences(self):
        assert edit_distance("", "abc") == 3
        assert edit_distance("abc", "") == 3

    def test_works_on_token_lists(self):
        assert edit_distance(["select", "a"], ["select", "b"]) == 1

    def test_max_distance_early_exit(self):
        assert edit_distance("aaaaaaaa", "bbbbbbbb", max_distance=2) == 3

    def test_normalized_similarity(self):
        assert normalized_edit_similarity("abc", "abc") == 1.0
        assert normalized_edit_similarity("", "") == 1.0
        assert 0.0 <= normalized_edit_similarity("abc", "xyz") <= 1.0


class TestTrigramAndMatching:
    def test_identical_strings(self):
        assert text_trigram_similarity("salinity", "salinity") == 1.0

    def test_typo_is_similar(self):
        assert text_trigram_similarity("salinity", "salinty") > 0.4

    def test_unrelated_strings_dissimilar(self):
        assert text_trigram_similarity("salinity", "population") < 0.2

    def test_case_insensitive(self):
        assert text_trigram_similarity("WaterTemp", "watertemp") == 1.0

    def test_best_match_finds_closest(self):
        match, score = best_match("watertmp", ["watertemp", "watersalinity", "lakes"])
        assert match == "watertemp"
        assert score > 0.4

    def test_best_match_respects_minimum(self):
        match, score = best_match("zzz", ["watertemp"], minimum=0.9)
        assert match is None and score == 0.0

    def test_rank_by_similarity(self):
        ranked = rank_by_similarity(
            "watertemp", ["watertemp", "watersalinity", "lakes"], text_trigram_similarity, limit=2
        )
        assert ranked[0][0] == "watertemp"
        assert len(ranked) == 2


class TestTfIdf:
    DOCS = [
        ["table:a", "table:b"],
        ["table:a", "table:c"],
        ["table:a", "table:b", "pred:x"],
        ["table:d"],
    ]

    def test_fit_counts_documents_and_vocabulary(self):
        vectorizer = TfIdfVectorizer().fit(self.DOCS)
        assert vectorizer.num_documents == 4
        assert vectorizer.vocabulary_size == 5

    def test_common_terms_get_lower_idf(self):
        vectorizer = TfIdfVectorizer().fit(self.DOCS)
        assert vectorizer.idf("table:a") < vectorizer.idf("table:d")

    def test_unseen_term_gets_max_idf(self):
        vectorizer = TfIdfVectorizer().fit(self.DOCS)
        assert vectorizer.idf("never-seen") >= vectorizer.idf("table:d")

    def test_transform_is_normalized(self):
        vectorizer = TfIdfVectorizer().fit(self.DOCS)
        vector = vectorizer.transform(["table:a", "table:b"])
        norm = math.sqrt(sum(w * w for w in vector.values()))
        assert norm == pytest.approx(1.0)

    def test_empty_document_transforms_to_empty(self):
        vectorizer = TfIdfVectorizer().fit(self.DOCS)
        assert vectorizer.transform([]) == {}

    def test_similarity_of_identical_docs(self):
        vectorizer = TfIdfVectorizer().fit(self.DOCS)
        assert vectorizer.similarity(self.DOCS[0], self.DOCS[0]) == pytest.approx(1.0)

    def test_similarity_orders_related_docs(self):
        vectorizer = TfIdfVectorizer().fit(self.DOCS)
        close = vectorizer.similarity(self.DOCS[0], self.DOCS[2])
        far = vectorizer.similarity(self.DOCS[0], self.DOCS[3])
        assert close > far

    def test_partial_fit(self):
        vectorizer = TfIdfVectorizer().fit(self.DOCS)
        before = vectorizer.num_documents
        vectorizer.partial_fit(["table:e"])
        assert vectorizer.num_documents == before + 1
        assert vectorizer.idf("table:e") < vectorizer.idf("never-seen-term-2")

    def test_fit_transform_returns_one_vector_per_doc(self):
        vectors = TfIdfVectorizer().fit_transform(self.DOCS)
        assert len(vectors) == len(self.DOCS)


class TestCosine:
    def test_cosine_empty_vectors(self):
        assert cosine_similarity({}, {"a": 1.0}) == 0.0

    def test_cosine_orthogonal(self):
        assert cosine_similarity({"a": 1.0}, {"b": 1.0}) == 0.0

    def test_cosine_identical(self):
        assert cosine_similarity({"a": 1.0, "b": 2.0}, {"a": 1.0, "b": 2.0}) == pytest.approx(1.0)

    def test_cosine_symmetric(self):
        first = {"a": 1.0, "b": 0.5}
        second = {"b": 1.0, "c": 2.0}
        assert cosine_similarity(first, second) == pytest.approx(cosine_similarity(second, first))
