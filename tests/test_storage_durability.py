"""Durability subsystem tests: WAL, snapshots, crash recovery, lifecycle.

The central property: after *any* crash — simulated by truncating the WAL at
an arbitrary byte boundary, flipping bits, or leaving a half-written
snapshot — reopening the ``data_dir`` recovers exactly the committed prefix
of acknowledged operations, never a torn half-statement and never silently
less than what a sync policy promised.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import CQMS, CQMSConfig, build_database
from repro.errors import DurabilityError
from repro.storage.database import Database
from repro.storage.recovery import LOCK_FILE_NAME
from repro.storage.snapshot import SNAPSHOT_FILE_NAME, SNAPSHOT_TMP_SUFFIX
from repro.storage.wal import WAL_FILE_NAME, encode_record, read_wal


def wal_path(data_dir) -> str:
    return os.path.join(data_dir, WAL_FILE_NAME)


def snapshot_path(data_dir) -> str:
    return os.path.join(data_dir, SNAPSHOT_FILE_NAME)


def table_rows(db: Database, table: str) -> list[tuple]:
    return sorted(db.execute(f"SELECT * FROM {table}").rows)


# ---------------------------------------------------------------------------
# WAL encoding / decoding
# ---------------------------------------------------------------------------


class TestWalFormat:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "w.log"
        payloads = [{"op": "insert", "i": i, "txt": "αβγ"} for i in range(5)]
        with open(path, "wb") as handle:
            for lsn, payload in enumerate(payloads, start=1):
                handle.write(encode_record(lsn, payload))
        result = read_wal(path)
        assert not result.torn_tail
        assert [r.data for r in result.records] == payloads
        assert [r.lsn for r in result.records] == [1, 2, 3, 4, 5]
        assert result.valid_length == os.path.getsize(path)

    def test_missing_file_reads_empty(self, tmp_path):
        result = read_wal(tmp_path / "absent.log")
        assert result.records == [] and not result.torn_tail

    def test_truncation_at_every_byte_of_tail_record(self, tmp_path):
        """Kill-at-any-byte: replay recovers exactly the committed prefix."""
        path = tmp_path / "w.log"
        records = [encode_record(i + 1, {"n": i}) for i in range(4)]
        blob = b"".join(records)
        prefix_len = len(blob) - len(records[-1])
        for cut in range(prefix_len, len(blob) + 1):
            path.write_bytes(blob[:cut])
            result = read_wal(path)
            if cut == len(blob):
                assert [r.data["n"] for r in result.records] == [0, 1, 2, 3]
                assert not result.torn_tail
            else:
                # Any partial tail record yields exactly the first 3 records;
                # a cut exactly on the record boundary is simply a clean log.
                assert [r.data["n"] for r in result.records] == [0, 1, 2]
                assert result.torn_tail == (cut > prefix_len)
                assert result.valid_length == prefix_len
                assert result.bytes_dropped == cut - prefix_len

    def test_checksum_mismatch_stops_replay(self, tmp_path):
        path = tmp_path / "w.log"
        records = [encode_record(i + 1, {"n": i}) for i in range(3)]
        blob = bytearray(b"".join(records))
        # Flip one payload byte inside the *middle* record.
        offset = len(records[0]) + len(records[1]) - 1
        blob[offset] ^= 0xFF
        path.write_bytes(bytes(blob))
        result = read_wal(path)
        # Replay stops cleanly before the corrupt record; later intact
        # records are unreachable (the log has no trusted resync point).
        assert [r.data["n"] for r in result.records] == [0]
        assert result.torn_tail


# ---------------------------------------------------------------------------
# Database round trips
# ---------------------------------------------------------------------------


class TestDatabaseDurability:
    def test_wal_replay_round_trip(self, tmp_path):
        d = str(tmp_path / "db")
        with Database.open(d, wal_sync="commit") as db:
            db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT, score FLOAT)")
            db.execute("CREATE INDEX t_score ON t (score) USING SORTED")
            db.insert_rows(
                "t", [{"id": i, "name": f"n{i}", "score": float(i % 5)} for i in range(40)]
            )
            db.execute("UPDATE t SET name = 'renamed' WHERE id = 7")
            db.execute("DELETE FROM t WHERE score = 3.0")
            db.execute("ALTER TABLE t ADD COLUMN tag TEXT")
            db.execute("UPDATE t SET tag = 'x' WHERE id = 2")
            expected = table_rows(db, "t")
        with Database.open(d) as db:
            assert db.last_recovery.wal_records_applied > 0
            assert table_rows(db, "t") == expected
            # Indexes were rebuilt, not trusted: the planner can use them.
            assert "RangeScan" in db.explain(
                "SELECT id FROM t WHERE score > 1 AND score < 3"
            ).text()
            assert db.table("t").schema.has_column("tag")

    def test_checkpoint_truncates_wal_and_tail_replays(self, tmp_path):
        d = str(tmp_path / "db")
        with Database.open(d) as db:
            db.execute("CREATE TABLE t (id INTEGER)")
            db.insert_rows("t", [{"id": i} for i in range(10)])
            db.checkpoint()
            assert os.path.getsize(wal_path(d)) == 0
            db.execute("INSERT INTO t VALUES (100)")
        with Database.open(d) as db:
            assert db.last_recovery.snapshot_loaded
            assert db.last_recovery.wal_records_applied == 1
            assert db.execute("SELECT COUNT(*) FROM t").scalar() == 11
            # Row ids keep advancing monotonically after recovery.
            db.execute("INSERT INTO t VALUES (101)")
            assert db.execute("SELECT COUNT(*) FROM t").scalar() == 12

    def test_row_ids_stable_across_recovery(self, tmp_path):
        d = str(tmp_path / "db")
        with Database.open(d, wal_sync="commit") as db:
            db.execute("CREATE TABLE t (id INTEGER)")
            db.insert_rows("t", [{"id": i} for i in range(5)])
            db.execute("DELETE FROM t WHERE id = 4")
            next_id = db.table("t").next_row_id
        with Database.open(d) as db:
            # A new insert must not reuse the deleted row's id.
            assert db.table("t").next_row_id == next_id

    def test_crash_between_snapshot_and_truncate_is_idempotent(self, tmp_path):
        """Snapshot written, WAL not yet truncated: replay must skip by LSN."""
        d = str(tmp_path / "db")
        db = Database.open(d, wal_sync="commit")
        db.execute("CREATE TABLE t (id INTEGER)")
        db.insert_rows("t", [{"id": i} for i in range(8)])
        # Write the snapshot exactly as checkpoint() would, then "crash"
        # before the truncation step.
        from repro.storage.snapshot import write_snapshot

        db.flush_wal()
        write_snapshot(db, snapshot_path(d), lsn=db.wal_stats().last_lsn)
        db.close()
        assert os.path.getsize(wal_path(d)) > 0  # log still holds everything
        with Database.open(d) as db:
            assert db.last_recovery.snapshot_loaded
            assert db.last_recovery.wal_records_applied == 0
            assert db.last_recovery.wal_records_skipped > 0
            assert db.execute("SELECT COUNT(*) FROM t").scalar() == 8

    def test_stale_snapshot_tmp_is_ignored(self, tmp_path):
        d = str(tmp_path / "db")
        with Database.open(d, wal_sync="commit") as db:
            db.execute("CREATE TABLE t (id INTEGER)")
            db.execute("INSERT INTO t VALUES (1)")
            db.checkpoint()
            db.execute("INSERT INTO t VALUES (2)")
        # A checkpoint that died before its atomic rename leaves a .tmp file.
        with open(snapshot_path(d) + SNAPSHOT_TMP_SUFFIX, "wb") as handle:
            handle.write(b"garbage half-written snapshot")
        with Database.open(d) as db:
            assert db.execute("SELECT COUNT(*) FROM t").scalar() == 2

    def test_corrupt_published_snapshot_raises(self, tmp_path):
        d = str(tmp_path / "db")
        with Database.open(d) as db:
            db.execute("CREATE TABLE t (id INTEGER)")
            db.execute("INSERT INTO t VALUES (1)")
            db.checkpoint()
        with open(snapshot_path(d), "r+b") as handle:
            handle.seek(os.path.getsize(snapshot_path(d)) // 2)
            handle.write(b"\xff\xff\xff")
        with pytest.raises(DurabilityError, match="integrity"):
            Database.open(d)
        # The flock must not leak when open() fails mid-recovery: a retry
        # hits the same integrity error, not an "already open" lock error.
        with pytest.raises(DurabilityError, match="integrity"):
            Database.open(d)

    def test_sync_off_survives_clean_close(self, tmp_path):
        d = str(tmp_path / "db")
        with Database.open(d, wal_sync="off") as db:
            db.execute("CREATE TABLE t (id INTEGER)")
            db.insert_rows("t", [{"id": i} for i in range(20)])
            assert db.wal_stats().syncs == 0
        with Database.open(d) as db:
            assert db.execute("SELECT COUNT(*) FROM t").scalar() == 20

    def test_group_commit_batches_under_batch_policy(self, tmp_path):
        d = str(tmp_path / "db")
        with Database.open(d, wal_sync="batch", wal_group_size=16) as db:
            db.execute("CREATE TABLE t (id INTEGER)")
            db.insert_rows("t", [{"id": i} for i in range(100)])
            stats = db.wal_stats()
            assert stats.records == 101  # create_table + 100 inserts
            assert stats.flushes < stats.records  # grouped, not per-record
            assert stats.max_batch_records >= 16
            assert stats.avg_batch_records > 1.0
        # commit policy syncs once per record instead.
        d2 = str(tmp_path / "db2")
        with Database.open(d2, wal_sync="commit") as db:
            db.execute("CREATE TABLE t (id INTEGER)")
            db.insert_rows("t", [{"id": i} for i in range(10)])
            stats = db.wal_stats()
            assert stats.syncs == stats.records == 11

    def test_auto_checkpoint_interval(self, tmp_path):
        d = str(tmp_path / "db")
        with Database.open(d, wal_sync="off", checkpoint_interval=50) as db:
            db.execute("CREATE TABLE t (id INTEGER)")
            for i in range(120):
                db.execute(f"INSERT INTO t VALUES ({i})")
            stats = db.wal_stats()
            assert stats.checkpoints >= 2  # every ~50 logged records
            assert stats.records_since_checkpoint < 50
            assert os.path.exists(snapshot_path(d))
        # A bulk insert_rows checks the interval once at the end of the batch.
        d2 = str(tmp_path / "db2")
        with Database.open(d2, wal_sync="off", checkpoint_interval=50) as db:
            db.execute("CREATE TABLE t (id INTEGER)")
            db.insert_rows("t", [{"id": i} for i in range(120)])
            assert db.wal_stats().checkpoints == 1

    def test_in_memory_database_has_no_wal(self):
        db = Database()
        assert not db.is_durable
        assert db.wal_stats() is None
        with pytest.raises(DurabilityError, match="durable"):
            db.checkpoint()

    def test_case_only_table_rename_survives(self, tmp_path):
        d = str(tmp_path / "db")
        with Database.open(d, wal_sync="commit") as db:
            db.execute("CREATE TABLE t (id INTEGER)")
            db.execute("INSERT INTO t VALUES (1)")
            db.execute("ALTER TABLE t RENAME TO T")
            assert db.execute("SELECT COUNT(*) FROM T").scalar() == 1
        with Database.open(d) as db:
            assert db.execute("SELECT COUNT(*) FROM T").scalar() == 1

    def test_rename_onto_existing_table_raises(self, tmp_path):
        from repro.errors import CatalogError

        d = str(tmp_path / "db")
        with Database.open(d, wal_sync="commit") as db:
            db.execute("CREATE TABLE a (x INTEGER)")
            db.execute("CREATE TABLE b (y INTEGER)")
            db.execute("INSERT INTO b VALUES (7)")
            with pytest.raises(CatalogError, match="already exists"):
                db.execute("ALTER TABLE a RENAME TO b")
            # The collision was rejected *before* the WAL append: b intact.
            assert db.execute("SELECT y FROM b").scalar() == 7
        with Database.open(d) as db:
            assert db.execute("SELECT y FROM b").scalar() == 7
            assert db.has_table("a")

    def test_recovered_log_counts_against_checkpoint_interval(self, tmp_path):
        d = str(tmp_path / "db")
        with Database.open(d, wal_sync="off") as db:
            db.execute("CREATE TABLE t (id INTEGER)")
            for i in range(80):
                db.execute(f"INSERT INTO t VALUES ({i})")
        # Reopen with an interval the *existing* log already exceeds: the
        # open itself checkpoints, so a crash-reopen loop that writes fewer
        # than `interval` new records per life cannot grow the WAL forever.
        with Database.open(d, wal_sync="off", checkpoint_interval=50) as db:
            assert db.wal_stats().checkpoints >= 1
            assert os.path.getsize(wal_path(d)) == 0
            assert db.execute("SELECT COUNT(*) FROM t").scalar() == 80

    def test_failed_wal_append_rolls_back_the_mutation(self, tmp_path):
        """A mutation that cannot be logged must not stay visible in memory:
        recovery would rebuild a state without it, and later logged ops on
        the phantom row would silently no-op during replay."""
        d = str(tmp_path / "db")
        db = Database.open(d, wal_sync="commit")
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
        db.insert_rows("t", [{"id": 1, "v": 10}, {"id": 2, "v": 20}])
        table = db.table("t")
        # Simulate ENOSPC/EIO at the append layer.
        def boom(record):
            raise DurabilityError("disk full")
        table.wal_emit = boom
        with pytest.raises(DurabilityError):
            table.insert({"id": 3, "v": 30})
        with pytest.raises(DurabilityError):
            table.update(0, {"v": 11})
        with pytest.raises(DurabilityError):
            table.delete(1)
        with pytest.raises(DurabilityError):
            table.create_index("t_v_sorted", "v", kind="sorted")
        table.wal_emit = db._wal_append
        assert sorted(r["id"] for r in table.rows()) == [1, 2]
        assert table.get(0)["v"] == 10  # update rolled back
        assert table.get(1)["v"] == 20  # delete rolled back
        assert table.sorted_index_for("v") is None  # index build rolled back
        # The primary-key index still agrees with the heap.
        assert db.execute("SELECT v FROM t WHERE id = 2").scalar() == 20
        db.close()
        with Database.open(d) as recovered:
            assert sorted(r["id"] for r in recovered.table("t").rows()) == [1, 2]

    def test_failed_wal_append_never_applies_ddl(self, tmp_path):
        """DDL validates before logging: an append failure must leave neither
        a phantom column in memory (later inserts would log rows recovery
        cannot replay) nor a phantom table."""
        d = str(tmp_path / "db")
        db = Database.open(d, wal_sync="commit")
        db.execute("CREATE TABLE t (id INTEGER)")
        db.execute("INSERT INTO t VALUES (1)")

        def boom(record):
            raise DurabilityError("disk full")

        original_append = db._wal.append
        db._wal.append = boom
        with pytest.raises(DurabilityError):
            db.execute("ALTER TABLE t ADD COLUMN extra TEXT")
        with pytest.raises(DurabilityError):
            db.execute("CREATE TABLE u (id INTEGER)")
        with pytest.raises(DurabilityError):
            db.execute("DROP TABLE t")
        db._wal.append = original_append
        assert not db.table("t").schema.has_column("extra")
        assert not db.has_table("u")
        # The surviving state is fully loggable: this insert replays cleanly.
        db.execute("INSERT INTO t VALUES (2)")
        db.close()
        with Database.open(d) as recovered:
            assert recovered.execute("SELECT COUNT(*) FROM t").scalar() == 2
            assert not recovered.table("t").schema.has_column("extra")


# ---------------------------------------------------------------------------
# Lifecycle hygiene: locks, idempotent close, closed-database errors
# ---------------------------------------------------------------------------


class TestLifecycle:
    def test_double_open_raises(self, tmp_path):
        d = str(tmp_path / "db")
        db = Database.open(d)
        try:
            with pytest.raises(DurabilityError, match="already open"):
                Database.open(d)
        finally:
            db.close()
        # After close the directory can be reopened.
        Database.open(d).close()

    def test_lock_file_from_dead_process_never_blocks(self, tmp_path):
        d = str(tmp_path / "db")
        Database.open(d).close()
        # The LOCK file persists between runs (only the flock matters, and
        # the kernel drops that the instant its owner dies — even SIGKILL).
        # A leftover file, whatever it contains, must not block reopening.
        assert os.path.exists(os.path.join(d, LOCK_FILE_NAME))
        with open(os.path.join(d, LOCK_FILE_NAME), "w") as handle:
            handle.write("99999999")
        with Database.open(d) as db:
            assert db.is_durable

    def test_concurrent_openers_get_exactly_one_owner(self, tmp_path):
        import multiprocessing as mp

        def contender(d, barrier, results, i):
            from repro.errors import DurabilityError
            from repro.storage.database import Database as Db

            barrier.wait()
            try:
                db = Db.open(d)
                import time

                time.sleep(0.2)
                db.close()
                results[i] = "won"
            except DurabilityError:
                results[i] = "blocked"

        ctx = mp.get_context("fork") if "fork" in mp.get_all_start_methods() else mp.get_context()
        d = str(tmp_path / "db")
        Database.open(d).close()
        barrier = ctx.Barrier(4)
        with ctx.Manager() as manager:
            results = manager.dict()
            processes = [
                ctx.Process(target=contender, args=(d, barrier, results, i))
                for i in range(4)
            ]
            for process in processes:
                process.start()
            for process in processes:
                process.join()
            outcomes = sorted(results.values())
        assert outcomes.count("won") == 1, outcomes

    def test_close_is_idempotent(self, tmp_path):
        db = Database.open(str(tmp_path / "db"))
        db.close()
        db.close()
        assert db.closed

    def test_operations_on_closed_database_raise(self, tmp_path):
        db = Database.open(str(tmp_path / "db"))
        db.execute("CREATE TABLE t (id INTEGER)")
        db.close()
        with pytest.raises(DurabilityError, match="closed"):
            db.execute("INSERT INTO t VALUES (1)")
        with pytest.raises(DurabilityError, match="closed"):
            db.insert_rows("t", [{"id": 1}])
        with pytest.raises(DurabilityError, match="closed"):
            db.checkpoint()
        with pytest.raises(DurabilityError, match="closed"):
            db.create_table(db.table("t").schema.renamed("u"))

    def test_closed_in_memory_database_raises_too(self):
        db = Database()
        db.execute("CREATE TABLE t (id INTEGER)")
        db.close()
        with pytest.raises(DurabilityError, match="closed"):
            db.execute("SELECT 1")


# ---------------------------------------------------------------------------
# Crash-at-any-point property: randomized workload, arbitrary truncation
# ---------------------------------------------------------------------------


def _apply_ops(db: Database, ops, lengths, states):
    """Run single-row statements, recording the WAL length and expected table
    contents after each one (``wal_sync='commit'`` flushes per record)."""
    path = wal_path(db.data_dir)
    shadow: dict[int, tuple] = {}
    next_key = 0
    for op in ops:
        kind = op[0]
        if kind == "insert":
            value = op[1]
            db.execute(f"INSERT INTO t (k, v) VALUES ({next_key}, {value})")
            shadow[next_key] = (next_key, value)
            next_key += 1
        elif kind == "update" and shadow:
            key = sorted(shadow)[op[1] % len(shadow)]
            value = op[2]
            db.execute(f"UPDATE t SET v = {value} WHERE k = {key}")
            shadow[key] = (key, value)
        elif kind == "delete" and shadow:
            key = sorted(shadow)[op[1] % len(shadow)]
            db.execute(f"DELETE FROM t WHERE k = {key}")
            del shadow[key]
        else:
            continue  # update/delete against an empty table: no statement ran
        lengths.append(os.path.getsize(path))
        states.append(sorted(shadow.values()))


_ops = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.integers(-100, 100)),
        st.tuples(st.just("update"), st.integers(0, 50), st.integers(-100, 100)),
        st.tuples(st.just("delete"), st.integers(0, 50)),
    ),
    min_size=1,
    max_size=25,
)


class TestCrashRecoveryProperty:
    @given(ops=_ops, cut_fraction=st.floats(0.0, 1.0))
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_truncated_wal_recovers_exactly_committed_prefix(
        self, ops, cut_fraction, tmp_path_factory
    ):
        d = str(tmp_path_factory.mktemp("crash") / "db")
        lengths: list[int] = []
        states: list[list[tuple]] = []
        db = Database.open(d, wal_sync="commit")
        db.execute("CREATE TABLE t (k INTEGER, v INTEGER)")
        base_length = os.path.getsize(wal_path(d))
        lengths.append(base_length)
        states.append([])
        _apply_ops(db, ops, lengths, states)
        total = os.path.getsize(wal_path(d))
        db.close()

        # Simulate SIGKILL at an arbitrary moment: cut the log mid-write.
        cut = base_length + int((total - base_length) * cut_fraction)
        with open(wal_path(d), "r+b") as handle:
            handle.truncate(cut)

        # The expected state is the last statement wholly inside the cut.
        survivors = max(i for i, length in enumerate(lengths) if length <= cut)
        with Database.open(d) as recovered:
            assert table_rows(recovered, "t") == states[survivors]
            # Recovery is stable: the recovered database accepts new writes.
            recovered.execute("INSERT INTO t (k, v) VALUES (9999, 1)")
            assert recovered.execute(
                "SELECT COUNT(*) FROM t WHERE k = 9999"
            ).scalar() == 1

    def test_every_byte_boundary_of_tail_statement(self, tmp_path):
        """Exhaustive version of the property for the final record."""
        d = str(tmp_path / "db")
        db = Database.open(d, wal_sync="commit")
        db.execute("CREATE TABLE t (k INTEGER, v INTEGER)")
        lengths = [os.path.getsize(wal_path(d))]
        states: list[list[tuple]] = [[]]
        _apply_ops(
            db,
            [("insert", i) for i in range(6)] + [("update", 2, 42), ("delete", 0)],
            lengths,
            states,
        )
        blob = open(wal_path(d), "rb").read()
        db.close()
        for cut in range(lengths[-2], lengths[-1] + 1):
            with open(wal_path(d), "wb") as handle:
                handle.write(blob[:cut])
            expected = states[-1] if cut == lengths[-1] else states[-2]
            with Database.open(d) as recovered:
                assert table_rows(recovered, "t") == expected, f"cut at byte {cut}"


# ---------------------------------------------------------------------------
# Paged heap storage, buffer pool, and incremental checkpoints
# ---------------------------------------------------------------------------


class TestPagedStorage:
    def test_larger_than_pool_workload_bounded_residency(self, tmp_path):
        from repro.storage.exec_settings import ExecutionSettings

        d = str(tmp_path / "db")
        small_pool = ExecutionSettings(buffer_pool_pages=16)
        with Database.open(d, wal_sync="off", exec_settings=small_pool) as db:
            db.execute("CREATE TABLE t (id INTEGER, v INTEGER)")
            # 5000 rows at 128 slots/page is ~40 heap pages — far beyond the
            # 16-frame pool, so the workload must page in and out.
            db.insert_rows("t", [{"id": i, "v": i % 7} for i in range(5000)])
            assert db.execute("SELECT COUNT(*) FROM t").scalar() == 5000
            assert db.execute("SELECT SUM(v) FROM t").scalar() == sum(
                i % 7 for i in range(5000)
            )
            rows = db.execute("SELECT id FROM t ORDER BY id DESC LIMIT 3").rows
            assert [row[0] for row in rows] == [4999, 4998, 4997]
            stats = db.buffer_stats()
            assert stats.capacity == 16
            assert stats.resident <= 16
            assert stats.evictions > 0
            assert stats.pins == 0  # no statement leaks a pin
        with Database.open(d, exec_settings=small_pool) as db:
            assert db.execute("SELECT COUNT(*) FROM t").scalar() == 5000
            assert db.buffer_stats().resident <= 16

    def test_incremental_checkpoint_adopts_pages_without_row_replay(self, tmp_path):
        d = str(tmp_path / "db")
        with Database.open(d, wal_sync="off") as db:
            db.execute("CREATE TABLE t (id INTEGER, name TEXT)")
            db.execute("CREATE INDEX t_id ON t (id) USING SORTED")
            db.insert_rows("t", [{"id": i, "name": f"n{i}"} for i in range(1000)])
            db.checkpoint()
            db.execute("INSERT INTO t VALUES (1000, 'tail')")
            expected = table_rows(db, "t")
        with Database.open(d) as db:
            # The v2 checkpoint restores heaps by adopting page chains; only
            # the one post-checkpoint statement replays from the log.
            assert db.last_recovery.snapshot_loaded
            assert db.last_recovery.wal_records_applied == 1
            assert table_rows(db, "t") == expected
            # Indexes are rebuilt from the adopted heap, not persisted.
            assert "RangeScan" in db.explain(
                "SELECT name FROM t WHERE id > 10 AND id < 20"
            ).text()

    def test_checkpoint_cost_tracks_working_set_not_database_size(self, tmp_path):
        d = str(tmp_path / "db")
        with Database.open(d, wal_sync="off") as db:
            db.execute("CREATE TABLE t (id INTEGER)")
            db.insert_rows("t", [{"id": i} for i in range(5000)])
            db.checkpoint()
            baseline = db.buffer_stats().writebacks
            # Touch a single row: the next checkpoint must flush only the one
            # dirtied heap page, not the ~40-page table.
            db.execute("UPDATE t SET id = -1 WHERE id = 17")
            db.checkpoint()
            assert db.buffer_stats().writebacks - baseline <= 2

    def test_export_snapshot_full_image_recovers_without_page_reuse(self, tmp_path):
        d = str(tmp_path / "db")
        with Database.open(d, wal_sync="off") as db:
            db.execute("CREATE TABLE t (id INTEGER)")
            db.insert_rows("t", [{"id": i} for i in range(30)])
            db.checkpoint()  # v2 incremental first
            db.execute("INSERT INTO t VALUES (777)")
            assert db.export_snapshot() > 0  # v1 full image over the same file
            assert os.path.getsize(wal_path(d)) == 0
        with Database.open(d) as db:
            assert db.last_recovery.snapshot_loaded
            assert db.execute("SELECT COUNT(*) FROM t").scalar() == 31
            assert db.execute("SELECT MAX(id) FROM t").scalar() == 777

    def test_kill_at_any_byte_after_incremental_checkpoint(self, tmp_path):
        """Exhaustive cut of the post-checkpoint WAL tail: every prefix must
        recover the checkpoint image plus exactly the committed records."""
        d = str(tmp_path / "db")
        db = Database.open(d, wal_sync="commit")
        db.execute("CREATE TABLE t (k INTEGER, v INTEGER)")
        db.insert_rows("t", [{"k": i, "v": i} for i in range(300)])
        db.checkpoint()
        assert os.path.getsize(wal_path(d)) == 0
        shadow = {i: (i, i) for i in range(300)}
        lengths = [0]
        states = [sorted(shadow.values())]
        for statement, mutate in [
            ("INSERT INTO t VALUES (300, 300)", lambda s: s.update({300: (300, 300)})),
            ("UPDATE t SET v = -1 WHERE k = 5", lambda s: s.update({5: (5, -1)})),
            ("DELETE FROM t WHERE k = 7", lambda s: s.pop(7)),
        ]:
            db.execute(statement)
            mutate(shadow)
            lengths.append(os.path.getsize(wal_path(d)))
            states.append(sorted(shadow.values()))
        blob = open(wal_path(d), "rb").read()
        db.close()
        for cut in range(lengths[-1] + 1):
            with open(wal_path(d), "wb") as handle:
                handle.write(blob[:cut])
            survivors = max(i for i, length in enumerate(lengths) if length <= cut)
            with Database.open(d) as recovered:
                assert (
                    table_rows(recovered, "t") == states[survivors]
                ), f"cut at byte {cut}"

    def test_recovered_backlog_defers_checkpoint_off_statement_path(self, tmp_path):
        d = str(tmp_path / "db")
        with Database.open(d, wal_sync="off") as db:
            db.execute("CREATE TABLE t (id INTEGER)")
            for i in range(8):
                db.execute(f"INSERT INTO t VALUES ({i})")
        # 9 recovered records sit just under the interval: no open-time
        # checkpoint fires.
        with Database.open(d, wal_sync="off", checkpoint_interval=10) as db:
            assert db.wal_stats().checkpoints == 0
            # The 10th record crosses the interval, but 9 of the 10 are
            # recovery backlog — the statement path must not stall this
            # insert on a synchronous checkpoint.
            db.execute("INSERT INTO t VALUES (100)")
            assert db.wal_stats().checkpoints == 0
            assert os.path.getsize(wal_path(d)) > 0
            # The off-path scheduler sees the full accumulation and drains it.
            assert db.checkpoint_due
            assert db.checkpoint_if_due() is not None
            assert db.wal_stats().checkpoints == 1
            assert os.path.getsize(wal_path(d)) == 0
            assert not db.checkpoint_due
            assert db.checkpoint_if_due() is None
            assert db.execute("SELECT COUNT(*) FROM t").scalar() == 9

    def test_buffer_pool_panel_lines(self, tmp_path):
        from repro.client.workbench import Workbench

        d = str(tmp_path / "store")
        db = build_database("limnology", scale=1)
        with CQMS(db, config=CQMSConfig(data_dir=d)) as cqms:
            cqms.register_user("ana", group="g")
            cqms.submit("ana", "SELECT * FROM WaterTemp")
            panel = Workbench(cqms=cqms, user="ana").durability_panel()
            assert "database buffer pool:" in panel
            assert "query_storage buffer pool:" in panel
            assert "pages resident" in panel
            assert "hit rate" in panel


# ---------------------------------------------------------------------------
# Durable Query Storage (CQMS integration)
# ---------------------------------------------------------------------------


class TestDurableQueryStore:
    def test_query_log_survives_restart(self, tmp_path):
        d = str(tmp_path / "store")
        db = build_database("limnology", scale=1)
        with CQMS(db, config=CQMSConfig(data_dir=d)) as cqms:
            cqms.register_user("nodira", group="uw-db")
            cqms.submit("nodira", "SELECT * FROM WaterTemp T WHERE T.temp < 18")
            cqms.submit("nodira", "SELECT lake, AVG(temp) FROM WaterTemp GROUP BY lake")
            cqms.annotate("nodira", 1, "cold lakes")
            count = len(cqms.store)

        db2 = build_database("limnology", scale=1)
        with CQMS(db2, config=CQMSConfig(data_dir=d)) as cqms:
            cqms.register_user("nodira", group="uw-db")
            assert len(cqms.store) == count
            record = cqms.store.get(1)
            assert record.text == "SELECT * FROM WaterTemp T WHERE T.temp < 18"
            assert record.annotations == ["cold lakes"]
            # Features were re-extracted, so meta-search works immediately.
            assert record.features is not None
            hits = cqms.search_keyword("nodira", ["watertemp"])
            assert [r.qid for r in hits] == [1, 2]
            # New submissions continue the qid sequence.
            execution = cqms.submit("nodira", "SELECT COUNT(*) FROM WaterTemp")
            assert execution.record.qid == count + 1

    def test_feature_relations_survive_restart(self, tmp_path):
        d = str(tmp_path / "store")
        db = build_database("limnology", scale=1)
        with CQMS(db, config=CQMSConfig(data_dir=d, wal_sync="commit")) as cqms:
            cqms.register_user("ana", group="g")
            cqms.submit("ana", "SELECT lake FROM WaterTemp WHERE temp > 20")
            before = cqms.store.execute_meta_sql(
                "SELECT qid, relName FROM DataSources"
            ).rows
        db2 = build_database("limnology", scale=1)
        with CQMS(db2, config=CQMSConfig(data_dir=d)) as cqms:
            after = cqms.store.execute_meta_sql(
                "SELECT qid, relName FROM DataSources"
            ).rows
            assert sorted(after) == sorted(before)
            stats = cqms.durability_stats()
            assert stats["database"] is None  # user DBMS stays in-memory
            assert stats["query_storage"] is not None

    def test_session_membership_restored_from_time_windows(self, tmp_path):
        d = str(tmp_path / "store")
        db = build_database("limnology", scale=1)
        with CQMS(db, config=CQMSConfig(data_dir=d)) as cqms:
            cqms.register_user("ana", group="g")
            for i in range(3):
                cqms.submit("ana", f"SELECT * FROM WaterTemp WHERE temp < {15 + i}")
                cqms.clock.advance(30)
            cqms.run_miner()  # persists Sessions/SessionEdges
            session_id = cqms.store.get(2).session_id
            assert session_id is not None
        db2 = build_database("limnology", scale=1)
        with CQMS(db2, config=CQMSConfig(data_dir=d)) as cqms:
            # Membership came back from the Sessions time windows...
            assert cqms.store.get(2).session_id == session_id
            # ...so removing a recovered query keeps numQueries consistent.
            before = cqms.store.execute_meta_sql(
                f"SELECT numQueries FROM Sessions WHERE sessionId = {session_id}"
            ).scalar()
            cqms.store.remove(2)
            after = cqms.store.execute_meta_sql(
                f"SELECT numQueries FROM Sessions WHERE sessionId = {session_id}"
            ).scalar()
            assert after == before - 1

    def test_qids_never_reused_across_restarts(self, tmp_path):
        d = str(tmp_path / "store")
        db = build_database("limnology", scale=1)
        with CQMS(db, config=CQMSConfig(data_dir=d)) as cqms:
            cqms.register_user("ana", group="g")
            cqms.submit("ana", "SELECT * FROM WaterTemp")
            cqms.submit("ana", "SELECT * FROM Lakes")
            cqms.store.remove(2)  # qid 2 retired forever
        db2 = build_database("limnology", scale=1)
        with CQMS(db2, config=CQMSConfig(data_dir=d)) as cqms:
            cqms.register_user("ana", group="g")
            execution = cqms.submit("ana", "SELECT * FROM WaterSalinity")
            # max(surviving qid) is 1, but the high-water mark is durable.
            assert execution.record.qid == 3
            # Even with every query removed the counter must not restart.
            cqms.store.remove(1)
            cqms.store.remove(3)
        db3 = build_database("limnology", scale=1)
        with CQMS(db3, config=CQMSConfig(data_dir=d)) as cqms:
            cqms.register_user("ana", group="g")
            assert cqms.submit("ana", "SELECT * FROM Lakes").record.qid == 4

    def test_flag_state_survives_restart(self, tmp_path):
        d = str(tmp_path / "store")
        db = build_database("limnology", scale=1)
        with CQMS(db, config=CQMSConfig(data_dir=d)) as cqms:
            cqms.register_user("ana", group="g")
            cqms.submit("ana", "SELECT * FROM WaterTemp")
            cqms.store.mark_invalid(1, "references a dropped column")
            cqms.store.mark_invalid(1, "references a dropped column")
        db2 = build_database("limnology", scale=1)
        with CQMS(db2, config=CQMSConfig(data_dir=d)) as cqms:
            record = cqms.store.get(1)
            # The drop-after-N-flags maintenance policy must not reset on
            # restart, and the user-facing reason must survive.
            assert record.flagged_invalid
            assert record.invalid_reason == "references a dropped column"
            assert record.flag_count == 2

    def test_output_summary_total_rows_survive_restart(self, tmp_path):
        d = str(tmp_path / "store")
        db = build_database("limnology", scale=1)
        with CQMS(db, config=CQMSConfig(data_dir=d)) as cqms:
            cqms.register_user("ana", group="g")
            cqms.submit("ana", "SELECT * FROM WaterTemp")
            original = cqms.store.get(1).output
            assert original is not None
        db2 = build_database("limnology", scale=1)
        with CQMS(db2, config=CQMSConfig(data_dir=d)) as cqms:
            rebuilt = cqms.store.get(1).output
            assert rebuilt.total_rows == original.total_rows
            assert rebuilt.complete == original.complete
            assert len(rebuilt.rows) == len(original.rows)
            # Numeric cells come back as numbers (not their TEXT rendering),
            # so query-by-data value matching still works after a restart.
            numeric = next(
                value
                for row in original.rows
                for value in row
                if isinstance(value, float)
            )
            assert rebuilt.contains_value(numeric)

    def test_checkpoint_through_cqms(self, tmp_path):
        d = str(tmp_path / "store")
        db = build_database("limnology", scale=1)
        with CQMS(db, config=CQMSConfig(data_dir=d)) as cqms:
            cqms.register_user("ana", group="g")
            cqms.submit("ana", "SELECT * FROM WaterTemp")
            assert cqms.checkpoint() > 0
            assert os.path.getsize(os.path.join(d, WAL_FILE_NAME)) == 0

    def test_workbench_durability_panel(self, tmp_path):
        from repro.client.workbench import Workbench

        d = str(tmp_path / "store")
        db = build_database("limnology", scale=1)
        with CQMS(db, config=CQMSConfig(data_dir=d)) as cqms:
            cqms.register_user("ana", group="g")
            cqms.submit("ana", "SELECT * FROM WaterTemp")
            panel = Workbench(cqms=cqms, user="ana").durability_panel()
            assert "=== Durability ===" in panel
            assert "database: in-memory (no write-ahead log)" in panel
            assert "query_storage: wal sync=batch" in panel
