"""Tests for the SQL formatter (rendering ASTs back to text)."""

import pytest

from repro.sql.formatter import format_expression, format_statement
from repro.sql.parser import parse, parse_expression


ROUND_TRIP_QUERIES = [
    "SELECT * FROM lakes",
    "SELECT DISTINCT state FROM lakes",
    "SELECT name AS n, area_km2 FROM lakes WHERE area_km2 > 10 ORDER BY n DESC LIMIT 5",
    "SELECT * FROM a, b WHERE a.id = b.id AND b.x < 3",
    "SELECT state, COUNT(*) AS n FROM lakes GROUP BY state HAVING COUNT(*) > 1",
    "SELECT * FROM a JOIN b ON a.id = b.id LEFT JOIN c ON b.x = c.x",
    "SELECT * FROM (SELECT id FROM t) sub WHERE sub.id IN (1, 2)",
    "SELECT * FROM t WHERE a BETWEEN 1 AND 2 AND name LIKE 'Lake%'",
    "SELECT * FROM t WHERE EXISTS (SELECT 1 FROM s WHERE s.id = t.id)",
    "SELECT CASE WHEN a > 1 THEN 'big' ELSE 'small' END FROM t",
    "SELECT * FROM t WHERE x IS NOT NULL AND y IS NULL",
    "SELECT COUNT(DISTINCT name) FROM lakes",
    "INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)",
    "UPDATE t SET a = a + 1 WHERE b <> 0",
    "DELETE FROM t WHERE a IN (SELECT a FROM s)",
    "CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT NOT NULL, v FLOAT)",
    "DROP TABLE IF EXISTS t",
    "ALTER TABLE t RENAME COLUMN a TO b",
    "ALTER TABLE t ADD COLUMN c TEXT",
    "CREATE UNIQUE INDEX idx ON t (a)",
    "SELECT * FROM t LIMIT 10 OFFSET 20",
]


class TestRoundTrip:
    @pytest.mark.parametrize("sql", ROUND_TRIP_QUERIES)
    def test_parse_format_reparse_is_stable(self, sql):
        """format(parse(x)) must re-parse to the identical AST."""
        first_ast = parse(sql)
        rendered = format_statement(first_ast)
        second_ast = parse(rendered)
        assert first_ast == second_ast

    @pytest.mark.parametrize("sql", ROUND_TRIP_QUERIES)
    def test_formatting_is_idempotent(self, sql):
        once = format_statement(parse(sql))
        twice = format_statement(parse(once))
        assert once == twice


class TestExpressionFormatting:
    def test_string_literal_quotes_escaped(self):
        assert format_expression(parse_expression("'it''s'")) == "'it''s'"

    def test_null_true_false(self):
        assert format_expression(parse_expression("NULL")) == "NULL"
        assert format_expression(parse_expression("TRUE")) == "TRUE"
        assert format_expression(parse_expression("FALSE")) == "FALSE"

    def test_nested_boolean_parenthesized(self):
        rendered = format_expression(parse_expression("a = 1 AND (b = 2 OR c = 3)"))
        assert "(" in rendered and "OR" in rendered
        # Re-parsing keeps the same structure.
        assert parse_expression(rendered) == parse_expression("a = 1 AND (b = 2 OR c = 3)")

    def test_not_rendering(self):
        rendered = format_expression(parse_expression("NOT a = 1"))
        assert rendered.startswith("NOT (")

    def test_in_list_rendering(self):
        assert format_expression(parse_expression("x IN (1, 2)")) == "x IN (1, 2)"

    def test_between_rendering(self):
        assert (
            format_expression(parse_expression("x NOT BETWEEN 1 AND 2"))
            == "x NOT BETWEEN 1 AND 2"
        )

    def test_qualified_column_rendering(self):
        assert format_expression(parse_expression("T.temp")) == "T.temp"

    def test_function_rendering(self):
        assert format_expression(parse_expression("COUNT(DISTINCT a)")) == "COUNT(DISTINCT a)"

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            format_expression(object())

    def test_unsupported_statement_raises(self):
        with pytest.raises(TypeError):
            format_statement(object())
