"""Tests for the plan-invariant verifier.

Broken plans are built by planning real SQL against the limnology schema and
then corrupting one invariant at a time, so each test pins exactly one rule.
The property test at the bottom is the positive half: every plan the planner
actually produces for generated workload queries must verify clean.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.corpus import domain_statements, verify_corpus
from repro.analysis.plan_verify import PlanVerifier
from repro.errors import ExecutionError
from repro.sql.ast_nodes import ColumnRef
from repro.sql.canonicalize import parameterize_statement
from repro.sql.parser import parse
from repro.storage.exec_settings import ExecutionSettings
from repro.storage.executor import Executor
from repro.storage.operators import Filter, ParallelSeqScan, SeqScan
from repro.storage.planner import Planner
from repro.workloads.schemas import build_database


@pytest.fixture(scope="module")
def database():
    return build_database("limnology")


def plan_sql(database, sql):
    return Planner(database).plan_select(parse(sql))


def rules_of(diagnostics):
    return {d.rule for d in diagnostics}


class TestBrokenPlans:
    def test_valid_plan_is_clean(self, database):
        plan = plan_sql(database, "SELECT name FROM Lakes WHERE state = 'WA'")
        assert PlanVerifier().verify_select(plan) == []

    def test_unresolvable_filter_column(self, database):
        plan = plan_sql(database, "SELECT name FROM Lakes WHERE area_km2 > 100")
        filters = [op for op in _walk(plan.root) if isinstance(op, Filter)]
        assert filters, "fixture must plan a Filter"
        filters[0].predicates.append(ColumnRef(table=None, name="wetness"))
        assert "plan-column-resolution" in rules_of(PlanVerifier().verify_select(plan))

    def test_allow_outer_suppresses_unresolvable(self, database):
        plan = plan_sql(database, "SELECT name FROM Lakes WHERE area_km2 > 100")
        filters = [op for op in _walk(plan.root) if isinstance(op, Filter)]
        filters[0].predicates.append(ColumnRef(table="Outer", name="x"))
        assert PlanVerifier().verify_select(plan, allow_outer=True) == []

    def test_binding_shape_mismatch(self, database):
        plan = plan_sql(database, "SELECT name FROM Lakes")
        scan = next(op for op in _walk(plan.root) if isinstance(op, SeqScan))
        scan.bindings = [(scan.bindings[0][0], ["name", "bogus"])]
        assert "plan-binding-shape" in rules_of(PlanVerifier().verify_select(plan))

    def test_false_sort_claim(self, database):
        plan = plan_sql(database, "SELECT name FROM Lakes ORDER BY name")
        assert not plan.sort_eliminated  # name has no sorted index
        plan.sort_eliminated = True
        plan.sort_prefix = 1
        assert "plan-sort-claim" in rules_of(PlanVerifier().verify_select(plan))

    def test_honest_sort_claim_is_clean(self):
        database = build_database("limnology")
        database.table("WaterTemp").create_index(
            "wt_reading_sorted", "reading_id", kind="sorted"
        )
        plan = plan_sql(
            database, "SELECT month, temp FROM WaterTemp ORDER BY reading_id"
        )
        assert plan.sort_eliminated
        assert PlanVerifier().verify_select(plan) == []

    def test_aggregate_inside_root_breaks_batch_contract(self, database):
        plan = plan_sql(
            database, "SELECT state, COUNT(*) FROM Lakes GROUP BY state"
        )
        assert plan.aggregate is not None
        plan.root = plan.aggregate
        assert "plan-batch-contract" in rules_of(PlanVerifier().verify_select(plan))

    def test_parallel_scan_must_be_leaf(self, database):
        plan = plan_sql(database, "SELECT name FROM Lakes")
        table = database.table("Lakes")
        scan = ParallelSeqScan(table, "Lakes", estimate=1.0, workers=2)
        scan.children = (SeqScan(table, "Lakes", estimate=1.0),)
        plan.root = scan
        assert "plan-parallel-safety" in rules_of(PlanVerifier().verify_select(plan))

    def test_unreachable_parameter(self, database):
        statement, parameters = parameterize_statement(
            parse("SELECT name FROM Lakes WHERE lake_id = 7")
        )
        assert parameters
        plan = Planner(database).plan_select(statement)
        assert PlanVerifier().verify_select(plan) == []
        # Swap the access path for a bare scan: the ParamLiteral the plan
        # cache would re-bind is no longer reachable from the operator tree.
        plan.root = SeqScan(database.table("Lakes"), "Lakes", estimate=1.0)
        diagnostics = PlanVerifier().verify_select(plan)
        assert "plan-param-binding" in rules_of(diagnostics)
        # ... unless the planner declared positional re-binding unsound.
        plan.rebind_unsafe = True
        assert PlanVerifier().verify_select(plan) == []

    def test_parallel_scan_in_dml_plan(self, database):
        plan = Planner(database).plan_delete(
            parse("DELETE FROM Lakes WHERE lake_id = 3")
        )
        plan.scan = ParallelSeqScan(
            database.table("Lakes"), "Lakes", estimate=1.0, workers=2
        )
        assert "plan-parallel-safety" in rules_of(PlanVerifier().verify_dml(plan))

    def test_valid_dml_plan_is_clean(self, database):
        plan = Planner(database).plan_update(
            parse("UPDATE Lakes SET state = 'WA' WHERE lake_id = 3")
        )
        assert PlanVerifier().verify_dml(plan) == []


class TestExecutorHook:
    def test_broken_plan_refused_at_execution(self):
        database = build_database(
            "limnology", exec_settings=ExecutionSettings(verify_plans=True)
        )
        plan = plan_sql(database, "SELECT name FROM Lakes WHERE area_km2 > 100")
        filters = [op for op in _walk(plan.root) if isinstance(op, Filter)]
        filters[0].predicates.append(ColumnRef(table=None, name="wetness"))
        with pytest.raises(ExecutionError, match="plan failed verification"):
            Executor(database).execute_plan(plan)

    def test_real_queries_execute_with_verification_on(self):
        database = build_database(
            "limnology", exec_settings=ExecutionSettings(verify_plans=True)
        )
        for sql in (
            "SELECT name FROM Lakes ORDER BY name",
            "SELECT state, COUNT(*) FROM Lakes GROUP BY state",
            "SELECT L.name, S.sensor_id FROM Lakes L, Sensors S "
            "WHERE L.lake_id = S.lake_id",
            "SELECT name FROM Lakes WHERE lake_id IN "
            "(SELECT lake_id FROM Sensors)",
        ):
            result = database.execute(sql)
            assert result.columns


class TestGeneratedCorpus:
    def test_small_corpus_verifies_clean(self):
        result = verify_corpus(domains=("limnology",), sessions=12, seed=3)
        assert result.plans_verified > 0
        assert list(result.report) == []

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_planner_output_always_verifies(self, database, seed):
        verifier = PlanVerifier()
        for sql in domain_statements("limnology", sessions=3, seed=seed):
            statement = parse(sql)
            for variant in (statement, parameterize_statement(statement)[0]):
                plan = Planner(database).plan_select(variant)
                diagnostics = verifier.verify_select(plan)
                assert diagnostics == [], f"{sql!r} -> {diagnostics}"


def _walk(operator):
    yield operator
    for child in getattr(operator, "children", ()) or ():
        yield from _walk(child)
