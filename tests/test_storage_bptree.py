"""Property and unit tests for the paged B+ tree behind SortedIndex.

The hypothesis properties drive small-order trees (order 4 splits and merges
constantly) through random insert/delete interleavings and check the full
structural invariant set after every operation batch:
``BPlusTree.verify_invariants`` asserts sorted keys, uniform leaf depth,
minimum occupancy, separator bounds, consistent leaf links, and an exact
distinct counter.  A plain dict model supplies the expected contents.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import IntegrityError
from repro.storage.bptree import BPlusTree
from repro.storage.buffer_pool import PageStore
from repro.storage.indexes import INDEX_KINDS, SortedIndex
from repro.storage.pager import Pager
from repro.storage.types import sort_key

# Insert/delete scripts over a small key universe so deletes hit often and
# duplicate keys exercise the bucket (non-unique) path.
_ops = st.lists(
    st.tuples(
        st.sampled_from(["insert", "delete"]),
        st.integers(min_value=0, max_value=40),  # value
        st.integers(min_value=0, max_value=200),  # row id
    ),
    max_size=120,
)


def _model_apply(model: dict, op: str, value: int, row_id: int) -> None:
    key = sort_key(value)
    if op == "insert":
        model.setdefault(key, set()).add(row_id)
    else:
        bucket = model.get(key)
        if bucket is not None:
            bucket.discard(row_id)
            if not bucket:
                del model[key]


def _tree_items(tree: BPlusTree) -> list:
    return [(key, bucket) for key, bucket in tree.item_range(None, None)]


class TestBPlusTreeProperties:
    @given(ops=_ops)
    @settings(max_examples=60, deadline=None)
    def test_random_interleavings_preserve_invariants_and_contents(self, ops):
        tree = BPlusTree(order=4)
        model: dict = {}
        for op, value, row_id in ops:
            key = sort_key(value)
            if op == "insert":
                tree.insert(key, row_id)
            else:
                tree.delete(key, row_id)
            _model_apply(model, op, value, row_id)
        tree.verify_invariants()
        expected = [(key, sorted(model[key])) for key in sorted(model)]
        assert _tree_items(tree) == expected
        for key in sorted(model):
            assert tree.lookup(key) == sorted(model[key])
        assert tree.lookup(sort_key(999)) == []

    @given(values=st.lists(st.integers(min_value=0, max_value=10_000), max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_bulk_insert_then_drain_round_trips(self, values):
        """Splits on the way up, merges/borrows all the way back down."""
        tree = BPlusTree(order=4)
        for row_id, value in enumerate(values):
            tree.insert(sort_key(value), row_id)
            tree.verify_invariants()
        assert tree.distinct == len({sort_key(v) for v in values})
        for row_id, value in enumerate(values):
            tree.delete(sort_key(value), row_id)
            tree.verify_invariants()
        assert tree.distinct == 0
        assert tree.height == 1
        assert _tree_items(tree) == []

    @given(
        values=st.sets(st.integers(min_value=0, max_value=500), max_size=80),
        low=st.integers(min_value=-10, max_value=510),
        high=st.integers(min_value=-10, max_value=510),
        low_inc=st.booleans(),
        high_inc=st.booleans(),
    )
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.filter_too_much],
    )
    def test_range_scans_match_filtered_sort(self, values, low, high, low_inc, high_inc):
        tree = BPlusTree(order=4)
        for value in values:
            tree.insert(sort_key(value), value)
        low_key, high_key = sort_key(low), sort_key(high)

        def inside(value):
            key = sort_key(value)
            if key < low_key or (key == low_key and not low_inc):
                return False
            if key > high_key or (key == high_key and not high_inc):
                return False
            return True

        expected = sorted(v for v in values if inside(v))
        ascending = [
            row
            for _key, bucket in tree.item_range(low_key, high_key, low_inc, high_inc)
            for row in bucket
        ]
        descending = [
            row
            for _key, bucket in tree.item_range(
                low_key, high_key, low_inc, high_inc, descending=True
            )
            for row in bucket
        ]
        assert ascending == expected
        assert descending == list(reversed(expected))


class TestBPlusTreeStructure:
    def test_height_grows_logarithmically(self):
        tree = BPlusTree(order=4)
        for value in range(256):
            tree.insert(sort_key(value), value)
        tree.verify_invariants()
        # 256 distinct keys at order 4 (≥2 keys per node after splits) must
        # stay a few levels deep — a broken split would chain toward 128.
        assert 3 <= tree.height <= 8

    def test_duplicate_row_id_insert_is_idempotent(self):
        tree = BPlusTree(order=4)
        tree.insert(sort_key(7), 1)
        tree.insert(sort_key(7), 1)
        assert tree.lookup(sort_key(7)) == [1]
        assert tree.distinct == 1

    def test_delete_of_absent_pair_is_noop(self):
        tree = BPlusTree(order=4)
        tree.insert(sort_key(7), 1)
        tree.delete(sort_key(7), 2)
        tree.delete(sort_key(8), 1)
        assert tree.lookup(sort_key(7)) == [1]
        tree.verify_invariants()

    def test_clear_resets_to_empty_leaf(self):
        tree = BPlusTree(order=4)
        for value in range(100):
            tree.insert(sort_key(value), value)
        tree.clear()
        assert tree.height == 1
        assert tree.distinct == 0
        assert _tree_items(tree) == []
        tree.insert(sort_key(1), 1)
        assert tree.lookup(sort_key(1)) == [1]

    def test_rejects_degenerate_order(self):
        with pytest.raises(ValueError):
            BPlusTree(order=3)


class TestPagedBPlusTree:
    def test_survives_tiny_buffer_pool(self, tmp_path):
        """A tree far larger than the pool pages in and out correctly."""
        store = PageStore(pager=Pager(str(tmp_path / "pages.db")), capacity=8)
        tree = BPlusTree(store=store, order=4)
        for value in range(2_000):
            tree.insert(sort_key(value), value)
        stats = store.stats()
        assert stats.resident <= 8
        assert stats.evictions > 0
        for value in (0, 999, 1_999):
            assert tree.lookup(sort_key(value)) == [value]
        assert [
            row for _k, bucket in tree.item_range(None, None) for row in bucket
        ] == list(range(2_000))
        tree.verify_invariants()
        store.close()

    def test_eviction_round_trips_node_contents(self, tmp_path):
        store = PageStore(pager=Pager(str(tmp_path / "pages.db")), capacity=8)
        tree = BPlusTree(store=store, order=4)
        for value in range(500):
            tree.insert(sort_key(value), value)
        for value in range(0, 500, 2):
            tree.delete(sort_key(value), value)
        tree.verify_invariants()
        assert [
            row for _k, bucket in tree.item_range(None, None) for row in bucket
        ] == list(range(1, 500, 2))
        store.close()


class TestSortedIndexFacade:
    def test_btree_kind_maps_to_sorted_index(self):
        assert INDEX_KINDS["btree"] is SortedIndex
        assert INDEX_KINDS["sorted"] is SortedIndex

    def test_unique_violation_after_tree_backing(self):
        index = SortedIndex(name="idx", column="v", unique=True)
        index.insert(5, 1)
        with pytest.raises(IntegrityError):
            index.insert(5, 2)
        # NULLs never violate uniqueness.
        index.insert(None, 3)
        index.insert(None, 4)

    def test_ordered_row_ids_places_nulls_like_order_by(self):
        index = SortedIndex(name="idx", column="v")
        index.insert(2, 10)
        index.insert(1, 11)
        index.insert(None, 12)
        assert list(index.ordered_row_ids()) == [12, 11, 10]
        assert list(index.ordered_row_ids(descending=True)) == [10, 11, 12]
