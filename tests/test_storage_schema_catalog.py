"""Tests for table schemas and the catalog (including the schema-change log)."""

import pytest

from repro.errors import CatalogError, SchemaError
from repro.storage.catalog import Catalog
from repro.storage.schema import ColumnSchema, TableSchema
from repro.storage.types import DataType


def make_schema(name="t"):
    return TableSchema(
        name=name,
        columns=[
            ColumnSchema("id", DataType.INTEGER, primary_key=True),
            ColumnSchema("name", DataType.TEXT, not_null=True),
            ColumnSchema("score", DataType.FLOAT),
        ],
    )


class TestTableSchema:
    def test_duplicate_column_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema(
                name="t",
                columns=[
                    ColumnSchema("a", DataType.TEXT),
                    ColumnSchema("A", DataType.TEXT),
                ],
            )

    def test_column_lookup_case_insensitive(self):
        schema = make_schema()
        assert schema.column("NAME").name == "name"
        assert schema.has_column("Score")

    def test_unknown_column_raises(self):
        with pytest.raises(SchemaError):
            make_schema().column("missing")

    def test_primary_key_property(self):
        assert make_schema().primary_key.name == "id"

    def test_coerce_row_fills_missing_with_null(self):
        row = make_schema().coerce_row({"id": 1, "name": "x"})
        assert row == {"id": 1, "name": "x", "score": None}

    def test_coerce_row_rejects_unknown_column(self):
        with pytest.raises(SchemaError):
            make_schema().coerce_row({"id": 1, "name": "x", "oops": 2})

    def test_coerce_row_enforces_not_null(self):
        with pytest.raises(SchemaError):
            make_schema().coerce_row({"id": 1})

    def test_coerce_row_coerces_types(self):
        row = make_schema().coerce_row({"id": "5", "name": "x", "score": "1.5"})
        assert row["id"] == 5 and row["score"] == 1.5

    def test_with_column_added(self):
        schema = make_schema().with_column_added(ColumnSchema("extra", DataType.TEXT))
        assert schema.has_column("extra")

    def test_with_column_added_duplicate_raises(self):
        with pytest.raises(SchemaError):
            make_schema().with_column_added(ColumnSchema("id", DataType.TEXT))

    def test_with_column_dropped(self):
        schema = make_schema().with_column_dropped("score")
        assert not schema.has_column("score")

    def test_cannot_drop_last_column(self):
        schema = TableSchema(name="t", columns=[ColumnSchema("only", DataType.TEXT)])
        with pytest.raises(SchemaError):
            schema.with_column_dropped("only")

    def test_with_column_renamed(self):
        schema = make_schema().with_column_renamed("score", "points")
        assert schema.has_column("points") and not schema.has_column("score")

    def test_rename_to_existing_raises(self):
        with pytest.raises(SchemaError):
            make_schema().with_column_renamed("score", "name")

    def test_renamed_table(self):
        assert make_schema().renamed("other").name == "other"


class TestCatalog:
    def test_register_and_lookup(self):
        catalog = Catalog()
        catalog.register(make_schema(), timestamp=1.0)
        assert catalog.has_table("T")
        assert catalog.schema("t").name == "t"

    def test_duplicate_register_raises(self):
        catalog = Catalog()
        catalog.register(make_schema())
        with pytest.raises(CatalogError):
            catalog.register(make_schema())

    def test_unknown_table_raises(self):
        with pytest.raises(CatalogError):
            Catalog().schema("nope")

    def test_unregister(self):
        catalog = Catalog()
        catalog.register(make_schema())
        catalog.unregister("t")
        assert not catalog.has_table("t")

    def test_schema_columns_lowercased(self):
        catalog = Catalog()
        catalog.register(make_schema("MyTable"))
        columns = catalog.schema_columns()
        assert columns == {"mytable": {"id", "name", "score"}}

    def test_version_increments_on_every_change(self):
        catalog = Catalog()
        assert catalog.version == 0
        catalog.register(make_schema("a"))
        catalog.register(make_schema("b"))
        catalog.unregister("a")
        assert catalog.version == 3

    def test_change_log_records_kinds_and_timestamps(self):
        catalog = Catalog()
        catalog.register(make_schema("a"), timestamp=10.0)
        catalog.replace_schema(
            "a", make_schema("a").with_column_dropped("score"), kind="drop_column",
            detail="score", timestamp=20.0,
        )
        changes = catalog.changes()
        assert [change.kind for change in changes] == ["create_table", "drop_column"]
        assert changes[1].timestamp == 20.0

    def test_changes_since_version(self):
        catalog = Catalog()
        catalog.register(make_schema("a"))
        catalog.register(make_schema("b"))
        assert len(catalog.changes(since_version=1)) == 1

    def test_changes_for_table(self):
        catalog = Catalog()
        catalog.register(make_schema("a"), timestamp=1.0)
        catalog.register(make_schema("b"), timestamp=2.0)
        assert len(catalog.changes_for_table("a")) == 1
        assert catalog.last_change_timestamp("b") == 2.0
        assert catalog.last_change_timestamp("zzz") is None

    def test_replace_schema_rename_table(self):
        catalog = Catalog()
        catalog.register(make_schema("old"))
        catalog.replace_schema(
            "old", make_schema("old").renamed("new"), kind="rename_table", detail="old->new"
        )
        assert catalog.has_table("new")
        assert not catalog.has_table("old")
