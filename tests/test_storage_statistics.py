"""Tests for histograms, samples, selectivity estimation, and output summaries."""

import random

from repro.storage.statistics import (
    Histogram,
    ReservoirSample,
    TableStatistics,
    entropy,
    summarize_output,
)


class TestHistogram:
    def test_build_on_non_numeric_returns_none(self):
        assert Histogram.build(["a", "b", None]) is None

    def test_counts_sum_to_population(self):
        values = list(range(100))
        histogram = Histogram.build(values, buckets=8)
        assert sum(histogram.counts) == 100

    def test_null_count_tracked(self):
        histogram = Histogram.build([1, 2, None, None, 3])
        assert histogram.null_count == 2

    def test_selectivity_less_than(self):
        values = list(range(100))
        histogram = Histogram.build(values, buckets=10)
        estimate = histogram.estimate_selectivity("<", 50)
        assert 0.4 <= estimate <= 0.6

    def test_selectivity_out_of_range(self):
        histogram = Histogram.build(list(range(10)))
        assert histogram.estimate_selectivity("<", -5) == 0.0
        assert histogram.estimate_selectivity("<", 100) == 1.0
        assert histogram.estimate_selectivity(">", 100) == 0.0

    def test_selectivity_equality_small(self):
        histogram = Histogram.build(list(range(1000)), buckets=16)
        assert histogram.estimate_selectivity("=", 500) < 0.05

    def test_inclusive_bounds_cost_more_than_strict(self):
        histogram = Histogram.build(list(range(100)), buckets=10)
        assert histogram.estimate_selectivity("<=", 50) > histogram.estimate_selectivity("<", 50)
        assert histogram.estimate_selectivity(">=", 50) > histogram.estimate_selectivity(">", 50)

    def test_le_equals_lt_plus_eq(self):
        histogram = Histogram.build(list(range(100)), buckets=10)
        lt = histogram.estimate_selectivity("<", 50)
        le = histogram.estimate_selectivity("<=", 50)
        eq = histogram.estimate_selectivity("=", 50)
        assert abs(le - (lt + eq)) < 1e-9

    def test_inclusivity_at_domain_boundaries(self):
        histogram = Histogram.build(list(range(100)), buckets=10)
        assert histogram.estimate_selectivity("<", 0) == 0.0
        assert histogram.estimate_selectivity("<=", 0) > 0.0
        assert histogram.estimate_selectivity(">", 99) == 0.0
        assert histogram.estimate_selectivity(">=", 99) > 0.0
        assert histogram.estimate_selectivity("<=", 99) == 1.0

    def test_range_selectivity_honours_inclusive_flags(self):
        rows = [{"v": i} for i in range(100)]
        stats = TableStatistics.compute("t", rows)
        between = stats.range_selectivity("v", 20, 40, True, True)
        strict = stats.range_selectivity("v", 20, 40, False, False)
        assert between > strict

    def test_distance_of_identical_distributions_near_zero(self):
        values = [random.Random(0).uniform(0, 10) for _ in range(500)]
        first = Histogram.build(values)
        second = Histogram.build(list(values))
        assert first.distance(second) < 0.05

    def test_distance_of_shifted_distributions_large(self):
        first = Histogram.build([random.Random(0).uniform(0, 10) for _ in range(500)])
        second = Histogram.build([random.Random(1).uniform(100, 110) for _ in range(500)])
        assert first.distance(second) > 0.5


class TestReservoirSample:
    def test_keeps_all_items_under_capacity(self):
        sample = ReservoirSample(capacity=10)
        sample.extend(range(5))
        assert sorted(sample.items) == [0, 1, 2, 3, 4]

    def test_never_exceeds_capacity(self):
        sample = ReservoirSample(capacity=10)
        sample.extend(range(1000))
        assert len(sample.items) == 10
        assert sample.seen == 1000

    def test_sample_drawn_from_population(self):
        sample = ReservoirSample(capacity=16)
        sample.extend(range(500))
        assert all(0 <= item < 500 for item in sample.items)


class TestTableStatistics:
    ROWS = [
        {"id": i, "state": "WA" if i % 3 else "MI", "area": float(i)} for i in range(60)
    ]

    def test_compute_row_count_and_columns(self):
        stats = TableStatistics.compute("t", self.ROWS)
        assert stats.row_count == 60
        assert set(stats.columns) == {"id", "state", "area"}

    def test_distinct_and_most_common(self):
        stats = TableStatistics.compute("t", self.ROWS)
        assert stats.columns["state"].distinct_count == 2
        assert stats.columns["state"].most_common[0][0] == "WA"

    def test_selectivity_equality_on_categorical(self):
        stats = TableStatistics.compute("t", self.ROWS)
        assert abs(stats.selectivity("state", "=", "WA") - 0.5) < 0.1

    def test_selectivity_range_on_numeric(self):
        stats = TableStatistics.compute("t", self.ROWS)
        assert 0.3 <= stats.selectivity("area", "<", 30.0) <= 0.7

    def test_selectivity_in_list(self):
        stats = TableStatistics.compute("t", self.ROWS)
        assert stats.selectivity("state", "IN", ["WA", "MI"]) == 1.0

    def test_selectivity_unknown_column_default(self):
        stats = TableStatistics.compute("t", self.ROWS)
        assert stats.selectivity("nope", "=", 1) == 0.33

    def test_empty_table(self):
        stats = TableStatistics.compute("t", [])
        assert stats.row_count == 0
        assert stats.selectivity("x", "=", 1) == 0.33

    def test_drift_detects_row_count_change(self):
        first = TableStatistics.compute("t", self.ROWS)
        second = TableStatistics.compute("t", self.ROWS[:20])
        assert first.drift(second) > 0.3

    def test_drift_near_zero_for_same_data(self):
        first = TableStatistics.compute("t", self.ROWS)
        second = TableStatistics.compute("t", list(self.ROWS))
        assert first.drift(second) < 0.05

    def test_drift_detects_distribution_shift(self):
        shifted = [{"id": i, "state": "WA", "area": float(i) + 1000.0} for i in range(60)]
        first = TableStatistics.compute("t", self.ROWS)
        second = TableStatistics.compute("t", shifted)
        assert first.drift(second) > 0.5


class TestOutputSummarization:
    COLUMNS = ["a", "b"]

    def test_small_output_kept_completely(self):
        rows = [(i, i) for i in range(10)]
        assert summarize_output(rows, self.COLUMNS, execution_time=0.0) == rows

    def test_large_fast_output_sampled_to_base_budget(self):
        rows = [(i, i) for i in range(10_000)]
        summary = summarize_output(rows, self.COLUMNS, execution_time=0.0, base_budget=64)
        assert len(summary) == 64

    def test_long_running_query_gets_bigger_budget(self):
        rows = [(i, i) for i in range(10_000)]
        fast = summarize_output(rows, self.COLUMNS, execution_time=0.0, base_budget=32)
        slow = summarize_output(rows, self.COLUMNS, execution_time=60.0, base_budget=32)
        assert len(slow) > len(fast)

    def test_budget_capped_at_max(self):
        rows = [(i,) for i in range(20_000)]
        summary = summarize_output(
            rows, ["a"], execution_time=10_000.0, base_budget=32, max_budget=500
        )
        assert len(summary) == 500

    def test_sampled_rows_come_from_output(self):
        rows = [(i, str(i)) for i in range(1000)]
        summary = summarize_output(rows, self.COLUMNS, execution_time=0.0, base_budget=16)
        assert all(row in rows for row in summary)


class TestEntropy:
    def test_entropy_zero_for_single_bucket(self):
        assert entropy([10, 0, 0]) == 0.0

    def test_entropy_max_for_uniform(self):
        assert abs(entropy([5, 5, 5, 5]) - 2.0) < 1e-9

    def test_entropy_empty(self):
        assert entropy([]) == 0.0
