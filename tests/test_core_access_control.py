"""Tests for users, groups, visibility, and per-query grants."""

import pytest

from repro.core.access_control import AccessControl, Principal, Visibility
from repro.core.records import LoggedQuery
from repro.errors import AccessControlError


def record(qid=1, user="alice", group="lab1", visibility="group"):
    return LoggedQuery(
        qid=qid, user=user, group=group, text="SELECT 1", timestamp=0.0, visibility=visibility
    )


@pytest.fixture()
def acl():
    control = AccessControl()
    control.register("alice", "lab1")
    control.register("bob", "lab1")
    control.register("carol", "lab2")
    control.register("root", "ops", is_admin=True)
    return control


class TestPrincipals:
    def test_register_and_lookup(self, acl):
        principal = acl.principal("alice")
        assert principal == Principal(name="alice", group="lab1")

    def test_unknown_principal_raises(self, acl):
        with pytest.raises(AccessControlError):
            acl.principal("mallory")

    def test_has_principal(self, acl):
        assert acl.has_principal("bob")
        assert not acl.has_principal("mallory")

    def test_principals_sorted(self, acl):
        names = [principal.name for principal in acl.principals()]
        assert names == sorted(names)

    def test_re_register_updates_group(self, acl):
        acl.register("alice", "lab9")
        assert acl.principal("alice").group == "lab9"


class TestVisibility:
    def test_parse_from_string(self):
        assert Visibility.parse("PUBLIC") is Visibility.PUBLIC
        assert Visibility.parse(Visibility.PRIVATE) is Visibility.PRIVATE

    def test_parse_unknown_raises(self):
        with pytest.raises(AccessControlError):
            Visibility.parse("secret")

    def test_owner_always_sees_own_query(self, acl):
        assert acl.can_see("alice", record(visibility="private"))

    def test_group_visibility(self, acl):
        group_record = record(visibility="group")
        assert acl.can_see("bob", group_record)        # same group
        assert not acl.can_see("carol", group_record)  # other group

    def test_private_visibility(self, acl):
        private_record = record(visibility="private")
        assert not acl.can_see("bob", private_record)

    def test_public_visibility(self, acl):
        assert acl.can_see("carol", record(visibility="public"))

    def test_admin_sees_everything(self, acl):
        assert acl.can_see("root", record(visibility="private"))

    def test_visible_queries_filters(self, acl):
        records = [
            record(qid=1, visibility="private"),
            record(qid=2, visibility="group"),
            record(qid=3, visibility="public"),
        ]
        visible_to_carol = acl.visible_queries("carol", records)
        assert [r.qid for r in visible_to_carol] == [3]
        visible_to_bob = acl.visible_queries("bob", records)
        assert [r.qid for r in visible_to_bob] == [2, 3]


class TestGrants:
    def test_explicit_grant_overrides_visibility(self, acl):
        private_record = record(qid=5, visibility="private")
        acl.grant(5, "carol")
        assert acl.can_see("carol", private_record)
        assert acl.grants_for(5) == {"carol"}

    def test_revoke(self, acl):
        private_record = record(qid=5, visibility="private")
        acl.grant(5, "carol")
        acl.revoke(5, "carol")
        assert not acl.can_see("carol", private_record)

    def test_revoke_nonexistent_is_noop(self, acl):
        acl.revoke(123, "bob")


class TestOwnershipChecks:
    def test_owner_allowed(self, acl):
        acl.require_owner_or_admin("alice", record(user="alice"))

    def test_admin_allowed(self, acl):
        acl.require_owner_or_admin("root", record(user="alice"))

    def test_other_user_rejected(self, acl):
        with pytest.raises(AccessControlError):
            acl.require_owner_or_admin("bob", record(user="alice"))
