"""Vectorized aggregation: accumulator semantics, operator selection,
parallel partial aggregation, EXPLAIN/ANALYZE surfacing, plan-cache reuse,
and equivalence with the historical row-at-a-time aggregation path."""

from __future__ import annotations

import pytest

from repro import CQMS, SimulatedClock, build_database
from repro.errors import ExecutionError
from repro.storage import Database, ExecutionSettings
from repro.storage import operators as operators_module
from repro.storage.aggregates import (
    AvgAccumulator,
    CountStarAccumulator,
    MaxAccumulator,
    MinAccumulator,
    SumAccumulator,
    collect_aggregate_specs,
)
from repro.storage.operators import shutdown_scan_pool
from repro.storage.statistics import group_count_estimate
from repro.sql.parser import parse


def _make_db(exec_settings: ExecutionSettings | None = None) -> Database:
    db = Database(exec_settings=exec_settings)
    db.execute("CREATE TABLE lakes (lake_id INTEGER, name TEXT, area FLOAT, state TEXT)")
    db.insert_rows(
        "lakes",
        [
            {
                "lake_id": i,
                "name": f"lake{i}",
                "area": float((i * 37) % 101),
                "state": None if i % 11 == 0 else f"s{i % 7}",
            }
            for i in range(500)
        ],
    )
    return db


#: Grouped statements the vectorized path must answer identically to the
#: historical executor aggregation (rows sorted unless ORDER BY pins them).
GROUPED_QUERIES = [
    "SELECT state, COUNT(*) FROM lakes GROUP BY state",
    "SELECT state, COUNT(*) AS n, SUM(area), AVG(area), MIN(area), MAX(area) "
    "FROM lakes GROUP BY state ORDER BY n DESC, state",
    "SELECT COUNT(*), COUNT(state), COUNT(DISTINCT state) FROM lakes",
    "SELECT state, SUM(DISTINCT area), AVG(DISTINCT area) FROM lakes GROUP BY state",
    "SELECT state, COUNT(*) FROM lakes WHERE area > 40 GROUP BY state",
    "SELECT state, COUNT(*) * 2 FROM lakes GROUP BY state HAVING COUNT(*) * 2 > 80",
    "SELECT state, MAX(area) - MIN(area) FROM lakes GROUP BY state ORDER BY state",
    "SELECT lake_id % 3, COUNT(*) FROM lakes GROUP BY lake_id % 3",
    "SELECT state, AVG(area + 1.0) FROM lakes GROUP BY state",
    "SELECT COUNT(*) FROM lakes WHERE area > 1000",
    "SELECT state, COUNT(*) AS n FROM lakes GROUP BY state ORDER BY n DESC, state LIMIT 3",
]

VARIANT_SETTINGS = [
    pytest.param(ExecutionSettings(), id="vectorized"),
    pytest.param(ExecutionSettings(batch_size=1), id="vectorized-batch1"),
    pytest.param(
        ExecutionSettings(parallel_workers=4, parallel_threshold=100),
        id="vectorized-parallel",
    ),
    pytest.param(ExecutionSettings(compile_expressions=False), id="uncompiled"),
]


class TestAccumulators:
    def test_sum_matches_single_fold(self):
        acc = SumAccumulator()
        values = [0.1, 0.2, None, 0.3, 0.4, 0.5]
        acc.update_batch(values[:3])
        acc.update_batch(values[3:])
        present = [v for v in values if v is not None]
        assert acc.finish() == sum(present)

    def test_sum_all_null_is_null(self):
        acc = SumAccumulator()
        acc.update_batch([None, None])
        assert acc.finish() is None

    def test_merge_combines_partitions(self):
        left, right = AvgAccumulator(), AvgAccumulator()
        left.update_batch([1, 2, 3])
        right.update_batch([4, None, 5])
        left.merge(right)
        assert left.finish() == pytest.approx(3.0)

    def test_min_max_keep_first_tie(self):
        low, high = MinAccumulator(), MaxAccumulator()
        first, second = (1, "a"), (1, "b")
        for acc in (low, high):
            acc.update_batch([[first[0]], [second[0]]])
        assert low.finish() == [1]
        assert high.finish() == [1]

    def test_count_star_counts_rows(self):
        acc = CountStarAccumulator()
        acc.update_batch([{"a": 1}, {"a": None}])
        other = CountStarAccumulator()
        other.update_batch([{"a": 2}])
        acc.merge(other)
        assert acc.finish() == 3


class TestSpecCollection:
    def test_dedups_identical_aggregates(self):
        statement = parse(
            "SELECT state, COUNT(*), SUM(area) FROM lakes "
            "GROUP BY state HAVING SUM(area) > 10 ORDER BY SUM(area)"
        )
        collection = collect_aggregate_specs(statement)
        assert [spec.name for spec in collection.specs] == ["COUNT", "SUM"]

    def test_distinct_gets_its_own_spec(self):
        statement = parse("SELECT SUM(area), SUM(DISTINCT area) FROM lakes")
        collection = collect_aggregate_specs(statement)
        assert len(collection.specs) == 2

    def test_nested_aggregate_shapes_fall_back(self):
        statement = parse(
            "SELECT CASE WHEN COUNT(*) > 1 THEN 'many' ELSE 'few' END FROM lakes"
        )
        assert collect_aggregate_specs(statement) is None

    def test_group_count_estimate_caps_at_input(self):
        assert group_count_estimate([7.0, 3.0], 1000.0) == pytest.approx(21.0)
        assert group_count_estimate([500.0, 400.0], 1000.0) == pytest.approx(1000.0)
        assert group_count_estimate([], 1000.0) == pytest.approx(1.0)


class TestVectorizedEquivalence:
    @pytest.mark.parametrize("exec_settings", VARIANT_SETTINGS)
    @pytest.mark.parametrize("sql", GROUPED_QUERIES)
    def test_matches_historical_aggregation(self, sql, exec_settings):
        baseline = _make_db(ExecutionSettings(vectorized_aggregation=False))
        db = _make_db(exec_settings)
        expected = baseline.execute(sql)
        actual = db.execute(sql)
        assert actual.columns == expected.columns
        if "ORDER BY" in sql:
            assert actual.rows == expected.rows
        else:
            assert sorted(actual.rows, key=repr) == sorted(expected.rows, key=repr)

    def test_null_group_keys_form_one_group(self):
        db = _make_db()
        rows = dict(db.execute("SELECT state, COUNT(*) FROM lakes GROUP BY state").rows)
        assert rows[None] == len([i for i in range(500) if i % 11 == 0])

    def test_global_aggregate_on_empty_table_yields_one_row(self):
        db = Database()
        db.execute("CREATE TABLE empty (x INTEGER)")
        result = db.execute("SELECT COUNT(*), SUM(x), MIN(x), AVG(x) FROM empty")
        assert result.rows == [(0, None, None, None)]

    def test_group_by_on_empty_table_yields_no_rows(self):
        db = Database()
        db.execute("CREATE TABLE empty (x INTEGER)")
        assert db.execute("SELECT x, COUNT(*) FROM empty GROUP BY x").rows == []

    def test_having_alias_still_unknown_column(self):
        db = _make_db()
        with pytest.raises(ExecutionError, match="unknown column"):
            db.execute("SELECT state, COUNT(*) AS n FROM lakes GROUP BY state HAVING n > 1")

    def test_order_by_aggregate_alias(self):
        db = _make_db()
        result = db.execute(
            "SELECT state, COUNT(*) AS n FROM lakes GROUP BY state ORDER BY n, state"
        )
        counts = [n for _, n in result.rows]
        assert counts == sorted(counts)

    def test_aggregate_inside_case_raises_placement_error(self):
        db = _make_db()
        with pytest.raises(ExecutionError, match="top level"):
            db.execute(
                "SELECT CASE WHEN COUNT(*) > 1 THEN 'many' ELSE 'few' END FROM lakes"
            )


class TestPlannerIntegration:
    def test_explain_shows_hash_aggregate_with_estimate(self):
        db = _make_db()
        text = db.explain("SELECT state, COUNT(*) FROM lakes GROUP BY state").text()
        assert "HashAggregate [group by state]" in text
        assert "est groups=" in text

    def test_sorted_group_aggregate_over_ordered_scan(self):
        db = _make_db()
        db.execute("CREATE INDEX lakes_state ON lakes (state) USING SORTED")
        sql = "SELECT state, COUNT(*), SUM(area) FROM lakes GROUP BY state ORDER BY state"
        text = db.explain(sql).text()
        assert "SortedGroupAggregate [group by state]" in text
        assert "RangeScan" in text
        baseline = _make_db(ExecutionSettings(vectorized_aggregation=False))
        assert db.execute(sql).rows == baseline.execute(sql).rows

    def test_sorted_path_not_chosen_without_matching_order(self):
        db = _make_db()
        db.execute("CREATE INDEX lakes_state ON lakes (state) USING SORTED")
        text = db.explain("SELECT state, COUNT(*) FROM lakes GROUP BY state").text()
        # Without an ORDER BY to serve, the heap-scan hash path is cheaper
        # than an index-ordered walk.
        assert "HashAggregate" in text

    def test_estimate_uses_distinct_statistics(self):
        db = _make_db()
        db.execute("CREATE INDEX lakes_state ON lakes (state) USING SORTED")
        text = db.explain("SELECT state, COUNT(*) FROM lakes GROUP BY state").text()
        # 6 non-NULL states + NULL tracked by the index's distinct count.
        assert "[est groups=7]" in text or "[est groups=6]" in text

    def test_aggregate_plan_hits_plan_cache(self):
        db = _make_db()
        first = db.execute("SELECT state, COUNT(*) FROM lakes WHERE area > 10 GROUP BY state")
        second = db.execute("SELECT state, COUNT(*) FROM lakes WHERE area > 90 GROUP BY state")
        assert not first.stats.plan_cache_hit
        assert second.stats.plan_cache_hit
        # Rebinding really took effect: the tighter filter sees fewer rows.
        assert sum(n for _, n in second.rows) < sum(n for _, n in first.rows)

    def test_explain_analyze_reports_groups_and_time(self):
        db = _make_db()
        explanation = db.explain(
            "SELECT state, COUNT(*) FROM lakes GROUP BY state", analyze=True
        )
        text = explanation.text()
        assert "HashAggregate" in text
        # 8 groups: NULL plus s0..s6.
        assert "(actual rows=8" in text
        assert "groups=8" in text
        assert explanation.stats.groups_emitted == 8
        assert explanation.stats.agg_seconds >= 0.0

    def test_query_result_surfaces_group_counters(self):
        db = _make_db()
        result = db.execute("SELECT state, COUNT(*) FROM lakes GROUP BY state")
        assert result.stats.groups_emitted == 8
        assert result.stats.agg_seconds > 0.0
        plain = db.execute("SELECT name FROM lakes LIMIT 5")
        assert plain.stats.groups_emitted == 0


class TestParallelPartialAggregation:
    def test_parallel_matches_sequential_exactly(self):
        sequential = _make_db()
        parallel = _make_db(
            ExecutionSettings(parallel_workers=4, parallel_threshold=100)
        )
        sql = (
            "SELECT state, COUNT(*), SUM(lake_id), MIN(area), MAX(area) "
            "FROM lakes GROUP BY state ORDER BY state"
        )
        assert parallel.execute(sql).rows == sequential.execute(sql).rows

    def test_parallel_plan_keeps_parallel_scan(self):
        db = _make_db(ExecutionSettings(parallel_workers=4, parallel_threshold=100))
        text = db.explain("SELECT state, COUNT(*) FROM lakes GROUP BY state").text()
        assert "HashAggregate" in text
        assert "ParallelSeqScan" in text

    def test_rows_scanned_counts_every_partition(self):
        db = _make_db(ExecutionSettings(parallel_workers=4, parallel_threshold=100))
        result = db.execute("SELECT state, COUNT(*) FROM lakes GROUP BY state")
        assert result.stats.rows_scanned == 500


class TestScanPoolLifecycle:
    def test_shutdown_clears_and_recreates_pool(self):
        db = _make_db(ExecutionSettings(parallel_workers=4, parallel_threshold=100))
        db.execute("SELECT state, COUNT(*) FROM lakes GROUP BY state")
        assert operators_module._SCAN_POOL is not None
        shutdown_scan_pool()
        assert operators_module._SCAN_POOL is None
        # The next parallel scan lazily re-creates the pool.
        result = db.execute("SELECT state, COUNT(*) FROM lakes GROUP BY state")
        assert result.stats.rows_scanned == 500
        assert operators_module._SCAN_POOL is not None

    def test_database_close_shuts_the_pool_down(self):
        db = _make_db(ExecutionSettings(parallel_workers=4, parallel_threshold=100))
        db.execute("SELECT state, COUNT(*) FROM lakes GROUP BY state")
        assert operators_module._SCAN_POOL is not None
        db.close()
        assert operators_module._SCAN_POOL is None

    def test_shutdown_is_idempotent(self):
        shutdown_scan_pool()
        shutdown_scan_pool()
        assert operators_module._SCAN_POOL is None


class TestGroupedMetaQueries:
    def test_grouped_meta_queries_through_cqms(self):
        clock = SimulatedClock()
        db = build_database("limnology", scale=1, seed=7, clock=clock)
        cqms = CQMS(db, clock=clock)
        cqms.register_user("alice", group="lab1")
        cqms.register_user("bob", group="lab1")
        submissions = [
            ("alice", "SELECT * FROM WaterTemp T WHERE T.temp < 18"),
            ("alice", "SELECT T.temp FROM WaterTemp T WHERE T.temp < 12"),
            ("bob", "SELECT * FROM CityLocations C WHERE C.population > 100000"),
        ]
        for user, sql in submissions:
            execution = cqms.submit(user, sql)
            assert execution.succeeded, execution.error
        meta_db = cqms.store.meta_database
        per_user = meta_db.execute(
            "SELECT userName, COUNT(*) AS n FROM Queries GROUP BY userName ORDER BY n DESC, userName"
        )
        assert per_user.rows == [("alice", 2), ("bob", 1)]
        per_source = meta_db.execute(
            "SELECT relName, COUNT(*) FROM DataSources GROUP BY relName ORDER BY relName"
        )
        counts = dict(per_source.rows)
        assert counts["watertemp"] == 2
        assert counts["citylocations"] == 1
