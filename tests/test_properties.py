"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import string

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.mining.knn import KNNIndex
from repro.mining.similarity import edit_distance, jaccard_similarity, weighted_feature_similarity
from repro.mining.tfidf import TfIdfVectorizer, cosine_similarity
from repro.sql.canonicalize import canonical_text, queries_equivalent
from repro.sql.diff import diff_queries
from repro.sql.formatter import format_statement
from repro.sql.parse_tree import to_parse_tree, tree_edit_distance, tree_size
from repro.sql.parser import parse
from repro.storage.statistics import Histogram, ReservoirSample, summarize_output
from repro.storage.types import sort_key

# ---------------------------------------------------------------------------
# Strategies: random (but valid) SQL queries over a small fixed schema.
# ---------------------------------------------------------------------------

_TABLES = {
    "watertemp": ["temp", "depth", "lake_id", "month"],
    "watersalinity": ["salinity", "depth", "lake_id"],
    "lakes": ["lake_id", "name", "state"],
}

_identifiers = st.sampled_from(sorted(_TABLES))


@st.composite
def sql_queries(draw) -> str:
    """Generate a syntactically valid SELECT over the fixed schema."""
    tables = draw(st.lists(_identifiers, min_size=1, max_size=3, unique=True))
    aliases = {table: f"t{i}" for i, table in enumerate(tables)}
    projections = []
    for table in tables:
        for column in draw(
            st.lists(st.sampled_from(_TABLES[table]), min_size=0, max_size=2, unique=True)
        ):
            projections.append(f"{aliases[table]}.{column}")
    select_clause = ", ".join(projections) if projections else "*"
    from_clause = ", ".join(f"{table} {aliases[table]}" for table in tables)
    predicates = []
    for table in tables:
        if draw(st.booleans()):
            column = draw(st.sampled_from(_TABLES[table]))
            op = draw(st.sampled_from(["<", ">", "=", "<=", ">=", "<>"]))
            value = draw(st.integers(min_value=-100, max_value=100))
            predicates.append(f"{aliases[table]}.{column} {op} {value}")
    if len(tables) >= 2 and draw(st.booleans()):
        predicates.append(f"{aliases[tables[0]]}.lake_id = {aliases[tables[1]]}.lake_id")
    sql = f"SELECT {select_clause} FROM {from_clause}"
    if predicates:
        sql += " WHERE " + " AND ".join(predicates)
    if draw(st.booleans()):
        sql += f" LIMIT {draw(st.integers(min_value=1, max_value=50))}"
    return sql


token_sets = st.sets(st.sampled_from([f"tok{i}" for i in range(12)]), max_size=8)
token_lists = st.lists(st.sampled_from([f"tok{i}" for i in range(12)]), max_size=10)
short_text = st.text(alphabet=string.ascii_lowercase + " ", max_size=12)


# ---------------------------------------------------------------------------
# Parser / formatter / canonicalizer
# ---------------------------------------------------------------------------


class TestSqlRoundTripProperties:
    @given(sql_queries())
    @settings(max_examples=60, deadline=None)
    def test_parse_format_reparse_fixpoint(self, sql):
        ast = parse(sql)
        rendered = format_statement(ast)
        assert parse(rendered) == ast

    @given(sql_queries())
    @settings(max_examples=60, deadline=None)
    def test_canonicalization_idempotent(self, sql):
        once = canonical_text(sql)
        assert canonical_text(once) == once

    @given(sql_queries())
    @settings(max_examples=40, deadline=None)
    def test_query_equivalent_to_itself(self, sql):
        assert queries_equivalent(sql, sql)
        assert queries_equivalent(sql, sql, strip_constants=True)

    @given(sql_queries())
    @settings(max_examples=40, deadline=None)
    def test_diff_with_self_is_empty(self, sql):
        assert diff_queries(sql, sql).is_empty

    @given(sql_queries(), sql_queries())
    @settings(max_examples=40, deadline=None)
    def test_diff_distance_symmetric(self, first, second):
        assert diff_queries(first, second).distance() == diff_queries(second, first).distance()

    @given(sql_queries())
    @settings(max_examples=30, deadline=None)
    def test_parse_tree_distance_to_self_is_zero(self, sql):
        tree = to_parse_tree(sql)
        assert tree_edit_distance(tree, tree) == 0

    @given(sql_queries(), sql_queries())
    @settings(max_examples=25, deadline=None)
    def test_parse_tree_distance_symmetric_and_bounded(self, first, second):
        t1, t2 = to_parse_tree(first), to_parse_tree(second)
        d12 = tree_edit_distance(t1, t2)
        d21 = tree_edit_distance(t2, t1)
        assert d12 == d21
        assert 0 <= d12 <= tree_size(t1) + tree_size(t2)


# ---------------------------------------------------------------------------
# Similarity measures
# ---------------------------------------------------------------------------


class TestSimilarityProperties:
    @given(token_sets, token_sets)
    def test_jaccard_bounds_and_symmetry(self, first, second):
        value = jaccard_similarity(first, second)
        assert 0.0 <= value <= 1.0
        assert value == jaccard_similarity(second, first)

    @given(token_sets)
    def test_jaccard_identity(self, items):
        assert jaccard_similarity(items, items) == 1.0

    @given(short_text, short_text)
    def test_edit_distance_symmetry_and_triangle_with_empty(self, first, second):
        assert edit_distance(first, second) == edit_distance(second, first)
        assert edit_distance(first, second) <= len(first) + len(second)

    @given(short_text, short_text, short_text)
    @settings(max_examples=60)
    def test_edit_distance_triangle_inequality(self, a, b, c):
        assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)

    @given(token_sets, token_sets)
    def test_weighted_feature_similarity_bounds(self, first, second):
        value = weighted_feature_similarity(
            {"tables": first, "predicates": second},
            {"tables": second, "predicates": first},
        )
        assert 0.0 <= value <= 1.0

    @given(token_lists, token_lists)
    def test_tfidf_cosine_bounds(self, first, second):
        vectorizer = TfIdfVectorizer().fit([first, second])
        value = cosine_similarity(vectorizer.transform(first), vectorizer.transform(second))
        assert -1e-9 <= value <= 1.0 + 1e-9


# ---------------------------------------------------------------------------
# kNN index
# ---------------------------------------------------------------------------


class TestKnnProperties:
    @given(st.lists(token_lists, min_size=1, max_size=10), token_lists)
    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_knn_results_sorted_and_within_k(self, corpus, probe):
        index = KNNIndex()
        for position, tokens in enumerate(corpus):
            index.add(position, tokens)
        k = 3
        neighbors = index.nearest(probe, k=k)
        assert len(neighbors) <= k
        similarities = [neighbor.similarity for neighbor in neighbors]
        assert similarities == sorted(similarities, reverse=True)
        assert all(0.0 <= value <= 1.0 for value in similarities)

    @given(st.lists(token_lists, min_size=1, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_item_is_its_own_nearest_neighbor(self, corpus):
        index = KNNIndex()
        for position, tokens in enumerate(corpus):
            index.add(position, tokens)
        for position, tokens in enumerate(corpus):
            if not tokens:
                continue
            neighbors = index.nearest(tokens, k=len(corpus))
            best = max(neighbors, key=lambda n: n.similarity)
            own = next(n for n in neighbors if n.key == position)
            assert own.similarity == best.similarity


# ---------------------------------------------------------------------------
# Statistics
# ---------------------------------------------------------------------------


class TestStatisticsProperties:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=300))
    def test_histogram_counts_sum_to_population(self, values):
        histogram = Histogram.build(values)
        assert histogram is not None
        assert sum(histogram.counts) == len(values)

    @given(
        st.lists(st.floats(min_value=0, max_value=1000, allow_nan=False), min_size=2, max_size=200),
        st.sampled_from(["<", "<=", ">", ">=", "="]),
        st.floats(min_value=-100, max_value=1100, allow_nan=False),
    )
    def test_selectivity_estimates_in_unit_interval(self, values, op, constant):
        histogram = Histogram.build(values)
        estimate = histogram.estimate_selectivity(op, constant)
        assert 0.0 <= estimate <= 1.0

    @given(st.lists(st.integers(), max_size=500), st.integers(min_value=1, max_value=50))
    def test_reservoir_sample_size_invariant(self, items, capacity):
        sample = ReservoirSample(capacity=capacity)
        sample.extend(items)
        assert len(sample.items) == min(capacity, len(items))
        assert all(item in items for item in sample.items)

    @given(
        st.lists(st.tuples(st.integers(), st.integers()), max_size=300),
        st.floats(min_value=0, max_value=10, allow_nan=False),
    )
    def test_output_summary_never_exceeds_budget_and_is_subset(self, rows, elapsed):
        budget = 16
        summary = summarize_output(rows, ["a", "b"], elapsed, base_budget=budget,
                                   seconds_per_extra_row=1.0, max_budget=64)
        assert len(summary) <= max(budget + int(elapsed), len(rows) if len(rows) <= budget else 64)
        assert all(row in rows for row in summary)

    @given(st.lists(st.one_of(st.none(), st.integers(), st.floats(allow_nan=False), st.text(max_size=5), st.booleans()), max_size=50))
    def test_sort_key_provides_total_order(self, values):
        ordered = sorted(values, key=sort_key)
        # Sorting twice gives the same order (total, deterministic).
        assert sorted(ordered, key=sort_key) == ordered
        # All Nones first.
        non_none_seen = False
        for value in ordered:
            if value is None:
                assert not non_none_seen
            else:
                non_none_seen = True
