"""Tests for the query recommender and the Query Miner."""

import pytest

from repro.core.recommender import Recommendation


@pytest.fixture()
def mined_cqms(replayed_cqms):
    """Alias for readability: the shared replayed + mined CQMS fixture."""
    return replayed_cqms


class TestRecommender:
    PROBE = "SELECT * FROM WaterSalinity S, WaterTemp T WHERE T.temp < 20"

    def test_recommend_returns_recommendations(self, mined_cqms):
        user = mined_cqms.store.all_queries()[0].user
        recommendations = mined_cqms.recommend(user, self.PROBE, k=5)
        assert 0 < len(recommendations) <= 5
        assert all(isinstance(item, Recommendation) for item in recommendations)

    def test_recommendations_sorted_by_score(self, mined_cqms):
        user = mined_cqms.store.all_queries()[0].user
        recommendations = mined_cqms.recommend(user, self.PROBE, k=5)
        scores = [item.score for item in recommendations]
        assert scores == sorted(scores, reverse=True)

    def test_recommendations_are_relevant(self, mined_cqms):
        user = mined_cqms.store.all_queries()[0].user
        recommendations = mined_cqms.recommend(user, self.PROBE, k=3)
        top_tables = set(recommendations[0].record.features.tables)
        assert top_tables & {"watersalinity", "watertemp"}

    def test_recommendations_deduplicate_canonical_queries(self, mined_cqms):
        user = mined_cqms.store.all_queries()[0].user
        recommendations = mined_cqms.recommend(user, self.PROBE, k=10)
        canonicals = [item.record.canonical_text for item in recommendations]
        assert len(canonicals) == len(set(canonicals))

    def test_recommendation_row_format(self, mined_cqms):
        user = mined_cqms.store.all_queries()[0].user
        recommendation = mined_cqms.recommend(user, self.PROBE, k=1)[0]
        score, query, diff, annotations = recommendation.as_row()
        assert score.endswith("%")
        assert isinstance(query, str) and query
        assert isinstance(diff, str)

    def test_recommend_respects_access_control(self, fresh_cqms):
        fresh_cqms.submit("carol", "SELECT * FROM WaterTemp T WHERE T.temp < 18")
        fresh_cqms.submit("alice", "SELECT * FROM WaterTemp T WHERE T.temp < 15")
        # bob (lab1) must not be recommended carol's (lab2) query.
        recommendations = fresh_cqms.recommend("bob", "SELECT * FROM WaterTemp T", k=5)
        users = {item.record.user for item in recommendations}
        assert "carol" not in users

    def test_recommend_for_session(self, mined_cqms):
        report = mined_cqms.miner.last_report
        session = max(report.sessions, key=len)
        user = session.user
        recommendations = mined_cqms.recommender.recommend_for_session(
            user, session.qids, k=3
        )
        assert recommendations

    def test_recommend_for_empty_session(self, mined_cqms):
        assert mined_cqms.recommender.recommend_for_session("user01", [], k=3) == []

    def test_popularity_baseline(self, mined_cqms):
        user = mined_cqms.store.all_queries()[0].user
        popular = mined_cqms.recommender.recommend_popular(user, k=5)
        assert popular
        scores = [item.score for item in popular]
        assert scores == sorted(scores, reverse=True)

    def test_random_baseline_deterministic_for_seed(self, mined_cqms):
        user = mined_cqms.store.all_queries()[0].user
        first = mined_cqms.recommender.recommend_random(user, k=5, seed=1)
        second = mined_cqms.recommender.recommend_random(user, k=5, seed=1)
        assert [r.record.qid for r in first] == [r.record.qid for r in second]

    def test_assist_bundles_recommendations(self, mined_cqms):
        user = mined_cqms.store.all_queries()[0].user
        response = mined_cqms.assist(user, "SELECT * FROM WaterSalinity S, ", k=3)
        assert response.has_content
        assert len(response.similar_queries) <= 3


class TestMinerReport:
    def test_report_counts(self, mined_cqms):
        report = mined_cqms.miner.last_report
        assert report.num_queries > 0
        assert report.num_sessions > 0
        assert report.num_rules > 0

    def test_sessions_cover_all_select_queries(self, mined_cqms):
        report = mined_cqms.miner.last_report
        session_qids = {qid for session in report.sessions for qid in session.qids}
        select_qids = {record.qid for record in mined_cqms.store.select_queries()
                       if record.features is not None}
        assert session_qids == select_qids

    def test_sessions_recorded_in_store(self, mined_cqms):
        sessions_table = mined_cqms.store.execute_meta_sql("SELECT COUNT(*) FROM Sessions")
        assert sessions_table.scalar() == mined_cqms.miner.last_report.num_sessions
        edges = mined_cqms.store.execute_meta_sql("SELECT COUNT(*) FROM SessionEdges").scalar()
        expected_edges = sum(len(s.edges) for s in mined_cqms.miner.last_report.sessions)
        assert edges == expected_edges

    def test_records_carry_session_ids(self, mined_cqms):
        report = mined_cqms.miner.last_report
        session = report.sessions[0]
        for qid in session.qids:
            assert mined_cqms.store.get(qid).session_id == session.session_id

    def test_detected_sessions_match_workload_ground_truth(self, mined_cqms, small_workload):
        """Session detection recovers the generator's sessions almost exactly (F2)."""
        from repro.core.sessions import pairwise_session_metrics

        # Ground truth: queries of the same (user, session_ordinal) share a session.
        records = mined_cqms.store.all_queries()
        truth_pairs = set()
        by_key = {}
        for record, event in zip(records, small_workload):
            by_key.setdefault((event.user, event.session_ordinal), []).append(record.qid)
        for qids in by_key.values():
            for i, first in enumerate(qids):
                for second in qids[i + 1:]:
                    truth_pairs.add((min(first, second), max(first, second)))
        metrics = pairwise_session_metrics(mined_cqms.miner.last_report.sessions, truth_pairs)
        assert metrics["f1"] > 0.9

    def test_popularity_maps(self, mined_cqms):
        report = mined_cqms.miner.last_report
        assert report.popularity
        assert report.table_popularity
        assert max(report.table_popularity.values()) >= 1

    def test_rule_index_suggests_companions(self, mined_cqms):
        report = mined_cqms.miner.last_report
        suggestions = report.rule_index.suggestions(["table:watersalinity"], limit=5)
        assert any(token.startswith("table:") or token.startswith("pred:") for token, _ in suggestions)

    def test_query_clusters_group_same_goal_queries(self, mined_cqms):
        report = mined_cqms.miner.last_report
        clusters = report.query_clusters
        assert clusters is not None
        assert clusters.num_clusters <= mined_cqms.config.cluster_count
        # Queries in the same cluster share at least one table with the medoid.
        for label, members in clusters.clusters().items():
            medoid = clusters.items[clusters.medoids[label]]
            for index in members:
                item = clusters.items[index]
                assert set(item.features.tables) & set(medoid.features.tables)

    def test_session_clusters_present(self, mined_cqms):
        report = mined_cqms.miner.last_report
        assert report.session_clusters is not None
        assert report.session_clusters.num_clusters >= 1

    def test_edit_patterns_counted(self, mined_cqms):
        report = mined_cqms.miner.last_report
        assert report.edit_patterns
        assert any(key in report.edit_patterns for key in ("modification", "investigation"))

    def test_run_if_stale_skips_when_fresh(self, mined_cqms):
        assert mined_cqms.miner.run_if_stale(min_new_queries=5) is None

    def test_run_without_clustering(self, fresh_cqms):
        fresh_cqms.submit("alice", "SELECT * FROM Lakes")
        report = fresh_cqms.miner.run(cluster=False)
        assert report.query_clusters is None
        assert report.num_sessions == 1

    def test_miner_on_empty_store(self, fresh_cqms):
        report = fresh_cqms.miner.run()
        assert report.num_queries == 0
        assert report.sessions == []
