"""Integration tests: telemetry, timeouts, and admission control end to end.

Covers the observability acceptance contract: per-statement timeouts cancel a
runaway multi-batch query at a batch boundary with both stores consistent
(verified by durable reopen), a rate-limited principal gets the typed
pre-execution rejection while other principals proceed, and
``CQMS.metrics_text()`` exposes the full telemetry surface (≥ 25 distinct
series) in lint-clean Prometheus exposition format.
"""

import shutil
import tempfile

import pytest

from repro import CQMS, CQMSConfig, SimulatedClock, build_database
from repro.client import Workbench
from repro.errors import QueryTimeoutError, RateLimitedError, ReproError
from repro.obs import QueryLimits
from repro.storage.database import Database

RUNAWAY_ROWS = 4_000


def _runaway_db() -> Database:
    db = Database(name="obs_runaway")
    db.execute("CREATE TABLE big (x INTEGER, y FLOAT)")
    db.insert_rows(
        "big", [{"x": i, "y": float(i % 97)} for i in range(RUNAWAY_ROWS)]
    )
    return db


def _cqms(config: CQMSConfig | None = None):
    clock = SimulatedClock()
    database = build_database("limnology", scale=1, clock=clock)
    cqms = CQMS(database, config or CQMSConfig(), clock=clock)
    cqms.register_user("ana", "limno")
    cqms.register_user("ben", "limno")
    return cqms, clock


class TestStatementTimeouts:
    def test_runaway_scan_cancelled_at_batch_boundary(self):
        db = _runaway_db()
        with pytest.raises(QueryTimeoutError, match="batch boundary"):
            db.execute("SELECT * FROM big WHERE y >= 0", timeout_seconds=1e-9)
        # The same statement with a generous budget completes untouched.
        result = db.execute("SELECT * FROM big WHERE y >= 0", timeout_seconds=60.0)
        assert len(result) == RUNAWAY_ROWS

    def test_timed_out_dml_leaves_table_unchanged(self):
        db = _runaway_db()
        with pytest.raises(QueryTimeoutError):
            db.execute("DELETE FROM big WHERE y >= 0", timeout_seconds=1e-9)
        # Cancellation happens in the target-materialization (read) phase,
        # before any write begins — no half-applied mutation.
        assert db.execute("SELECT count(*) FROM big").rows == [(RUNAWAY_ROWS,)]
        with pytest.raises(QueryTimeoutError):
            db.execute("UPDATE big SET y = 0 WHERE y > 1", timeout_seconds=1e-9)
        assert db.execute("SELECT count(*) FROM big WHERE y > 1").rows[0][0] > 0

    def test_timeout_counted_and_trace_spans_present(self):
        cqms, _ = _cqms(CQMSConfig(trace_operators=True))
        with pytest.raises(QueryTimeoutError):
            cqms.database.execute(
                "SELECT * FROM SensorReadings WHERE value >= 0", timeout_seconds=1e-9
            )
        series = {
            name: instance.value
            for name, labels, instance in cqms.metrics.series()
            if labels.get("engine") == "database"
        }
        assert series.get("repro_queries_timed_out_total", 0) == 1
        # A successful statement records the parse → plan → execute pipeline
        # plus per-operator spans (trace_operators=True).
        cqms.submit("ana", "SELECT * FROM SensorReadings WHERE value > 1")
        trace = cqms.telemetry.last_trace
        names = [span.name for span in trace.spans]
        assert names[:2] == ["parse", "plan"]
        assert "execute" in names
        assert any(name.startswith("op:") for name in names)

    def test_timed_out_submission_logged_and_survives_reopen(self):
        data_dir = tempfile.mkdtemp(prefix="obs_timeout_")
        try:
            clock = SimulatedClock()
            db = build_database("limnology", scale=1, clock=clock)
            config = CQMSConfig(data_dir=data_dir, wal_sync="commit")
            with CQMS(db, config, clock=clock) as cqms:
                cqms.register_user("ana", "limno")
                cqms.set_user_limits(
                    "ana", QueryLimits(statement_timeout_seconds=1e-9)
                )
                execution = cqms.submit(
                    "ana", "SELECT * FROM SensorReadings WHERE value >= 0"
                )
                # The cancellation is reported, not raised: the failed attempt
                # is logged like any other failed statement.
                assert not execution.succeeded
                assert "timeout" in execution.error
                qid = execution.record.qid
                cqms.set_user_limits("ana", None)
                assert cqms.submit("ana", "SELECT * FROM Sensors").succeeded
                # The durable store's WAL mirror shows up in the exposition.
                assert "repro_wal_records_total" in cqms.metrics_text()
            # The store reopened from disk is consistent: both records
            # recovered, the timed-out one still marked failed.
            db2 = build_database("limnology", scale=1)
            with CQMS(db2, CQMSConfig(data_dir=data_dir)) as reopened:
                record = reopened.store.get(qid)
                assert record.runtime is not None
                assert not record.runtime.succeeded
                assert len(reopened.store) == 2
        finally:
            shutil.rmtree(data_dir, ignore_errors=True)


class TestRateLimits:
    def test_limited_principal_sheds_while_others_proceed(self):
        cqms, clock = _cqms()
        cqms.set_user_limits("ben", QueryLimits(rate_limit_qps=1.0, rate_limit_burst=1.0))
        sql = "SELECT * FROM Sensors"
        assert cqms.submit("ben", sql).succeeded
        with pytest.raises(RateLimitedError, match="rate limit"):
            cqms.submit("ben", sql)
        # The rejection is pre-execution: nothing was logged for it.
        assert len(cqms.store) == 1
        # Other principals are untouched by ben's dry bucket.
        for _ in range(3):
            assert cqms.submit("ana", sql).succeeded
        # The bucket refills from the injected clock.
        clock.advance(1.0)
        assert cqms.submit("ben", sql).succeeded
        rejected = {
            labels["principal"]: instance.value
            for name, labels, instance in cqms.metrics.series()
            if "queries_rejected" in name
        }
        assert rejected == {"ben": 1.0}

    def test_config_wide_default_rate_limit(self):
        cqms, _ = _cqms(CQMSConfig(rate_limit_qps=1.0, rate_limit_burst=1.0))
        assert cqms.submit("ana", "SELECT * FROM Sensors").succeeded
        with pytest.raises(RateLimitedError):
            cqms.submit("ana", "SELECT * FROM Sensors")

    def test_set_limits_requires_registered_principal(self):
        cqms, _ = _cqms()
        with pytest.raises(ReproError):
            cqms.set_user_limits("nobody", QueryLimits(rate_limit_qps=1.0))


class TestMetricsSurface:
    def test_metrics_text_exposes_full_surface(self):
        from repro.analysis.exposition_lint import lint_exposition

        cqms, clock = _cqms(CQMSConfig(slow_query_threshold_seconds=0.0))
        for sql in (
            "SELECT * FROM Sensors",
            "SELECT sensor_id, count(*) FROM SensorReadings GROUP BY sensor_id",
        ):
            clock.advance(1.0)
            cqms.submit("ana", sql)
        cqms.search_keyword("ana", ["sensors"])  # meta-database traffic
        text = cqms.metrics_text()
        assert cqms.metrics.series_count() >= 25
        report = lint_exposition(text, min_series=25)
        assert not report.has_errors, report.render()
        for needle in (
            "repro_statements_total",
            "repro_statement_seconds_bucket",
            "repro_plan_cache_hits_total",
            "repro_rows_scanned_total",
            "repro_statement_cache_hits_total",
            "repro_user_queries_total",
            "repro_profiler_overhead_seconds",
            "repro_queries_admitted_total",
            'engine="database"',
            'engine="query_storage"',
        ):
            assert needle in text, needle
        # Sub-threshold-0 everything is slow; the ring captured the traffic.
        assert len(cqms.slow_queries()) >= 2

    def test_workbench_metrics_panel(self):
        cqms, _ = _cqms()
        cqms.submit("ana", "SELECT * FROM Sensors")
        panel = Workbench(cqms, user="ana").metrics_panel()
        assert "repro_statement_seconds" in panel
        assert "p99" in panel

    def test_telemetry_can_be_disabled(self):
        cqms, _ = _cqms(CQMSConfig(telemetry_enabled=False))
        assert cqms.metrics is None
        assert cqms.submit("ana", "SELECT * FROM Sensors").succeeded
        with pytest.raises(ReproError):
            cqms.metrics_text()
        panel = Workbench(cqms, user="ana").metrics_panel()
        assert "disabled" in panel
