"""Unit tests for the obs primitives: metrics, tracing, admission."""

import pytest

from repro.clock import SimulatedClock
from repro.errors import RateLimitedError
from repro.obs import (
    AdmissionController,
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    QueryLimits,
    SlowQueryLog,
    TokenBucket,
    Trace,
)


class TestInstruments:
    def test_counter_monotonic(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_counter_set_total_never_moves_backward(self):
        counter = Counter()
        counter.set_total(10)
        counter.set_total(4)  # a stats mirror restarting must not rewind
        assert counter.value == 10
        counter.set_total(12)
        assert counter.value == 12

    def test_gauge_moves_both_ways(self):
        gauge = Gauge()
        gauge.set(5)
        gauge.dec(2)
        gauge.inc()
        assert gauge.value == 4

    def test_histogram_quantiles_interpolate(self):
        histogram = Histogram(buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.5, 3.0):
            histogram.observe(value)
        # rank 2 of 4 lands mid-bucket (1.0, 2.0]; linear interpolation.
        assert histogram.quantile(0.5) == pytest.approx(1.5, abs=0.51)
        assert histogram.quantile(1.0) == pytest.approx(4.0)
        assert histogram.quantile(0.0) == pytest.approx(0.0, abs=1.0)
        summary = histogram.summary()
        assert summary["count"] == 4
        assert summary["mean"] == pytest.approx(6.5 / 4)
        assert set(summary) == {"p50", "p90", "p99", "count", "mean"}

    def test_histogram_overflow_lands_in_inf_and_caps_quantile(self):
        histogram = Histogram(buckets=(1.0,))
        histogram.observe(100.0)
        assert histogram.bucket_counts[-1] == 1
        # +Inf ranks report the observable ceiling, not infinity.
        assert histogram.quantile(0.99) == 1.0

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, 1.0))

    def test_empty_histogram_quantile_is_zero(self):
        assert Histogram().quantile(0.99) == 0.0


class TestRegistry:
    def test_get_or_create_and_counter_total_suffix(self):
        registry = MetricsRegistry()
        first = registry.counter("statements", "n", engine="database")
        again = registry.counter("statements", "n", engine="database")
        assert first is again
        (name, labels, instance) = next(iter(registry.series()))
        assert name == "repro_statements_total"
        assert labels == {"engine": "database"}
        assert instance is first

    def test_series_require_at_least_one_label(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("naked", "no labels")

    def test_kind_and_label_conflicts_rejected(self):
        registry = MetricsRegistry()
        registry.gauge("pool_pages", "g", engine="database")
        with pytest.raises(ValueError):
            registry.histogram("pool_pages", "h", engine="database")
        with pytest.raises(ValueError):
            registry.gauge("pool_pages", "g", shard="0")

    def test_find_histogram(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("statement_seconds", "s", engine="database")
        assert registry.find_histogram("statement_seconds", engine="database") is histogram
        assert registry.find_histogram("statement_seconds", engine="other") is None
        assert registry.find_histogram("missing", engine="database") is None

    def test_render_exposition_shape(self):
        registry = MetricsRegistry()
        registry.counter("statements", "executed statements", engine="database").inc(3)
        registry.histogram(
            "statement_seconds", "latency", buckets=(0.1, 1.0), engine="database"
        ).observe(0.05)
        text = registry.render()
        assert "# HELP repro_statements_total executed statements" in text
        assert "# TYPE repro_statements_total counter" in text
        assert 'repro_statements_total{engine="database"} 3' in text
        assert '# TYPE repro_statement_seconds histogram' in text
        # Buckets are cumulative and +Inf mirrors _count.
        assert 'repro_statement_seconds_bucket{engine="database",le="0.1"} 1' in text
        assert 'repro_statement_seconds_bucket{engine="database",le="+Inf"} 1' in text
        assert 'repro_statement_seconds_count{engine="database"} 1' in text

    def test_render_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.counter("statements", "n", engine='we"ird\\lab\nel').inc()
        line = [l for l in registry.render().splitlines() if l.startswith("repro_state")][0]
        assert '\\"' in line and "\\\\" in line and "\\n" in line

    def test_time_block_uses_injected_timer(self):
        ticks = iter([1.0, 3.5])
        registry = MetricsRegistry(timer=lambda: next(ticks))
        histogram = registry.histogram("work_seconds", "w", engine="database")
        with registry.time_block(histogram):
            pass
        assert histogram.sum == pytest.approx(2.5)

    def test_series_count_counts_children_not_buckets(self):
        registry = MetricsRegistry()
        registry.histogram("statement_seconds", "s", engine="a")
        registry.histogram("statement_seconds", "s", engine="b")
        registry.counter("statements", "n", engine="a")
        assert registry.series_count() == 3

    def test_default_buckets_are_strictly_increasing(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(set(DEFAULT_LATENCY_BUCKETS))


class TestTracing:
    def test_span_timer_records_duration_and_meta(self):
        ticks = iter([0.0, 1.0, 1.0, 2.5])
        trace = Trace("SELECT 1", timer=lambda: next(ticks))
        with trace.span("parse") as span:
            span["statement_cache_hit"] = False
        with trace.span("execute"):
            pass
        assert [s.name for s in trace.spans] == ["parse", "execute"]
        assert trace.spans[0].duration_seconds == pytest.approx(1.0)
        assert trace.spans[0].meta == {"statement_cache_hit": False}
        assert trace.spans[1].duration_seconds == pytest.approx(1.5)

    def test_span_records_error_type_on_exception(self):
        trace = Trace("SELECT 1")
        with pytest.raises(RuntimeError):
            with trace.span("execute"):
                raise RuntimeError("boom")
        assert trace.spans[0].meta["error"] == "RuntimeError"

    def test_render_mentions_sql_and_spans(self):
        trace = Trace("SELECT * FROM t")
        trace.add_span("op:SeqScan", 0.25, rows=10)
        trace.total_seconds = 0.5
        rendered = trace.render()
        assert "SELECT * FROM t" in rendered
        assert "op:SeqScan" in rendered and "rows=10" in rendered

    def test_slow_query_log_threshold_and_ring(self):
        log = SlowQueryLog(capacity=2, threshold_seconds=1.0)
        fast = Trace("fast")
        fast.total_seconds = 0.5
        assert not log.offer(fast)
        slow = []
        for index in range(3):
            trace = Trace(f"slow {index}")
            trace.total_seconds = 2.0
            slow.append(trace)
            assert log.offer(trace)
        assert log.observed == 4 and log.admitted == 3
        assert len(log) == 2  # oldest slow trace evicted
        assert [t.sql for t in log.entries()] == ["slow 1", "slow 2"]

    def test_slow_query_log_validates_arguments(self):
        with pytest.raises(ValueError):
            SlowQueryLog(capacity=0)
        with pytest.raises(ValueError):
            SlowQueryLog(threshold_seconds=-1.0)


class TestAdmission:
    def test_token_bucket_starts_full_then_refills(self):
        clock = SimulatedClock()
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=clock)
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(0.5)  # 2 qps × 0.5s = 1 token
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(10.0)
        assert bucket.available == pytest.approx(2.0)  # capped at burst

    def test_token_bucket_validates_arguments(self):
        clock = SimulatedClock()
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0, clock=clock)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5, clock=clock)

    def test_limits_merge_over_defaults(self):
        defaults = QueryLimits(rate_limit_qps=5.0, statement_timeout_seconds=30.0)
        merged = QueryLimits(statement_timeout_seconds=1.0).merged_over(defaults)
        assert merged.rate_limit_qps == 5.0
        assert merged.statement_timeout_seconds == 1.0

    def test_admit_counts_and_rejects(self):
        clock = SimulatedClock()
        registry = MetricsRegistry(clock=clock)
        controller = AdmissionController(registry, clock=clock)
        limits = QueryLimits(rate_limit_qps=1.0, rate_limit_burst=1.0)
        budget = controller.admit("ana", QueryLimits(statement_timeout_seconds=2.0))
        assert budget.timeout_seconds == 2.0
        controller.admit("ben", limits)
        with pytest.raises(RateLimitedError):
            controller.admit("ben", limits)
        # Unlimited principals never shed; the rejected counter is ben's only.
        series = {
            (name, labels.get("principal")): instance.value
            for name, labels, instance in registry.series()
        }
        assert series[("repro_queries_admitted_total", "ana")] == 1
        assert series[("repro_queries_admitted_total", "ben")] == 1
        assert series[("repro_queries_rejected_total", "ben")] == 1

    def test_bucket_recreated_when_rate_changes(self):
        clock = SimulatedClock()
        controller = AdmissionController(MetricsRegistry(clock=clock), clock=clock)
        controller.admit("ana", QueryLimits(rate_limit_qps=1.0, rate_limit_burst=1.0))
        # A raised limit takes effect immediately (fresh bucket, full burst).
        controller.admit("ana", QueryLimits(rate_limit_qps=5.0, rate_limit_burst=2.0))
        controller.admit("ana", QueryLimits(rate_limit_qps=5.0, rate_limit_burst=2.0))
        with pytest.raises(RateLimitedError):
            controller.admit("ana", QueryLimits(rate_limit_qps=5.0, rate_limit_burst=2.0))
