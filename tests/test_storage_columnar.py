"""Columnar batch kernels: cross-path equivalence, the fused aggregation
lane, the forked partial-aggregation lane, EXPLAIN ANALYZE counters, the
plan-verifier columnar contract, and the ``columnar-mutation`` hazard rule."""

from __future__ import annotations

import os
import textwrap

import pytest
from hypothesis import given, settings as hsettings
from hypothesis import strategies as st

from repro.storage import Database, ExecutionSettings
from repro.storage.colbatch import KIND_INT, KIND_OBJECT, ColumnBatch
from repro.storage.exec_settings import auto_parallel_workers
from repro.storage.kernels import (
    apply_kernels,
    compile_columnar_conjuncts,
    gather_columns,
    hash_group_keys,
)
from repro.storage.schema import ColumnSchema, TableSchema
from repro.storage.types import DataType
from repro.sql.parser import parse


def _make_db(exec_settings: ExecutionSettings | None = None) -> Database:
    """A NULL-heavy dataset with string, int, and float columns."""
    db = Database(exec_settings=exec_settings)
    db.execute(
        "CREATE TABLE readings (id INTEGER, station TEXT, value FLOAT, flag INTEGER)"
    )
    rows = []
    for i in range(500):
        rows.append(
            {
                "id": i,
                "station": None if i % 11 == 0 else f"st{i % 9}",
                "value": None if i % 7 == 0 else float((i * 13) % 97) / 3.0,
                "flag": None if i % 5 == 0 else i % 3,
            }
        )
    db.insert_rows("readings", rows)
    return db


#: Queries covering every kernel shape: comparisons both ways, col-vs-col,
#: LIKE, IS [NOT] NULL, BETWEEN (plain and negated), IN (with and without
#: NULL semantics in play), conjunctions, projection, grouping, DISTINCT.
QUERIES = [
    "SELECT * FROM readings",
    "SELECT id, station FROM readings WHERE value > 10.0",
    "SELECT id FROM readings WHERE 10.0 > value",
    "SELECT id FROM readings WHERE flag = 1 AND value <= 20.5",
    "SELECT id FROM readings WHERE station LIKE 'st1%'",
    "SELECT id FROM readings WHERE station LIKE 'st_'",
    "SELECT id FROM readings WHERE value IS NULL",
    "SELECT id FROM readings WHERE station IS NOT NULL AND flag IS NULL",
    "SELECT id FROM readings WHERE id BETWEEN 100 AND 120",
    "SELECT id FROM readings WHERE id NOT BETWEEN 5 AND 490",
    "SELECT id FROM readings WHERE station IN ('st1', 'st4')",
    "SELECT id FROM readings WHERE flag IN (0, 2)",
    "SELECT id FROM readings WHERE flag <> 1",
    "SELECT DISTINCT station FROM readings",
    "SELECT station, COUNT(*) FROM readings GROUP BY station",
    "SELECT station, COUNT(value), SUM(value), AVG(value), MIN(id), MAX(id) "
    "FROM readings WHERE id > 50 GROUP BY station",
    "SELECT COUNT(*) FROM readings WHERE value IS NOT NULL",
    "SELECT COUNT(DISTINCT station) FROM readings",
    "SELECT id, station FROM readings WHERE id >= 17 LIMIT 9",
]


def _sorted_rows(result):
    return sorted(result.rows, key=repr)


class TestCrossPathEquivalence:
    """The satellite equivalence matrix: columnar ≡ row across batch sizes,
    worker counts, and NULL-heavy string data — exact equality, not
    approximate."""

    @pytest.mark.parametrize("batch_size", [1, 2, 256])
    @pytest.mark.parametrize("workers", [1, 2])
    def test_columnar_matches_row_path(self, batch_size, workers):
        columnar = _make_db(
            ExecutionSettings(
                batch_size=batch_size,
                parallel_workers=workers,
                parallel_threshold=100,
                columnar_kernels=True,
            )
        )
        row = _make_db(
            ExecutionSettings(
                batch_size=batch_size,
                parallel_workers=workers,
                parallel_threshold=100,
                columnar_kernels=False,
            )
        )
        for sql in QUERIES:
            got = columnar.execute(sql)
            expected = row.execute(sql)
            assert got.columns == expected.columns, sql
            assert got.rows == expected.rows, sql

    def test_columnar_off_reproduces_row_engine(self):
        """``columnar_kernels=False`` builds zero columnar batches — the
        seed engine, bit for bit."""
        db = _make_db(ExecutionSettings(columnar_kernels=False))
        for sql in QUERIES:
            result = db.execute(sql)
            assert result.stats.columnar_batches == 0, sql
            assert result.stats.kernel_seconds == 0.0, sql

    def test_cached_plan_rebinding_stays_columnar_exact(self):
        """Parameter re-binding on a cached plan must reach the kernels: the
        literal is read per execution, never baked into the closure."""
        columnar = _make_db()
        row = _make_db(ExecutionSettings(columnar_kernels=False))
        template = "SELECT id FROM readings WHERE value > {} AND station = '{}'"
        for threshold, station in [(5.0, "st1"), (20.0, "st4"), (5.0, "st1")]:
            sql = template.format(threshold, station)
            got = columnar.execute(sql)
            assert got.rows == row.execute(sql).rows, sql
        assert columnar.execute(template.format(20.0, "st4")).stats.plan_cache_hit

    @given(
        threshold=st.integers(min_value=-5, max_value=105),
        stations=st.lists(
            st.sampled_from(["st0", "st1", "st5", "st8", "zzz"]),
            min_size=1,
            max_size=3,
            unique=True,
        ),
    )
    @hsettings(max_examples=30, deadline=None)
    def test_generated_predicates_agree(self, threshold, stations):
        columnar = TestCrossPathEquivalence._shared_columnar()
        row = TestCrossPathEquivalence._shared_row()
        in_list = ", ".join(f"'{s}'" for s in stations)
        sql = (
            f"SELECT id, value FROM readings "
            f"WHERE value > {threshold}.0 AND station IN ({in_list})"
        )
        assert columnar.execute(sql).rows == row.execute(sql).rows

    _columnar_db = None
    _row_db = None

    @classmethod
    def _shared_columnar(cls):
        if cls._columnar_db is None:
            cls._columnar_db = _make_db()
        return cls._columnar_db

    @classmethod
    def _shared_row(cls):
        if cls._row_db is None:
            cls._row_db = _make_db(ExecutionSettings(columnar_kernels=False))
        return cls._row_db


class TestColumnBatch:
    def _schema(self):
        return TableSchema(
            "t",
            [
                ColumnSchema("a", DataType.INTEGER),
                ColumnSchema("b", DataType.TEXT),
                ColumnSchema("c", DataType.FLOAT),
            ],
        )

    def test_typed_extraction_and_validity(self):
        rows = [{"a": 1, "b": "x", "c": 1.5}, {"a": None, "b": None, "c": 2.5}]
        batch = ColumnBatch("t", self._schema(), rows)
        a = batch.column("a")
        assert a.kind == KIND_INT and a.validity is not None
        assert a.values() == [1, None]
        b = batch.column("b")
        assert b.kind == KIND_OBJECT
        assert b.values() == ["x", None]
        assert batch.column("c").values() == [1.5, 2.5]

    def test_huge_ints_fall_back_to_object_kind(self):
        rows = [{"a": 2**70, "b": "x", "c": 0.0}]
        batch = ColumnBatch("t", self._schema(), rows)
        column = batch.column("a")
        assert column.kind == KIND_OBJECT
        assert column.values() == [2**70]

    def test_narrowed_shares_column_cache(self):
        rows = [{"a": i, "b": str(i), "c": float(i)} for i in range(4)]
        batch = ColumnBatch("t", self._schema(), rows)
        column = batch.column("a")
        narrowed = batch.narrowed([1, 3])
        assert narrowed.column("a") is column  # extraction shared, not redone
        assert len(narrowed) == 2
        assert narrowed.selected_rows() == [rows[1], rows[3]]
        assert narrowed.to_row_batch() == [{"t": rows[1]}, {"t": rows[3]}]

    def test_gather_and_group_kernels(self):
        rows = [{"a": i % 2, "b": f"s{i}", "c": float(i)} for i in range(6)]
        batch = ColumnBatch("t", self._schema(), rows).narrowed([0, 2, 3, 5])
        assert gather_columns(batch, ["a", "b"]) == [
            (0, "s0"),
            (0, "s2"),
            (1, "s3"),
            (1, "s5"),
        ]
        order, buckets = hash_group_keys(batch, ["a"])
        assert order == [0, 1]
        assert buckets == {0: [0, 2], 1: [3, 5]}


class TestKernelCompilation:
    def _batch(self):
        schema = TableSchema(
            "t", [ColumnSchema("a", "INTEGER"), ColumnSchema("b", "TEXT")]
        )
        rows = [
            {"a": 1, "b": "x"},
            {"a": None, "b": "y"},
            {"a": 3, "b": None},
            {"a": 4, "b": "x"},
        ]
        return ColumnBatch("t", schema, rows)

    def _kernels(self, where):
        from repro.storage.planner import _split_conjuncts

        statement = parse(f"SELECT a FROM t WHERE {where}")
        bindings = [("t", ["a", "b"])]
        return compile_columnar_conjuncts(_split_conjuncts(statement.where), bindings)

    def _select(self, where):
        kernels = self._kernels(where)
        assert kernels is not None, where
        selection = apply_kernels(kernels, self._batch())
        if selection is None:
            return [0, 1, 2, 3]
        return selection

    def test_comparison_null_semantics(self):
        assert self._select("a > 1") == [2, 3]
        assert self._select("2 > a") == [0]  # flipped literal-vs-column

    def test_like_null_value_never_matches(self):
        assert self._select("b LIKE 'x%'") == [0, 3]

    def test_in_list_with_null_member_drops_nulls(self):
        assert self._select("a IN (1, 3, NULL)") == [0, 2]
        assert self._select("b NOT IN ('y')") == [0, 3]  # NULL b drops

    def test_between_drops_null(self):
        assert self._select("a BETWEEN 1 AND 3") == [0, 2]
        assert self._select("a NOT BETWEEN 1 AND 3") == [3]

    def test_uncompilable_conjunct_rejects_whole_set(self):
        from repro.storage.planner import _split_conjuncts

        statement = parse("SELECT a FROM t WHERE a > 1 AND a + 1 > 2")
        bindings = [("t", ["a", "b"])]
        assert (
            compile_columnar_conjuncts(_split_conjuncts(statement.where), bindings)
            is None
        )


class TestAnalyzeCounters:
    def test_columnar_counters_in_stats_and_summary(self):
        db = _make_db()
        explanation = db.explain("SELECT id FROM readings WHERE value > 5.0", analyze=True)
        assert explanation.stats.columnar_batches > 0
        text = explanation.text()
        assert "columnar: batches=" in text
        assert "kernels=" in text

    def test_node_stats_report_columnar_batches(self):
        db = _make_db(ExecutionSettings(batch_size=64))
        text = db.explain("SELECT id FROM readings WHERE value > 5.0", analyze=True).text()
        assert "columnar=" in text

    def test_row_engine_summary_unchanged(self):
        db = _make_db(ExecutionSettings(columnar_kernels=False))
        text = db.explain("SELECT id FROM readings WHERE value > 5.0", analyze=True).text()
        assert "columnar:" not in text


@pytest.mark.skipif(not hasattr(os, "fork"), reason="requires os.fork")
class TestProcessPartialAggregation:
    # The fork lane pays PROCESS_SETUP_COST per worker, so the cost gate only
    # opens it for scans big enough to amortize the forks (~21k rows at the
    # default constants with 2 workers).
    ROWS = 24_000

    def _forked_db(self, tmp_path=None):
        settings = ExecutionSettings(
            process_workers=2, process_threshold=100, buffer_pool_pages=64
        )
        if tmp_path is not None:
            db = Database.open(tmp_path, exec_settings=settings)
        else:
            db = Database(exec_settings=settings)
        db.execute("CREATE TABLE m (k TEXT, v INTEGER)")
        db.insert_rows(
            "m",
            [
                {"k": f"g{i % 5}", "v": None if i % 9 == 0 else i}
                for i in range(self.ROWS)
            ],
        )
        # The gate needs cached statistics: without them the group estimate
        # defaults to the input row count and the fork lane stays off.
        db.table("m").statistics(refresh=True)
        return db

    SQL = "SELECT k, COUNT(*), COUNT(v), SUM(v), MIN(v), MAX(v) FROM m GROUP BY k ORDER BY k"

    def _expected(self):
        groups: dict = {}
        for i in range(self.ROWS):
            k = f"g{i % 5}"
            v = None if i % 9 == 0 else i
            g = groups.setdefault(k, [0, 0, 0, None, None])
            g[0] += 1
            if v is not None:
                g[1] += 1
                g[2] += v
                g[3] = v if g[3] is None else min(g[3], v)
                g[4] = v if g[4] is None else max(g[4], v)
        return [
            (k, g[0], g[1], g[2], g[3], g[4]) for k, g in sorted(groups.items())
        ]

    def test_planner_gates_the_fork_lane_on(self):
        from repro.storage.planner import Planner

        db = self._forked_db()
        plan = Planner(db).plan_select(parse(self.SQL))
        assert plan.aggregate is not None
        assert plan.aggregate.process_partials == 2
        # A small scan keeps the lane off: the forks would cost more than
        # the in-process columnar coordinator.
        small = Database(
            exec_settings=ExecutionSettings(
                process_workers=2, process_threshold=100
            )
        )
        small.execute("CREATE TABLE m (k TEXT, v INTEGER)")
        small.insert_rows(
            "m", [{"k": f"g{i % 5}", "v": i} for i in range(2000)]
        )
        small.table("m").statistics(refresh=True)
        small_plan = Planner(small).plan_select(parse(self.SQL))
        assert small_plan.aggregate.process_partials == 1

    def test_forked_matches_sequential_exactly(self, monkeypatch):
        import repro.storage.operators as operators_module

        db = self._forked_db()
        calls = {}
        original = operators_module._forked_partials

        def spy(*args, **kwargs):
            result = original(*args, **kwargs)
            calls["outcome"] = "ok" if result is not None else "fallback"
            return result

        monkeypatch.setattr(operators_module, "_forked_partials", spy)
        forked = db.execute(self.SQL)
        assert calls.get("outcome") == "ok"
        assert [tuple(row) for row in forked.rows] == self._expected()

    def test_forked_matches_on_durable_database(self, tmp_path, monkeypatch):
        import repro.storage.operators as operators_module

        db = self._forked_db(tmp_path)
        db.checkpoint()
        calls = {}
        original = operators_module._forked_partials

        def spy(*args, **kwargs):
            result = original(*args, **kwargs)
            calls["outcome"] = "ok" if result is not None else "fallback"
            return result

        monkeypatch.setattr(operators_module, "_forked_partials", spy)
        forked = db.execute(self.SQL)
        assert calls.get("outcome") == "ok"
        # The parent's storage stack survives the forks: writes, checkpoint,
        # and reopen all still work.
        db.execute("INSERT INTO m VALUES ('late', 7)")
        db.checkpoint()
        db.close()
        settings = ExecutionSettings(
            process_workers=2, process_threshold=100, buffer_pool_pages=64
        )
        reopened = Database.open(tmp_path, exec_settings=settings)
        count = reopened.execute("SELECT COUNT(*) FROM m").rows[0][0]
        assert count == self.ROWS + 1
        reopened.close()
        assert len(forked.rows) == 5

    def test_fork_failure_falls_back_in_process(self, monkeypatch):
        import repro.storage.operators as operators_module

        db = self._forked_db()
        monkeypatch.setattr(
            operators_module, "_forked_partials", lambda *a, **k: None
        )
        result = db.execute(self.SQL)
        assert [tuple(row) for row in result.rows] == self._expected()


class TestAutoParallelWorkers:
    def test_gil_build_defaults_to_one_worker(self):
        assert auto_parallel_workers(gil_enabled=True, cpu_count=16) == 1

    def test_free_threaded_build_unlocks_the_thread_lane(self):
        assert auto_parallel_workers(gil_enabled=False, cpu_count=16) == 4
        assert auto_parallel_workers(gil_enabled=False, cpu_count=2) == 2
        assert auto_parallel_workers(gil_enabled=False, cpu_count=1) == 1

    def test_settings_validate_new_knobs(self):
        with pytest.raises(ValueError):
            ExecutionSettings(process_workers=0)
        with pytest.raises(ValueError):
            ExecutionSettings(process_threshold=-1)

    def test_config_maps_columnar_knobs(self):
        from repro.core.config import CQMSConfig

        config = CQMSConfig(
            exec_columnar_kernels=False,
            exec_process_workers=3,
            exec_process_threshold=123,
        )
        config.validate()
        settings = config.exec_settings()
        assert settings.columnar_kernels is False
        assert settings.process_workers == 3
        assert settings.process_threshold == 123
        with pytest.raises(ValueError):
            CQMSConfig(exec_process_workers=0).validate()


class TestPlanVerifierColumnarContract:
    def test_real_plans_satisfy_the_contract(self):
        db = _make_db(ExecutionSettings(verify_plans=True))
        for sql in QUERIES:
            db.execute(sql)  # verifier raises on any ERROR diagnostic

    def test_capable_operator_outside_scan_family_fires(self):
        from repro.analysis.plan_verify import PlanVerifier

        class FakeCapable:
            bindings = [("t", ["a"]), ("u", ["b"])]
            children = ()

            def columnar_capable(self):
                return True

            def label(self):
                return "FakeCapable"

        diagnostics: list = []
        PlanVerifier()._check_columnar(FakeCapable(), diagnostics)
        rules = {d.rule for d in diagnostics}
        assert "plan-columnar-contract" in rules
        # Both promises break: two bindings, and not a heap-scan/filter.
        assert len(diagnostics) == 2

    def test_capable_filter_over_row_child_fires(self):
        from repro.analysis.plan_verify import PlanVerifier
        from repro.storage.operators import Filter

        db = _make_db()
        root = db.explain("SELECT id FROM readings WHERE value > 5.0").root
        assert isinstance(root, Filter) and root.columnar_capable()
        # Break the chain: the child loses its capability but the Filter's
        # claim goes stale — the exact inconsistency the rule exists to catch
        # (Filter.columnar_capable() normally recomputes through the child).
        root.columnar_capable = lambda: True
        root.child.columnar_capable = lambda: False
        diagnostics: list = []
        PlanVerifier()._check_columnar(root, diagnostics)
        assert any(d.rule == "plan-columnar-contract" for d in diagnostics)


class TestColumnarMutationLint:
    def _lint(self, tmp_path, code):
        from repro.analysis.hazard_lint import lint_paths

        directory = tmp_path / "storage"
        directory.mkdir(exist_ok=True)
        (directory / "fixture.py").write_text(textwrap.dedent(code))
        return list(lint_paths([tmp_path]))

    def test_mutating_a_foreign_batch_fires(self, tmp_path):
        diagnostics = self._lint(
            tmp_path,
            """
            def bad_kernel(batch):
                batch.selection = [0]
                batch.rows.append({})
                return batch
            """,
        )
        fired = [d for d in diagnostics if d.rule == "columnar-mutation"]
        assert len(fired) == 2

    def test_stream_consumer_mutation_fires(self, tmp_path):
        diagnostics = self._lint(
            tmp_path,
            """
            def consume(scan, ctx):
                for chunk in scan.col_batches(ctx):
                    chunk.rows[0] = {}
            """,
        )
        assert any(d.rule == "columnar-mutation" for d in diagnostics)

    def test_locally_allocated_batch_is_exempt(self, tmp_path):
        diagnostics = self._lint(
            tmp_path,
            """
            def build(binding, schema, rows):
                batch = ColumnBatch(binding, schema, [])
                batch.rows.extend(rows)
                return batch
            """,
        )
        assert not any(d.rule == "columnar-mutation" for d in diagnostics)

    def test_selection_vector_output_is_clean(self, tmp_path):
        diagnostics = self._lint(
            tmp_path,
            """
            def kernel(batch, limit):
                values = batch.column("a").values()
                return [i for i, v in enumerate(values) if v is not None and v < limit]
            """,
        )
        assert not any(d.rule == "columnar-mutation" for d in diagnostics)

    def test_engine_source_is_clean(self):
        from pathlib import Path

        from repro.analysis.hazard_lint import lint_paths

        src = Path(__file__).resolve().parent.parent / "src" / "repro" / "storage"
        report = lint_paths([src])
        assert not any(d.rule == "columnar-mutation" for d in report)
