"""Tests for storage value types and coercion."""

import pytest

from repro.errors import SchemaError
from repro.storage.types import DataType, coerce_value, compare_values, infer_type, sort_key


class TestDataType:
    @pytest.mark.parametrize(
        "sql_type,expected",
        [
            ("INT", DataType.INTEGER),
            ("integer", DataType.INTEGER),
            ("BIGINT", DataType.INTEGER),
            ("FLOAT", DataType.FLOAT),
            ("DOUBLE", DataType.FLOAT),
            ("NUMERIC", DataType.FLOAT),
            ("TEXT", DataType.TEXT),
            ("VARCHAR", DataType.TEXT),
            ("BOOLEAN", DataType.BOOLEAN),
            ("bool", DataType.BOOLEAN),
        ],
    )
    def test_from_sql_aliases(self, sql_type, expected):
        assert DataType.from_sql(sql_type) is expected

    def test_from_sql_unknown_raises(self):
        with pytest.raises(SchemaError):
            DataType.from_sql("GEOMETRY")

    def test_is_numeric(self):
        assert DataType.INTEGER.is_numeric
        assert DataType.FLOAT.is_numeric
        assert not DataType.TEXT.is_numeric


class TestCoercion:
    def test_null_passes_through(self):
        assert coerce_value(None, DataType.INTEGER) is None

    def test_integer_from_float_when_integral(self):
        assert coerce_value(3.0, DataType.INTEGER) == 3

    def test_integer_from_string(self):
        assert coerce_value("7", DataType.INTEGER) == 7

    def test_integer_from_bad_string_raises(self):
        with pytest.raises(SchemaError):
            coerce_value("abc", DataType.INTEGER)

    def test_float_from_int(self):
        assert coerce_value(3, DataType.FLOAT) == 3.0

    def test_text_from_number(self):
        assert coerce_value(3.5, DataType.TEXT) == "3.5"

    def test_boolean_from_int(self):
        assert coerce_value(1, DataType.BOOLEAN) is True
        assert coerce_value(0, DataType.BOOLEAN) is False

    def test_boolean_from_string(self):
        assert coerce_value("true", DataType.BOOLEAN) is True

    def test_boolean_from_other_raises(self):
        with pytest.raises(SchemaError):
            coerce_value("maybe", DataType.BOOLEAN)

    def test_infer_type(self):
        assert infer_type(True) is DataType.BOOLEAN
        assert infer_type(3) is DataType.INTEGER
        assert infer_type(3.5) is DataType.FLOAT
        assert infer_type("x") is DataType.TEXT


class TestComparison:
    def test_null_comparisons_are_unknown(self):
        assert compare_values(None, 1) is None
        assert compare_values(1, None) is None

    def test_numeric_comparison(self):
        assert compare_values(1, 2) == -1
        assert compare_values(2, 1) == 1
        assert compare_values(2, 2.0) == 0

    def test_string_comparison(self):
        assert compare_values("a", "b") == -1

    def test_mixed_type_comparison_is_deterministic(self):
        first = compare_values(1, "a")
        second = compare_values(1, "a")
        assert first == second
        assert first in (-1, 0, 1)

    def test_sort_key_orders_nulls_first(self):
        values = ["b", None, 3, 1.5, None, "a"]
        ordered = sorted(values, key=sort_key)
        assert ordered[0] is None and ordered[1] is None

    def test_sort_key_handles_mixed_types(self):
        values = ["x", 2, None, 1]
        ordered = sorted(values, key=sort_key)
        assert ordered == [None, 1, 2, "x"]
