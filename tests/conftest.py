"""Shared fixtures.

Expensive fixtures (populated databases, replayed workloads) are
session-scoped; tests that mutate state build their own small instances.
"""

from __future__ import annotations

import pytest

from repro import CQMS, CQMSConfig, SimulatedClock, build_database
from repro.workloads import QueryLogGenerator, WorkloadConfig


@pytest.fixture(scope="session")
def limnology_db_readonly():
    """A populated limnology database shared by read-only tests."""
    return build_database("limnology", scale=1, seed=7)


@pytest.fixture()
def limnology_db():
    """A fresh populated limnology database for tests that mutate it."""
    return build_database("limnology", scale=1, seed=7)


@pytest.fixture(scope="session")
def small_workload():
    """A small deterministic workload log (events sorted by timestamp)."""
    generator = QueryLogGenerator(WorkloadConfig(num_sessions=40, num_users=8, seed=5))
    return generator.generate()


@pytest.fixture(scope="session")
def replayed_cqms(small_workload):
    """A CQMS with the small workload replayed and mined (read-only use)."""
    clock = SimulatedClock()
    db = build_database("limnology", scale=1, seed=7, clock=clock)
    cqms = CQMS(db, clock=clock)
    cqms.register_user("root", group="ops", is_admin=True)
    cqms.replay_workload(small_workload)
    cqms.run_miner()
    return cqms


@pytest.fixture()
def fresh_cqms():
    """An empty CQMS over a populated limnology database (mutable per test)."""
    clock = SimulatedClock()
    db = build_database("limnology", scale=1, seed=7, clock=clock)
    cqms = CQMS(db, clock=clock)
    cqms.register_user("alice", group="lab1")
    cqms.register_user("bob", group="lab1")
    cqms.register_user("carol", group="lab2")
    cqms.register_user("root", group="ops", is_admin=True)
    return cqms
