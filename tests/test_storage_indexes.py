"""Unit tests for the secondary index structures (hash and sorted)."""

import pytest

from repro.errors import IntegrityError
from repro.storage.indexes import INDEX_KINDS, HashIndex, SortedIndex
from repro.storage.types import sort_key


def make_sorted(values, unique=False):
    index = SortedIndex(name="idx", column="v", unique=unique)
    for row_id, value in enumerate(values):
        index.insert(value, row_id)
    return index


class TestSortedIndexBasics:
    def test_kind_markers(self):
        assert HashIndex(name="h", column="c").kind == "hash"
        assert SortedIndex(name="s", column="c").kind == "sorted"
        assert INDEX_KINDS["btree"] is SortedIndex

    def test_equality_lookup(self):
        index = make_sorted([5.0, 1.0, 5.0, 3.0])
        assert index.lookup(5.0) == {0, 2}
        assert index.lookup(2.0) == set()
        assert index.lookup(None) == set()

    def test_distinct_values_ignores_nulls(self):
        index = make_sorted([1.0, None, 2.0, None, 1.0])
        assert index.distinct_values() == 2

    def test_unique_violation(self):
        index = make_sorted([1.0], unique=True)
        with pytest.raises(IntegrityError):
            index.insert(1.0, 99)

    def test_unique_allows_multiple_nulls(self):
        index = make_sorted([None, None], unique=True)
        assert index.lookup(None) == set()

    def test_delete_removes_key_when_bucket_empties(self):
        index = make_sorted([1.0, 2.0])
        index.delete(1.0, 0)
        assert list(index.range_row_ids(None, None)) == [1]
        index.delete(2.0, 1)
        assert list(index.range_row_ids(None, None)) == []

    def test_clear(self):
        index = make_sorted([1.0, None, 2.0])
        index.clear()
        assert index.distinct_values() == 0
        assert list(index.ordered_row_ids()) == []


class TestSortedIndexRanges:
    def test_range_inclusive_exclusive(self):
        index = make_sorted([10.0, 20.0, 30.0, 40.0])
        key = lambda v: sort_key(v)
        assert list(index.range_row_ids(key(20.0), key(30.0))) == [1, 2]
        assert list(index.range_row_ids(key(20.0), key(30.0), low_inclusive=False)) == [2]
        assert list(index.range_row_ids(key(20.0), key(30.0), high_inclusive=False)) == [1]
        assert list(index.range_row_ids(None, key(15.0))) == [0]
        assert list(index.range_row_ids(key(35.0), None)) == [3]

    def test_range_excludes_nulls(self):
        index = make_sorted([10.0, None, 30.0])
        assert list(index.range_row_ids(None, None)) == [0, 2]

    def test_range_descending(self):
        index = make_sorted([10.0, 20.0, 30.0])
        assert list(index.range_row_ids(None, None, descending=True)) == [2, 1, 0]

    def test_ordered_row_ids_places_nulls_like_order_by(self):
        index = make_sorted([10.0, None, 30.0, None])
        # Ascending: NULLs first (sort_key ranks NULL lowest).
        assert list(index.ordered_row_ids()) == [1, 3, 0, 2]
        # Descending: NULLs last.
        assert list(index.ordered_row_ids(descending=True)) == [2, 0, 1, 3]

    def test_text_keys_order_lexicographically(self):
        index = make_sorted(["banana", "apple", "cherry"])
        key = lambda v: sort_key(v)
        assert list(index.range_row_ids(key("b"), None)) == [0, 2]
