"""Tests for the Query Maintenance component (schema validity, drift, quality)."""

import pytest

from repro.core.records import LoggedQuery, RuntimeStats


@pytest.fixture()
def cqms_with_queries(fresh_cqms):
    cqms = fresh_cqms
    queries = [
        "SELECT T.temp, T.depth FROM WaterTemp T WHERE T.depth < 10",
        "SELECT C.city FROM CityLocations C WHERE C.population > 100000",
        "SELECT * FROM SensorReadings R WHERE R.value > 5",
        "SELECT L.name FROM Lakes L WHERE L.area_km2 > 50",
        "SELECT S.salinity FROM WaterSalinity S WHERE S.salinity > 0.2",
    ]
    for sql in queries:
        execution = cqms.submit("alice", sql)
        assert execution.succeeded, execution.error
    return cqms


class TestSchemaValidity:
    def test_no_changes_no_flags(self, cqms_with_queries):
        report = cqms_with_queries.run_maintenance()
        assert report.flagged == [] and report.repaired == []

    def test_rename_column_repaired(self, cqms_with_queries):
        cqms = cqms_with_queries
        cqms.database.execute("ALTER TABLE WaterTemp RENAME COLUMN depth TO depth_m")
        report = cqms.run_maintenance()
        assert 1 in report.repaired
        repaired = cqms.store.get(1)
        assert "depth_m" in repaired.text
        assert not repaired.flagged_invalid
        # The repaired query actually runs against the evolved schema.
        assert cqms.database.execute(repaired.text).stats.statement_kind == "select"

    def test_rename_table_repaired(self, cqms_with_queries):
        cqms = cqms_with_queries
        cqms.database.execute("ALTER TABLE SensorReadings RENAME TO SensorMeasurements")
        report = cqms.run_maintenance()
        assert 3 in report.repaired
        assert "sensormeasurements" in cqms.store.get(3).text.lower()

    def test_drop_column_flagged(self, cqms_with_queries):
        cqms = cqms_with_queries
        cqms.database.execute("ALTER TABLE CityLocations DROP COLUMN population")
        report = cqms.run_maintenance()
        assert 2 in report.flagged
        record = cqms.store.get(2)
        assert record.flagged_invalid
        assert "population" in record.invalid_reason

    def test_drop_table_flags_queries(self, cqms_with_queries):
        cqms = cqms_with_queries
        cqms.database.execute("DROP TABLE Lakes")
        report = cqms.run_maintenance()
        assert 4 in report.flagged
        assert "missing relation lakes" in cqms.store.get(4).invalid_reason

    def test_add_column_does_not_invalidate(self, cqms_with_queries):
        cqms = cqms_with_queries
        cqms.database.execute("ALTER TABLE Lakes ADD COLUMN trophic TEXT")
        report = cqms.run_maintenance()
        assert report.flagged == []

    def test_only_stale_queries_rechecked(self, cqms_with_queries):
        cqms = cqms_with_queries
        # No schema change since the queries were logged: nothing to re-check.
        first = cqms.run_maintenance()
        assert first.checked == 0
        # After a schema change every query logged before it is re-checked once.
        cqms.database.execute("ALTER TABLE Lakes ADD COLUMN note TEXT")
        second = cqms.run_maintenance()
        assert second.checked == 5
        # And nothing is re-checked again while the schema stays put.
        third = cqms.run_maintenance()
        assert third.checked == 0

    def test_repair_disabled_flags_instead(self, cqms_with_queries):
        cqms = cqms_with_queries
        cqms.config.auto_repair_renames = False
        cqms.database.execute("ALTER TABLE WaterTemp RENAME COLUMN depth TO depth_m")
        report = cqms.maintenance.check_schema_validity()
        assert 1 in report.flagged

    def test_queries_over_unaffected_tables_untouched(self, cqms_with_queries):
        cqms = cqms_with_queries
        cqms.database.execute("ALTER TABLE CityLocations DROP COLUMN population")
        cqms.run_maintenance()
        assert not cqms.store.get(5).flagged_invalid


class TestDropObsolete:
    def test_repeatedly_flagged_queries_dropped(self, cqms_with_queries):
        cqms = cqms_with_queries
        cqms.config.drop_invalid_after_flags = 2
        cqms.database.execute("ALTER TABLE CityLocations DROP COLUMN population")
        cqms.run_maintenance()
        # Flag once more by re-checking after another (irrelevant) change.
        cqms.database.execute("ALTER TABLE Lakes ADD COLUMN note TEXT")
        cqms.store.get(2).catalog_version = 0  # force a re-check
        cqms.run_maintenance()
        report = cqms.maintenance.drop_obsolete()
        assert 2 in report.dropped
        assert 2 not in cqms.store

    def test_valid_queries_never_dropped(self, cqms_with_queries):
        cqms = cqms_with_queries
        report = cqms.maintenance.drop_obsolete()
        assert report.dropped == []


class TestStatisticsDrift:
    def test_no_drift_initially(self, cqms_with_queries):
        maintenance = cqms_with_queries.maintenance
        maintenance.snapshot_statistics()
        assert maintenance.detect_drift() == []

    def test_drift_detected_after_bulk_change(self, cqms_with_queries):
        cqms = cqms_with_queries
        cqms.maintenance.snapshot_statistics()
        cqms.database.execute("DELETE FROM WaterTemp WHERE temp < 15")
        cqms.database.execute("UPDATE WaterTemp SET temp = temp + 40")
        drifted = cqms.maintenance.detect_drift()
        assert "watertemp" in drifted

    def test_refresh_statistics_reexecutes_affected_queries(self, cqms_with_queries):
        cqms = cqms_with_queries
        cqms.maintenance.snapshot_statistics()
        old_cardinality = cqms.store.get(1).runtime.result_cardinality
        cqms.database.execute("DELETE FROM WaterTemp WHERE depth < 10")
        report = cqms.maintenance.refresh_statistics()
        assert "watertemp" in report.drifted_tables
        assert 1 in report.refreshed_queries
        assert cqms.store.get(1).runtime.result_cardinality != old_cardinality

    def test_refresh_without_drift_is_noop(self, cqms_with_queries):
        cqms = cqms_with_queries
        cqms.maintenance.snapshot_statistics()
        report = cqms.maintenance.refresh_statistics()
        assert report.refreshed_queries == []


class TestQuality:
    def test_failed_query_quality_zero(self, fresh_cqms):
        record = LoggedQuery(
            qid=999, user="a", group="g", text="SELECT 1", timestamp=0.0,
            runtime=RuntimeStats(succeeded=False, error="boom"),
        )
        assert fresh_cqms.maintenance.score_quality(record) == 0.0

    def test_annotated_query_scores_higher(self, cqms_with_queries):
        cqms = cqms_with_queries
        plain = cqms.store.get(1)
        annotated = cqms.store.get(5)
        cqms.annotate("alice", 5, "salinity profile by depth")
        assert cqms.maintenance.score_quality(annotated) > cqms.maintenance.score_quality(plain)

    def test_small_result_scores_higher_than_huge(self, cqms_with_queries):
        cqms = cqms_with_queries
        small = cqms.store.get(2)
        big = cqms.store.get(1)
        assert big.runtime.result_cardinality > small.runtime.result_cardinality
        assert cqms.maintenance.score_quality(small) >= cqms.maintenance.score_quality(big)

    def test_score_all_quality_returns_map(self, cqms_with_queries):
        scores = cqms_with_queries.maintenance.score_all_quality()
        assert set(scores) == {1, 2, 3, 4, 5}
        assert all(0.0 <= value <= 1.0 for value in scores.values())

    def test_invalid_query_quality_zero(self, cqms_with_queries):
        cqms = cqms_with_queries
        cqms.store.mark_invalid(4, "obsolete")
        assert cqms.maintenance.score_quality(cqms.store.get(4)) == 0.0
