"""Tests for heap tables, indexes, and table-level schema evolution."""

import pytest

from repro.errors import IntegrityError, SchemaError
from repro.storage.schema import ColumnSchema, TableSchema
from repro.storage.table import Table
from repro.storage.types import DataType


def make_table():
    return Table(
        TableSchema(
            name="lakes",
            columns=[
                ColumnSchema("id", DataType.INTEGER, primary_key=True),
                ColumnSchema("name", DataType.TEXT, unique=True),
                ColumnSchema("state", DataType.TEXT),
                ColumnSchema("area", DataType.FLOAT),
            ],
        )
    )


def seed(table):
    table.insert({"id": 1, "name": "Washington", "state": "WA", "area": 87.6})
    table.insert({"id": 2, "name": "Union", "state": "WA", "area": 2.3})
    table.insert({"id": 3, "name": "Michigan", "state": "MI", "area": 58000.0})
    return table


class TestInsertDeleteUpdate:
    def test_insert_returns_increasing_row_ids(self):
        table = make_table()
        first = table.insert({"id": 1, "name": "a", "state": "WA", "area": 1.0})
        second = table.insert({"id": 2, "name": "b", "state": "WA", "area": 1.0})
        assert second == first + 1
        assert len(table) == 2

    def test_primary_key_uniqueness_enforced(self):
        table = seed(make_table())
        with pytest.raises(IntegrityError):
            table.insert({"id": 1, "name": "dup", "state": "WA", "area": 1.0})

    def test_unique_column_enforced(self):
        table = seed(make_table())
        with pytest.raises(IntegrityError):
            table.insert({"id": 9, "name": "Union", "state": "OR", "area": 1.0})

    def test_failed_insert_leaves_table_unchanged(self):
        table = seed(make_table())
        before = len(table)
        with pytest.raises(IntegrityError):
            table.insert({"id": 1, "name": "x", "state": "WA", "area": 1.0})
        assert len(table) == before

    def test_delete_removes_row_and_index_entry(self):
        table = seed(make_table())
        row_id = next(rid for rid, row in table.scan() if row["id"] == 2)
        table.delete(row_id)
        assert len(table) == 2
        assert table.lookup("id", 2) == []

    def test_delete_where(self):
        table = seed(make_table())
        removed = table.delete_where(lambda row: row["state"] == "WA")
        assert removed == 2
        assert len(table) == 1

    def test_update_changes_values_and_indexes(self):
        table = seed(make_table())
        row_id = next(rid for rid, row in table.scan() if row["id"] == 2)
        table.update(row_id, {"name": "Lake Union", "area": 3.5})
        assert table.lookup("name", "Lake Union")[0]["area"] == 3.5
        assert table.lookup("name", "Union") == []

    def test_update_unique_violation_restores_index(self):
        table = seed(make_table())
        row_id = next(rid for rid, row in table.scan() if row["id"] == 2)
        with pytest.raises(IntegrityError):
            table.update(row_id, {"name": "Washington"})
        # The old value is still findable after the failed update.
        assert table.lookup("name", "Union")[0]["id"] == 2

    def test_failed_update_rolls_back_earlier_indexes(self):
        # Two unique columns: the first (id, the primary key) accepts its new
        # value, then the second (name) raises — the first index must be
        # restored, not left pointing at the never-committed value.
        table = seed(make_table())
        row_id = next(rid for rid, row in table.scan() if row["id"] == 2)
        with pytest.raises(IntegrityError):
            table.update(row_id, {"id": 99, "name": "Washington"})
        assert table.lookup("id", 2)[0]["name"] == "Union"
        assert table.lookup("id", 99) == []
        assert table.lookup("name", "Union")[0]["id"] == 2
        # A re-insert of the rejected id must not hit a phantom index entry.
        table.insert({"id": 99, "name": "New", "state": "OR", "area": 1.0})

    def test_insert_coerces_types(self):
        table = make_table()
        table.insert({"id": "5", "name": "x", "state": "WA", "area": "2.5"})
        row = table.lookup("id", 5)[0]
        assert row["area"] == 2.5

    def test_insert_unknown_column_raises(self):
        with pytest.raises(SchemaError):
            make_table().insert({"id": 1, "nope": "x"})


class TestIndexes:
    def test_secondary_index_lookup(self):
        table = seed(make_table())
        index = table.create_index("by_state", "state")
        assert index.distinct_values() == 2
        assert {row["name"] for row in table.lookup("state", "WA")} == {"Washington", "Union"}

    def test_lookup_without_index_scans(self):
        table = seed(make_table())
        assert len(table.lookup("area", 2.3)) == 1

    def test_create_index_on_unknown_column_raises(self):
        with pytest.raises(SchemaError):
            make_table().create_index("bad", "nope")

    def test_index_created_after_inserts_backfills(self):
        table = seed(make_table())
        index = table.create_index("by_state", "state")
        assert index.lookup("MI")

    def test_nulls_not_indexed(self):
        table = make_table()
        table.create_index("by_state", "state")
        table.insert({"id": 10, "name": "n", "state": None, "area": 1.0})
        assert table.index_for("state").lookup(None) == set()

    def test_create_index_is_idempotent_for_matching_request(self):
        table = seed(make_table())
        first = table.create_index("by_state", "state")
        assert table.create_index("other_name", "state") is first

    def test_create_index_uniqueness_conflict_raises(self):
        # A unique index must never be silently satisfied by an existing
        # non-unique one (or vice versa).
        table = seed(make_table())
        table.create_index("by_state", "state", unique=False)
        with pytest.raises(SchemaError):
            table.create_index("by_state_unique", "state", unique=True)
        with pytest.raises(SchemaError):
            table.create_index("pk_again", "id", unique=False)

    def test_unknown_index_kind_raises(self):
        with pytest.raises(SchemaError):
            make_table().create_index("weird", "state", kind="rtree")

    def test_hash_and_sorted_coexist_on_one_column(self):
        table = seed(make_table())
        hash_index = table.create_index("area_hash", "area")
        sorted_index = table.create_index("area_sorted", "area", kind="sorted")
        assert hash_index is not sorted_index
        assert table.index_for("area") is hash_index
        assert table.sorted_index_for("area") is sorted_index
        # Both kinds are maintained through mutations.
        table.insert({"id": 7, "name": "Tahoe", "state": "CA", "area": 191.0})
        assert hash_index.lookup(191.0)
        assert sorted_index.lookup(191.0)
        row_id = next(rid for rid, row in table.scan() if row["id"] == 7)
        table.update(row_id, {"area": 192.0})
        assert not sorted_index.lookup(191.0)
        assert sorted_index.lookup(192.0)
        table.delete(row_id)
        assert not hash_index.lookup(192.0)
        assert not sorted_index.lookup(192.0)

    def test_sorted_index_backfills_existing_rows(self):
        table = seed(make_table())
        index = table.create_index("area_sorted", "area", kind="sorted")
        assert index.distinct_values() == 3

    def test_rename_column_moves_all_index_kinds(self):
        table = seed(make_table())
        table.create_index("area_sorted", "area", kind="sorted")
        table.rename_column("area", "surface")
        assert table.sorted_index_for("surface") is not None
        assert table.sorted_index_for("surface").column == "surface"
        assert table.sorted_index_for("area") is None


class TestSchemaEvolution:
    def test_add_column_fills_nulls(self):
        table = seed(make_table())
        table.add_column(ColumnSchema("depth", DataType.FLOAT))
        assert all(row["depth"] is None for row in table.rows())

    def test_add_column_with_default(self):
        table = seed(make_table())
        table.add_column(ColumnSchema("kind", DataType.TEXT), default="freshwater")
        assert all(row["kind"] == "freshwater" for row in table.rows())

    def test_add_not_null_column_without_default_raises(self):
        table = seed(make_table())
        with pytest.raises(SchemaError):
            table.add_column(ColumnSchema("kind", DataType.TEXT, not_null=True))

    def test_drop_column(self):
        table = seed(make_table())
        table.drop_column("area")
        assert "area" not in table.rows()[0]
        assert not table.schema.has_column("area")

    def test_rename_column_moves_data_and_index(self):
        table = seed(make_table())
        table.rename_column("name", "lake_name")
        assert table.lookup("lake_name", "Union")[0]["id"] == 2
        with pytest.raises(SchemaError):
            table.schema.column("name")

    def test_rename_table(self):
        table = make_table()
        table.rename("water_bodies")
        assert table.name == "water_bodies"


class TestStatistics:
    def test_statistics_cached_until_mutation(self):
        table = seed(make_table())
        first = table.statistics()
        assert table.statistics() is first
        table.insert({"id": 9, "name": "new", "state": "OR", "area": 4.0})
        assert table.statistics() is not first

    def test_statistics_row_count(self):
        assert seed(make_table()).statistics().row_count == 3
