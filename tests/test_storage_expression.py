"""Tests for expression evaluation (scopes, NULL semantics, operators)."""

import pytest

from repro.errors import ExecutionError
from repro.sql.parser import parse_expression
from repro.storage.expression import Scope, evaluate, is_true


ROW_SCOPE = Scope(
    {
        "t": {"a": 5, "b": None, "name": "Lake Washington", "flag": True},
        "s": {"x": 2.5, "a": 7},
    }
)


def run(expression, scope=ROW_SCOPE):
    return evaluate(parse_expression(expression), scope)


class TestColumnResolution:
    def test_qualified_lookup(self):
        assert run("t.a") == 5
        assert run("s.a") == 7

    def test_unqualified_unambiguous_lookup(self):
        assert run("x") == 2.5

    def test_unqualified_ambiguous_raises(self):
        with pytest.raises(ExecutionError):
            run("a")

    def test_unknown_column_raises(self):
        with pytest.raises(ExecutionError):
            run("t.zzz")

    def test_unknown_alias_raises(self):
        with pytest.raises(ExecutionError):
            run("z.a")

    def test_parent_scope_lookup(self):
        child = ROW_SCOPE.child({"u": {"y": 1}})
        assert evaluate(parse_expression("t.a"), child) == 5
        assert evaluate(parse_expression("y"), child) == 1

    def test_extras_used_for_aliases(self):
        scope = ROW_SCOPE.with_extras({"total": 42})
        assert evaluate(parse_expression("total"), scope) == 42

    def test_case_insensitive_column_names(self):
        assert run("T.A") == 5


class TestComparisonAndLogic:
    def test_comparisons(self):
        assert run("t.a = 5") is True
        assert run("t.a < 3") is False
        assert run("t.a >= 5") is True
        assert run("t.a <> 6") is True

    def test_null_comparison_is_unknown(self):
        assert run("t.b = 1") is None
        assert run("t.b < 1") is None

    def test_is_null(self):
        assert run("t.b IS NULL") is True
        assert run("t.a IS NULL") is False
        assert run("t.a IS NOT NULL") is True

    def test_and_or_three_valued(self):
        assert run("t.a = 5 AND t.b = 1") is None
        assert run("t.a = 1 AND t.b = 1") is False
        assert run("t.a = 5 OR t.b = 1") is True
        assert run("t.a = 1 OR t.b = 1") is None

    def test_not_of_null_is_null(self):
        assert run("NOT t.b = 1") is None

    def test_is_true_only_for_true(self):
        assert is_true(True)
        assert not is_true(None)
        assert not is_true(False)
        assert not is_true(1)

    def test_between(self):
        assert run("t.a BETWEEN 1 AND 10") is True
        assert run("t.a NOT BETWEEN 1 AND 10") is False
        assert run("t.b BETWEEN 1 AND 10") is None

    def test_in_list(self):
        assert run("t.a IN (1, 5, 9)") is True
        assert run("t.a NOT IN (1, 5, 9)") is False
        assert run("t.a IN (1, 2)") is False

    def test_in_list_with_null_member_unknown_when_absent(self):
        assert run("t.a IN (1, NULL)") is None

    def test_like(self):
        assert run("t.name LIKE 'Lake%'") is True
        assert run("t.name LIKE '%washington'") is True  # case-insensitive
        assert run("t.name LIKE 'Lake _______ton'") is True
        assert run("t.name LIKE 'Ocean%'") is False


class TestArithmeticAndFunctions:
    def test_arithmetic(self):
        assert run("t.a + 1") == 6
        assert run("t.a * 2") == 10
        assert run("t.a - 10") == -5
        assert run("t.a / 2") == 2.5
        assert run("t.a % 2") == 1

    def test_arithmetic_with_null_propagates(self):
        assert run("t.b + 1") is None

    def test_division_by_zero_is_null(self):
        assert run("t.a / 0") is None

    def test_arithmetic_on_text_raises(self):
        with pytest.raises(ExecutionError):
            run("t.name + 1")

    def test_unary_minus(self):
        assert run("-t.a") == -5

    def test_string_concatenation(self):
        assert run("t.name || '!'") == "Lake Washington!"

    def test_scalar_functions(self):
        assert run("LOWER(t.name)") == "lake washington"
        assert run("UPPER('x')") == "X"
        assert run("LENGTH(t.name)") == 15
        assert run("ABS(-3)") == 3
        assert run("COALESCE(t.b, t.a, 1)") == 5
        assert run("ROUND(2.7)") == 3

    def test_cast(self):
        assert run("CAST('5' AS INTEGER)") == 5
        assert run("CAST(t.a AS TEXT)") == "5"
        assert run("CAST(1 AS BOOLEAN)") is True

    def test_unknown_function_raises(self):
        with pytest.raises(ExecutionError):
            run("FROBNICATE(1)")

    def test_case_expression(self):
        assert run("CASE WHEN t.a > 3 THEN 'big' ELSE 'small' END") == "big"
        assert run("CASE WHEN t.a > 9 THEN 'big' END") is None

    def test_aggregate_outside_group_context_raises(self):
        with pytest.raises(ExecutionError):
            run("COUNT(t.a)")

    def test_subquery_without_runner_raises(self):
        with pytest.raises(ExecutionError):
            run("EXISTS (SELECT 1 FROM t)")
