#!/usr/bin/env python
"""A collaborating science lab over a shared limnology database.

This example replays a realistic multi-user exploratory workload (the kind of
log the paper's motivating SDSS/IRIS/LSST settings produce), then shows what
the CQMS can do with it:

* the Figure 1 flow — a partially written query is turned into a SQL
  meta-query over the feature relations and answered from the log,
* query-by-data — "all queries whose output includes Lake Washington but not
  Lake Union" (the paper's Section 2.2 example),
* context-aware completion — WaterSalinity ⇒ suggest WaterTemp even though
  CityLocations is globally more popular (Section 2.3's example),
* leveraging a colleague's annotated query instead of redoing the analysis,
* the automatically generated dataset tutorial.

Run with:  python examples/scientific_collaboration.py
"""

from repro import CQMS, DataCondition, SimulatedClock, build_database
from repro.client import render_recommendations
from repro.workloads import QueryLogGenerator, WorkloadConfig


def main() -> None:
    clock = SimulatedClock()
    db = build_database("limnology", scale=2, clock=clock)
    cqms = CQMS(db, clock=clock)

    # Replay three months of a twelve-person lab's exploratory querying.
    workload = QueryLogGenerator(
        WorkloadConfig(domain="limnology", num_users=12, num_groups=3,
                       num_sessions=150, seed=2024, annotation_probability=0.4)
    ).generate()
    print(f"replaying {len(workload)} queries from {sum(1 for e in workload if e.is_final)} sessions...")
    cqms.replay_workload(workload)
    report = cqms.run_miner()
    print(f"log contains {len(cqms.store)} queries; "
          f"{report.num_sessions} sessions; {report.num_rules} mined rules\n")

    newcomer = "user01"

    # --- Figure 1: find earlier analyses correlating salinity and temperature.
    partial = "SELECT FROM WaterSalinity, WaterTemp"
    meta_sql = cqms.meta_query.generate_feature_sql(partial)
    print("Auto-generated meta-query (Figure 1):")
    print(" ", meta_sql, "\n")
    previous_analyses = cqms.search_like_partial(newcomer, partial)
    print(f"{len(previous_analyses)} earlier queries correlate the two datasets; first three:")
    for record in previous_analyses[:3]:
        note = f"   -- {record.annotations[0]}" if record.annotations else ""
        print(f"  [q{record.qid} by {record.user}] {record.describe(70)}{note}")

    # --- Query-by-data: which past queries separate Lake Washington from Lake Union?
    condition = DataCondition(include_values=["Lake Washington"], exclude_values=["Lake Union"])
    separating = cqms.search_by_data(newcomer, condition)
    print(f"\nqueries whose output includes Lake Washington but not Lake Union: {len(separating)}")
    for record in separating[:3]:
        predicates = ", ".join(
            f"{p.attribute} {p.op} {p.constant}" for p in record.features.predicates
        )
        print(f"  [q{record.qid}] predicates: {predicates}")

    # --- Context-aware completion (Section 2.3 example).
    print("\ncompletion for 'SELECT * FROM WaterSalinity S, ':")
    for suggestion in cqms.completion.suggest_tables("SELECT * FROM WaterSalinity S, ", limit=3):
        print(f"  suggest {suggestion.text}  (score {suggestion.score:.2f}, {suggestion.source})")
    print("popularity-only baseline would suggest:",
          cqms.completion.popular_tables(limit=1)[0].text)

    # --- Recommendations while the newcomer drafts a rough query.
    draft = "SELECT * FROM WaterTemp T WHERE T.temp < 20"
    recommendations = cqms.recommend(newcomer, draft, k=4)
    print("\nsimilar queries recommended for the newcomer's draft:")
    print(render_recommendations(recommendations))

    # --- Automatically generated tutorial for the dataset.
    print("\nFirst section of the auto-generated tutorial:")
    print(cqms.tutorial(max_relations=1)[0].render())


if __name__ == "__main__":
    main()
