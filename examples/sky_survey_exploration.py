#!/usr/bin/env python
"""Exploring a sky-survey catalogue with an assisted workbench.

An astronomer new to an SDSS-like catalogue drives the programmatic client
(:class:`repro.client.Workbench`) the way the paper's Figure 3 envisions: she
types a rough query, accepts completions and corrections, inspects similar
queries asked by colleagues, adopts one of them, and finally submits.  The
example also demonstrates query-by-parse-tree search and session browsing.

Run with:  python examples/sky_survey_exploration.py
"""

from repro import CQMS, SimulatedClock, TreePattern, build_database
from repro.client import Workbench, render_session_graph
from repro.workloads import QueryLogGenerator, WorkloadConfig


def main() -> None:
    clock = SimulatedClock()
    db = build_database("sky_survey", scale=2, clock=clock)
    cqms = CQMS(db, clock=clock)

    # Colleagues have been querying the catalogue for a while.
    workload = QueryLogGenerator(
        WorkloadConfig(domain="sky_survey", num_users=8, num_groups=2,
                       num_sessions=100, seed=99, annotation_probability=0.5)
    ).generate()
    cqms.replay_workload(workload)
    report = cqms.run_miner()
    print(f"{len(cqms.store)} logged queries, {report.num_sessions} sessions\n")

    astronomer = "user01"

    # The newcomer starts typing with a typo in the table name.
    workbench = Workbench(cqms=cqms, user=astronomer)
    workbench.type("SELECT * FROM PhotObj")
    response = workbench.assist()
    print("corrections offered:", [str(c) for c in response.corrections])
    workbench.apply_correction(0)
    print("buffer after applying the correction:", workbench.buffer)

    # Continue composing: ask for table completions after the first relation.
    workbench.type(" P, ")
    response = workbench.assist()
    print("\ntable completions:", [s.text for s in response.completions["tables"]])
    workbench.apply_table_suggestion(0)
    print("buffer:", workbench.buffer)

    # Look at similar queries colleagues asked, adopt the best one, run it.
    workbench.clear().type("SELECT * FROM PhotoObj P, SpecObj S WHERE S.redshift > 1")
    recommendations = workbench.recommendations(k=3)
    print("\nsimilar queries from the log:")
    for recommendation in recommendations:
        score, query, diff, annotations = recommendation.as_row()
        print(f"  [{score}] {query}  | diff: {diff}  | {annotations}")
    workbench.adopt_recommendation(recommendations[0])
    execution = workbench.submit()
    print(f"\nadopted and ran colleague's query: {execution.result.rowcount} rows")

    # Query-by-parse-tree: every logged query that joins PhotoObj with SpecObj
    # and selects on redshift, regardless of constants.
    pattern = TreePattern(
        label="select",
        children=(
            TreePattern(label="table", value="photoobj"),
            TreePattern(label="table", value="specobj"),
            TreePattern(label="column", value="s.redshift"),
        ),
    )
    structural_hits = cqms.search_parse_tree(astronomer, pattern)
    print(f"\nquery-by-parse-tree: {len(structural_hits)} structurally matching queries")

    # Browse the longest session of a colleague (Figure 2 view).
    visible_sessions = cqms.browser().sessions_of(astronomer, report.sessions)
    longest = max(visible_sessions, key=len)
    print("\nlongest visible session:")
    print(render_session_graph(longest, cqms.store))


if __name__ == "__main__":
    main()
