#!/usr/bin/env python
"""Quickstart: a five-minute tour of the Collaborative Query Management System.

Builds the paper's limnology database, wraps it in a CQMS, submits a few
queries as two collaborating scientists, and demonstrates each interaction
mode: traditional (submit + annotate), search & browse (keyword, feature, and
kNN meta-queries), assisted (completion / correction / recommendation), and
administrative (mining and maintenance) — then shows the durable Query
Storage: with ``CQMSConfig(data_dir=...)`` the query log is written ahead to
disk and survives a restart.

Run with:  python examples/quickstart.py
"""

import shutil
import tempfile

from repro import CQMS, CQMSConfig, SimulatedClock, build_database
from repro.client import (
    Workbench,
    render_assist_panel,
    render_query_table,
    render_session_graph,
)


def main() -> None:
    # 1. The shared scientific database (the "DBMS" of the paper's Figure 4).
    clock = SimulatedClock()
    db = build_database("limnology", scale=1, clock=clock)
    cqms = CQMS(db, clock=clock)

    # 2. Register collaborating users (access control is group based).
    cqms.register_user("nodira", group="uw-db")
    cqms.register_user("magda", group="uw-db")

    # 3. Traditional interaction: submit queries; the profiler logs everything.
    print("== Traditional interaction ==")
    queries = [
        "SELECT * FROM WaterTemp T WHERE T.temp < 22",
        "SELECT * FROM WaterSalinity S, WaterTemp T WHERE T.temp < 22",
        "SELECT * FROM WaterSalinity S, WaterTemp T WHERE T.temp < 18",
        "SELECT S.salinity, T.temp FROM WaterSalinity S, WaterTemp T "
        "WHERE S.loc_x = T.loc_x AND S.loc_y = T.loc_y AND T.temp < 18",
    ]
    for sql in queries:
        execution = cqms.submit("nodira", sql)
        print(f"  nodira ran ({execution.result.rowcount:>4} rows): {sql[:70]}")
        clock.advance(45)
    cqms.annotate("nodira", 4, "find temp and salinity of seattle lakes")

    # 4. Background components (normally periodic): the Query Miner.
    report = cqms.run_miner()
    print(f"\nMined {report.num_sessions} session(s), {report.num_rules} association rules")

    # 5. Search & browse: keyword search and the Figure 2 session graph.
    print("\n== Search & browse interaction ==")
    hits = cqms.search_keyword("magda", "salinity")
    print(f"keyword 'salinity' -> {len(hits)} queries from the group's log")
    print(render_query_table(hits[:3]))
    session = max(report.sessions, key=len)
    print("\nSession graph (Figure 2):")
    print(render_session_graph(session, cqms.store))

    # 6. Assisted interaction: the Figure 3 panel for a partially typed query.
    print("\n== Assisted interaction ==")
    partial = "SELECT * FROM WaterSalinity S, "
    response = cqms.assist("magda", partial)
    print(render_assist_panel(partial, response))

    # 7. Administrative interaction: schema evolution and maintenance.
    print("\n== Administrative interaction ==")
    db.execute("ALTER TABLE WaterTemp RENAME COLUMN temp TO temp_c")
    maintenance = cqms.run_maintenance()
    print(
        f"after renaming WaterTemp.temp: {maintenance.num_repaired} repaired, "
        f"{maintenance.num_flagged} flagged"
    )
    print("repaired example:", cqms.store.get(maintenance.repaired[0]).describe(90))

    # 8. Observability: every statement above was traced and histogrammed.
    # The Workbench metrics panel renders the registry's latency deciles,
    # counters, and the slow-query ring; CQMS.metrics_text() is the same
    # registry in Prometheus text format for a real scraper, and
    # set_user_limits(user, QueryLimits(rate_limit_qps=..,
    # statement_timeout_seconds=..)) adds per-principal admission control.
    print("\n== Observability ==")
    bench = Workbench(cqms, user="nodira")
    panel = bench.metrics_panel().splitlines()
    print("\n".join(panel[:12]))
    print(f"... ({len(panel)} panel lines; see also cqms.metrics_text())")

    # 9. Durability: with a data_dir the query log survives restarts.  The
    # Query Storage writes every logged query through a write-ahead log
    # (group-commit batched by default) and recovers it on reopen.
    # (Execution knobs ride the same config: scan/filter/project pipelines
    # run through columnar batch kernels by default —
    # CQMSConfig(exec_columnar_kernels=False) restores the row-at-a-time
    # batched engine exactly, and exec_process_workers>1 lets big GROUP BY
    # scans fork partial-aggregation workers on multi-core hosts.)
    print("\n== Durable Query Storage ==")
    data_dir = tempfile.mkdtemp(prefix="cqms_quickstart_")
    try:
        db2 = build_database("limnology", scale=1)
        with CQMS(db2, config=CQMSConfig(data_dir=data_dir, wal_sync="batch")) as durable:
            durable.register_user("nodira", group="uw-db")
            durable.submit("nodira", "SELECT * FROM WaterTemp T WHERE T.temp < 18")
            durable.annotate("nodira", 1, "the cold-water baseline query")
            durable.checkpoint()  # snapshot + truncate the WAL
            print("  logged 1 query into", data_dir)
        # ... the process "restarts": reopening the same data_dir recovers it.
        db3 = build_database("limnology", scale=1)
        with CQMS(db3, config=CQMSConfig(data_dir=data_dir)) as reopened:
            reopened.register_user("nodira", group="uw-db")
            record = reopened.store.get(1)
            print(f"  recovered q{record.qid}: {record.text}")
            print(f"  with annotations: {record.annotations}")
    finally:
        shutil.rmtree(data_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
