#!/usr/bin/env python
"""An industrial log-analytics team: maintenance, access control, administration.

The paper's second motivating setting is industrial analysis of massive
service logs (clickstreams, search logs).  This example uses the web-analytics
workload and focuses on the administrative side of a CQMS:

* per-query visibility and sharing between analysts of different teams,
* what happens when the events schema evolves (columns renamed/dropped):
  Query Maintenance repairs what it can and flags the rest,
* data-distribution drift triggering a statistics refresh,
* the administrator dashboard and parameter tuning.

Run with:  python examples/log_analytics_team.py
"""

from repro import CQMS, SimulatedClock, build_database
from repro.workloads import QueryLogGenerator, WorkloadConfig
from repro.workloads.evolution import apply_scenario, evolution_scenario


def main() -> None:
    clock = SimulatedClock()
    db = build_database("web_analytics", scale=2, clock=clock)
    cqms = CQMS(db, clock=clock)
    admin = cqms.admin()

    # Analysts in two teams plus an administrator.
    cqms.register_user("ana", group="growth")
    cqms.register_user("ben", group="growth")
    cqms.register_user("chen", group="revenue")
    cqms.register_user("dba", group="platform", is_admin=True)

    # Replay a generated backlog of exploratory analytics queries.
    workload = QueryLogGenerator(
        WorkloadConfig(domain="web_analytics", num_users=6, num_groups=2,
                       num_sessions=80, seed=7)
    ).generate()
    cqms.replay_workload(workload)

    # A few hand-written queries with explicit visibility.
    cqms.submit("ana", "SELECT U.country, COUNT(*) FROM PageViews V, Users U "
                       "WHERE V.user_id = U.user_id GROUP BY U.country")
    cqms.annotate("ana", len(cqms.store), "weekly engagement-by-country report")
    cqms.submit("chen", "SELECT U.plan, SUM(O.amount) FROM Orders O, Users U "
                        "WHERE O.user_id = U.user_id GROUP BY U.plan",
                visibility="private")
    report_qid = len(cqms.store)
    cqms.run_miner()

    # Access control: ben (same team as ana) can find her report, chen's is private.
    print("ben searches for 'country':",
          [record.qid for record in cqms.search_keyword("ben", "country")])
    print("ben searches for 'plan'   :",
          [record.qid for record in cqms.search_keyword("ben", "plan")])
    admin.share_query("chen", report_qid, "ben")
    print("after chen shares the revenue report with ben:",
          [record.qid for record in cqms.search_keyword("ben", "plan")])

    # Schema evolution: the events pipeline renames and drops columns.
    print("\napplying schema-evolution scenario:")
    for step in evolution_scenario("web_analytics"):
        print("  ", step.ddl)
    apply_scenario(db, evolution_scenario("web_analytics"))
    maintenance = cqms.run_maintenance()
    print(f"maintenance: {maintenance.checked} checked, "
          f"{maintenance.num_repaired} repaired automatically, "
          f"{maintenance.num_flagged} flagged as broken")

    # Distribution drift: a backfill doubles order amounts.
    cqms.maintenance.snapshot_statistics()
    db.execute("UPDATE Orders SET amount = amount * 20")
    refresh = cqms.maintenance.refresh_statistics()
    print(f"statistics refresh after backfill: drifted tables = {refresh.drifted_tables}, "
          f"{len(refresh.refreshed_queries)} queries re-profiled")

    # Administrator dashboard and tuning.
    overview = admin.overview("dba")
    print(f"\nadmin overview: {overview.num_queries} queries from {overview.num_users} users, "
          f"{overview.num_invalid} invalid, {overview.num_annotated} annotated")
    admin.set_ranking_weight("dba", "popularity", 0.8)
    admin.set_parameter("dba", "knn_default_k", 15)
    print("tuned ranking.popularity=0.8 and knn_default_k=15")

    # Purge queries that stayed broken.
    cqms.config.drop_invalid_after_flags = 1
    purged = admin.purge_invalid("dba")
    print(f"purged {len(purged.dropped)} permanently broken queries")


if __name__ == "__main__":
    main()
