"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that ``pip install -e .`` works in fully
offline environments whose setuptools cannot build PEP 517 editable wheels
(legacy ``setup.py develop`` installs need this file).
"""

from setuptools import setup

setup()
