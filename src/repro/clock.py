"""A simulated clock.

All CQMS components take a ``clock`` callable so that experiments are
deterministic and so that the workload generator can replay multi-day query
logs in milliseconds.  The :class:`SimulatedClock` is that callable: it
returns the current simulated time in seconds and can be advanced manually.
"""

from __future__ import annotations


class SimulatedClock:
    """A manually advanced clock, usable wherever ``time.monotonic`` is expected."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move the clock forward; returns the new time."""
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        self._now += float(seconds)
        return self._now

    def set(self, timestamp: float) -> None:
        """Jump to an absolute time (must not move backwards)."""
        if timestamp < self._now:
            raise ValueError("cannot move the clock backwards")
        self._now = float(timestamp)
