"""Context-aware query completion (paper Section 2.3).

The completion engine suggests, while the user types:

* relation names for the FROM clause — *context-aware*: the suggestions are
  conditioned on the tables already present ("if the user has already included
  WaterSalinity, the system should suggest WaterTemp over CityLocations"),
* attribute names for SELECT / WHERE, conditioned on the chosen tables,
* predicates for the WHERE clause, taken from the most popular predicates that
  logged queries apply to the same tables,
* join conditions connecting a newly added table to the ones already there.

Context-awareness comes from association rules mined over the query log
(:mod:`repro.mining.association_rules`); the popularity-only baseline that the
paper's own example argues against is available as
:meth:`CompletionEngine.popular_tables` and is used as the C4 baseline.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.config import CQMSConfig
from repro.core.query_store import QueryStore
from repro.errors import ReproError
from repro.mining.association_rules import RuleIndex, mine_rules
from repro.sql.features import QueryFeatures, extract_features


@dataclass(frozen=True)
class CompletionSuggestion:
    """One completion suggestion shown in the client drop-down."""

    kind: str          # "table" | "attribute" | "predicate" | "join"
    text: str          # what would be inserted
    score: float       # confidence / popularity in [0, 1]
    source: str        # "rule" | "popularity" | "schema"

    def __str__(self) -> str:
        return f"{self.text}  [{self.kind}, {self.score:.2f}, {self.source}]"


class CompletionEngine:
    """Suggests completions for partially written queries."""

    def __init__(
        self,
        store: QueryStore,
        schema_columns: dict[str, set[str]] | None = None,
        config: CQMSConfig | None = None,
    ):
        self._store = store
        self._schema_columns = {
            table.lower(): {column.lower() for column in columns}
            for table, columns in (schema_columns or {}).items()
        }
        self._config = config or CQMSConfig()
        self._rule_index: RuleIndex | None = None
        self._table_counts: Counter[str] = Counter()
        self._attribute_counts: Counter[tuple[str, str]] = Counter()
        self._predicate_counts: Counter[tuple[str, str, str, str]] = Counter()
        self._join_counts: Counter[tuple[str, str, str, str]] = Counter()
        self._fitted_on = 0

    # -- model fitting -----------------------------------------------------------

    def refresh(self, rule_index: RuleIndex | None = None) -> None:
        """Re-fit popularity counters and (optionally reuse) association rules.

        The Query Miner calls this periodically; it can pass its own mined
        :class:`RuleIndex` so the rules are not recomputed twice.
        """
        records = [
            record
            for record in self._store.select_queries()
            if record.features is not None
        ]
        self._table_counts.clear()
        self._attribute_counts.clear()
        self._predicate_counts.clear()
        self._join_counts.clear()
        transactions: list[list[str]] = []
        for record in records:
            features = record.features
            self._table_counts.update(set(features.tables))
            self._attribute_counts.update(set(features.attributes))
            for predicate in features.predicates:
                self._predicate_counts[
                    (
                        predicate.relation,
                        predicate.attribute,
                        predicate.op,
                        _render_constant(predicate.constant),
                    )
                ] += 1
            for join in features.joins:
                normalized = join.normalized()
                self._join_counts[
                    (
                        normalized.left_relation,
                        normalized.left_attribute,
                        normalized.right_relation,
                        normalized.right_attribute,
                    )
                ] += 1
            transactions.append([f"table:{table}" for table in set(features.tables)])
        if rule_index is not None:
            self._rule_index = rule_index
        else:
            rules = mine_rules(
                transactions,
                min_support=self._config.rule_min_support,
                min_confidence=self._config.rule_min_confidence,
                max_size=3,
            )
            self._rule_index = RuleIndex(rules)
        self._fitted_on = len(records)

    def _ensure_fitted(self) -> None:
        if self._rule_index is None or self._fitted_on != len(self._store.select_queries()):
            self.refresh()

    # -- table completion -----------------------------------------------------------

    def suggest_tables(
        self, partial_sql: str, limit: int = 5, context_aware: bool = True
    ) -> list[CompletionSuggestion]:
        """Suggest relations to add to the FROM clause of ``partial_sql``.

        With ``context_aware=False`` the engine degrades to the global
        popularity baseline (the behaviour the paper's example criticises).
        """
        self._ensure_fitted()
        context_tables = self._context_tables(partial_sql)
        if not context_aware or not context_tables or self._rule_index is None:
            return self.popular_tables(limit=limit, exclude=context_tables)
        context_tokens = [f"table:{table}" for table in context_tables]
        rule_suggestions = self._rule_index.suggestions(context_tokens, limit=limit * 2)
        suggestions: list[CompletionSuggestion] = []
        seen: set[str] = set()
        for token, confidence in rule_suggestions:
            if not token.startswith("table:"):
                continue
            table = token[len("table:"):]
            if table in context_tables or table in seen:
                continue
            seen.add(table)
            suggestions.append(
                CompletionSuggestion(
                    kind="table", text=table, score=min(1.0, confidence), source="rule"
                )
            )
            if len(suggestions) >= limit:
                break
        if len(suggestions) < limit:
            for fallback in self.popular_tables(limit=limit, exclude=context_tables | seen):
                suggestions.append(fallback)
                if len(suggestions) >= limit:
                    break
        return suggestions

    def popular_tables(
        self, limit: int = 5, exclude: set[str] | None = None
    ) -> list[CompletionSuggestion]:
        """The globally most popular relations (context-free baseline)."""
        self._ensure_fitted()
        exclude = {table.lower() for table in (exclude or set())}
        total = sum(self._table_counts.values()) or 1
        suggestions = []
        for table, count in self._table_counts.most_common():
            if table in exclude:
                continue
            suggestions.append(
                CompletionSuggestion(
                    kind="table", text=table, score=count / total, source="popularity"
                )
            )
            if len(suggestions) >= limit:
                break
        return suggestions

    # -- attribute / predicate / join completion ----------------------------------------

    def suggest_attributes(self, partial_sql: str, limit: int = 8) -> list[CompletionSuggestion]:
        """Suggest attributes of the tables already present in the query."""
        self._ensure_fitted()
        context_tables = self._context_tables(partial_sql)
        suggestions: list[CompletionSuggestion] = []
        if not context_tables:
            return suggestions
        total = sum(self._attribute_counts.values()) or 1
        for (attribute, relation), count in self._attribute_counts.most_common():
            if relation not in context_tables:
                continue
            suggestions.append(
                CompletionSuggestion(
                    kind="attribute",
                    text=f"{relation}.{attribute}",
                    score=count / total,
                    source="popularity",
                )
            )
            if len(suggestions) >= limit:
                return suggestions
        # Fall back to schema columns never seen in the log.
        seen = {suggestion.text for suggestion in suggestions}
        for table in sorted(context_tables):
            for column in sorted(self._schema_columns.get(table, set())):
                text = f"{table}.{column}"
                if text in seen:
                    continue
                suggestions.append(
                    CompletionSuggestion(kind="attribute", text=text, score=0.0, source="schema")
                )
                if len(suggestions) >= limit:
                    return suggestions
        return suggestions

    def suggest_predicates(self, partial_sql: str, limit: int = 5) -> list[CompletionSuggestion]:
        """Suggest popular WHERE predicates over the tables in the query."""
        self._ensure_fitted()
        context_tables = self._context_tables(partial_sql)
        if not context_tables:
            return []
        total = sum(self._predicate_counts.values()) or 1
        suggestions = []
        for (relation, attribute, op, constant), count in self._predicate_counts.most_common():
            if relation not in context_tables:
                continue
            text = f"{relation}.{attribute} {op} {constant}" if constant else f"{relation}.{attribute} {op}"
            suggestions.append(
                CompletionSuggestion(
                    kind="predicate", text=text, score=count / total, source="popularity"
                )
            )
            if len(suggestions) >= limit:
                break
        return suggestions

    def suggest_joins(self, partial_sql: str, limit: int = 5) -> list[CompletionSuggestion]:
        """Suggest join conditions connecting the tables in the query."""
        self._ensure_fitted()
        context_tables = self._context_tables(partial_sql)
        if len(context_tables) < 2:
            return []
        total = sum(self._join_counts.values()) or 1
        suggestions = []
        for (left_rel, left_attr, right_rel, right_attr), count in self._join_counts.most_common():
            if left_rel in context_tables and right_rel in context_tables:
                suggestions.append(
                    CompletionSuggestion(
                        kind="join",
                        text=f"{left_rel}.{left_attr} = {right_rel}.{right_attr}",
                        score=count / total,
                        source="popularity",
                    )
                )
                if len(suggestions) >= limit:
                    break
        return suggestions

    def suggest(self, partial_sql: str, limit: int = 5) -> dict[str, list[CompletionSuggestion]]:
        """All suggestion kinds at once (what the Figure 3 panel displays)."""
        return {
            "tables": self.suggest_tables(partial_sql, limit=limit),
            "attributes": self.suggest_attributes(partial_sql, limit=limit),
            "predicates": self.suggest_predicates(partial_sql, limit=limit),
            "joins": self.suggest_joins(partial_sql, limit=limit),
        }

    # -- helpers ---------------------------------------------------------------------------

    def _context_tables(self, partial_sql: str) -> set[str]:
        features = _partial_features(partial_sql)
        if features is None:
            return set()
        return set(features.tables)


def _partial_features(partial_sql: str) -> QueryFeatures | None:
    """Feature extraction tolerant of partially written queries."""
    candidates = [partial_sql]
    stripped = partial_sql.rstrip()
    lowered = stripped.lower()
    for suffix in ("where", "and", "or", ",", "on", "=", "<", ">", "in", "select"):
        if lowered.endswith(suffix):
            candidates.append(stripped[: -len(suffix)])
    from_index = lowered.find("from")
    if from_index >= 0 and stripped[:from_index].strip().lower() == "select":
        candidates.append("SELECT * " + stripped[from_index:])
        candidates.append("SELECT * " + stripped[from_index:].rstrip(", "))
    for candidate in candidates:
        try:
            return extract_features(candidate)
        except ReproError:
            continue
    # Last resort: find table names lexically after FROM.
    if from_index >= 0:
        tail = stripped[from_index + 4 :]
        for terminator in ("where", "group", "order", "limit"):
            cut = tail.lower().find(terminator)
            if cut >= 0:
                tail = tail[:cut]
        tables = []
        for part in tail.split(","):
            tokens = part.strip().split()
            if tokens:
                tables.append(tokens[0].lower())
        if tables:
            features = QueryFeatures()
            features.tables = tables
            features.num_tables = len(tables)
            return features
    return None


def _render_constant(constant: object) -> str:
    if constant is None:
        return ""
    if isinstance(constant, str):
        return f"'{constant}'"
    if isinstance(constant, (tuple, list)):
        return "(" + ", ".join(_render_constant(item) for item in constant) + ")"
    return str(constant)
