"""The CQMS facade: the whole Figure 4 architecture behind one object.

``CQMS`` wires together the DBMS, the Query Storage, and the four server
components (Query Profiler, Meta-Query Executor, Query Miner, Query
Maintenance), and exposes one method per client interaction mode:

* **Traditional** — :meth:`CQMS.submit` forwards SQL through the profiler,
  :meth:`CQMS.annotate` attaches documentation,
* **Search & Browse** — :meth:`CQMS.search_keyword`, :meth:`CQMS.search_features`,
  :meth:`CQMS.search_sql`, :meth:`CQMS.search_parse_tree`, :meth:`CQMS.search_by_data`,
  :meth:`CQMS.similar_queries`, :meth:`CQMS.browser`,
* **Assisted** — :meth:`CQMS.assist` returns completions, corrections, and
  recommendations for a partially written query (the Figure 3 panel),
* **Administrative** — :meth:`CQMS.admin`, :meth:`CQMS.run_miner`,
  :meth:`CQMS.run_maintenance`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clock import SimulatedClock
from repro.core.access_control import AccessControl, Principal, Visibility
from repro.core.admin import Administrator
from repro.core.browse import QueryBrowser
from repro.core.completion import CompletionEngine, CompletionSuggestion
from repro.core.config import CQMSConfig
from repro.core.correction import Correction, CorrectionEngine
from repro.core.maintenance import MaintenanceReport, QueryMaintenance
from repro.core.meta_query import DataCondition, FeatureCondition, MetaQueryExecutor
from repro.core.miner import MiningReport, QueryMiner
from repro.core.profiler import ProfiledExecution, ProfilingMode, QueryProfiler
from repro.core.query_store import QueryStore
from repro.core.ranking import RankingFunction, RankingWeights
from repro.core.recommender import QueryRecommender, Recommendation
from repro.core.records import LoggedQuery
from repro.core.tutorial import TutorialGenerator, TutorialSection
from repro.errors import ReproError
from repro.obs import AdmissionController, EngineTelemetry, MetricsRegistry, QueryLimits
from repro.sql.parse_tree import TreePattern
from repro.storage.database import Database


@dataclass
class AssistResponse:
    """Everything the assisted-interaction client displays (Figure 3)."""

    completions: dict[str, list[CompletionSuggestion]] = field(default_factory=dict)
    corrections: list[Correction] = field(default_factory=list)
    similar_queries: list[Recommendation] = field(default_factory=list)

    @property
    def has_content(self) -> bool:
        return bool(
            any(self.completions.values()) or self.corrections or self.similar_queries
        )


class CQMS:
    """A Collaborative Query Management System over a DBMS."""

    def __init__(
        self,
        database: Database,
        config: CQMSConfig | None = None,
        clock: SimulatedClock | None = None,
    ):
        self.config = config or CQMSConfig()
        self.config.validate()
        self.clock = clock or SimulatedClock()
        self.database = database
        self.store = QueryStore(
            clock=self.clock,
            plan_cache_size=self.config.plan_cache_size,
            exec_settings=self.config.exec_settings(),
            data_dir=self.config.data_dir,
            wal_sync=self.config.wal_sync,
            checkpoint_interval=self.config.checkpoint_interval,
            schema_columns=database.schema_columns(),
        )
        self.access_control = AccessControl(
            default_visibility=Visibility.parse(self.config.default_visibility)
        )
        # -- observability + admission control ------------------------------
        # One shared registry; the two engines are told apart by the
        # ``engine`` label.  The admission controller's token buckets refill
        # from the simulated clock, so rate-limit tests are deterministic.
        self.metrics: MetricsRegistry | None = None
        self.telemetry: EngineTelemetry | None = None
        self.store_telemetry: EngineTelemetry | None = None
        self.admission: AdmissionController | None = None
        if self.config.telemetry_enabled:
            self.metrics = MetricsRegistry(clock=self.clock)
            self.telemetry = EngineTelemetry(
                registry=self.metrics,
                engine="database",
                clock=self.clock,
                slow_query_threshold_seconds=self.config.slow_query_threshold_seconds,
                slow_query_log_size=self.config.slow_query_log_size,
                trace_operators=self.config.trace_operators,
            )
            self.store_telemetry = EngineTelemetry(
                registry=self.metrics,
                engine="query_storage",
                clock=self.clock,
                slow_query_threshold_seconds=self.config.slow_query_threshold_seconds,
                slow_query_log_size=self.config.slow_query_log_size,
                trace_operators=self.config.trace_operators,
            )
            database.attach_telemetry(self.telemetry)
            self.store.attach_telemetry(self.store_telemetry)
            self.admission = AdmissionController(
                self.metrics,
                clock=self.clock,
                defaults=QueryLimits(
                    rate_limit_qps=self.config.rate_limit_qps,
                    rate_limit_burst=self.config.rate_limit_burst,
                    statement_timeout_seconds=self.config.statement_timeout_seconds,
                ),
            )
        ranking = RankingFunction(RankingWeights.from_config(self.config.ranking))
        self.ranking = ranking
        self.profiler = QueryProfiler(
            database, self.store, self.config, clock=self.clock, registry=self.metrics
        )
        self.meta_query = MetaQueryExecutor(
            self.store, self.access_control, self.config, ranking=ranking, clock=self.clock
        )
        self.completion = CompletionEngine(
            self.store, database.schema_columns(), self.config
        )
        self.correction = CorrectionEngine(self.store, database.schema_columns())
        self.recommender = QueryRecommender(
            self.store,
            self.meta_query,
            self.access_control,
            self.config,
            ranking=ranking,
            clock=self.clock,
        )
        self.miner = QueryMiner(self.store, self.config, database.schema_columns())
        self.maintenance = QueryMaintenance(database, self.store, self.config)
        self._browser = QueryBrowser(
            self.store, self.access_control, ranking=ranking, clock=self.clock
        )
        self._admin = Administrator(
            self.store, self.access_control, self.config, self.miner, self.maintenance
        )
        self._tutorial = TutorialGenerator(self.store, database.schema_columns())

    # -- user management ------------------------------------------------------------

    def register_user(self, name: str, group: str, is_admin: bool = False) -> Principal:
        """Register a CQMS user belonging to a collaboration group."""
        return self.access_control.register(name, group, is_admin=is_admin)

    # -- Traditional Interaction Mode --------------------------------------------------

    def submit(
        self,
        user: str,
        sql: str,
        visibility: str | None = None,
        timestamp: float | None = None,
    ) -> ProfiledExecution:
        """Submit a standard SQL query; it is executed and logged.

        Submission first passes admission control: a rate-limited principal
        gets a typed :class:`~repro.errors.RateLimitedError` *before* any
        parsing, execution, or logging, and the admitted statement carries
        its effective timeout budget (config default overridden by the
        principal's :class:`~repro.obs.admission.QueryLimits`).
        """
        principal = self.access_control.principal(user)
        timeout_seconds = None
        if self.admission is not None:
            budget = self.admission.admit(
                principal.name, self.access_control.limits_for(principal.name)
            )
            timeout_seconds = budget.timeout_seconds
        return self.profiler.profile(
            user=principal.name,
            group=principal.group,
            sql=sql,
            visibility=visibility,
            timestamp=timestamp,
            timeout_seconds=timeout_seconds,
        )

    def explain(self, user: str, sql: str, analyze: bool = False):
        """EXPLAIN a user query against the DBMS.

        Returns the engine's plan tree (access paths, join order, estimates);
        with ``analyze=True`` the query is executed and every node carries its
        actual rows, batches, and wall time (SELECT only).
        """
        self.access_control.principal(user)
        return self.database.explain(sql, analyze=analyze)

    def explain_meta(self, user: str, meta_sql: str, analyze: bool = False):
        """EXPLAIN (optionally ANALYZE) a SQL meta-query over the Query
        Storage feature relations."""
        self.access_control.principal(user)
        return self.meta_query.explain_meta_sql(meta_sql, analyze=analyze)

    # -- observability ----------------------------------------------------------

    def set_user_limits(self, user: str, limits: QueryLimits | None) -> None:
        """Set (or clear) a principal's admission limits.

        Unset fields inherit the config-wide defaults
        (``rate_limit_qps`` / ``rate_limit_burst`` /
        ``statement_timeout_seconds``).
        """
        self.access_control.set_limits(user, limits)

    def metrics_text(self) -> str:
        """Both engines' metrics in Prometheus text exposition format.

        Scrape-time mirrors (plan cache, WAL, buffer pool) are refreshed
        first, so the rendering is a consistent point-in-time view.
        """
        if self.metrics is None:
            raise ReproError("telemetry is disabled (config.telemetry_enabled)")
        self.telemetry.sync_engine(self.database)
        self.store_telemetry.sync_engine(self.store.meta_database)
        return self.metrics.render()

    def slow_queries(self) -> list:
        """Slow-query traces of both engines, newest last per engine."""
        entries: list = []
        for telemetry in (self.telemetry, self.store_telemetry):
            if telemetry is not None:
                entries.extend(telemetry.slow_queries.entries())
        return entries

    def plan_cache_stats(self) -> dict[str, object]:
        """Plan-cache counters of both engines the CQMS runs on.

        ``"database"`` is the user DBMS, ``"query_storage"`` the meta-database
        holding the feature relations (where the templated Figure 1
        meta-queries make the hit rate interesting).
        """
        return {
            "database": self.database.plan_cache_stats(),
            "query_storage": self.store.plan_cache_stats(),
        }

    # -- durability ---------------------------------------------------------------

    def checkpoint(self) -> int:
        """Snapshot the Query Storage meta-database and truncate its WAL.

        Requires ``config.data_dir`` (a durable Query Storage); raises
        :class:`~repro.errors.DurabilityError` otherwise.
        """
        return self.store.checkpoint()

    def close(self) -> None:
        """Flush and release the durable Query Storage (idempotent).

        The user DBMS is owned by the caller and is *not* closed here — but
        ``CQMS`` works as a context manager for the common script shape
        ``with CQMS(db, config=...) as cqms: ...``.
        """
        self.store.close()

    def __enter__(self) -> "CQMS":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def durability_stats(self) -> dict[str, object]:
        """WAL counters of both engines (None marks an in-memory engine).

        ``"database"`` is the user DBMS, ``"query_storage"`` the meta-database
        holding the feature relations — the one ``config.data_dir`` makes
        durable, where logged-query volume makes the group-commit batch sizes
        interesting.
        """
        return {
            "database": self.database.wal_stats(),
            "query_storage": self.store.wal_stats(),
            "database buffer pool": self.database.buffer_stats(),
            "query_storage buffer pool": self.store.buffer_stats(),
        }

    # -- static analysis of the query log ---------------------------------------------

    def lint_log(self, mark: bool = True) -> dict[int, list]:
        """Lint every logged query against the live user-database schema.

        Delegates to :meth:`~repro.core.query_store.QueryStore.lint_log` with
        the user DBMS's catalog (full types and indexes, so the type-mismatch
        and non-sargable rules participate).  With ``mark=True``, hard errors
        auto-populate ``Queries.invalidReason``.
        """
        return self.store.lint_log(
            catalog=self.database.catalog,
            table_provider=self.database,
            mark=mark,
        )

    def query_health(self) -> dict[str, dict[str, object]]:
        """Per-user lint summary of the query log (the Workbench panel data).

        For each user: their query count, lint finding counts by severity,
        how many of their queries are currently flagged invalid, and up to
        three example findings (worst first).  Linting here never marks —
        the panel observes; :meth:`lint_log` enforces.
        """
        from repro.analysis.framework import Severity

        findings = self.lint_log(mark=False)
        health: dict[str, dict[str, object]] = {}
        for record in self.store.all_queries():
            entry = health.setdefault(
                record.user,
                {
                    "queries": 0,
                    "flagged_invalid": 0,
                    "errors": 0,
                    "warnings": 0,
                    "info": 0,
                    "examples": [],
                },
            )
            entry["queries"] += 1
            if record.flagged_invalid:
                entry["flagged_invalid"] += 1
            for diagnostic in findings.get(record.qid, ()):
                if diagnostic.severity is Severity.ERROR:
                    entry["errors"] += 1
                elif diagnostic.severity is Severity.WARNING:
                    entry["warnings"] += 1
                else:
                    entry["info"] += 1
        for entry_user, entry in health.items():
            examples = [
                diagnostic
                for record in self.store.all_queries()
                if record.user == entry_user
                for diagnostic in findings.get(record.qid, ())
            ]
            examples.sort(key=lambda d: -int(d.severity))
            entry["examples"] = [d.format() for d in examples[:3]]
        return health

    def annotate(self, user: str, qid: int, body: str) -> None:
        """Attach an annotation to a query the user can see."""
        principal = self.access_control.principal(user)
        record = self.store.get(qid)
        if not self.access_control.can_see(principal, record):
            # Users may only annotate queries they are allowed to see.
            self.access_control.require_owner_or_admin(principal, record)
        self.store.add_annotation(qid, author=principal.name, body=body, timestamp=self.clock.now)

    # -- Search & Browse Interaction Mode ------------------------------------------------

    def search_keyword(self, user: str, keywords, limit: int | None = None) -> list[LoggedQuery]:
        return self.meta_query.keyword_search(user, keywords, limit=limit)

    def search_substring(self, user: str, needle: str, limit: int | None = None) -> list[LoggedQuery]:
        return self.meta_query.substring_search(user, needle, limit=limit)

    def search_features(
        self, user: str, condition: FeatureCondition, limit: int | None = None
    ) -> list[LoggedQuery]:
        return self.meta_query.by_feature(user, condition, limit=limit)

    def search_sql(self, user: str, meta_sql: str) -> list[LoggedQuery]:
        return self.meta_query.by_feature_sql(user, meta_sql)

    def search_like_partial(self, user: str, partial_sql: str) -> list[LoggedQuery]:
        """The Figure 1 flow: auto-generate and run the feature meta-query."""
        return self.meta_query.find_queries_like_partial(user, partial_sql)

    def search_parse_tree(
        self, user: str, pattern: TreePattern, limit: int | None = None
    ) -> list[LoggedQuery]:
        return self.meta_query.by_parse_tree(user, pattern, limit=limit)

    def search_by_data(
        self, user: str, condition: DataCondition, limit: int | None = None
    ) -> list[LoggedQuery]:
        return self.meta_query.by_data(user, condition, limit=limit)

    def similar_queries(self, user: str, sql: str, k: int | None = None) -> list[LoggedQuery]:
        return self.meta_query.knn(user, sql, k=k)

    def browser(self) -> QueryBrowser:
        """The Search & Browse view layer."""
        return self._browser

    # -- Assisted Interaction Mode -----------------------------------------------------------

    def assist(self, user: str, partial_sql: str, k: int = 3) -> AssistResponse:
        """Everything the assisted client shows while the user types (Figure 3)."""
        response = AssistResponse()
        response.completions = self.completion.suggest(partial_sql, limit=k)
        response.corrections = self.correction.correct_names(partial_sql)
        try:
            response.similar_queries = self.recommender.recommend(user, partial_sql, k=k)
        except ReproError:
            response.similar_queries = []
        return response

    def recommend(self, user: str, sql: str, k: int = 5) -> list[Recommendation]:
        """Full query recommendations for the user's current query."""
        return self.recommender.recommend(user, sql, k=k)

    def correct(self, user: str, sql: str) -> list[Correction]:
        """Name corrections plus, if the query ran empty, predicate corrections."""
        corrections = self.correction.correct_names(sql)
        try:
            result = self.database.execute(sql)
            if result.stats.statement_kind == "select" and not result.rows:
                corrections.extend(self.correction.correct_empty_result(sql))
        except ReproError:
            pass
        return corrections

    def tutorial(self, max_relations: int | None = None) -> list[TutorialSection]:
        """Generate the dataset tutorial from the current query log."""
        report = self.miner.last_report
        return self._tutorial.generate(
            max_relations=max_relations,
            corrections=self.correction.correction_log,
            edit_patterns=report.edit_patterns if report is not None else None,
        )

    # -- Administrative Interaction Mode ----------------------------------------------------------

    def admin(self) -> Administrator:
        return self._admin

    def run_miner(self) -> MiningReport:
        """Run the background Query Miner once (normally periodic)."""
        report = self.miner.run()
        # Refresh the completion engine with the freshly mined rules.
        self.completion.refresh(rule_index=report.rule_index)
        return report

    def run_maintenance(self) -> MaintenanceReport:
        """Run the background Query Maintenance once (normally periodic)."""
        report = self.maintenance.check_schema_validity()
        # Schema may have changed: propagate it to the schema-aware helpers.
        self.correction.update_schema(self.database.schema_columns())
        return report

    # -- convenience -------------------------------------------------------------------------------

    def replay_workload(self, events, run_miner_every: int | None = None) -> int:
        """Replay a generated workload (``WorkloadQuery`` events) into the CQMS.

        Users are auto-registered, the simulated clock follows the event
        timestamps, annotations attached to events are stored, and the miner
        can be run periodically.  Returns the number of queries submitted.
        """
        submitted = 0
        for event in events:
            if not self.access_control.has_principal(event.user):
                self.register_user(event.user, event.group)
            if event.timestamp > self.clock.now:
                self.clock.set(event.timestamp)
            execution = self.submit(event.user, event.sql, timestamp=event.timestamp)
            submitted += 1
            if event.annotation and execution.record is not None:
                self.annotate(event.user, execution.record.qid, event.annotation)
            if run_miner_every and submitted % run_miner_every == 0:
                self.run_miner()
        return submitted
