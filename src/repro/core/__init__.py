"""The Collaborative Query Management System (CQMS) engine.

This package implements the paper's contribution: the CQMS server of Figure 4
with its four components (Query Profiler, Meta-Query Executor, Query Miner,
Query Maintenance) over a Query Storage, plus the assisted-interaction
services (completion, correction, recommendation, ranking), session
management, annotations, access control, tutorial generation, and the
administrative API.

The main entry point is :class:`repro.core.cqms.CQMS`.
"""

from repro.core.config import CQMSConfig
from repro.core.records import LoggedQuery, OutputSummary, RuntimeStats
from repro.core.query_store import QueryStore
from repro.core.access_control import AccessControl, Principal, Visibility
from repro.core.profiler import QueryProfiler, ProfilingMode
from repro.core.sessions import QuerySession, SessionDetector, SessionEdge
from repro.core.meta_query import FeatureCondition, MetaQueryExecutor
from repro.core.ranking import RankingFunction, RankingWeights
from repro.core.completion import CompletionEngine, CompletionSuggestion
from repro.core.correction import CorrectionEngine, Correction
from repro.core.recommender import QueryRecommender, Recommendation
from repro.core.miner import QueryMiner, MiningReport
from repro.core.maintenance import MaintenanceReport, QueryMaintenance
from repro.core.tutorial import TutorialGenerator, TutorialSection
from repro.core.browse import QueryBrowser, SessionSummary
from repro.core.admin import Administrator
from repro.core.cqms import CQMS

__all__ = [
    "CQMS",
    "CQMSConfig",
    "LoggedQuery",
    "OutputSummary",
    "RuntimeStats",
    "QueryStore",
    "AccessControl",
    "Principal",
    "Visibility",
    "QueryProfiler",
    "ProfilingMode",
    "QuerySession",
    "SessionDetector",
    "SessionEdge",
    "FeatureCondition",
    "MetaQueryExecutor",
    "RankingFunction",
    "RankingWeights",
    "CompletionEngine",
    "CompletionSuggestion",
    "CorrectionEngine",
    "Correction",
    "QueryRecommender",
    "Recommendation",
    "QueryMiner",
    "MiningReport",
    "QueryMaintenance",
    "MaintenanceReport",
    "TutorialGenerator",
    "TutorialSection",
    "QueryBrowser",
    "SessionSummary",
    "Administrator",
]
