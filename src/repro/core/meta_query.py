"""The Meta-Query Executor (paper Sections 2.2, 3, and 4.2).

A meta-query is "a query that searches for queries".  The executor supports
the paper's four classes of meta-queries:

* **keyword / substring** search over query text and annotations — the
  baseline capability of existing systems,
* **query-by-feature** — conditions over the shredded feature relations, both
  programmatically (:class:`FeatureCondition`) and as raw SQL over the Query
  Storage (Figure 1), including automatic generation of the SQL meta-query
  from a partially written user query,
* **query-by-parse-tree** — structural conditions via
  :class:`~repro.sql.parse_tree.TreePattern`,
* **query-by-data** — conditions on query *output* given positive and
  negative example values/tuples,
* **kNN** — the k most similar logged queries to a probe query.

Every search is filtered through :class:`~repro.core.access_control.AccessControl`
so users only ever see queries they are allowed to see.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.access_control import AccessControl, Principal
from repro.core.config import CQMSConfig
from repro.core.query_store import QueryStore
from repro.core.ranking import RankingContext, RankingFunction, RankedQuery
from repro.core.records import LoggedQuery
from repro.errors import MetaQueryError, ReproError
from repro.mining.knn import KNNIndex
from repro.mining.similarity import weighted_feature_similarity
from repro.sql.features import extract_features
from repro.sql.parse_tree import TreePattern, match_pattern, to_parse_tree
from repro.storage.database import QueryResult


@dataclass
class FeatureCondition:
    """A programmatic query-by-feature specification.

    All provided conditions must hold (conjunctive semantics).  ``tables_all``
    requires every listed relation to be a data source of the query;
    ``attributes`` requires each ``(attribute, relation)`` pair to be used;
    ``predicates_on`` requires a selection predicate on each listed
    ``(attribute, relation)`` (with an optional operator).
    """

    tables_all: list[str] = field(default_factory=list)
    tables_any: list[str] = field(default_factory=list)
    attributes: list[tuple[str, str]] = field(default_factory=list)
    predicates_on: list[tuple[str, str, str | None]] = field(default_factory=list)
    author: str | None = None
    group: str | None = None
    statement_kind: str | None = None
    max_runtime_seconds: float | None = None
    min_cardinality: int | None = None
    max_cardinality: int | None = None
    text_contains: str | None = None
    only_valid: bool = False

    def matches(self, record: LoggedQuery) -> bool:
        """Whether a logged query satisfies this condition."""
        if self.only_valid and record.flagged_invalid:
            return False
        if self.author is not None and record.user != self.author:
            return False
        if self.group is not None and record.group != self.group:
            return False
        if self.statement_kind is not None and record.statement_kind != self.statement_kind:
            return False
        if self.text_contains is not None and self.text_contains.lower() not in record.text.lower():
            return False
        if self.max_runtime_seconds is not None:
            if record.runtime.elapsed_seconds > self.max_runtime_seconds:
                return False
        if self.min_cardinality is not None:
            if record.runtime.result_cardinality < self.min_cardinality:
                return False
        if self.max_cardinality is not None:
            if record.runtime.result_cardinality > self.max_cardinality:
                return False
        features = record.features
        if self.tables_all or self.tables_any or self.attributes or self.predicates_on:
            if features is None:
                return False
            tables = features.table_set()
            if any(table.lower() not in tables for table in self.tables_all):
                return False
            if self.tables_any and not any(
                table.lower() in tables for table in self.tables_any
            ):
                return False
            attributes = features.attribute_set()
            for attribute, relation in self.attributes:
                if (attribute.lower(), relation.lower()) not in attributes:
                    return False
            predicate_signatures = features.predicate_signatures()
            for attribute, relation, op in self.predicates_on:
                found = any(
                    signature[0] == attribute.lower()
                    and signature[1] == relation.lower()
                    and (op is None or signature[2] == op)
                    for signature in predicate_signatures
                )
                if not found:
                    return False
        return True


@dataclass
class DataCondition:
    """A query-by-data specification (paper Section 2.2).

    ``include_values`` must all appear somewhere in the query's stored output
    summary; ``exclude_values`` must not appear.  ``include_rows`` /
    ``exclude_rows`` are full-tuple variants of the same conditions.
    """

    include_values: list[object] = field(default_factory=list)
    exclude_values: list[object] = field(default_factory=list)
    include_rows: list[tuple] = field(default_factory=list)
    exclude_rows: list[tuple] = field(default_factory=list)

    def matches(self, record: LoggedQuery) -> bool:
        output = record.output
        if output is None or not output.rows:
            return False
        for value in self.include_values:
            if not output.contains_value(value):
                return False
        for value in self.exclude_values:
            if output.contains_value(value):
                return False
        for row in self.include_rows:
            if not output.contains(tuple(row)):
                return False
        for row in self.exclude_rows:
            if output.contains(tuple(row)):
                return False
        return True


class MetaQueryExecutor:
    """Answers meta-queries over the Query Storage with access control."""

    def __init__(
        self,
        store: QueryStore,
        access_control: AccessControl,
        config: CQMSConfig | None = None,
        ranking: RankingFunction | None = None,
        clock=None,
    ):
        self._store = store
        self._access = access_control
        self._config = config or CQMSConfig()
        self._ranking = ranking or RankingFunction()
        self._clock = clock if clock is not None else (lambda: 0.0)
        self._knn_index: KNNIndex[int] = KNNIndex()
        self._knn_indexed: set[int] = set()

    # -- keyword / substring search ---------------------------------------------

    def keyword_search(
        self, principal: Principal | str, keywords: list[str] | str, limit: int | None = None
    ) -> list[LoggedQuery]:
        """Queries whose text or annotations contain every keyword."""
        if isinstance(keywords, str):
            keywords = keywords.split()
        lowered = [keyword.lower() for keyword in keywords if keyword]
        if not lowered:
            raise MetaQueryError("keyword search requires at least one keyword")
        matches = []
        for record in self._visible(principal):
            haystack = record.text.lower() + " " + " ".join(record.annotations).lower()
            if all(keyword in haystack for keyword in lowered):
                matches.append(record)
        return matches[:limit] if limit is not None else matches

    def substring_search(
        self, principal: Principal | str, needle: str, limit: int | None = None
    ) -> list[LoggedQuery]:
        """Queries whose raw text contains ``needle`` (case-insensitive)."""
        if not needle:
            raise MetaQueryError("substring search requires a non-empty needle")
        lowered = needle.lower()
        matches = [
            record for record in self._visible(principal) if lowered in record.text.lower()
        ]
        return matches[:limit] if limit is not None else matches

    # -- query-by-feature ----------------------------------------------------------

    def by_feature(
        self,
        principal: Principal | str,
        condition: FeatureCondition,
        limit: int | None = None,
    ) -> list[LoggedQuery]:
        """Programmatic query-by-feature over the Query Storage."""
        matches = [
            record for record in self._visible(principal) if condition.matches(record)
        ]
        return matches[:limit] if limit is not None else matches

    def by_feature_sql(self, principal: Principal | str, sql: str) -> list[LoggedQuery]:
        """Run a raw SQL meta-query (Figure 1 style) and resolve its qids.

        The SQL runs over the feature relations; its result must include a
        ``qid`` column.  Access control is applied to the resolved records.
        """
        result = self._store.execute_meta_sql(sql)
        if "qid" not in [column.lower() for column in result.columns]:
            raise MetaQueryError("a SQL meta-query must return a qid column")
        qids = []
        seen = set()
        for value in result.column("qid"):
            if value is None or value in seen:
                continue
            seen.add(value)
            qids.append(int(value))
        records = [self._store.get(qid) for qid in qids if qid in self._store]
        return self._access.visible_queries(self._principal(principal), records)

    def execute_meta_sql(self, sql: str) -> QueryResult:
        """Run a raw SQL meta-query and return its relational result unfiltered.

        Intended for administrators and for the benchmark harness; ordinary
        user flows go through :meth:`by_feature_sql`.
        """
        return self._store.execute_meta_sql(sql)

    def explain_meta_sql(self, sql: str, analyze: bool = False):
        """EXPLAIN (optionally ANALYZE) a SQL meta-query.

        Surfaces the engine's plan tree (access paths, join order, cost
        estimates) for meta-queries over the feature relations — e.g. a
        ``Queries ⋈ Attributes`` meta-query shows ``IndexScan`` probes of the
        ``qid`` indexes instead of full scans.  ``analyze=True`` executes the
        meta-query and annotates each node with actual rows/batches/time.
        """
        return self._store.explain_meta_sql(sql, analyze=analyze)

    def generate_feature_sql(self, partial_sql: str) -> str:
        """Generate the Figure 1 SQL meta-query from a partially written query.

        The paper proposes that "the CQMS could automatically generate these
        statements from partially written queries": the tables mentioned in
        the partial query's FROM clause become ``DataSources`` conditions and
        the referenced attributes become ``Attributes`` conditions.
        """
        features = _features_of_partial(partial_sql)
        if features is None or not features.tables:
            raise MetaQueryError(
                "cannot generate a meta-query: the partial query references no tables"
            )
        from_parts = ["Queries Q"]
        where_parts: list[str] = []
        for index, table in enumerate(sorted(features.tables), start=1):
            alias = f"D{index}"
            from_parts.append(f"DataSources {alias}")
            where_parts.append(f"Q.qid = {alias}.qid")
            where_parts.append(f"{alias}.relName = '{table}'")
        known_attributes = [
            (attribute, relation)
            for attribute, relation in features.attributes
            if relation != "?"
        ]
        for index, (attribute, relation) in enumerate(sorted(known_attributes), start=1):
            alias = f"A{index}"
            from_parts.append(f"Attributes {alias}")
            where_parts.append(f"Q.qid = {alias}.qid")
            where_parts.append(f"{alias}.attrName = '{attribute}'")
            where_parts.append(f"{alias}.relName = '{relation}'")
        sql = "SELECT DISTINCT Q.qid, Q.qText FROM " + ", ".join(from_parts)
        if where_parts:
            sql += " WHERE " + " AND ".join(where_parts)
        return sql

    def find_queries_like_partial(
        self, principal: Principal | str, partial_sql: str
    ) -> list[LoggedQuery]:
        """End-to-end Figure 1 flow: partial query → meta-query → results."""
        sql = self.generate_feature_sql(partial_sql)
        return self.by_feature_sql(principal, sql)

    # -- query-by-parse-tree -----------------------------------------------------------

    def by_parse_tree(
        self,
        principal: Principal | str,
        pattern: TreePattern,
        limit: int | None = None,
    ) -> list[LoggedQuery]:
        """Queries whose parse tree contains the structural pattern."""
        matches = []
        for record in self._visible(principal):
            if not record.is_select:
                continue
            try:
                tree = to_parse_tree(record.text)
            except ReproError:
                continue
            if match_pattern(tree, pattern):
                matches.append(record)
                if limit is not None and len(matches) >= limit:
                    break
        return matches

    # -- query-by-data -------------------------------------------------------------------

    def by_data(
        self,
        principal: Principal | str,
        condition: DataCondition,
        limit: int | None = None,
    ) -> list[LoggedQuery]:
        """Queries whose stored output summary satisfies the data condition."""
        matches = [
            record
            for record in self._visible(principal)
            if record.is_select and condition.matches(record)
        ]
        return matches[:limit] if limit is not None else matches

    # -- kNN --------------------------------------------------------------------------------

    def knn_candidates(
        self,
        principal: Principal | str,
        probe,
        k: int | None = None,
        exclude_qids: set[int] | None = None,
    ) -> list[tuple[LoggedQuery, float]]:
        """The k most similar visible queries with their similarity scores.

        This is the raw kNN primitive; :meth:`knn` and the recommender apply
        their own ranking functions on top of it.
        """
        k = k or self._config.knn_default_k
        probe_features = _probe_features(probe, self._store)
        if probe_features is None:
            return []
        self._refresh_knn_index()
        principal_obj = self._principal(principal)
        exclude = set(exclude_qids or set())
        neighbors = self._knn_index.nearest(
            probe_features.token_bag(), k=max(k * 5, 20), exclude=exclude
        )
        probe_sets = _feature_sets(probe_features)
        candidates: list[tuple[LoggedQuery, float]] = []
        for neighbor in neighbors:
            record = self._store.get(neighbor.key)
            if not self._access.can_see(principal_obj, record):
                continue
            similarity = weighted_feature_similarity(
                probe_sets, record.feature_sets(), self._config.feature_weights
            )
            candidates.append((record, similarity))
        candidates.sort(key=lambda pair: (-pair[1], pair[0].qid))
        return candidates[:k]

    def knn(
        self,
        principal: Principal | str,
        probe,
        k: int | None = None,
        exclude_qids: set[int] | None = None,
        ranked: bool = False,
    ) -> list[LoggedQuery] | list[RankedQuery]:
        """The k logged queries most similar to ``probe``.

        ``probe`` may be SQL text, a :class:`LoggedQuery`, or a feature
        object.  With ``ranked=True`` the results are re-ranked by the
        composite ranking function and returned as :class:`RankedQuery`.
        """
        k = k or self._config.knn_default_k
        candidates = self.knn_candidates(principal, probe, k=k, exclude_qids=exclude_qids)
        if not ranked:
            return [record for record, _ in candidates]
        context = RankingContext.from_store(self._store, now=float(self._clock()))
        return self._ranking.rank(candidates, context, limit=k)

    # -- internals -----------------------------------------------------------------------------

    def _visible(self, principal: Principal | str) -> list[LoggedQuery]:
        return self._access.visible_queries(
            self._principal(principal), self._store.all_queries()
        )

    def _principal(self, principal: Principal | str) -> Principal:
        if isinstance(principal, Principal):
            return principal
        return self._access.principal(principal)

    def _refresh_knn_index(self) -> None:
        """Index any queries added since the last meta-query."""
        for record in self._store.all_queries():
            if record.qid in self._knn_indexed:
                continue
            if record.is_select and record.features is not None:
                self._knn_index.add(record.qid, record.feature_tokens())
            self._knn_indexed.add(record.qid)


def _features_of_partial(partial_sql: str):
    """Extract features from a possibly incomplete query.

    A partially written query like ``SELECT FROM WaterSalinity, WaterTemp``
    does not parse; we progressively relax it (insert ``*`` into an empty
    select list, strip a trailing dangling clause) until it parses.
    """
    candidates = [partial_sql]
    lowered = partial_sql.lower()
    from_index = lowered.find("from")
    if "select" in lowered and from_index >= 0:
        head = partial_sql[:from_index]
        tail = partial_sql[from_index + len("from"):]
        if head.strip().lower() == "select":
            # An empty select list ("SELECT FROM ...") — assume "SELECT *".
            candidates.append(f"SELECT * FROM {tail}")
    # Strip trailing dangling fragments ("... WHERE", "... AND", a trailing comma).
    stripped = partial_sql.rstrip()
    for suffix in ("and", "or", "where", ",", "on", "="):
        if stripped.lower().endswith(suffix):
            candidates.append(stripped[: -len(suffix)])
    for candidate in candidates:
        try:
            return extract_features(candidate)
        except ReproError:
            continue
    return None


def _probe_features(probe, store: QueryStore):
    from repro.sql.features import QueryFeatures

    if isinstance(probe, LoggedQuery):
        return probe.features
    if isinstance(probe, QueryFeatures):
        return probe
    if isinstance(probe, int):
        return store.get(probe).features
    if isinstance(probe, str):
        return _features_of_partial(probe)
    raise MetaQueryError(f"unsupported kNN probe type {type(probe).__name__}")


def _feature_sets(features) -> dict[str, frozenset]:
    return {
        "tables": features.table_set(),
        "joins": features.join_signatures(),
        "predicates": features.predicate_signatures(),
        "projections": frozenset(features.projections),
        "group_by": frozenset(features.group_by),
        "aggregates": frozenset(features.aggregates),
    }
