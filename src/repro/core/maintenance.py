"""The Query Maintenance component (paper Sections 3 and 4.4).

Maintenance keeps the Query Storage up-to-date as the underlying database
changes:

* **schema validity** — queries referencing relations/columns that no longer
  exist are flagged (identified by comparing each query's catalog version with
  the catalog's change log, exactly the timestamp comparison the paper
  suggests), and — when the change was a rename — automatically repaired,
* **statistics freshness** — per-table statistics snapshots are compared with
  fresh ones; when a table's data distribution drifts past a threshold, the
  runtime statistics of queries over that table are refreshed by re-executing
  a bounded number of them,
* **query quality** — a [0, 1] score combining success, runtime, result size
  and documentation, used by the ranking function.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field

from repro.core.config import CQMSConfig
from repro.core.query_store import QueryStore
from repro.core.records import LoggedQuery
from repro.errors import ReproError
from repro.sql.canonicalize import canonical_text
from repro.sql.features import extract_features
from repro.storage.database import Database
from repro.storage.statistics import TableStatistics


@dataclass
class MaintenanceReport:
    """Outcome of one maintenance pass."""

    checked: int = 0
    flagged: list[int] = field(default_factory=list)
    repaired: list[int] = field(default_factory=list)
    dropped: list[int] = field(default_factory=list)
    drifted_tables: list[str] = field(default_factory=list)
    refreshed_queries: list[int] = field(default_factory=list)

    @property
    def num_flagged(self) -> int:
        return len(self.flagged)

    @property
    def num_repaired(self) -> int:
        return len(self.repaired)


class QueryMaintenance:
    """Keeps stored queries, statistics, and quality scores up to date."""

    def __init__(
        self,
        database: Database,
        store: QueryStore,
        config: CQMSConfig | None = None,
    ):
        self._db = database
        self._store = store
        self._config = config or CQMSConfig()
        self._statistics_snapshots: dict[str, TableStatistics] = {}
        self._last_checked_version = 0

    # -- schema validity ---------------------------------------------------------

    def check_schema_validity(self, repair: bool | None = None) -> MaintenanceReport:
        """Flag (and optionally repair) queries broken by schema evolution."""
        repair = self._config.auto_repair_renames if repair is None else repair
        report = MaintenanceReport()
        catalog = self._db.catalog
        schema_columns = self._db.schema_columns()
        rename_maps = self._build_rename_maps()

        for record in self._store.all_queries():
            if not record.is_select or record.features is None:
                continue
            # Cheap pre-filter: only queries older than the last schema change
            # on one of their input relations need re-checking (Section 4.4).
            if record.catalog_version >= catalog.version and not record.flagged_invalid:
                continue
            report.checked += 1
            problems = self._validity_problems(record, schema_columns)
            if not problems:
                if record.flagged_invalid:
                    self._store.mark_valid(record.qid)
                record.catalog_version = catalog.version
                continue
            if repair:
                repaired = self._try_repair(record, rename_maps, schema_columns)
                if repaired:
                    report.repaired.append(record.qid)
                    record.catalog_version = catalog.version
                    continue
            self._store.mark_invalid(record.qid, reason="; ".join(problems))
            report.flagged.append(record.qid)
        self._last_checked_version = catalog.version
        return report

    def _validity_problems(
        self, record: LoggedQuery, schema_columns: dict[str, set[str]]
    ) -> list[str]:
        problems: list[str] = []
        features = record.features
        for table in features.tables:
            if table not in schema_columns:
                problems.append(f"missing relation {table}")
        for attribute, relation in features.attributes:
            if relation == "?":
                continue
            columns = schema_columns.get(relation)
            if columns is not None and attribute not in columns:
                problems.append(f"missing attribute {relation}.{attribute}")
        return problems

    def _build_rename_maps(self) -> dict[str, dict[str, str]]:
        """Extract rename mappings from the catalog's change log.

        Returns ``{"tables": {old: new}, "columns": {"table.old": "new"}}``
        where table keys are lower-cased.
        """
        tables: dict[str, str] = {}
        columns: dict[str, str] = {}
        for change in self._db.catalog.changes():
            if change.kind == "rename_table" and "->" in change.detail:
                old, new = change.detail.split("->", 1)
                tables[old.lower()] = new.lower()
            elif change.kind == "rename_column" and "->" in change.detail:
                old, new = change.detail.split("->", 1)
                columns[f"{change.table.lower()}.{old.lower()}"] = new.lower()
        return {"tables": tables, "columns": columns}

    def _try_repair(
        self,
        record: LoggedQuery,
        rename_maps: dict[str, dict[str, str]],
        schema_columns: dict[str, set[str]],
    ) -> bool:
        """Attempt a textual repair of a query broken only by renames."""
        new_text = record.text
        changed = False
        for old_table, new_table in rename_maps["tables"].items():
            if old_table in record.features.tables:
                new_text = _replace_identifier(new_text, old_table, new_table)
                changed = True
        for qualified, new_column in rename_maps["columns"].items():
            table, old_column = qualified.split(".", 1)
            uses_column = any(
                attribute == old_column and relation in (table, rename_maps["tables"].get(table, table))
                for attribute, relation in record.features.attributes
            )
            if uses_column:
                new_text = _replace_identifier(new_text, old_column, new_column)
                changed = True
        if not changed:
            return False
        try:
            features = extract_features(new_text, schema_columns)
        except ReproError:
            return False
        if self._validity_problems_for(features, schema_columns):
            return False
        try:
            canonical = canonical_text(new_text)
            template = canonical_text(new_text, strip_constants=True)
        except ReproError:
            canonical = new_text
            template = new_text
        self._store.replace_text(record.qid, new_text, features, canonical, template)
        return True

    def _validity_problems_for(
        self, features, schema_columns: dict[str, set[str]]
    ) -> list[str]:
        fake = LoggedQuery(qid=-1, user="", group="", text="", timestamp=0.0, features=features)
        return self._validity_problems(fake, schema_columns)

    # -- dropping obsolete queries ---------------------------------------------------

    def drop_obsolete(self) -> MaintenanceReport:
        """Remove queries that stayed invalid through several maintenance passes."""
        report = MaintenanceReport()
        for record in list(self._store.all_queries()):
            if (
                record.flagged_invalid
                and record.flag_count >= self._config.drop_invalid_after_flags
            ):
                self._store.remove(record.qid)
                report.dropped.append(record.qid)
        return report

    # -- statistics freshness ------------------------------------------------------------

    def snapshot_statistics(self) -> None:
        """Record the current per-table statistics as the reference snapshot."""
        self._statistics_snapshots = {
            name.lower(): self._db.statistics(name, refresh=True)
            for name in self._db.table_names()
        }

    def detect_drift(self) -> list[str]:
        """Tables whose data distribution drifted past the configured threshold."""
        drifted: list[str] = []
        for name in self._db.table_names():
            snapshot = self._statistics_snapshots.get(name.lower())
            if snapshot is None:
                continue
            current = self._db.statistics(name, refresh=True)
            if snapshot.drift(current) > self._config.statistics_drift_threshold:
                drifted.append(name.lower())
        return drifted

    def refresh_statistics(self, max_queries: int = 50) -> MaintenanceReport:
        """Re-execute queries over drifted tables to refresh runtime statistics.

        The naive alternative — re-running *all* queries periodically — is
        exactly what the paper calls "overly expensive"; only queries touching
        drifted tables are refreshed, most popular first, up to ``max_queries``.
        """
        report = MaintenanceReport()
        report.drifted_tables = self.detect_drift()
        if not report.drifted_tables:
            return report
        drifted = set(report.drifted_tables)
        popularity = self._store.popularity()
        candidates = [
            record
            for record in self._store.select_queries()
            if not record.flagged_invalid and drifted & set(record.tables)
        ]
        candidates.sort(
            key=lambda record: (-popularity.get(record.canonical_text, 0), record.qid)
        )
        for record in candidates[:max_queries]:
            try:
                result = self._db.execute(record.text)
            except ReproError:
                continue
            record.runtime.elapsed_seconds = result.stats.elapsed_seconds
            record.runtime.result_cardinality = result.stats.result_cardinality
            record.runtime.rows_scanned = result.stats.rows_scanned
            report.refreshed_queries.append(record.qid)
        # The refreshed state becomes the new reference point.
        self.snapshot_statistics()
        return report

    # -- quality ---------------------------------------------------------------------------

    def score_quality(self, record: LoggedQuery) -> float:
        """Compute and store a [0, 1] quality score for one query.

        Quality combines: execution success, runtime efficiency, result-set
        digestibility, documentation (annotations), and validity — the axes
        the paper lists as candidate quality definitions (Section 4.4).
        """
        if not record.runtime.succeeded or record.flagged_invalid:
            record.quality = 0.0
            return record.quality
        runtime_score = 1.0 / (1.0 + record.runtime.elapsed_seconds)
        cardinality = max(0, record.runtime.result_cardinality)
        size_score = 1.0 / (1.0 + math.log1p(cardinality)) if cardinality else 0.5
        documentation_score = 1.0 if record.annotations else 0.3
        record.quality = round(
            0.4 * runtime_score + 0.3 * size_score + 0.3 * documentation_score, 4
        )
        return record.quality

    def score_all_quality(self) -> dict[int, float]:
        """Score every stored query; returns qid → quality."""
        return {record.qid: self.score_quality(record) for record in self._store.all_queries()}


def _replace_identifier(text: str, old: str, new: str) -> str:
    """Replace a SQL identifier in text, case-insensitively, word-bounded."""
    return re.sub(rf"\b{re.escape(old)}\b", new, text, flags=re.IGNORECASE)
