"""Query-session identification and the session graph (Figure 2).

A query session is "a series of (often similar) queries with the same
information goal in mind" (Section 2.2).  The detector segments each user's
query stream into sessions using two signals:

* a *temporal* signal — an idle gap longer than ``session_gap_seconds`` always
  closes the session, and
* a *similarity* signal — inside the time window, a query that shares nothing
  with the running session (no common tables) starts a new session, which
  matches how analysts switch goals without pausing.

Each session carries an edge list in the Figure 2 style: consecutive queries
are connected by an edge labelled with their diff summary (``+1 table``,
``~1 const``, ...).  Edge types follow the paper's Section 4.1 taxonomy:
*temporal*, *modification*, and *investigation* relations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.records import LoggedQuery
from repro.mining.similarity import jaccard_similarity
from repro.sql.diff import diff_queries


@dataclass(frozen=True)
class SessionEdge:
    """An edge between two consecutive queries of a session."""

    from_qid: int
    to_qid: int
    edge_type: str          # "modification" | "investigation" | "temporal"
    diff_summary: str
    diff_size: int


@dataclass
class QuerySession:
    """A detected query session."""

    session_id: int
    user: str
    qids: list[int] = field(default_factory=list)
    start_time: float = 0.0
    end_time: float = 0.0
    edges: list[SessionEdge] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.qids)

    @property
    def duration(self) -> float:
        return max(0.0, self.end_time - self.start_time)

    @property
    def final_qid(self) -> int:
        """The last query of the session — its converged form."""
        return self.qids[-1]


class SessionDetector:
    """Segments per-user query streams into sessions and builds their graphs."""

    def __init__(
        self,
        gap_seconds: float = 900.0,
        min_similarity: float = 0.05,
        schema_columns: dict[str, set[str]] | None = None,
    ):
        self._gap_seconds = gap_seconds
        self._min_similarity = min_similarity
        self._schema_columns = schema_columns or {}

    # -- detection -----------------------------------------------------------

    def detect(self, records: list[LoggedQuery]) -> list[QuerySession]:
        """Detect sessions over a list of logged queries (any user mix).

        Records are grouped per user, ordered by timestamp, and segmented.
        Session ids are assigned globally in chronological order of session
        start so they are stable and unique across users.
        """
        by_user: dict[str, list[LoggedQuery]] = {}
        for record in records:
            by_user.setdefault(record.user, []).append(record)
        raw_sessions: list[QuerySession] = []
        for user, user_records in by_user.items():
            ordered = sorted(user_records, key=lambda record: (record.timestamp, record.qid))
            raw_sessions.extend(self._detect_for_user(user, ordered))
        raw_sessions.sort(key=lambda session: (session.start_time, session.user))
        for index, session in enumerate(raw_sessions, start=1):
            session.session_id = index
        return raw_sessions

    def _detect_for_user(self, user: str, records: list[LoggedQuery]) -> list[QuerySession]:
        sessions: list[QuerySession] = []
        current: list[LoggedQuery] = []
        for record in records:
            if not current:
                current = [record]
                continue
            previous = current[-1]
            gap = record.timestamp - previous.timestamp
            if gap > self._gap_seconds or not self._related(previous, record):
                sessions.append(self._build_session(user, current))
                current = [record]
            else:
                current.append(record)
        if current:
            sessions.append(self._build_session(user, current))
        return sessions

    def _related(self, previous: LoggedQuery, record: LoggedQuery) -> bool:
        """Whether two temporally adjacent queries pursue the same goal."""
        if previous.features is None or record.features is None:
            return True
        similarity = jaccard_similarity(
            previous.features.table_set(), record.features.table_set()
        )
        return similarity >= self._min_similarity

    def _build_session(self, user: str, records: list[LoggedQuery]) -> QuerySession:
        session = QuerySession(
            session_id=0,
            user=user,
            qids=[record.qid for record in records],
            start_time=records[0].timestamp,
            end_time=records[-1].timestamp,
        )
        for previous, record in zip(records, records[1:]):
            session.edges.append(self._build_edge(previous, record))
        return session

    def _build_edge(self, previous: LoggedQuery, record: LoggedQuery) -> SessionEdge:
        if previous.features is not None and record.features is not None:
            diff = diff_queries(previous.features, record.features)
            summary = diff.summary()
            size = diff.distance()
            edge_type = self._classify_edge(diff)
        else:
            summary = "n/a"
            size = 0
            edge_type = "temporal"
        return SessionEdge(
            from_qid=previous.qid,
            to_qid=record.qid,
            edge_type=edge_type,
            diff_summary=summary,
            diff_size=size,
        )

    def _classify_edge(self, diff) -> str:
        """Map a diff onto the paper's relation taxonomy.

        Pure constant tweaks and predicate additions on the same tables are
        *investigation* edges (drilling into why tuples appear); structural
        changes (tables, joins, projections) are *modification* edges; an
        empty diff (re-execution) is a *temporal* edge.
        """
        if diff.is_empty:
            return "temporal"
        structural = (
            diff.count(kind="table")
            + diff.count(kind="join")
            + diff.count(kind="projection")
            + diff.count(kind="group_by")
            + diff.count(kind="aggregate")
        )
        if structural > 0:
            return "modification"
        return "investigation"


def sessions_as_ground_truth_pairs(sessions: list[QuerySession]) -> set[tuple[int, int]]:
    """All unordered qid pairs that share a session (used by evaluation)."""
    pairs: set[tuple[int, int]] = set()
    for session in sessions:
        for index, first in enumerate(session.qids):
            for second in session.qids[index + 1 :]:
                pairs.add((min(first, second), max(first, second)))
    return pairs


def pairwise_session_metrics(
    detected: list[QuerySession], truth_pairs: set[tuple[int, int]]
) -> dict[str, float]:
    """Pairwise precision/recall/F1 of detected sessions against ground truth."""
    detected_pairs = sessions_as_ground_truth_pairs(detected)
    if not detected_pairs and not truth_pairs:
        return {"precision": 1.0, "recall": 1.0, "f1": 1.0}
    true_positives = len(detected_pairs & truth_pairs)
    precision = true_positives / len(detected_pairs) if detected_pairs else 0.0
    recall = true_positives / len(truth_pairs) if truth_pairs else 0.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall > 0
        else 0.0
    )
    return {"precision": precision, "recall": recall, "f1": f1}
