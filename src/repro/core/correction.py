"""Automated query correction (paper Section 2.3).

"Like a spell checker, while a user types a query, the CQMS suggests
corrections to relation and attribute names but also changes to entire query
clauses.  For instance, if a predicate causes a query to return the empty set,
the CQMS could suggest similar, previously issued predicates that return a
non-empty set for the query."

The correction engine implements both mechanisms:

* **name corrections** — misspelled relation or attribute names are matched
  against the catalog by trigram similarity,
* **empty-result predicate corrections** — when a query returns no rows, each
  of its predicates is compared with predicates that logged, non-empty queries
  applied to the same attribute, and the most popular alternatives are
  suggested.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.query_store import QueryStore
from repro.errors import ReproError
from repro.mining.similarity import best_match
from repro.sql.features import extract_features


@dataclass(frozen=True)
class Correction:
    """One suggested correction."""

    kind: str            # "table_name" | "attribute_name" | "predicate"
    original: str        # the text believed to be wrong
    suggestion: str      # the replacement
    confidence: float    # [0, 1]
    reason: str

    def __str__(self) -> str:
        return f"{self.original} -> {self.suggestion}  ({self.reason}, {self.confidence:.2f})"


class CorrectionEngine:
    """Suggests corrections for names and for empty-result predicates."""

    def __init__(
        self,
        store: QueryStore,
        schema_columns: dict[str, set[str]] | None = None,
        min_name_similarity: float = 0.3,
    ):
        self._store = store
        self._schema_columns = {
            table.lower(): {column.lower() for column in columns}
            for table, columns in (schema_columns or {}).items()
        }
        self._min_name_similarity = min_name_similarity
        self._correction_log: list[Correction] = []

    @property
    def correction_log(self) -> list[Correction]:
        """All corrections ever suggested (mined by the tutorial generator)."""
        return list(self._correction_log)

    def update_schema(self, schema_columns: dict[str, set[str]]) -> None:
        self._schema_columns = {
            table.lower(): {column.lower() for column in columns}
            for table, columns in schema_columns.items()
        }

    # -- name corrections --------------------------------------------------------

    def correct_names(self, sql: str) -> list[Correction]:
        """Spell-check relation and attribute names against the catalog."""
        corrections: list[Correction] = []
        try:
            features = extract_features(sql)
        except ReproError:
            features = None
        if features is None:
            return corrections
        known_tables = set(self._schema_columns)
        for table in features.tables:
            if table in known_tables:
                continue
            match, score = best_match(table, known_tables, minimum=self._min_name_similarity)
            if match is not None:
                corrections.append(
                    Correction(
                        kind="table_name",
                        original=table,
                        suggestion=match,
                        confidence=score,
                        reason="unknown relation; closest catalog name",
                    )
                )
        for attribute, relation in features.attributes:
            if relation == "?" or relation not in known_tables:
                continue
            columns = self._schema_columns[relation]
            if attribute in columns:
                continue
            match, score = best_match(attribute, columns, minimum=self._min_name_similarity)
            if match is not None:
                corrections.append(
                    Correction(
                        kind="attribute_name",
                        original=f"{relation}.{attribute}",
                        suggestion=f"{relation}.{match}",
                        confidence=score,
                        reason="unknown attribute; closest column of the relation",
                    )
                )
        self._correction_log.extend(corrections)
        return corrections

    # -- empty-result predicate corrections -------------------------------------------

    def correct_empty_result(self, sql: str, limit: int = 3) -> list[Correction]:
        """Suggest replacement predicates when ``sql`` returned an empty result.

        For every selection predicate of the query, look at predicates that
        *successful, non-empty* logged queries applied to the same
        ``relation.attribute`` and suggest the most popular differing ones.
        """
        try:
            features = extract_features(sql)
        except ReproError:
            return []
        corrections: list[Correction] = []
        alternatives = self._non_empty_predicates()
        for predicate in features.predicates:
            key = (predicate.relation, predicate.attribute)
            options = alternatives.get(key)
            if not options:
                continue
            original = _render_predicate(
                predicate.relation, predicate.attribute, predicate.op, predicate.constant
            )
            total = sum(options.values())
            for (op, constant), count in options.most_common():
                candidate = _render_predicate(predicate.relation, predicate.attribute, op, constant)
                if candidate == original:
                    continue
                corrections.append(
                    Correction(
                        kind="predicate",
                        original=original,
                        suggestion=candidate,
                        confidence=count / total,
                        reason="popular predicate with non-empty results on the same attribute",
                    )
                )
                if len([c for c in corrections if c.original == original]) >= limit:
                    break
        self._correction_log.extend(corrections)
        return corrections

    def _non_empty_predicates(self) -> dict[tuple[str, str], Counter]:
        """Predicates of logged queries that succeeded with a non-empty result."""
        index: dict[tuple[str, str], Counter] = {}
        for record in self._store.select_queries():
            if record.features is None:
                continue
            if not record.runtime.succeeded or record.runtime.result_cardinality == 0:
                continue
            for predicate in record.features.predicates:
                key = (predicate.relation, predicate.attribute)
                index.setdefault(key, Counter())[
                    (predicate.op, _freeze(predicate.constant))
                ] += 1
        return index


def _freeze(constant: object) -> object:
    if isinstance(constant, list):
        return tuple(constant)
    return constant


def _render_predicate(relation: str, attribute: str, op: str, constant: object) -> str:
    if constant is None:
        return f"{relation}.{attribute} {op}"
    if isinstance(constant, str):
        rendered = f"'{constant}'"
    elif isinstance(constant, (tuple, list)):
        rendered = "(" + ", ".join(
            f"'{item}'" if isinstance(item, str) else str(item) for item in constant
        ) + ")"
    else:
        rendered = str(constant)
    return f"{relation}.{attribute} {op} {rendered}"
