"""CQMS configuration.

The paper's System Administrative Interaction mode (Section 2.4) requires
administrators to "adjust tunable parameters such as the sample size for the
query-by-data approach", give preference to ranking functions, and exclude
irrelevant features from similarity functions.  All such knobs live here so
that the :class:`~repro.core.admin.Administrator` can change them at runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RankingWeightsConfig:
    """Weights of the composite ranking function (Section 2.3).

    Each component is normalized to [0, 1] before weighting; a weight of zero
    disables the component (used by the A2 ranking ablation).
    """

    similarity: float = 1.0
    popularity: float = 0.4
    recency: float = 0.2
    runtime: float = 0.15
    cardinality: float = 0.1
    quality: float = 0.15


@dataclass
class CQMSConfig:
    """All tunable parameters of the CQMS engine."""

    # -- profiling (Section 2.1 / 4.1) --------------------------------------
    profiling_mode: str = "features"          # "off" | "text" | "features"
    output_sample_base_budget: int = 32       # rows kept for a fast query
    output_sample_seconds_per_row: float = 0.05
    output_sample_max_budget: int = 2000
    annotation_request_min_tables: int = 3    # ask for annotations on complex queries
    annotation_request_min_nesting: int = 1

    # -- sessions (Section 2.2 / Figure 2) -----------------------------------
    session_gap_seconds: float = 900.0        # idle gap that closes a session
    session_min_similarity: float = 0.05      # similarity keeping a query in-session

    # -- meta-querying (Section 4.2) ------------------------------------------
    knn_default_k: int = 10
    query_by_data_sample_size: int = 32

    # -- mining (Section 4.3) ---------------------------------------------------
    rule_min_support: float = 0.02
    rule_min_confidence: float = 0.3
    cluster_count: int = 8
    feature_weights: dict[str, float] = field(
        default_factory=lambda: {
            "tables": 3.0,
            "joins": 2.0,
            "predicates": 2.0,
            "projections": 1.0,
            "group_by": 1.0,
            "aggregates": 0.5,
        }
    )

    # -- ranking (Section 2.3) ---------------------------------------------------
    ranking: RankingWeightsConfig = field(default_factory=RankingWeightsConfig)

    # -- maintenance (Section 4.4) -------------------------------------------------
    statistics_drift_threshold: float = 0.25
    auto_repair_renames: bool = True
    drop_invalid_after_flags: int = 3

    # -- plan cache (meta-database hot path) ------------------------------------------
    plan_cache_size: int = 128                # cached meta-query templates (0 = off)

    # -- durability (Query Storage persistence across restarts) -------------------------
    #: Directory the Query Storage meta-database persists into (WAL +
    #: snapshots); None keeps the historical in-memory behaviour.  The paper's
    #: premise is a long-lived shared repository, so real deployments set this.
    data_dir: str | None = None
    wal_sync: str = "batch"                   # "off" | "commit" | "batch"
    checkpoint_interval: int = 0              # auto-checkpoint after N WAL records (0 = manual)
    buffer_pool_pages: int = 1024             # resident page cap of a durable store

    # -- execution engine (batched scans over the feature relations) --------------------
    exec_batch_size: int = 256                # rows per operator batch
    exec_parallel_workers: int = 1            # >1 fans ParallelSeqScan across threads
    exec_parallel_threshold: int = 4096       # min heap rows before parallelizing
    exec_columnar_kernels: bool = True        # columnar batches + kernels (False = row path)
    exec_process_workers: int = 1             # >1 forks partial-aggregation workers
    exec_process_threshold: int = 50_000      # min estimated rows before forking
    exec_verify_plans: bool = False           # verify every plan before execution

    # -- access control (Sections 1 / 2.4) --------------------------------------------
    default_visibility: str = "group"          # "private" | "group" | "public"

    # -- observability (metrics registry, tracing, slow-query log) ----------------------
    telemetry_enabled: bool = True             # metrics + traces for both engines
    slow_query_threshold_seconds: float = 1.0  # traces slower than this are retained
    slow_query_log_size: int = 128             # slow-query ring-buffer capacity
    trace_operators: bool = False              # per-operator spans + histograms (costly)

    # -- admission control (per-principal budgets) ----------------------------------------
    #: Cooperative per-statement timeout; a statement past it is cancelled at
    #: the next batch boundary.  None disables (per-principal QueryLimits can
    #: still impose one).
    statement_timeout_seconds: float | None = None
    rate_limit_qps: float | None = None        # default submissions/second per principal
    rate_limit_burst: float | None = None      # bucket depth (None = max(qps, 1))

    def validate(self) -> None:
        """Raise ``ValueError`` for out-of-range parameters."""
        if self.profiling_mode not in ("off", "text", "features"):
            raise ValueError(f"invalid profiling_mode {self.profiling_mode!r}")
        if self.default_visibility not in ("private", "group", "public"):
            raise ValueError(f"invalid default_visibility {self.default_visibility!r}")
        if self.session_gap_seconds <= 0:
            raise ValueError("session_gap_seconds must be positive")
        if not 0.0 <= self.rule_min_support <= 1.0:
            raise ValueError("rule_min_support must be in [0, 1]")
        if not 0.0 <= self.rule_min_confidence <= 1.0:
            raise ValueError("rule_min_confidence must be in [0, 1]")
        if self.output_sample_base_budget < 0 or self.output_sample_max_budget < 0:
            raise ValueError("output sample budgets must be non-negative")
        if self.knn_default_k < 1:
            raise ValueError("knn_default_k must be at least 1")
        if self.plan_cache_size < 0:
            raise ValueError("plan_cache_size must be non-negative")
        # Imported lazily to keep the module-level import direction core → storage.
        from repro.storage.wal import SYNC_POLICIES

        if self.wal_sync not in SYNC_POLICIES:
            raise ValueError(f"invalid wal_sync {self.wal_sync!r}")
        if self.checkpoint_interval < 0:
            raise ValueError("checkpoint_interval must be non-negative")
        if self.buffer_pool_pages < 8:
            raise ValueError("buffer_pool_pages must be at least 8")
        if self.exec_batch_size < 1:
            raise ValueError("exec_batch_size must be at least 1")
        if self.exec_parallel_workers < 1:
            raise ValueError("exec_parallel_workers must be at least 1")
        if self.exec_parallel_threshold < 0:
            raise ValueError("exec_parallel_threshold must be non-negative")
        if self.exec_process_workers < 1:
            raise ValueError("exec_process_workers must be at least 1")
        if self.exec_process_threshold < 0:
            raise ValueError("exec_process_threshold must be non-negative")
        if self.slow_query_threshold_seconds < 0:
            raise ValueError("slow_query_threshold_seconds must be non-negative")
        if self.slow_query_log_size < 1:
            raise ValueError("slow_query_log_size must be at least 1")
        if self.statement_timeout_seconds is not None and self.statement_timeout_seconds <= 0:
            raise ValueError("statement_timeout_seconds must be positive when set")
        if self.rate_limit_qps is not None and self.rate_limit_qps <= 0:
            raise ValueError("rate_limit_qps must be positive when set")
        if self.rate_limit_burst is not None and self.rate_limit_burst < 1:
            raise ValueError("rate_limit_burst must be at least 1 when set")

    def exec_settings(self):
        """The storage-layer :class:`~repro.storage.exec_settings.ExecutionSettings`
        equivalent of the ``exec_*`` knobs (built lazily to keep the import
        direction core → storage)."""
        from repro.storage.exec_settings import ExecutionSettings

        return ExecutionSettings(
            batch_size=self.exec_batch_size,
            parallel_workers=self.exec_parallel_workers,
            parallel_threshold=self.exec_parallel_threshold,
            columnar_kernels=self.exec_columnar_kernels,
            process_workers=self.exec_process_workers,
            process_threshold=self.exec_process_threshold,
            verify_plans=self.exec_verify_plans,
            buffer_pool_pages=self.buffer_pool_pages,
        )
