"""The Query Profiler (paper Sections 3 and 4.1).

The profiler sits between the client and the DBMS: it receives standard SQL,
forwards it to the DBMS, and logs the query — together with its features,
runtime statistics, and an output summary — into the Query Storage.  The
paper's key requirement is that it "should not hinder ordinary data
processing"; the profiler therefore supports three modes whose overhead the
C1 experiment measures:

* ``off`` — forward only, nothing is logged (the no-CQMS baseline),
* ``text`` — log the raw query text and runtime statistics only,
* ``features`` — additionally shred syntactic features and summarize output
  (the full query-by-feature data model).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.config import CQMSConfig
from repro.core.query_store import QueryStore
from repro.core.records import LoggedQuery, OutputSummary, RuntimeStats
from repro.errors import ReproError
from repro.obs.metrics import engine_timer
from repro.sql.canonicalize import canonical_text
from repro.sql.features import extract_features
from repro.sql.parser import parse
from repro.sql.ast_nodes import statement_type
from repro.sql.tokenizer import strip_comments
from repro.storage.database import Database, QueryResult
from repro.storage.statistics import summarize_output


class ProfilingMode(enum.Enum):
    """How much the profiler records about each query."""

    OFF = "off"
    TEXT = "text"
    FEATURES = "features"

    @classmethod
    def parse(cls, value: "ProfilingMode | str") -> "ProfilingMode":
        if isinstance(value, ProfilingMode):
            return value
        return cls(value.lower())


@dataclass
class ProfiledExecution:
    """What the profiler returns to the client for one submitted query."""

    result: QueryResult | None
    record: LoggedQuery | None
    error: str | None = None
    annotation_requested: bool = False

    @property
    def succeeded(self) -> bool:
        return self.error is None


class QueryProfiler:
    """Logs and pre-processes queries while forwarding them to the DBMS."""

    def __init__(
        self,
        database: Database,
        store: QueryStore,
        config: CQMSConfig | None = None,
        clock=None,
        registry=None,
    ):
        self._db = database
        self._store = store
        self._config = config or CQMSConfig()
        self._clock = clock if clock is not None else (lambda: 0.0)
        self._mode = ProfilingMode.parse(self._config.profiling_mode)
        #: Metrics registry recording the per-mode logging overhead the C1
        #: experiment ("should not hinder ordinary data processing") measures.
        self._registry = registry
        self._timer = registry.timer if registry is not None else engine_timer

    # -- mode management -------------------------------------------------------

    @property
    def mode(self) -> ProfilingMode:
        return self._mode

    def set_mode(self, mode: ProfilingMode | str) -> None:
        self._mode = ProfilingMode.parse(mode)

    # -- main entry point --------------------------------------------------------

    def profile(
        self,
        user: str,
        group: str,
        sql: str,
        visibility: str | None = None,
        timestamp: float | None = None,
        timeout_seconds: float | None = None,
    ) -> ProfiledExecution:
        """Execute ``sql`` on the DBMS and (depending on mode) log it.

        Execution errors do not raise: the failed attempt is still logged
        (failed queries are exactly what the correction features learn from)
        and the error is reported in the returned :class:`ProfiledExecution`.
        A statement cancelled by ``timeout_seconds`` is logged the same way —
        the cancellation happened at a batch boundary, so the store and the
        DBMS are both consistent.
        """
        timestamp = self._now() if timestamp is None else timestamp
        result: QueryResult | None = None
        error: str | None = None
        try:
            result = self._db.execute(sql, timeout_seconds=timeout_seconds)
        except ReproError as exc:
            error = str(exc)

        overhead_start = self._timer()
        if self._mode is ProfilingMode.OFF:
            self._observe_overhead(overhead_start)
            return ProfiledExecution(result=result, record=None, error=error)

        record = self._build_record(
            user=user,
            group=group,
            sql=sql,
            visibility=visibility or self._config.default_visibility,
            timestamp=timestamp,
            result=result,
            error=error,
        )
        self._store.add(record)
        annotation_requested = self._should_request_annotation(record)
        self._observe_overhead(overhead_start)
        return ProfiledExecution(
            result=result,
            record=record,
            error=error,
            annotation_requested=annotation_requested,
        )

    def _observe_overhead(self, started: float) -> None:
        """Record logging overhead (everything but the DBMS execution)."""
        if self._registry is None:
            return
        self._registry.histogram(
            "profiler_overhead_seconds",
            "profiler logging overhead per submitted query, by mode",
            mode=self._mode.value,
        ).observe(max(0.0, self._timer() - started))

    # -- record construction --------------------------------------------------------

    def _build_record(
        self,
        user: str,
        group: str,
        sql: str,
        visibility: str,
        timestamp: float,
        result: QueryResult | None,
        error: str | None,
    ) -> LoggedQuery:
        qid = self._store.next_qid()
        clean_text = strip_comments(sql).strip()
        runtime = RuntimeStats(
            elapsed_seconds=result.stats.elapsed_seconds if result is not None else 0.0,
            result_cardinality=result.stats.result_cardinality if result is not None else 0,
            rows_scanned=result.stats.rows_scanned if result is not None else 0,
            succeeded=error is None,
            error=error,
        )
        record = LoggedQuery(
            qid=qid,
            user=user,
            group=group,
            text=clean_text,
            timestamp=timestamp,
            statement_kind="unknown",
            runtime=runtime,
            visibility=visibility,
            catalog_version=self._db.catalog.version,
        )
        parsed = None
        try:
            parsed = parse(clean_text)
            record.statement_kind = statement_type(parsed)
        except ReproError:
            record.statement_kind = "invalid"

        if self._mode is ProfilingMode.FEATURES and parsed is not None:
            record.features = extract_features(parsed, self._db.schema_columns())
            try:
                record.canonical_text = canonical_text(parsed)
                record.template_text = canonical_text(parsed, strip_constants=True)
            except ReproError:
                record.canonical_text = clean_text
                record.template_text = clean_text
            if result is not None and record.statement_kind == "select":
                record.output = self._summarize_output(result)
        elif self._mode is ProfilingMode.TEXT:
            record.canonical_text = " ".join(clean_text.lower().split())
            record.template_text = record.canonical_text
        return record

    def _summarize_output(self, result: QueryResult) -> OutputSummary:
        """Adaptive output summarization (Section 4.1)."""
        rows = summarize_output(
            result.rows,
            result.columns,
            execution_time=result.stats.elapsed_seconds,
            base_budget=self._config.output_sample_base_budget,
            seconds_per_extra_row=self._config.output_sample_seconds_per_row,
            max_budget=self._config.output_sample_max_budget,
        )
        return OutputSummary(
            columns=list(result.columns),
            rows=[tuple(row) for row in rows],
            total_rows=len(result.rows),
            complete=len(rows) >= len(result.rows),
        )

    def _should_request_annotation(self, record: LoggedQuery) -> bool:
        """Whether the client should prompt the author for an annotation.

        The paper (Section 2.1) proposes requesting annotations "especially
        for queries that are difficult to re-use without proper documentation
        (e.g. queries with more than a specified number of tables, or queries
        that include nesting)".
        """
        if record.features is None:
            return False
        if record.features.num_tables >= self._config.annotation_request_min_tables:
            return True
        return record.features.num_subqueries >= self._config.annotation_request_min_nesting

    def _now(self) -> float:
        return float(self._clock())
