"""Full query recommendation (paper Section 2.3).

"A CQMS could also perform complete query recommendations, showing logged
queries similar to those the user recently issued" — this module does that,
producing the ranked similar-query panel of Figure 3 (score, query, diff,
annotations).  Besides the full CQMS recommender, two baselines are provided
for the C5/A2 experiments:

* **popularity-only** — recommend the most frequently issued queries,
  regardless of what the user is doing,
* **random** — a lower bound.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.access_control import AccessControl, Principal
from repro.core.config import CQMSConfig
from repro.core.meta_query import MetaQueryExecutor
from repro.core.query_store import QueryStore
from repro.core.ranking import RankingContext, RankingFunction
from repro.core.records import LoggedQuery
from repro.errors import ReproError
from repro.sql.diff import diff_queries
from repro.sql.features import extract_features


@dataclass
class Recommendation:
    """One recommended query, as displayed in the Figure 3 panel."""

    record: LoggedQuery
    score: float
    diff_summary: str
    annotations: list[str] = field(default_factory=list)
    components: dict[str, float] = field(default_factory=dict)

    def as_row(self) -> tuple[str, str, str, str]:
        """(score, query, diff, annotations) — the panel's columns."""
        return (
            f"{self.score * 100:.0f}%",
            self.record.describe(),
            self.diff_summary,
            "; ".join(self.annotations) if self.annotations else "",
        )


class QueryRecommender:
    """Recommends logged queries relevant to what the user is working on."""

    def __init__(
        self,
        store: QueryStore,
        meta_query: MetaQueryExecutor,
        access_control: AccessControl,
        config: CQMSConfig | None = None,
        ranking: RankingFunction | None = None,
        clock=None,
    ):
        self._store = store
        self._meta = meta_query
        self._access = access_control
        self._config = config or CQMSConfig()
        self._ranking = ranking or RankingFunction()
        self._clock = clock if clock is not None else (lambda: 0.0)

    # -- main API ------------------------------------------------------------

    def recommend(
        self,
        principal: Principal | str,
        current_sql: str,
        k: int = 5,
        exclude_own_duplicates: bool = True,
    ) -> list[Recommendation]:
        """Recommend up to ``k`` logged queries similar to ``current_sql``."""
        candidates = self._meta.knn_candidates(principal, current_sql, k=k * 3)
        context = RankingContext.from_store(self._store, now=float(self._clock()))
        ranked = self._ranking.rank(candidates, context)
        current_features = self._safe_features(current_sql)
        recommendations: list[Recommendation] = []
        seen_canonical: set[str] = set()
        for item in ranked:
            record = item.record
            if exclude_own_duplicates:
                canonical = record.canonical_text or record.text
                if canonical in seen_canonical:
                    continue
                seen_canonical.add(canonical)
            diff_summary = self._diff_summary(current_features, record)
            recommendations.append(
                Recommendation(
                    record=record,
                    score=item.score,
                    diff_summary=diff_summary,
                    annotations=list(record.annotations),
                    components=dict(item.components),
                )
            )
            if len(recommendations) >= k:
                break
        return recommendations

    def recommend_for_session(
        self, principal: Principal | str, session_qids: list[int], k: int = 5
    ) -> list[Recommendation]:
        """Recommend queries relevant to an entire session (its last query)."""
        if not session_qids:
            return []
        last = self._store.get(session_qids[-1])
        return self.recommend(principal, last.text, k=k)

    # -- baselines (for the C5 / A2 experiments) ----------------------------------

    def recommend_popular(
        self, principal: Principal | str, k: int = 5
    ) -> list[Recommendation]:
        """Popularity-only baseline: the most frequently issued visible queries."""
        principal_obj = self._principal(principal)
        popularity = self._store.popularity()
        best_by_canonical: dict[str, LoggedQuery] = {}
        for record in self._store.select_queries():
            if not self._access.can_see(principal_obj, record):
                continue
            canonical = record.canonical_text or record.text
            if canonical not in best_by_canonical or record.timestamp > best_by_canonical[canonical].timestamp:
                best_by_canonical[canonical] = record
        ranked = sorted(
            best_by_canonical.items(),
            key=lambda item: (-popularity.get(item[0], 0), item[1].qid),
        )
        max_count = max(popularity.values(), default=1)
        recommendations = []
        for canonical, record in ranked[:k]:
            recommendations.append(
                Recommendation(
                    record=record,
                    score=popularity.get(canonical, 0) / max_count,
                    diff_summary="n/a",
                    annotations=list(record.annotations),
                )
            )
        return recommendations

    def recommend_random(
        self, principal: Principal | str, k: int = 5, seed: int = 0
    ) -> list[Recommendation]:
        """Random baseline."""
        principal_obj = self._principal(principal)
        visible = [
            record
            for record in self._store.select_queries()
            if self._access.can_see(principal_obj, record)
        ]
        rng = random.Random(seed)
        rng.shuffle(visible)
        return [
            Recommendation(record=record, score=0.0, diff_summary="n/a",
                           annotations=list(record.annotations))
            for record in visible[:k]
        ]

    # -- internals --------------------------------------------------------------------

    def _diff_summary(self, current_features, record: LoggedQuery) -> str:
        if current_features is None or record.features is None:
            return "n/a"
        try:
            return diff_queries(record.features, current_features).summary()
        except ReproError:
            return "n/a"

    def _safe_features(self, sql: str):
        try:
            return extract_features(sql)
        except ReproError:
            return None

    def _principal(self, principal: Principal | str) -> Principal:
        if isinstance(principal, Principal):
            return principal
        return self._access.principal(principal)
