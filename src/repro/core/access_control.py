"""Users, groups, and query visibility rules.

The paper requires that "clear access control rules must be set to restrict
knowledge transfer to only group members collaborating with each other"
(Section 1) and lists per-query sharing rules among the User Administrative
Interaction features (Section 2.4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.records import LoggedQuery
from repro.errors import AccessControlError
from repro.obs.admission import QueryLimits


class Visibility(enum.Enum):
    """Who may see a logged query besides its author."""

    PRIVATE = "private"
    GROUP = "group"
    PUBLIC = "public"

    @classmethod
    def parse(cls, value: "Visibility | str") -> "Visibility":
        if isinstance(value, Visibility):
            return value
        try:
            return cls(value.lower())
        except ValueError:
            raise AccessControlError(f"unknown visibility {value!r}") from None


@dataclass(frozen=True)
class Principal:
    """An authenticated CQMS user."""

    name: str
    group: str
    is_admin: bool = False


@dataclass
class AccessControl:
    """Registry of principals plus the visibility check used everywhere.

    The CQMS components never return another user's query to a principal
    unless :meth:`can_see` allows it; administrators can see everything (they
    need to, for maintenance).
    """

    default_visibility: Visibility = Visibility.GROUP
    _principals: dict[str, Principal] = field(default_factory=dict)
    _grants: dict[int, set[str]] = field(default_factory=dict)
    _limits: dict[str, QueryLimits] = field(default_factory=dict)

    # -- principals -------------------------------------------------------------

    def register(self, name: str, group: str, is_admin: bool = False) -> Principal:
        """Register (or re-register) a principal."""
        principal = Principal(name=name, group=group, is_admin=is_admin)
        self._principals[name] = principal
        return principal

    def principal(self, name: str) -> Principal:
        try:
            return self._principals[name]
        except KeyError:
            raise AccessControlError(f"unknown principal {name!r}") from None

    def has_principal(self, name: str) -> bool:
        return name in self._principals

    def principals(self) -> list[Principal]:
        return sorted(self._principals.values(), key=lambda principal: principal.name)

    # -- per-principal resource limits ----------------------------------------------

    def set_limits(self, name: str, limits: QueryLimits | None) -> None:
        """Attach admission-control limits to a principal (None clears them).

        Limits compose with the config-wide defaults through
        :meth:`~repro.obs.admission.QueryLimits.merged_over`: unset fields
        inherit, set fields override per principal.
        """
        self.principal(name)  # raises for unknown principals
        if limits is None:
            self._limits.pop(name, None)
        else:
            self._limits[name] = limits

    def limits_for(self, name: str) -> QueryLimits | None:
        """The per-principal limits override, or None when unconfigured."""
        return self._limits.get(name)

    # -- per-query grants -----------------------------------------------------------

    def grant(self, qid: int, user: str) -> None:
        """Explicitly grant ``user`` access to query ``qid`` (beyond visibility)."""
        self._grants.setdefault(qid, set()).add(user)

    def revoke(self, qid: int, user: str) -> None:
        self._grants.get(qid, set()).discard(user)

    def grants_for(self, qid: int) -> set[str]:
        return set(self._grants.get(qid, set()))

    # -- checks --------------------------------------------------------------------------

    def can_see(self, principal: Principal | str, record: LoggedQuery) -> bool:
        """Whether ``principal`` may see ``record`` under the visibility rules."""
        if isinstance(principal, str):
            principal = self.principal(principal)
        if principal.is_admin:
            return True
        if record.user == principal.name:
            return True
        if principal.name in self._grants.get(record.qid, set()):
            return True
        visibility = Visibility.parse(record.visibility)
        if visibility is Visibility.PUBLIC:
            return True
        if visibility is Visibility.GROUP:
            return record.group == principal.group
        return False

    def visible_queries(
        self, principal: Principal | str, records: list[LoggedQuery]
    ) -> list[LoggedQuery]:
        """Filter a list of records down to those the principal may see."""
        if isinstance(principal, str):
            principal = self.principal(principal)
        return [record for record in records if self.can_see(principal, record)]

    def require_owner_or_admin(self, principal: Principal | str, record: LoggedQuery) -> None:
        """Raise unless the principal owns the record or is an administrator."""
        if isinstance(principal, str):
            principal = self.principal(principal)
        if principal.is_admin or record.user == principal.name:
            return
        raise AccessControlError(
            f"{principal.name!r} may not administer query {record.qid} owned by {record.user!r}"
        )
