"""Core record types: the logged query and its runtime features.

A query is "the primary data type in a CQMS" (Section 4.1).  The
:class:`LoggedQuery` record carries all three representations the paper
discusses — raw text, extracted features, and (through
:func:`repro.sql.parse_tree.to_parse_tree`) the parse tree — plus the runtime
and semantic features (statistics and output samples).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sql.features import QueryFeatures


@dataclass
class RuntimeStats:
    """Runtime features of one execution of a query (Section 4.1)."""

    elapsed_seconds: float = 0.0
    result_cardinality: int = 0
    rows_scanned: int = 0
    succeeded: bool = True
    error: str | None = None


@dataclass
class OutputSummary:
    """A succinct summary of a query's output (Section 4.1).

    ``rows`` holds at most the adaptive budget decided by the profiler;
    ``complete`` records whether the stored rows are the full output (true for
    long-running small-output queries) or a sample.
    """

    columns: list[str] = field(default_factory=list)
    rows: list[tuple] = field(default_factory=list)
    total_rows: int = 0
    complete: bool = True

    def contains(self, values: tuple) -> bool:
        """Whether the summary contains a row equal to ``values``."""
        return tuple(values) in {tuple(row) for row in self.rows}

    def contains_value(self, value: object) -> bool:
        """Whether any cell of any summarized row equals ``value``."""
        return any(value in row for row in self.rows)


@dataclass
class LoggedQuery:
    """One query in the Query Storage.

    ``qid`` is assigned by the profiler.  ``canonical_text`` is the
    alias/case/order-normalized rendering used for duplicate detection and
    popularity counting; ``template_text`` additionally strips constants so
    that queries differing only in constants share a template.
    """

    qid: int
    user: str
    group: str
    text: str
    timestamp: float
    canonical_text: str = ""
    template_text: str = ""
    statement_kind: str = "select"
    features: QueryFeatures | None = None
    runtime: RuntimeStats = field(default_factory=RuntimeStats)
    output: OutputSummary | None = None
    session_id: int | None = None
    visibility: str = "group"
    annotations: list[str] = field(default_factory=list)
    flagged_invalid: bool = False
    invalid_reason: str | None = None
    flag_count: int = 0
    quality: float = 0.5
    catalog_version: int = 0

    @property
    def is_select(self) -> bool:
        return self.statement_kind == "select"

    @property
    def tables(self) -> list[str]:
        return list(self.features.tables) if self.features is not None else []

    def feature_tokens(self) -> list[str]:
        """The query's feature token bag (used by kNN / TF-IDF / rules)."""
        if self.features is None:
            return []
        return self.features.token_bag()

    def feature_sets(self) -> dict[str, frozenset]:
        """Per-class feature sets used by the weighted feature similarity."""
        if self.features is None:
            return {}
        return {
            "tables": self.features.table_set(),
            "joins": self.features.join_signatures(),
            "predicates": self.features.predicate_signatures(),
            "projections": frozenset(self.features.projections),
            "group_by": frozenset(self.features.group_by),
            "aggregates": frozenset(self.features.aggregates),
        }

    def describe(self, max_length: int = 80) -> str:
        """A single-line description used by the client renderers."""
        text = " ".join(self.text.split())
        if len(text) > max_length:
            text = text[: max_length - 3] + "..."
        return text
