"""Composite ranking functions.

The paper asks "how to construct ranking functions that combine similarity
measures together and with other desired properties (e.g. high popularity,
efficient runtime, small result cardinality, etc.)" (Section 2.3).  The
:class:`RankingFunction` here is that combination: a weighted sum of
normalized component scores.  The A2 ablation benchmark sweeps the weights.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields

from repro.core.config import RankingWeightsConfig
from repro.core.records import LoggedQuery


@dataclass
class RankingWeights:
    """Weights of the ranking components (all non-negative)."""

    similarity: float = 1.0
    popularity: float = 0.4
    recency: float = 0.2
    runtime: float = 0.15
    cardinality: float = 0.1
    quality: float = 0.15

    @classmethod
    def from_config(cls, config: RankingWeightsConfig) -> "RankingWeights":
        return cls(
            similarity=config.similarity,
            popularity=config.popularity,
            recency=config.recency,
            runtime=config.runtime,
            cardinality=config.cardinality,
            quality=config.quality,
        )

    @classmethod
    def similarity_only(cls) -> "RankingWeights":
        """The ablation baseline: rank purely by similarity."""
        return cls(similarity=1.0, popularity=0.0, recency=0.0, runtime=0.0, cardinality=0.0, quality=0.0)

    def total(self) -> float:
        return sum(getattr(self, field.name) for field in fields(self))


@dataclass
class RankingContext:
    """Shared normalization context for one ranking pass."""

    now: float = 0.0
    popularity: dict[str, int] | None = None
    max_popularity: int = 1
    recency_half_life: float = 7 * 24 * 3600.0

    @classmethod
    def from_store(cls, store, now: float) -> "RankingContext":
        popularity = store.popularity()
        return cls(
            now=now,
            popularity=popularity,
            max_popularity=max(popularity.values(), default=1),
        )


@dataclass
class RankedQuery:
    """One ranked candidate with its component scores (for explanations)."""

    record: LoggedQuery
    score: float
    components: dict[str, float]

    def explanation(self) -> str:
        """Human-readable explanation shown in the client's similar-query panel."""
        parts = [f"{name}={value:.2f}" for name, value in sorted(self.components.items())]
        return f"score={self.score:.3f} ({', '.join(parts)})"


class RankingFunction:
    """Scores candidate queries as weighted sums of normalized components."""

    def __init__(self, weights: RankingWeights | None = None):
        self.weights = weights or RankingWeights()

    def score(
        self,
        record: LoggedQuery,
        similarity: float,
        context: RankingContext,
    ) -> RankedQuery:
        """Score one candidate given its similarity to the probe."""
        components = {
            "similarity": _clamp(similarity),
            "popularity": self._popularity_score(record, context),
            "recency": self._recency_score(record, context),
            "runtime": self._runtime_score(record),
            "cardinality": self._cardinality_score(record),
            "quality": _clamp(record.quality),
        }
        total_weight = self.weights.total()
        if total_weight <= 0:
            return RankedQuery(record=record, score=0.0, components=components)
        weighted = (
            self.weights.similarity * components["similarity"]
            + self.weights.popularity * components["popularity"]
            + self.weights.recency * components["recency"]
            + self.weights.runtime * components["runtime"]
            + self.weights.cardinality * components["cardinality"]
            + self.weights.quality * components["quality"]
        )
        return RankedQuery(
            record=record, score=weighted / total_weight, components=components
        )

    def rank(
        self,
        candidates: list[tuple[LoggedQuery, float]],
        context: RankingContext,
        limit: int | None = None,
    ) -> list[RankedQuery]:
        """Rank ``(record, similarity)`` candidates, best first."""
        ranked = [self.score(record, similarity, context) for record, similarity in candidates]
        ranked.sort(key=lambda item: (-item.score, item.record.qid))
        if limit is not None:
            return ranked[:limit]
        return ranked

    # -- components -----------------------------------------------------------

    def _popularity_score(self, record: LoggedQuery, context: RankingContext) -> float:
        if not context.popularity or not record.canonical_text:
            return 0.0
        count = context.popularity.get(record.canonical_text, 0)
        if context.max_popularity <= 1:
            return float(count > 0)
        return math.log1p(count) / math.log1p(context.max_popularity)

    def _recency_score(self, record: LoggedQuery, context: RankingContext) -> float:
        age = max(0.0, context.now - record.timestamp)
        if context.recency_half_life <= 0:
            return 0.0
        return 0.5 ** (age / context.recency_half_life)

    def _runtime_score(self, record: LoggedQuery) -> float:
        """Prefer efficient queries: 1 for instant, decaying with elapsed time."""
        return 1.0 / (1.0 + record.runtime.elapsed_seconds)

    def _cardinality_score(self, record: LoggedQuery) -> float:
        """Prefer small, digestible result sets (paper Section 2.2)."""
        return 1.0 / (1.0 + math.log1p(max(0, record.runtime.result_cardinality)))


def _clamp(value: float) -> float:
    return max(0.0, min(1.0, float(value)))
