"""Automatic tutorial generation (paper Section 2.3).

"By analyzing the set of all queries and the evolution of query sessions, we
hypothesize that a CQMS may be able to automatically produce a tutorial on the
new data set ... e.g. the system could introduce each relation and its schema
by showing the user the most popular queries that include the relation."

The generator produces one section per relation (schema, usage statistics,
most popular example queries, commonly co-used relations) plus a closing
section of common mistakes derived from the correction log and mined edit
patterns.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core.correction import Correction
from repro.core.query_store import QueryStore
from repro.core.records import LoggedQuery


@dataclass
class TutorialSection:
    """One section of the generated tutorial."""

    title: str
    lines: list[str] = field(default_factory=list)
    example_queries: list[str] = field(default_factory=list)

    def render(self) -> str:
        parts = [f"== {self.title} =="]
        parts.extend(self.lines)
        if self.example_queries:
            parts.append("Popular queries:")
            parts.extend(f"  {index}. {sql}" for index, sql in enumerate(self.example_queries, 1))
        return "\n".join(parts)


class TutorialGenerator:
    """Builds a dataset tutorial from the query log."""

    def __init__(
        self,
        store: QueryStore,
        schema_columns: dict[str, set[str]] | None = None,
    ):
        self._store = store
        self._schema_columns = {
            table.lower(): sorted(column.lower() for column in columns)
            for table, columns in (schema_columns or {}).items()
        }

    def generate(
        self,
        max_relations: int | None = None,
        examples_per_relation: int = 3,
        corrections: list[Correction] | None = None,
        edit_patterns: Counter | None = None,
    ) -> list[TutorialSection]:
        """Produce the tutorial sections, most-used relations first."""
        records = [r for r in self._store.select_queries() if r.features is not None]
        table_popularity = self._store.table_popularity()
        ordered_tables = sorted(
            self._schema_columns or {table: [] for table in table_popularity},
            key=lambda table: (-table_popularity.get(table, 0), table),
        )
        if max_relations is not None:
            ordered_tables = ordered_tables[:max_relations]

        sections = [
            self._relation_section(
                table, records, table_popularity, examples_per_relation
            )
            for table in ordered_tables
        ]
        closing = self._mistakes_section(corrections or [], edit_patterns or Counter())
        if closing is not None:
            sections.append(closing)
        return sections

    # -- sections ---------------------------------------------------------------

    def _relation_section(
        self,
        table: str,
        records: list[LoggedQuery],
        popularity: dict[str, int],
        examples: int,
    ) -> TutorialSection:
        section = TutorialSection(title=f"Relation {table}")
        columns = self._schema_columns.get(table, [])
        if columns:
            section.lines.append(f"Columns: {', '.join(columns)}")
        usage = popularity.get(table, 0)
        section.lines.append(f"Referenced by {usage} logged queries.")

        companions: Counter[str] = Counter()
        attribute_usage: Counter[str] = Counter()
        candidates: list[LoggedQuery] = []
        for record in records:
            if table not in record.features.table_set():
                continue
            candidates.append(record)
            for other in record.features.tables:
                if other != table:
                    companions[other] += 1
            for attribute, relation in record.features.attributes:
                if relation == table:
                    attribute_usage[attribute] += 1
        if companions:
            top = ", ".join(name for name, _ in companions.most_common(3))
            section.lines.append(f"Commonly joined or combined with: {top}.")
        if attribute_usage:
            top_attrs = ", ".join(name for name, _ in attribute_usage.most_common(4))
            section.lines.append(f"Most queried attributes: {top_attrs}.")

        canonical_counts: Counter[str] = Counter()
        best_record: dict[str, LoggedQuery] = {}
        for record in candidates:
            canonical = record.canonical_text or record.text
            canonical_counts[canonical] += 1
            best_record.setdefault(canonical, record)
        for canonical, _count in canonical_counts.most_common(examples):
            record = best_record[canonical]
            example = record.describe(max_length=100)
            if record.annotations:
                example += f"   -- {record.annotations[0]}"
            section.example_queries.append(example)
        return section

    def _mistakes_section(
        self, corrections: list[Correction], edit_patterns: Counter
    ) -> TutorialSection | None:
        if not corrections and not edit_patterns:
            return None
        section = TutorialSection(title="Common mistakes and practices")
        if corrections:
            mistake_counts: Counter[str] = Counter()
            for correction in corrections:
                mistake_counts[f"{correction.kind}: {correction.original} -> {correction.suggestion}"] += 1
            section.lines.append("Frequent corrections suggested by the system:")
            for description, count in mistake_counts.most_common(5):
                section.lines.append(f"  - {description} (seen {count}x)")
        if edit_patterns:
            section.lines.append("Typical ways queries evolve within a session:")
            for pattern, count in edit_patterns.most_common(5):
                section.lines.append(f"  - {pattern} ({count}x)")
        return section

    def render(self, sections: list[TutorialSection] | None = None) -> str:
        """Render the whole tutorial to text."""
        sections = sections if sections is not None else self.generate()
        return "\n\n".join(section.render() for section in sections)
