"""The Query Storage: feature relations plus the query-record index.

The paper's Figure 1 shows the feature relations of the query-by-feature data
model::

    Queries(qid, qText)
    DataSources(qid, relName)
    Attributes(qid, attrName, relName)
    Predicates(qid, attrName, relName, op, const)

The Query Storage here materializes those relations (plus ``Projections``,
``Joins``, ``RuntimeStats``, ``OutputSamples``, ``Annotations``, ``Sessions``
and ``SessionEdges``) inside an instance of the same relational engine that
backs the user database, so that meta-queries are ordinary SQL exactly as the
paper envisions.  Alongside the relations it keeps the full
:class:`~repro.core.records.LoggedQuery` objects for the components that need
cheap object access (miner, recommender, maintenance).
"""

from __future__ import annotations

from repro.core.records import LoggedQuery, OutputSummary, RuntimeStats
from repro.errors import MetaQueryError, ReproError
from repro.sql.canonicalize import canonical_text
from repro.sql.features import extract_features
from repro.sql.parser import parse
from repro.storage.database import Database, QueryResult
from repro.storage.plan_cache import DEFAULT_PLAN_CACHE_SIZE
from repro.storage.schema import ColumnSchema, TableSchema
from repro.storage.types import DataType


def _schema(name: str, *columns: tuple[str, DataType]) -> TableSchema:
    return TableSchema(
        name=name,
        columns=[ColumnSchema(name=column, data_type=data_type) for column, data_type in columns],
    )


#: Schemas of the Query Storage feature relations.
FEATURE_RELATIONS: list[TableSchema] = [
    _schema(
        "Queries",
        ("qid", DataType.INTEGER),
        ("qText", DataType.TEXT),
        ("userName", DataType.TEXT),
        ("groupName", DataType.TEXT),
        ("ts", DataType.FLOAT),
        ("statementKind", DataType.TEXT),
        ("visibility", DataType.TEXT),
        ("valid", DataType.BOOLEAN),
        ("invalidReason", DataType.TEXT),
        ("flagCount", DataType.INTEGER),
    ),
    _schema("DataSources", ("qid", DataType.INTEGER), ("relName", DataType.TEXT)),
    _schema(
        "Attributes",
        ("qid", DataType.INTEGER),
        ("attrName", DataType.TEXT),
        ("relName", DataType.TEXT),
    ),
    _schema(
        "Predicates",
        ("qid", DataType.INTEGER),
        ("attrName", DataType.TEXT),
        ("relName", DataType.TEXT),
        ("op", DataType.TEXT),
        ("const", DataType.TEXT),
    ),
    _schema(
        "Projections",
        ("qid", DataType.INTEGER),
        ("attrName", DataType.TEXT),
        ("relName", DataType.TEXT),
    ),
    _schema(
        "Joins",
        ("qid", DataType.INTEGER),
        ("leftRel", DataType.TEXT),
        ("leftAttr", DataType.TEXT),
        ("rightRel", DataType.TEXT),
        ("rightAttr", DataType.TEXT),
    ),
    _schema(
        "RuntimeStats",
        ("qid", DataType.INTEGER),
        ("elapsedSeconds", DataType.FLOAT),
        ("cardinality", DataType.INTEGER),
        ("rowsScanned", DataType.INTEGER),
        ("succeeded", DataType.BOOLEAN),
    ),
    _schema(
        "OutputSamples",
        ("qid", DataType.INTEGER),
        ("rowIndex", DataType.INTEGER),
        ("columnName", DataType.TEXT),
        ("cellValue", DataType.TEXT),
    ),
    _schema(
        "Annotations",
        ("qid", DataType.INTEGER),
        ("author", DataType.TEXT),
        ("ts", DataType.FLOAT),
        ("body", DataType.TEXT),
    ),
    _schema(
        "Sessions",
        ("sessionId", DataType.INTEGER),
        ("userName", DataType.TEXT),
        ("startTs", DataType.FLOAT),
        ("endTs", DataType.FLOAT),
        ("numQueries", DataType.INTEGER),
    ),
    _schema(
        "SessionEdges",
        ("sessionId", DataType.INTEGER),
        ("fromQid", DataType.INTEGER),
        ("toQid", DataType.INTEGER),
        ("edgeType", DataType.TEXT),
        ("diffSummary", DataType.TEXT),
    ),
    # Engine bookkeeping, not a paper relation: persists counters like the
    # qid high-water mark so identifiers are never reused across restarts
    # of a durable store (removals would otherwise lower max(qid)).
    _schema("StoreMeta", ("key", DataType.TEXT), ("value", DataType.INTEGER)),
]


class QueryStore:
    """Query Storage: feature relations + the in-memory record index.

    With ``data_dir`` set the meta-database is durable: every shredded
    feature row goes through the write-ahead log, and reopening the same
    directory recovers the relations and rebuilds the in-memory record index
    from them — the paper's long-lived shared repository survives restarts.
    """

    def __init__(
        self,
        clock=None,
        plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE,
        exec_settings=None,
        data_dir: str | None = None,
        wal_sync: str = "batch",
        checkpoint_interval: int = 0,
        schema_columns: dict | None = None,
    ):
        if data_dir is not None:
            self._meta_db = Database.open(
                data_dir,
                name="query_storage",
                clock=clock,
                wal_sync=wal_sync,
                checkpoint_interval=checkpoint_interval,
                plan_cache_size=plan_cache_size,
                exec_settings=exec_settings,
            )
        else:
            self._meta_db = Database(
                name="query_storage",
                clock=clock,
                plan_cache_size=plan_cache_size,
                exec_settings=exec_settings,
            )
        #: Schema map of the *user* database, used to re-extract features
        #: when rebuilding the record index after recovery.
        self._schema_columns = dict(schema_columns or {})
        for table_schema in FEATURE_RELATIONS:
            # On a recovered data_dir the relations already exist.
            if not self._meta_db.has_table(table_schema.name):
                self._meta_db.create_table(table_schema)
        for table, column in (
            ("DataSources", "qid"),
            ("Attributes", "qid"),
            ("Predicates", "qid"),
            ("Projections", "qid"),
            ("Joins", "qid"),
            ("Queries", "qid"),
            ("RuntimeStats", "qid"),
            ("OutputSamples", "qid"),
            ("Annotations", "qid"),
            ("SessionEdges", "sessionId"),
            # Search columns of the Figure 1 meta-queries: the planner turns
            # equality conditions on these into IndexScans.
            ("DataSources", "relName"),
            ("Attributes", "attrName"),
            ("Attributes", "relName"),
            ("Predicates", "attrName"),
            ("Projections", "attrName"),
        ):
            self._meta_db.table(table).create_index(f"{table.lower()}_{column.lower()}", column)
        # Sorted indexes on the timestamp/counter columns the maintenance and
        # browsing meta-queries range over ("recent queries", "expensive
        # queries", session windows): the planner turns range predicates on
        # these into RangeScans and serves single-key ORDER BY without a sort.
        for table, column in (
            ("Queries", "ts"),
            ("Annotations", "ts"),
            ("Sessions", "startTs"),
            ("Sessions", "endTs"),
            ("Sessions", "numQueries"),
            ("RuntimeStats", "cardinality"),
            ("RuntimeStats", "rowsScanned"),
            ("RuntimeStats", "elapsedSeconds"),
        ):
            self._meta_db.table(table).create_index(
                f"{table.lower()}_{column.lower()}_sorted", column, kind="sorted"
            )
        self._records: dict[int, LoggedQuery] = {}
        # Secondary indexes so per-user / per-group lookups (called once per
        # recommendation) do not scan the whole log.
        self._qids_by_user: dict[str, set[int]] = {}
        self._qids_by_group: dict[str, set[int]] = {}
        self._telemetry = None
        self._next_qid = 1
        self._next_qid_row_id = self._init_store_meta()
        if data_dir is not None and len(self._meta_db.table("Queries")):
            self._rebuild_record_index()

    # -- basic access ---------------------------------------------------------

    @property
    def meta_database(self) -> Database:
        """The relational database holding the feature relations."""
        return self._meta_db

    def attach_telemetry(self, telemetry) -> None:
        """Attach an :class:`~repro.obs.telemetry.EngineTelemetry` bundle.

        The bundle instruments the meta-database (statement latency, operator
        counters) and receives the per-user / per-group workload series
        :meth:`add` maintains for the Workbench metrics panel.
        """
        self._telemetry = telemetry
        self._meta_db.attach_telemetry(telemetry)

    # -- durability lifecycle ----------------------------------------------------

    @property
    def is_durable(self) -> bool:
        return self._meta_db.is_durable

    def checkpoint(self) -> int:
        """Snapshot the meta-database and truncate its WAL (durable only)."""
        return self._meta_db.checkpoint()

    def close(self) -> None:
        """Flush the WAL and release the ``data_dir`` lock (idempotent)."""
        self._meta_db.close()

    def wal_stats(self):
        """WAL counters of the meta-database (None when in-memory)."""
        return self._meta_db.wal_stats()

    def buffer_stats(self):
        """Buffer-pool counters of the meta-database's page store."""
        return self._meta_db.buffer_stats()

    def checkpoint_if_due(self):
        """Checkpoint the meta-database when its interval is due; the
        off-statement-path entry point for schedulers."""
        return self._meta_db.checkpoint_if_due()

    def _rebuild_record_index(self) -> None:
        """Repopulate the in-memory :class:`LoggedQuery` index after recovery.

        The feature relations are the durable source of truth; the record
        objects are a cache over them.  Text, user/group, timestamps,
        validity, runtime statistics, annotations, and output samples come
        straight from the relations; syntactic features and canonical/template
        texts are re-extracted from the recovered query text (the same code
        path the profiler used to produce them).  Session membership is
        matched back from the ``Sessions`` time windows (same user, timestamp
        inside ``[startTs, endTs]``), so the per-session query counts stay
        consistent when a recovered query is later removed.  Output-sample
        cells come back as the TEXT the relation stores.
        """
        runtime_by_qid: dict[int, RuntimeStats] = {}
        for row in self._meta_db.table("RuntimeStats").rows():
            runtime_by_qid[row["qid"]] = RuntimeStats(
                elapsed_seconds=row["elapsedSeconds"] or 0.0,
                result_cardinality=row["cardinality"] or 0,
                rows_scanned=row["rowsScanned"] or 0,
                succeeded=bool(row["succeeded"]),
            )
        annotations_by_qid: dict[int, list[tuple[float, str]]] = {}
        for row in self._meta_db.table("Annotations").rows():
            annotations_by_qid.setdefault(row["qid"], []).append(
                (row["ts"] or 0.0, row["body"] or "")
            )
        samples_by_qid: dict[int, list[dict]] = {}
        for row in self._meta_db.table("OutputSamples").rows():
            samples_by_qid.setdefault(row["qid"], []).append(row)
        sessions_by_user: dict[str, list[tuple[float, float, int]]] = {}
        for row in self._meta_db.table("Sessions").rows():
            sessions_by_user.setdefault(row["userName"], []).append(
                (row["startTs"] or 0.0, row["endTs"] or 0.0, row["sessionId"])
            )

        queries = sorted(self._meta_db.table("Queries").rows(), key=lambda r: r["qid"])
        for row in queries:
            qid = row["qid"]
            record = LoggedQuery(
                qid=qid,
                user=row["userName"] or "",
                group=row["groupName"] or "",
                text=row["qText"] or "",
                timestamp=row["ts"] or 0.0,
                statement_kind=row["statementKind"] or "unknown",
                visibility=row["visibility"] or "group",
                flagged_invalid=not row["valid"],
                invalid_reason=row["invalidReason"],
                flag_count=row["flagCount"] or 0,
                runtime=runtime_by_qid.get(qid, RuntimeStats()),
            )
            try:
                parsed = parse(record.text)
                record.features = extract_features(parsed, self._schema_columns)
                record.canonical_text = canonical_text(parsed)
                record.template_text = canonical_text(parsed, strip_constants=True)
            except ReproError:
                record.canonical_text = " ".join(record.text.lower().split())
                record.template_text = record.canonical_text
            record.annotations = [
                body for _, body in sorted(annotations_by_qid.get(qid, []))
            ]
            record.output = self._rebuild_output_summary(
                samples_by_qid.get(qid), record.runtime.result_cardinality
            )
            for start, end, session_id in sessions_by_user.get(record.user, ()):
                if start <= record.timestamp <= end:
                    record.session_id = session_id
                    break
            self._records[qid] = record
            self._qids_by_user.setdefault(record.user, set()).add(qid)
            self._qids_by_group.setdefault(record.group, set()).add(qid)
        if self._records:
            # The StoreMeta high-water mark normally leads; max(qid)+1 is the
            # floor for stores created before the counter existed.
            self._next_qid = max(self._next_qid, max(self._records) + 1)

    @staticmethod
    def _rebuild_output_summary(
        sample_rows: list[dict] | None, result_cardinality: int
    ) -> OutputSummary | None:
        """Reassemble an :class:`OutputSummary` from its shredded cells.

        ``result_cardinality`` (from ``RuntimeStats``) is the query's true
        output size, so ``total_rows``/``complete`` mean the same thing they
        meant when the profiler built the original summary.  Cells are
        stored in a TEXT column, so numeric/boolean values are coerced back
        (best effort — a genuinely textual ``"18.5"`` is indistinguishable
        from the float) to keep query-by-data value matching working across
        restarts; NULL round-trips exactly.
        """
        if not sample_rows:
            return None
        columns: list[str] = []
        cells: dict[int, dict[str, object]] = {}
        for row in sample_rows:
            if row["rowIndex"] == 0 and row["columnName"] not in columns:
                columns.append(row["columnName"])
            cells.setdefault(row["rowIndex"], {})[row["columnName"]] = _parse_cell(
                row["cellValue"]
            )
        rows = [
            tuple(cells[index].get(column) for column in columns)
            for index in sorted(cells)
        ]
        total_rows = max(result_cardinality, len(rows))
        return OutputSummary(
            columns=columns,
            rows=rows,
            total_rows=total_rows,
            complete=len(rows) >= total_rows,
        )

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, qid: int) -> bool:
        return qid in self._records

    def next_qid(self) -> int:
        qid = self._next_qid
        self._next_qid += 1
        # Keep the durable high-water mark current: qids must stay unique
        # for the life of the store, not just of this process (max(qid)
        # over surviving rows would march backwards after removals).
        self._meta_db.table("StoreMeta").update(
            self._next_qid_row_id, {"value": self._next_qid}
        )
        return qid

    def _init_store_meta(self) -> int:
        """Load (or create) the persistent ``next_qid`` counter row."""
        table = self._meta_db.table("StoreMeta")
        for row_id, row in table.scan():
            if row["key"] == "next_qid":
                self._next_qid = max(self._next_qid, row["value"] or 1)
                return row_id
        return table.insert({"key": "next_qid", "value": self._next_qid})

    def get(self, qid: int) -> LoggedQuery:
        try:
            return self._records[qid]
        except KeyError:
            raise MetaQueryError(f"unknown query id {qid}") from None

    def all_queries(self) -> list[LoggedQuery]:
        """All logged queries in qid order."""
        return [self._records[qid] for qid in sorted(self._records)]

    def queries_of_user(self, user: str) -> list[LoggedQuery]:
        return [self._records[qid] for qid in sorted(self._qids_by_user.get(user, ()))]

    def queries_of_group(self, group: str) -> list[LoggedQuery]:
        return [self._records[qid] for qid in sorted(self._qids_by_group.get(group, ()))]

    def select_queries(self) -> list[LoggedQuery]:
        """Only SELECT statements (the ones mining and recommendation use)."""
        return [record for record in self.all_queries() if record.is_select]

    # -- ingest -----------------------------------------------------------------

    def add(self, record: LoggedQuery) -> None:
        """Insert a logged query and shred its features into the relations."""
        if record.qid in self._records:
            raise MetaQueryError(f"duplicate query id {record.qid}")
        self._records[record.qid] = record
        self._qids_by_user.setdefault(record.user, set()).add(record.qid)
        self._qids_by_group.setdefault(record.group, set()).add(record.qid)
        if self._telemetry is not None:
            registry = self._telemetry.registry
            registry.counter(
                "user_queries",
                "queries logged into the Query Storage, per user",
                user=record.user,
            ).inc()
            elapsed = record.runtime.elapsed_seconds if record.runtime else 0.0
            registry.histogram(
                "user_query_seconds",
                "logged-query latency as observed per user",
                user=record.user,
            ).observe(elapsed)
            registry.histogram(
                "group_query_seconds",
                "logged-query latency as observed per collaboration group",
                group=record.group,
            ).observe(elapsed)
            if not (record.runtime and record.runtime.succeeded):
                registry.counter(
                    "user_queries_failed",
                    "logged queries that failed, per user",
                    user=record.user,
                ).inc()
        self._meta_db.insert_rows(
            "Queries",
            [
                {
                    "qid": record.qid,
                    "qText": record.text,
                    "userName": record.user,
                    "groupName": record.group,
                    "ts": record.timestamp,
                    "statementKind": record.statement_kind,
                    "visibility": record.visibility,
                    "valid": not record.flagged_invalid,
                    "invalidReason": record.invalid_reason,
                    "flagCount": record.flag_count,
                }
            ],
        )
        if record.features is None:
            return
        features = record.features
        self._meta_db.insert_rows(
            "DataSources",
            [{"qid": record.qid, "relName": table} for table in features.tables],
        )
        self._meta_db.insert_rows(
            "Attributes",
            [
                {"qid": record.qid, "attrName": attribute, "relName": relation}
                for attribute, relation in features.attributes
            ],
        )
        self._meta_db.insert_rows(
            "Predicates",
            [
                {
                    "qid": record.qid,
                    "attrName": predicate.attribute,
                    "relName": predicate.relation,
                    "op": predicate.op,
                    "const": _constant_text(predicate.constant),
                }
                for predicate in features.predicates
            ],
        )
        self._meta_db.insert_rows(
            "Projections",
            [
                {"qid": record.qid, "attrName": attribute, "relName": relation}
                for attribute, relation in features.projections
            ],
        )
        self._meta_db.insert_rows(
            "Joins",
            [
                {
                    "qid": record.qid,
                    "leftRel": join.normalized().left_relation,
                    "leftAttr": join.normalized().left_attribute,
                    "rightRel": join.normalized().right_relation,
                    "rightAttr": join.normalized().right_attribute,
                }
                for join in features.joins
            ],
        )
        self._meta_db.insert_rows(
            "RuntimeStats",
            [
                {
                    "qid": record.qid,
                    "elapsedSeconds": record.runtime.elapsed_seconds,
                    "cardinality": record.runtime.result_cardinality,
                    "rowsScanned": record.runtime.rows_scanned,
                    "succeeded": record.runtime.succeeded,
                }
            ],
        )
        if record.output is not None and record.output.rows:
            sample_rows = []
            for row_index, row in enumerate(record.output.rows):
                for column_name, cell in zip(record.output.columns, row):
                    sample_rows.append(
                        {
                            "qid": record.qid,
                            "rowIndex": row_index,
                            "columnName": column_name,
                            "cellValue": _constant_text(cell),
                        }
                    )
            self._meta_db.insert_rows("OutputSamples", sample_rows)

    # -- annotations ----------------------------------------------------------------

    def add_annotation(self, qid: int, author: str, body: str, timestamp: float = 0.0) -> None:
        record = self.get(qid)
        record.annotations.append(body)
        self._meta_db.insert_rows(
            "Annotations",
            [{"qid": qid, "author": author, "ts": timestamp, "body": body}],
        )

    def annotations_for(self, qid: int) -> list[str]:
        return list(self.get(qid).annotations)

    # -- sessions ----------------------------------------------------------------------

    def record_sessions(self, sessions) -> None:
        """Persist mined sessions and their edges (replacing previous ones)."""
        self._meta_db.execute("DELETE FROM Sessions")
        self._meta_db.execute("DELETE FROM SessionEdges")
        session_rows = []
        edge_rows = []
        for session in sessions:
            session_rows.append(
                {
                    "sessionId": session.session_id,
                    "userName": session.user,
                    "startTs": session.start_time,
                    "endTs": session.end_time,
                    "numQueries": len(session.qids),
                }
            )
            for edge in session.edges:
                edge_rows.append(
                    {
                        "sessionId": session.session_id,
                        "fromQid": edge.from_qid,
                        "toQid": edge.to_qid,
                        "edgeType": edge.edge_type,
                        "diffSummary": edge.diff_summary,
                    }
                )
            for qid in session.qids:
                if qid in self._records:
                    self._records[qid].session_id = session.session_id
        if session_rows:
            self._meta_db.insert_rows("Sessions", session_rows)
        if edge_rows:
            self._meta_db.insert_rows("SessionEdges", edge_rows)

    # -- maintenance hooks -----------------------------------------------------------------

    def mark_invalid(self, qid: int, reason: str) -> None:
        """Flag a query invalid, composing ``reason`` with existing ones.

        Reasons are ``"; "``-joined and deduplicated, so linter-sourced and
        user/maintenance-sourced entries append instead of overwriting each
        other, and re-flagging with a known reason never grows the text.
        ``flag_count`` still advances on *every* call — it is the
        drop-after-N-flags counter of the maintenance policy, counting
        flagging events, not distinct reasons.
        """
        record = self.get(qid)
        reasons = [
            part for part in (record.invalid_reason or "").split("; ") if part
        ]
        for part in (piece.strip() for piece in reason.split("; ")):
            if part and part not in reasons:
                reasons.append(part)
        record.flagged_invalid = True
        record.invalid_reason = "; ".join(reasons) if reasons else reason
        record.flag_count += 1
        self._sync_validity(record)

    def mark_valid(self, qid: int) -> None:
        record = self.get(qid)
        record.flagged_invalid = False
        record.invalid_reason = None
        self._sync_validity(record)

    def lint_log(self, catalog=None, table_provider=None, mark: bool = True):
        """Run the SQL semantic linter over every logged query.

        Lints against ``catalog`` (a live user-database catalog, enabling the
        type- and index-aware rules; ``table_provider`` adds index lookups)
        or, absent one, the name-only ``schema_columns`` mapping this store
        was built with.  Returns ``{qid: [Diagnostic, ...]}`` for every query
        with findings.  With ``mark=True`` (the default), ERROR-severity
        findings auto-populate ``Queries.invalidReason`` via
        :meth:`mark_invalid` — composing with, never overwriting, existing
        reasons — while queries without errors are left untouched (a clean
        lint never clears a user-sourced flag).
        """
        from repro.analysis.framework import Severity
        from repro.analysis.sql_lint import SchemaView, SqlLinter

        if catalog is not None:
            view = SchemaView(catalog=catalog, table_provider=table_provider)
        elif self._schema_columns:
            view = SchemaView(schema_columns=self._schema_columns)
        else:
            raise MetaQueryError(
                "lint_log needs a catalog or a schema_columns mapping to lint against"
            )
        linter = SqlLinter(view)
        findings: dict[int, list] = {}
        for record in self.all_queries():
            diagnostics = linter.lint_sql(record.text, location=f"qid {record.qid}")
            if not diagnostics:
                continue
            findings[record.qid] = diagnostics
            if mark:
                errors = [d for d in diagnostics if d.severity is Severity.ERROR]
                if errors:
                    self.mark_invalid(
                        record.qid,
                        "; ".join(f"lint: {d.message}" for d in errors),
                    )
        return findings

    def _sync_validity(self, record: LoggedQuery) -> None:
        """Mirror the record's flag state into ``Queries`` (validity, reason,
        flag count) through the qid index, bypassing SQL parsing.  Keeping
        the relation authoritative means the maintenance drop-after-N-flags
        policy survives restarts of a durable store."""
        table = self._meta_db.table("Queries")
        for row_id in self._feature_row_ids(table, record.qid):
            table.update(
                row_id,
                {
                    "valid": not record.flagged_invalid,
                    "invalidReason": record.invalid_reason,
                    "flagCount": record.flag_count,
                },
            )

    def remove(self, qid: int) -> list[dict]:
        """Remove a query and all its shredded features.

        Session rows referencing the query are cleaned up too: its
        ``SessionEdges`` are deleted and the owning session's ``numQueries``
        is decremented, so meta-SQL over the session relations never sees
        edges pointing at a query that no longer exists.  Returns copies of
        the deleted edge rows (``replace_text`` restores them after a repair).
        """
        record = self.get(qid)
        del self._records[qid]
        self._qids_by_user.get(record.user, set()).discard(qid)
        self._qids_by_group.get(record.group, set()).discard(qid)
        for table_name in (
            "Queries",
            "DataSources",
            "Attributes",
            "Predicates",
            "Projections",
            "Joins",
            "RuntimeStats",
            "OutputSamples",
            "Annotations",
        ):
            table = self._meta_db.table(table_name)
            for row_id in self._feature_row_ids(table, qid):
                table.delete(row_id)
        edges = self._meta_db.table("SessionEdges")
        dangling = [
            (row_id, dict(row))
            for row_id, row in list(edges.scan())
            if row["fromQid"] == qid or row["toQid"] == qid
        ]
        for row_id, _ in dangling:
            edges.delete(row_id)
        if record.session_id is not None:
            self._adjust_session_count(record.session_id, -1)
        return [row for _, row in dangling]

    def _adjust_session_count(self, session_id: int, delta: int) -> None:
        """Shift a session's ``numQueries`` after adding/removing a member."""
        sessions = self._meta_db.table("Sessions")
        for row_id, row in list(sessions.scan()):
            if row["sessionId"] == session_id:
                sessions.update(
                    row_id,
                    {"numQueries": max(0, (row["numQueries"] or 0) + delta)},
                )
                break  # session ids are unique in the Sessions relation

    @staticmethod
    def _feature_row_ids(table, qid: int) -> list[int]:
        """Row ids of a feature relation's rows for ``qid`` (index-assisted)."""
        index = table.index_for("qid")
        if index is not None:
            return sorted(index.lookup(qid))
        return [row_id for row_id, row in table.scan() if row.get("qid") == qid]

    def replace_text(self, qid: int, new_text: str, features, canonical: str, template: str) -> None:
        """Replace a repaired query's text and re-shred its features.

        The repaired query keeps its identity: annotation rows, session
        edges, and the session membership captured before the remove/add
        cycle are restored afterwards — both on the in-memory record and in
        the feature relations, so meta-SQL over ``Annotations`` and
        ``SessionEdges`` stays consistent with the record index.
        """
        record = self.get(qid)
        annotations = list(record.annotations)
        annotation_rows = [
            dict(row) for row in self._meta_db.table("Annotations").lookup("qid", qid)
        ]
        session_id = record.session_id
        edge_rows = self.remove(qid)
        record.text = new_text
        record.features = features
        record.canonical_text = canonical
        record.template_text = template
        record.flagged_invalid = False
        record.invalid_reason = None
        record.annotations = []
        self.add(record)
        record.annotations = annotations
        record.session_id = session_id
        if annotation_rows:
            self._meta_db.insert_rows("Annotations", annotation_rows)
        if edge_rows:
            self._meta_db.insert_rows("SessionEdges", edge_rows)
        if session_id is not None:
            self._adjust_session_count(session_id, +1)

    # -- statistics --------------------------------------------------------------------------

    def popularity(self) -> dict[str, int]:
        """Number of logged queries per canonical text (duplicate = popular)."""
        counts: dict[str, int] = {}
        for record in self._records.values():
            if not record.canonical_text:
                continue
            counts[record.canonical_text] = counts.get(record.canonical_text, 0) + 1
        return counts

    def table_popularity(self) -> dict[str, int]:
        """Number of logged queries referencing each relation."""
        counts: dict[str, int] = {}
        for record in self._records.values():
            for table in set(record.tables):
                counts[table] = counts.get(table, 0) + 1
        return counts

    # -- meta SQL ------------------------------------------------------------------------------

    def execute_meta_sql(self, sql: str) -> QueryResult:
        """Run an arbitrary SQL meta-query over the feature relations.

        This is the paper's Figure 1 interface: meta-queries are plain SQL
        over ``Queries``, ``DataSources``, ``Attributes``, ``Predicates`` and
        the other feature relations.
        """
        return self._meta_db.execute(sql)

    def explain_meta_sql(self, sql: str, analyze: bool = False):
        """EXPLAIN (optionally ANALYZE) a SQL meta-query over the feature relations.

        Returns the engine's :class:`~repro.storage.planner.PlanExplanation`
        so users can see which access paths (e.g. the ``qid`` index scans)
        the meta-query will use; with ``analyze=True`` the meta-query is
        executed and every plan node carries its actual row count, batch
        count, and wall time.
        """
        return self._meta_db.explain(sql, analyze=analyze)

    def plan_cache_stats(self):
        """Plan-cache counters of the meta-database.

        The Figure 1 meta-queries are highly templated, so the hit rate here
        is the headline number for the Query Storage's planning overhead.
        """
        return self._meta_db.plan_cache_stats()


def _constant_text(value: object) -> str | None:
    """Render a predicate constant or output cell for storage in a TEXT column."""
    if value is None:
        return None
    if isinstance(value, (tuple, list)):
        return "(" + ", ".join(_constant_text(item) or "NULL" for item in value) + ")"
    return str(value)


def _parse_cell(text: object) -> object:
    """Best-effort inverse of :func:`_constant_text` for one output cell.

    Recovers the native types SQL cells can hold (bool, int, float) so that
    ``OutputSummary.contains``/``contains_value`` — which compare with ``==``
    against native values — keep matching after a durable store reopens.
    """
    if text is None or not isinstance(text, str):
        return text
    if text == "True":
        return True
    if text == "False":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text
