"""The Query Miner (paper Sections 3 and 4.3).

The miner runs in the background and extracts useful information from the
query log:

* **session identification** — segments each user's stream into query sessions
  and stores them (with diff-labelled edges) back into the Query Storage,
* **popularity statistics** — duplicate counting over canonical query texts
  and table usage counts,
* **association rules** — over table co-occurrence and feature tokens, feeding
  the context-aware completion engine,
* **query clustering** — groups queries by information goal using the weighted
  feature similarity (and can also cluster whole sessions),
* **edit-pattern mining** — counts the kinds of edits users make between
  consecutive queries in a session (the raw material for tutorials and better
  correction suggestions).

The miner is deliberately *not* incremental per query — the paper places such
heavier analyses in a periodic background component; :meth:`QueryMiner.run`
recomputes everything and is cheap at laptop scale, while
:meth:`QueryMiner.run_if_stale` gives the facade a simple periodic trigger.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core.config import CQMSConfig
from repro.core.query_store import QueryStore
from repro.core.records import LoggedQuery
from repro.core.sessions import QuerySession, SessionDetector
from repro.mining.association_rules import RuleIndex, mine_rules
from repro.mining.clustering import ClusteringResult, k_medoids
from repro.mining.similarity import weighted_feature_similarity


@dataclass
class MiningReport:
    """Everything the miner produced during one run."""

    num_queries: int = 0
    sessions: list[QuerySession] = field(default_factory=list)
    popularity: dict[str, int] = field(default_factory=dict)
    table_popularity: dict[str, int] = field(default_factory=dict)
    rule_index: RuleIndex | None = None
    query_clusters: ClusteringResult | None = None
    session_clusters: ClusteringResult | None = None
    edit_patterns: Counter = field(default_factory=Counter)

    @property
    def num_sessions(self) -> int:
        return len(self.sessions)

    @property
    def num_rules(self) -> int:
        return len(self.rule_index) if self.rule_index is not None else 0


class QueryMiner:
    """Periodic background analysis of the Query Storage."""

    def __init__(
        self,
        store: QueryStore,
        config: CQMSConfig | None = None,
        schema_columns: dict[str, set[str]] | None = None,
        max_cluster_items: int = 300,
    ):
        self._store = store
        self._config = config or CQMSConfig()
        self._schema_columns = schema_columns or {}
        self._max_cluster_items = max_cluster_items
        self._last_report: MiningReport | None = None
        self._last_run_size = -1

    # -- public API ---------------------------------------------------------------

    @property
    def last_report(self) -> MiningReport | None:
        return self._last_report

    def run(self, cluster: bool = True) -> MiningReport:
        """Run a full mining pass over the Query Storage."""
        records = [
            record
            for record in self._store.select_queries()
            if record.features is not None
        ]
        report = MiningReport(num_queries=len(records))

        report.sessions = self._detect_sessions(records)
        self._store.record_sessions(report.sessions)

        report.popularity = self._store.popularity()
        report.table_popularity = self._store.table_popularity()
        report.rule_index = self._mine_rules(records)
        report.edit_patterns = self._mine_edit_patterns(report.sessions)
        if cluster and records:
            report.query_clusters = self._cluster_queries(records)
            report.session_clusters = self._cluster_sessions(records, report.sessions)

        self._last_report = report
        self._last_run_size = len(self._store)
        return report

    def run_if_stale(self, min_new_queries: int = 25, cluster: bool = True) -> MiningReport | None:
        """Re-run only when enough new queries arrived since the last pass."""
        if self._last_run_size >= 0 and len(self._store) - self._last_run_size < min_new_queries:
            return None
        return self.run(cluster=cluster)

    # -- sessions -------------------------------------------------------------------

    def _detect_sessions(self, records: list[LoggedQuery]) -> list[QuerySession]:
        detector = SessionDetector(
            gap_seconds=self._config.session_gap_seconds,
            min_similarity=self._config.session_min_similarity,
            schema_columns=self._schema_columns,
        )
        return detector.detect(records)

    # -- association rules ----------------------------------------------------------

    def _mine_rules(self, records: list[LoggedQuery]) -> RuleIndex:
        transactions: list[list[str]] = []
        for record in records:
            features = record.features
            tokens = [f"table:{table}" for table in set(features.tables)]
            tokens += [
                f"pred:{predicate.relation}.{predicate.attribute}"
                for predicate in features.predicates
            ]
            transactions.append(tokens)
        rules = mine_rules(
            transactions,
            min_support=self._config.rule_min_support,
            min_confidence=self._config.rule_min_confidence,
            max_size=3,
        )
        return RuleIndex(rules)

    # -- clustering -------------------------------------------------------------------

    def _cluster_queries(self, records: list[LoggedQuery]) -> ClusteringResult:
        """Cluster distinct query templates by feature similarity."""
        by_template: dict[str, LoggedQuery] = {}
        for record in records:
            template = record.template_text or record.canonical_text or record.text
            by_template.setdefault(template, record)
        representatives = list(by_template.values())[: self._max_cluster_items]
        k = min(self._config.cluster_count, max(1, len(representatives)))
        return k_medoids(
            representatives,
            k=k,
            distance=self._query_distance,
            seed=0,
        )

    def _cluster_sessions(
        self, records: list[LoggedQuery], sessions: list[QuerySession]
    ) -> ClusteringResult | None:
        """Cluster sessions by the union of their member queries' features."""
        if not sessions:
            return None
        by_qid = {record.qid: record for record in records}
        session_profiles = []
        usable_sessions = []
        for session in sessions[: self._max_cluster_items]:
            tokens: set[str] = set()
            for qid in session.qids:
                record = by_qid.get(qid)
                if record is not None:
                    tokens.update(record.feature_tokens())
            if tokens:
                session_profiles.append(frozenset(tokens))
                usable_sessions.append(session)
        if not session_profiles:
            return None
        k = min(self._config.cluster_count, max(1, len(session_profiles)))
        result = k_medoids(session_profiles, k=k, distance=_token_set_distance, seed=0)
        # Attach the sessions as items so callers can map clusters back.
        result.items = usable_sessions
        return result

    def _query_distance(self, first: LoggedQuery, second: LoggedQuery) -> float:
        similarity = weighted_feature_similarity(
            first.feature_sets(), second.feature_sets(), self._config.feature_weights
        )
        return 1.0 - similarity

    # -- edit patterns ---------------------------------------------------------------------

    def _mine_edit_patterns(self, sessions: list[QuerySession]) -> Counter:
        """Frequencies of edit kinds across all session edges."""
        patterns: Counter = Counter()
        for session in sessions:
            for edge in session.edges:
                patterns[edge.edge_type] += 1
                for part in edge.diff_summary.split(", "):
                    if part and part != "none":
                        # Normalize "+2 pred" -> "+pred" so counts aggregate.
                        tokens = part.split()
                        if len(tokens) == 2:
                            patterns[f"{tokens[0][0]}{tokens[1]}"] += 1
        return patterns


def _token_set_distance(first: frozenset[str], second: frozenset[str]) -> float:
    if not first and not second:
        return 0.0
    union = first | second
    if not union:
        return 0.0
    return 1.0 - len(first & second) / len(union)
