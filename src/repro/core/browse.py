"""Search & Browse interaction support (paper Section 2.2).

The browser presents the query log "in a comprehensible, summarized format":
query sessions instead of individual queries, with edges describing how each
query differs from the previous one (Figure 2), plus ranked log listings.
Rendering to text/ASCII lives in :mod:`repro.client.render`; this module
produces the data structures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.access_control import AccessControl, Principal
from repro.core.query_store import QueryStore
from repro.core.ranking import RankingContext, RankingFunction
from repro.core.records import LoggedQuery
from repro.core.sessions import QuerySession


@dataclass
class SessionSummary:
    """A browsable summary of one query session (the Figure 2 content)."""

    session_id: int
    user: str
    start_time: float
    end_time: float
    num_queries: int
    final_query: str
    steps: list[str] = field(default_factory=list)
    annotations: list[str] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return max(0.0, self.end_time - self.start_time)


class QueryBrowser:
    """Read-only views over the query log, subject to access control."""

    def __init__(
        self,
        store: QueryStore,
        access_control: AccessControl,
        ranking: RankingFunction | None = None,
        clock=None,
    ):
        self._store = store
        self._access = access_control
        self._ranking = ranking or RankingFunction()
        self._clock = clock if clock is not None else (lambda: 0.0)

    # -- raw log ------------------------------------------------------------------

    def my_queries(self, principal: Principal | str, limit: int | None = None) -> list[LoggedQuery]:
        """The principal's own log, most recent first."""
        principal_obj = self._principal(principal)
        records = [
            record
            for record in self._store.all_queries()
            if record.user == principal_obj.name
        ]
        records.sort(key=lambda record: -record.timestamp)
        return records[:limit] if limit is not None else records

    def visible_queries(
        self, principal: Principal | str, limit: int | None = None
    ) -> list[LoggedQuery]:
        """Every query the principal may see, most recent first."""
        records = self._access.visible_queries(
            self._principal(principal), self._store.all_queries()
        )
        records.sort(key=lambda record: -record.timestamp)
        return records[:limit] if limit is not None else records

    def ranked_log(
        self, principal: Principal | str, limit: int = 20
    ) -> list[LoggedQuery]:
        """Visible queries ranked by the composite ranking (no similarity term)."""
        records = self._access.visible_queries(
            self._principal(principal), self._store.select_queries()
        )
        context = RankingContext.from_store(self._store, now=float(self._clock()))
        ranked = self._ranking.rank([(record, 0.0) for record in records], context, limit=limit)
        return [item.record for item in ranked]

    # -- sessions -------------------------------------------------------------------

    def sessions_of(
        self, principal: Principal | str, sessions: list[QuerySession], user: str | None = None
    ) -> list[QuerySession]:
        """Sessions visible to the principal (optionally of a specific user).

        A session is visible when *all* of its queries are visible — sessions
        mix consecutive thoughts of one analyst and should not leak partially.
        """
        principal_obj = self._principal(principal)
        visible = []
        for session in sessions:
            if user is not None and session.user != user:
                continue
            records = [self._store.get(qid) for qid in session.qids if qid in self._store]
            if records and all(self._access.can_see(principal_obj, record) for record in records):
                visible.append(session)
        return visible

    def summarize_session(self, session: QuerySession) -> SessionSummary:
        """Build the browsable summary of one session."""
        records = [self._store.get(qid) for qid in session.qids if qid in self._store]
        final_query = records[-1].describe(max_length=120) if records else ""
        steps: list[str] = []
        if records:
            steps.append(f"start: {records[0].describe(max_length=80)}")
        for edge in session.edges:
            steps.append(f"{edge.edge_type}: {edge.diff_summary}")
        annotations: list[str] = []
        for record in records:
            annotations.extend(record.annotations)
        return SessionSummary(
            session_id=session.session_id,
            user=session.user,
            start_time=session.start_time,
            end_time=session.end_time,
            num_queries=len(session.qids),
            final_query=final_query,
            steps=steps,
            annotations=annotations,
        )

    # -- helpers ---------------------------------------------------------------------

    def _principal(self, principal: Principal | str) -> Principal:
        if isinstance(principal, Principal):
            return principal
        return self._access.principal(principal)
