"""Administrative interaction (paper Section 2.4).

Two administrative roles exist:

* **User administration** — owners delete their queries, change their
  visibility, and grant/revoke access to specific colleagues.
* **System administration** — administrators tune CQMS parameters (ranking
  weights, feature weights, sample sizes), mark or delete obsolete queries,
  and trigger the background components (miner, maintenance) on demand.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.access_control import AccessControl, Principal, Visibility
from repro.core.config import CQMSConfig
from repro.core.maintenance import MaintenanceReport, QueryMaintenance
from repro.core.miner import MiningReport, QueryMiner
from repro.core.query_store import QueryStore
from repro.errors import AccessControlError


@dataclass
class StorageOverview:
    """A summary of the Query Storage state for the administrator dashboard."""

    num_queries: int = 0
    num_users: int = 0
    num_invalid: int = 0
    num_annotated: int = 0
    table_popularity: dict[str, int] = field(default_factory=dict)


class Administrator:
    """Administrative operations over the CQMS."""

    def __init__(
        self,
        store: QueryStore,
        access_control: AccessControl,
        config: CQMSConfig,
        miner: QueryMiner,
        maintenance: QueryMaintenance,
    ):
        self._store = store
        self._access = access_control
        self._config = config
        self._miner = miner
        self._maintenance = maintenance

    # -- user administration ------------------------------------------------------

    def delete_query(self, principal: Principal | str, qid: int) -> None:
        """Delete a query (owner or admin only)."""
        record = self._store.get(qid)
        self._access.require_owner_or_admin(principal, record)
        self._store.remove(qid)

    def set_visibility(self, principal: Principal | str, qid: int, visibility: str) -> None:
        """Change a query's visibility (owner or admin only)."""
        record = self._store.get(qid)
        self._access.require_owner_or_admin(principal, record)
        record.visibility = Visibility.parse(visibility).value
        self._store.meta_database.execute(
            f"UPDATE Queries SET visibility = '{record.visibility}' WHERE qid = {qid}"
        )

    def share_query(self, principal: Principal | str, qid: int, with_user: str) -> None:
        """Grant a specific user access to one query (owner or admin only)."""
        record = self._store.get(qid)
        self._access.require_owner_or_admin(principal, record)
        self._access.grant(qid, with_user)

    def unshare_query(self, principal: Principal | str, qid: int, with_user: str) -> None:
        record = self._store.get(qid)
        self._access.require_owner_or_admin(principal, record)
        self._access.revoke(qid, with_user)

    # -- system administration -------------------------------------------------------

    def _require_admin(self, principal: Principal | str) -> Principal:
        if isinstance(principal, str):
            principal = self._access.principal(principal)
        if not principal.is_admin:
            raise AccessControlError(f"{principal.name!r} is not an administrator")
        return principal

    def set_ranking_weight(self, principal: Principal | str, component: str, weight: float) -> None:
        """Adjust one component weight of the composite ranking function."""
        self._require_admin(principal)
        if not hasattr(self._config.ranking, component):
            raise ValueError(f"unknown ranking component {component!r}")
        if weight < 0:
            raise ValueError("ranking weights must be non-negative")
        setattr(self._config.ranking, component, float(weight))

    def set_feature_weight(self, principal: Principal | str, feature_class: str, weight: float) -> None:
        """Adjust (or zero out, i.e. exclude) a feature class in similarity."""
        self._require_admin(principal)
        if weight < 0:
            raise ValueError("feature weights must be non-negative")
        self._config.feature_weights[feature_class] = float(weight)

    def set_parameter(self, principal: Principal | str, name: str, value) -> None:
        """Set a scalar CQMS configuration parameter by name."""
        self._require_admin(principal)
        if not hasattr(self._config, name):
            raise ValueError(f"unknown configuration parameter {name!r}")
        setattr(self._config, name, value)
        self._config.validate()

    def run_miner(self, principal: Principal | str) -> MiningReport:
        """Run a mining pass immediately (instead of waiting for the period)."""
        self._require_admin(principal)
        return self._miner.run()

    def run_maintenance(self, principal: Principal | str) -> MaintenanceReport:
        """Run a schema-validity maintenance pass immediately."""
        self._require_admin(principal)
        return self._maintenance.check_schema_validity()

    def purge_invalid(self, principal: Principal | str) -> MaintenanceReport:
        """Drop queries that repeatedly failed validity checks."""
        self._require_admin(principal)
        return self._maintenance.drop_obsolete()

    def mark_obsolete(self, principal: Principal | str, qid: int, reason: str = "obsolete") -> None:
        """Manually flag a query as obsolete."""
        self._require_admin(principal)
        self._store.mark_invalid(qid, reason=reason)

    # -- dashboard --------------------------------------------------------------------

    def overview(self, principal: Principal | str) -> StorageOverview:
        """A summary of the Query Storage (admin only)."""
        self._require_admin(principal)
        records = self._store.all_queries()
        return StorageOverview(
            num_queries=len(records),
            num_users=len({record.user for record in records}),
            num_invalid=sum(1 for record in records if record.flagged_invalid),
            num_annotated=sum(1 for record in records if record.annotations),
            table_popularity=self._store.table_popularity(),
        )
