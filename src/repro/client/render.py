"""Text renderers for the CQMS client.

These functions turn CQMS data structures into the ASCII equivalents of the
paper's figures: the query-session window (Figure 2) and the assisted
query-composition panel (Figure 3).
"""

from __future__ import annotations

from repro.core.browse import SessionSummary
from repro.core.cqms import AssistResponse
from repro.core.records import LoggedQuery
from repro.core.recommender import Recommendation
from repro.core.sessions import QuerySession


def render_session_graph(
    session: QuerySession, store, max_width: int = 100
) -> str:
    """Render a session as a left-to-right chain of nodes with diff edges.

    This is the textual version of Figure 2: each node is a query of the
    session; each arrow is labelled with the difference from the previous
    query.
    """
    lines: list[str] = [
        f"Session {session.session_id} — {session.user} — "
        f"{len(session.qids)} queries over {session.duration:.0f}s"
    ]
    if not session.qids:
        return "\n".join(lines)
    first = store.get(session.qids[0])
    lines.append(f"  [q{first.qid}] {first.describe(max_width)}")
    edge_by_target = {edge.to_qid: edge for edge in session.edges}
    for qid in session.qids[1:]:
        record = store.get(qid)
        edge = edge_by_target.get(qid)
        label = edge.diff_summary if edge is not None else ""
        edge_type = edge.edge_type if edge is not None else "temporal"
        lines.append(f"    |--({edge_type}: {label})")
        lines.append(f"  [q{record.qid}] {record.describe(max_width)}")
    return "\n".join(lines)


def render_session_summary(summary: SessionSummary) -> str:
    """Render a :class:`~repro.core.browse.SessionSummary` as text."""
    lines = [
        f"Session {summary.session_id} by {summary.user}: "
        f"{summary.num_queries} queries, {summary.duration:.0f}s",
        f"  final: {summary.final_query}",
    ]
    for step in summary.steps:
        lines.append(f"  - {step}")
    for annotation in summary.annotations:
        lines.append(f"  note: {annotation}")
    return "\n".join(lines)


def render_recommendations(recommendations: list[Recommendation]) -> str:
    """Render the similar-queries table of the Figure 3 panel.

    Columns: Score | Query | Diff | Annotations.
    """
    header = f"{'Score':<7}| {'Query':<60}| {'Diff':<22}| Annotations"
    lines = [header, "-" * len(header)]
    for recommendation in recommendations:
        score, query, diff, annotations = recommendation.as_row()
        lines.append(f"{score:<7}| {query:<60}| {diff:<22}| {annotations}")
    return "\n".join(lines)


def render_assist_panel(partial_sql: str, response: AssistResponse) -> str:
    """Render the full Figure 3 panel: editor content, suggestions, similar queries."""
    lines = ["=== Query editor ===", partial_sql.rstrip() or "(empty)", ""]
    lines.append("--- Completions ---")
    for kind, suggestions in response.completions.items():
        if not suggestions:
            continue
        lines.append(f"{kind}:")
        for suggestion in suggestions:
            lines.append(f"  + {suggestion.text}   ({suggestion.score:.2f}, {suggestion.source})")
    lines.append("")
    lines.append("--- Corrections ---")
    if response.corrections:
        for correction in response.corrections:
            lines.append(f"  ! {correction}")
    else:
        lines.append("  (none)")
    lines.append("")
    lines.append("--- Similar queries ---")
    if response.similar_queries:
        lines.append(render_recommendations(response.similar_queries))
    else:
        lines.append("  (none)")
    return "\n".join(lines)


def render_plan(explanation, title: str = "Query plan") -> str:
    """Render a :class:`~repro.storage.planner.PlanExplanation` as text.

    Shows the operator tree the engine chose — access paths (``IndexScan`` vs
    ``SeqScan`` vs ``ParallelSeqScan``), join order and physical join
    operators, and the aggregation stage (``HashAggregate`` /
    ``SortedGroupAggregate`` with its estimated group count) — so users can
    see why a (meta-)query is fast or slow.  An analyzed explanation
    (EXPLAIN ANALYZE) is titled accordingly; its lines already carry the
    per-node actual rows/batches/times and the execution summary (including
    groups emitted and aggregation time for grouped queries).
    """
    if getattr(explanation, "analyzed", False):
        title += " (analyzed)"
    lines = [f"=== {title} ==="]
    lines.extend(explanation.lines)
    return "\n".join(lines)


def render_plan_cache(stats_by_engine: dict[str, object]) -> str:
    """Render plan-cache hit rates per engine (the Workbench status line).

    ``stats_by_engine`` maps an engine label to its
    :class:`~repro.storage.plan_cache.PlanCacheStats`.
    """
    lines = ["=== Plan cache ==="]
    for label, stats in stats_by_engine.items():
        lines.append(
            f"{label}: {stats.hit_rate:.0%} hit rate "
            f"({stats.hits} hits / {stats.lookups} lookups, "
            f"{stats.size}/{stats.capacity} plans cached, "
            f"invalidated ddl={stats.invalidated_ddl} drift={stats.invalidated_drift}, "
            f"statements {stats.statement_hits}/{stats.statement_lookups})"
        )
    return "\n".join(lines)


def render_durability(stats_by_engine: dict[str, object]) -> str:
    """Render WAL/checkpoint and buffer-pool activity per engine (the
    Workbench durability panel).

    ``stats_by_engine`` maps an engine label to its
    :class:`~repro.storage.wal.WalStats` (None for an in-memory engine — the
    panel makes it obvious which engines would survive a crash) or to its
    :class:`~repro.storage.buffer_pool.BufferPoolStats`, surfacing
    working-set pressure: a falling hit rate or climbing eviction count
    means the pool is too small for the hot set.
    """
    lines = ["=== Durability ==="]
    for label, stats in stats_by_engine.items():
        if stats is None:
            lines.append(f"{label}: in-memory (no write-ahead log)")
            continue
        if hasattr(stats, "sync_policy"):
            lines.append(
                f"{label}: wal sync={stats.sync_policy}, "
                f"{stats.records} records / {stats.bytes_written} bytes "
                f"({stats.records_since_checkpoint} since checkpoint), "
                f"{stats.syncs} fsyncs over {stats.flushes} group commits "
                f"(avg batch {stats.avg_batch_records:.1f}, max {stats.max_batch_records}), "
                f"{stats.checkpoints} checkpoints, last lsn {stats.last_lsn}"
            )
            continue
        capacity = "unbounded" if stats.capacity is None else str(stats.capacity)
        lines.append(
            f"{label}: {stats.resident}/{capacity} pages resident "
            f"({stats.dirty} dirty, {stats.pins} pinned), "
            f"hit rate {stats.hit_rate:.1%} ({stats.hits} hits / {stats.misses} misses), "
            f"{stats.evictions} evictions, {stats.writebacks} writebacks, "
            f"{stats.pages_allocated} pages ever allocated"
        )
    return "\n".join(lines)


def render_query_health(health: dict[str, dict[str, object]]) -> str:
    """Render the per-user query-health panel (the SQL linter's summary).

    ``health`` is :meth:`~repro.core.cqms.CQMS.query_health` output: per
    user, query and invalid-flag counts, lint finding counts by severity,
    and a few example findings (worst first).
    """
    lines = ["=== Query health ==="]
    if not health:
        lines.append("(no logged queries)")
        return "\n".join(lines)
    header = (
        f"{'user':<12}| {'queries':<8}| {'invalid':<8}| "
        f"{'errors':<7}| {'warnings':<9}| info"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for user in sorted(health):
        entry = health[user]
        lines.append(
            f"{user:<12}| {entry['queries']:<8}| {entry['flagged_invalid']:<8}| "
            f"{entry['errors']:<7}| {entry['warnings']:<9}| {entry['info']}"
        )
    for user in sorted(health):
        for example in health[user]["examples"]:
            lines.append(f"  {user}: {example}")
    return "\n".join(lines)


def render_metrics(registry, slow_queries=(), max_slow: int = 5) -> str:
    """Render the Workbench metrics panel from a
    :class:`~repro.obs.metrics.MetricsRegistry`.

    Latency histograms show their p50/p90/p99 deciles, counters and gauges
    their current value; the tail lists the slowest recent statements from
    the slow-query log (newest last).  This is the human view of the same
    data :meth:`~repro.core.cqms.CQMS.metrics_text` exposes for scraping.
    """
    from repro.obs.metrics import Histogram

    lines = ["=== Metrics ==="]
    histogram_lines: list[str] = []
    scalar_lines: list[str] = []
    for name, labels, instance in registry.series():
        label_text = ",".join(f"{key}={value}" for key, value in sorted(labels.items()))
        if isinstance(instance, Histogram):
            summary = instance.summary()
            histogram_lines.append(
                f"{name}{{{label_text}}}: "
                f"p50={summary['p50'] * 1000.0:.3f}ms "
                f"p90={summary['p90'] * 1000.0:.3f}ms "
                f"p99={summary['p99'] * 1000.0:.3f}ms "
                f"(n={int(summary['count'])})"
            )
        else:
            value = instance.value
            rendered = f"{value:g}" if value == int(value) else f"{value:.6g}"
            scalar_lines.append(f"{name}{{{label_text}}}: {rendered}")
    if histogram_lines:
        lines.append("-- latency --")
        lines.extend(histogram_lines)
    if scalar_lines:
        lines.append("-- counters & gauges --")
        lines.extend(scalar_lines)
    slow = list(slow_queries)
    if slow:
        lines.append(f"-- slow queries (last {min(len(slow), max_slow)}) --")
        for trace in slow[-max_slow:]:
            lines.append(f"{trace.total_seconds * 1000.0:.3f}ms  {trace.sql}")
    return "\n".join(lines)


def render_query_table(records: list[LoggedQuery], max_width: int = 70) -> str:
    """Render a list of logged queries as a table (the browse log view)."""
    header = f"{'qid':<6}| {'user':<10}| {'when':<10}| {'card.':<7}| query"
    lines = [header, "-" * len(header)]
    for record in records:
        lines.append(
            f"{record.qid:<6}| {record.user:<10}| {record.timestamp:<10.0f}| "
            f"{record.runtime.result_cardinality:<7}| {record.describe(max_width)}"
        )
    return "\n".join(lines)
