"""The CQMS client: programmatic workbench plus text renderers.

The paper envisions an IDE-like graphical client (Section 4.5); this package
is its programmatic and text-mode equivalent:

* :mod:`repro.client.workbench` — an interactive editing session object that
  tracks what the user is typing, queries the CQMS for completions,
  corrections, and similar queries, and submits finished queries,
* :mod:`repro.client.render` — ASCII renderers for the Figure 2 session graph
  and the Figure 3 assisted-interaction panel, plus tabular log views.
"""

from repro.client.workbench import Workbench
from repro.client.render import (
    render_assist_panel,
    render_session_graph,
    render_query_table,
    render_recommendations,
)

__all__ = [
    "Workbench",
    "render_assist_panel",
    "render_session_graph",
    "render_query_table",
    "render_recommendations",
]
