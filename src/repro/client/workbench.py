"""The programmatic CQMS client: an interactive query-editing session.

The :class:`Workbench` models the assisted-interaction client of Figure 3 as
an object a script (or a test, or a benchmark) can drive: the user "types"
into it, asks for assistance, applies suggestions, and finally submits the
query.  All server communication goes through the public :class:`~repro.core.cqms.CQMS`
API, so the workbench exercises exactly the interface a GUI client would.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.client.render import (
    render_assist_panel,
    render_durability,
    render_metrics,
    render_plan,
    render_plan_cache,
    render_query_health,
)
from repro.core.cqms import CQMS, AssistResponse
from repro.core.profiler import ProfiledExecution
from repro.core.recommender import Recommendation


@dataclass
class WorkbenchEvent:
    """One step of the editing history (used by tests and demos)."""

    kind: str          # "type" | "assist" | "apply" | "explain" | "submit"
    detail: str


@dataclass
class Workbench:
    """An editing session of one user against a CQMS instance."""

    cqms: CQMS
    user: str
    buffer: str = ""
    history: list[WorkbenchEvent] = field(default_factory=list)
    last_response: AssistResponse | None = None

    # -- editing -------------------------------------------------------------

    def type(self, text: str) -> "Workbench":
        """Append text to the editor buffer (chainable)."""
        self.buffer += text
        self.history.append(WorkbenchEvent(kind="type", detail=text))
        return self

    def clear(self) -> "Workbench":
        self.buffer = ""
        self.history.append(WorkbenchEvent(kind="type", detail="<clear>"))
        return self

    # -- assistance -------------------------------------------------------------

    def assist(self, k: int = 3) -> AssistResponse:
        """Ask the CQMS for completions / corrections / similar queries."""
        self.last_response = self.cqms.assist(self.user, self.buffer, k=k)
        self.history.append(WorkbenchEvent(kind="assist", detail=self.buffer))
        return self.last_response

    def panel(self, k: int = 3) -> str:
        """The rendered Figure 3 panel for the current buffer."""
        response = self.assist(k=k)
        return render_assist_panel(self.buffer, response)

    def apply_table_suggestion(self, index: int = 0) -> "Workbench":
        """Append the index-th suggested table to the FROM clause."""
        response = self.last_response or self.assist()
        tables = response.completions.get("tables", [])
        if not tables or index >= len(tables):
            return self
        suggestion = tables[index]
        separator = ", " if self.buffer.rstrip().lower().split()[-1:] != ["from"] else " "
        if self.buffer.rstrip().endswith(","):
            separator = " "
        self.buffer = self.buffer.rstrip() + separator + suggestion.text
        self.history.append(WorkbenchEvent(kind="apply", detail=suggestion.text))
        return self

    def apply_correction(self, index: int = 0) -> "Workbench":
        """Apply the index-th name correction to the buffer."""
        response = self.last_response or self.assist()
        if not response.corrections or index >= len(response.corrections):
            return self
        correction = response.corrections[index]
        original = correction.original.split(".")[-1]
        replacement = correction.suggestion.split(".")[-1]
        self.buffer = _replace_word(self.buffer, original, replacement)
        self.history.append(WorkbenchEvent(kind="apply", detail=str(correction)))
        return self

    def recommendations(self, k: int = 5) -> list[Recommendation]:
        """Similar-query recommendations for the current buffer."""
        return self.cqms.recommend(self.user, self.buffer, k=k)

    def explain(self, analyze: bool = False) -> str:
        """The rendered execution plan of the buffer.

        With ``analyze=True`` (EXPLAIN ANALYZE) the buffer is executed and the
        plan shows each node's actual rows, batches, and wall time.
        """
        explanation = self.cqms.explain(self.user, self.buffer, analyze=analyze)
        self.history.append(WorkbenchEvent(kind="explain", detail=self.buffer))
        return render_plan(explanation)

    def explain_meta(self, meta_sql: str, analyze: bool = False) -> str:
        """The rendered plan of a SQL meta-query over the Query Storage."""
        explanation = self.cqms.explain_meta(self.user, meta_sql, analyze=analyze)
        self.history.append(WorkbenchEvent(kind="explain", detail=meta_sql))
        return render_plan(explanation, title="Meta-query plan")

    def plan_cache_panel(self) -> str:
        """Rendered plan-cache hit rates of both engines (DBMS + Query Storage)."""
        return render_plan_cache(self.cqms.plan_cache_stats())

    def durability_panel(self) -> str:
        """Rendered WAL/checkpoint activity of both engines.

        Shows which engines are durable, their sync policy, group-commit
        batch sizes, and how much log has accumulated since the last
        checkpoint — the at-a-glance answer to "what survives a crash?".
        """
        return render_durability(self.cqms.durability_stats())

    def metrics_panel(self) -> str:
        """Rendered engine telemetry: latency deciles, counters, slow queries.

        Requires ``config.telemetry_enabled`` (the default).  Mirrors
        (plan cache, WAL, buffer pool) are refreshed via
        :meth:`~repro.core.cqms.CQMS.metrics_text` semantics first so the
        panel shows a consistent snapshot.
        """
        if self.cqms.metrics is None:
            return "=== Metrics ===\n(telemetry disabled)"
        self.cqms.telemetry.sync_engine(self.cqms.database)
        self.cqms.store_telemetry.sync_engine(self.cqms.store.meta_database)
        return render_metrics(self.cqms.metrics, self.cqms.slow_queries())

    def query_health_panel(self) -> str:
        """Rendered per-user lint summary of the shared query log.

        The SQL semantic linter's view of everyone's stored queries: counts
        by severity, how many queries are flagged invalid, and example
        findings — the panel that turns ``Queries.invalidReason`` from a
        manually-set attribute into something the system maintains.
        """
        return render_query_health(self.cqms.query_health())

    # -- submission ------------------------------------------------------------------

    def submit(self) -> ProfiledExecution:
        """Submit the buffer as a query (Traditional Interaction Mode)."""
        execution = self.cqms.submit(self.user, self.buffer)
        self.history.append(WorkbenchEvent(kind="submit", detail=self.buffer))
        return execution

    def adopt_recommendation(self, recommendation: Recommendation) -> "Workbench":
        """Replace the buffer with a recommended query (re-use an old analysis)."""
        self.buffer = recommendation.record.text
        self.history.append(
            WorkbenchEvent(kind="apply", detail=f"adopt q{recommendation.record.qid}")
        )
        return self


def _replace_word(text: str, old: str, new: str) -> str:
    import re

    return re.sub(rf"\b{re.escape(old)}\b", new, text, flags=re.IGNORECASE)
