"""Metrics primitives: counters, gauges, latency histograms, and a registry.

The engine accumulated rich internal counters over nine PRs — plan-cache
hits, WAL records, buffer-pool residency, ``kernel_seconds`` — but each
lived behind its own ad-hoc stats dataclass with no uniform way to export,
aggregate, or alert on them.  This module is the missing substrate:

* :class:`Counter` — a monotonically increasing count (``queries_total``),
* :class:`Gauge` — a value that goes both ways (``buffer_resident_pages``),
* :class:`Histogram` — fixed-bucket latency distribution with cumulative
  bucket counts and linear-interpolation quantile readout (p50/p90/p99),
* :class:`MetricsRegistry` — the namespace that owns every series and
  renders them in the Prometheus text exposition format.

Time discipline mirrors the engine's ``clock.py`` contract: *timestamps*
come from an injectable clock (a :class:`~repro.clock.SimulatedClock` in
deterministic tests), *durations* from an injectable monotonic timer that
defaults to :func:`engine_timer` — the one sanctioned wall-duration source
the hazard lint recognizes (see ``repro.analysis.hazard_lint``, rule
``wall-clock``).  This module deliberately imports nothing from the rest of
the package so the storage layer below ``core`` may depend on it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterator

#: The sanctioned engine duration source: every subsystem that times work
#: (executor seconds, histogram observations, trace spans) reads this one
#: monotonic timer unless a registry injects a deterministic replacement.
engine_timer: Callable[[], float] = time.perf_counter

#: Default latency bucket upper bounds (seconds).  Sub-millisecond statements
#: dominate this engine, so the ladder starts at 100µs and climbs roughly
#: geometrically to 10s; observations beyond the last bound land in +Inf.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: The decile-style readout every latency histogram reports.
SUMMARY_QUANTILES: tuple[float, ...] = (0.5, 0.9, 0.99)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def format_labels(labels: dict[str, str]) -> str:
    """Render a label set as ``{k="v",...}`` (empty string for no labels)."""
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(str(value))}"' for key, value in labels.items()
    )
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing series.

    ``inc`` is the native write path; ``set_total`` exists for mirroring an
    external monotonic source (the engine's legacy stats dataclasses) into
    the registry — it clamps downward movement to keep the series honest.
    """

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for deltas")
        self.value += amount

    def set_total(self, total: float) -> None:
        """Adopt an externally tracked running total (never moves backward)."""
        if total > self.value:
            self.value = float(total)


class Gauge:
    """A series that can go up and down (sizes, residency, watermarks)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket distribution with quantile estimation.

    Buckets are cumulative at render time (Prometheus ``le`` semantics) but
    stored per-interval; :meth:`quantile` walks the intervals and linearly
    interpolates inside the one containing the requested rank, which is
    exact enough for decile readouts over microsecond-to-second latency
    ladders (and is how Prometheus' own ``histogram_quantile`` works).
    """

    __slots__ = ("bounds", "bucket_counts", "total", "sum")

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS):
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ValueError("histogram buckets must be strictly increasing")
        self.bounds = tuple(float(bound) for bound in buckets)
        self.bucket_counts = [0] * (len(self.bounds) + 1)  # last slot = +Inf
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.total += 1
        self.sum += value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    def quantile(self, q: float) -> float:
        """Estimated value at quantile ``q`` in [0, 1] (0.0 when empty).

        Interpolates linearly inside the bucket holding the target rank;
        ranks landing in the +Inf bucket report the last finite bound (the
        distribution's observable ceiling).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.total == 0:
            return 0.0
        target = q * self.total
        cumulative = 0
        lower = 0.0
        for index, bound in enumerate(self.bounds):
            count = self.bucket_counts[index]
            if cumulative + count >= target:
                if count == 0:
                    return bound
                fraction = (target - cumulative) / count
                return lower + (bound - lower) * fraction
            cumulative += count
            lower = bound
        return self.bounds[-1] if self.bounds else 0.0

    def summary(self) -> dict[str, float]:
        """The standard decile readout: p50/p90/p99 plus count and mean."""
        readout = {
            f"p{int(q * 100)}": self.quantile(q) for q in SUMMARY_QUANTILES
        }
        readout["count"] = float(self.total)
        readout["mean"] = self.sum / self.total if self.total else 0.0
        return readout


#: Metric kinds the registry knows how to create and render.
_KINDS = ("counter", "gauge", "histogram")


@dataclass
class _Family:
    """One named metric family: shared HELP/TYPE, children per label set."""

    name: str
    kind: str
    help: str
    label_names: tuple[str, ...]
    buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS

    def __post_init__(self):
        self.children: dict[tuple[str, ...], object] = {}

    def child(self, label_values: tuple[str, ...]):
        instance = self.children.get(label_values)
        if instance is None:
            if self.kind == "counter":
                instance = Counter()
            elif self.kind == "gauge":
                instance = Gauge()
            else:
                instance = Histogram(self.buckets)
            self.children[label_values] = instance
        return instance

    def labels_of(self, label_values: tuple[str, ...]) -> dict[str, str]:
        return dict(zip(self.label_names, label_values))


class MetricsRegistry:
    """The engine-wide metric namespace.

    Every series lives under one ``namespace_`` prefix and must carry at
    least one label (the exposition lint enforces this: an unlabelled engine
    series is almost always missing its ``engine=`` dimension and collides
    the moment a second database attaches).  Counter names are normalized to
    the Prometheus ``_total`` suffix.

    ``clock`` supplies *timestamps* (injectable, defaults to None — the
    registry then simply reports no scrape timestamp), ``timer`` supplies
    *durations* for :meth:`time_block` and everything built on top of it.
    """

    def __init__(
        self,
        namespace: str = "repro",
        clock: Callable[[], float] | None = None,
        timer: Callable[[], float] | None = None,
    ):
        if not namespace.isidentifier():
            raise ValueError(f"invalid metric namespace {namespace!r}")
        self.namespace = namespace
        self.clock = clock
        self.timer = timer if timer is not None else engine_timer
        self._families: dict[str, _Family] = {}

    # -- family creation ------------------------------------------------------

    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        labels: dict[str, str],
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> _Family:
        if kind not in _KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        if not labels:
            raise ValueError(f"metric {name!r} must carry at least one label")
        full = name if name.startswith(self.namespace + "_") else f"{self.namespace}_{name}"
        if kind == "counter" and not full.endswith("_total"):
            full += "_total"
        label_names = tuple(sorted(labels))
        family = self._families.get(full)
        if family is None:
            family = _Family(
                name=full, kind=kind, help=help, label_names=label_names, buckets=buckets
            )
            self._families[full] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric {full!r} already registered as {family.kind}, not {kind}"
            )
        elif family.label_names != label_names:
            raise ValueError(
                f"metric {full!r} label names {family.label_names} != {label_names}"
            )
        return family

    def _child(self, family: _Family, labels: dict[str, str]):
        return family.child(tuple(str(labels[name]) for name in family.label_names))

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        """Get-or-create the counter child for this name + label set."""
        return self._child(self._family(name, "counter", help, labels), labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._child(self._family(name, "gauge", help, labels), labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
        **labels: str,
    ) -> Histogram:
        return self._child(
            self._family(name, "histogram", help, labels, buckets=buckets), labels
        )

    # -- timing ---------------------------------------------------------------

    def time_block(self, histogram: Histogram) -> "_Timer":
        """Context manager observing the block's duration into ``histogram``."""
        return _Timer(self.timer, histogram)

    # -- introspection --------------------------------------------------------

    def series(self) -> Iterator[tuple[str, dict[str, str], object]]:
        """Every ``(family name, labels, instance)`` series, render order."""
        for name in sorted(self._families):
            family = self._families[name]
            for label_values in sorted(family.children):
                yield name, family.labels_of(label_values), family.children[label_values]

    def series_count(self) -> int:
        """Distinct (name, label set) series — histograms count once, not
        once per bucket sample."""
        return sum(len(family.children) for family in self._families.values())

    def find_histogram(self, name: str, **labels: str) -> Histogram | None:
        """The existing histogram child for this name + labels, or None."""
        full = name if name.startswith(self.namespace + "_") else f"{self.namespace}_{name}"
        family = self._families.get(full)
        if family is None or family.kind != "histogram":
            return None
        try:
            key = tuple(str(labels[label]) for label in family.label_names)
        except KeyError:
            return None
        return family.children.get(key)

    # -- exposition -----------------------------------------------------------

    def render(self) -> str:
        """The Prometheus text exposition format (``text/plain; version=0.0.4``)."""
        lines: list[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            help_text = family.help or name.replace("_", " ")
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {family.kind}")
            for label_values in sorted(family.children):
                labels = family.labels_of(label_values)
                instance = family.children[label_values]
                if family.kind == "histogram":
                    cumulative = 0
                    for index, bound in enumerate(instance.bounds):
                        cumulative += instance.bucket_counts[index]
                        bucket_labels = dict(labels)
                        bucket_labels["le"] = _format_value(bound)
                        lines.append(
                            f"{name}_bucket{format_labels(bucket_labels)} {cumulative}"
                        )
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = "+Inf"
                    lines.append(
                        f"{name}_bucket{format_labels(bucket_labels)} {instance.total}"
                    )
                    lines.append(
                        f"{name}_sum{format_labels(labels)} {_format_value(instance.sum)}"
                    )
                    lines.append(f"{name}_count{format_labels(labels)} {instance.total}")
                else:
                    lines.append(
                        f"{name}{format_labels(labels)} {_format_value(instance.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")


class _Timer:
    """``with registry.time_block(h):`` — observes the elapsed duration."""

    __slots__ = ("_timer", "_histogram", "_started")

    def __init__(self, timer: Callable[[], float], histogram: Histogram):
        self._timer = timer
        self._histogram = histogram
        self._started = 0.0

    def __enter__(self) -> "_Timer":
        self._started = self._timer()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._histogram.observe(max(0.0, self._timer() - self._started))
