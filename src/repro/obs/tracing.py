"""Per-query tracing: structured spans and the slow-query ring buffer.

A :class:`Trace` records one statement's pipeline as spans — parse → plan
(with its cache-lookup verdict) → execute, plus one span per plan operator
when the engine runs with ``trace_operators`` (the spans then carry the
``NodeStats`` actuals EXPLAIN ANALYZE already measures).  Traces are cheap
enough to build always-on: a handful of tuples per statement, no string
formatting until :meth:`Trace.render` is asked for.

The :class:`SlowQueryLog` keeps the last N traces whose total latency
crossed a configurable threshold — the first place an operator looks when
the p99 histogram moves.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.obs.metrics import engine_timer


@dataclass
class Span:
    """One timed step of a statement's execution."""

    name: str
    started: float
    duration_seconds: float = 0.0
    meta: dict[str, object] = field(default_factory=dict)

    def describe(self) -> str:
        extra = ""
        if self.meta:
            pairs = " ".join(f"{key}={value}" for key, value in sorted(self.meta.items()))
            extra = f" ({pairs})"
        return f"{self.name}: {self.duration_seconds * 1000.0:.3f}ms{extra}"


class Trace:
    """The span tree (flat, pipeline-ordered) of one executed statement."""

    __slots__ = ("sql", "timestamp", "spans", "total_seconds", "_timer")

    def __init__(
        self,
        sql: str,
        timestamp: float = 0.0,
        timer: Callable[[], float] | None = None,
    ):
        self.sql = sql
        self.timestamp = timestamp
        self.spans: list[Span] = []
        self.total_seconds = 0.0
        self._timer = timer if timer is not None else engine_timer

    def span(self, name: str, **meta: object) -> "_SpanTimer":
        """``with trace.span("parse"):`` — appends a timed span on exit."""
        return _SpanTimer(self, name, meta)

    def add_span(
        self, name: str, duration_seconds: float, **meta: object
    ) -> Span:
        """Append a span whose duration was measured elsewhere
        (per-operator ``NodeStats`` actuals)."""
        span = Span(
            name=name,
            started=self._timer(),
            duration_seconds=duration_seconds,
            meta=meta,
        )
        self.spans.append(span)
        return span

    def render(self) -> str:
        lines = [f"trace [{self.total_seconds * 1000.0:.3f}ms] {self.sql}"]
        lines.extend(f"  {span.describe()}" for span in self.spans)
        return "\n".join(lines)


class _SpanTimer:
    __slots__ = ("_trace", "_name", "_meta", "_started")

    def __init__(self, trace: Trace, name: str, meta: dict[str, object]):
        self._trace = trace
        self._name = name
        self._meta = meta
        self._started = 0.0

    def __enter__(self) -> "_SpanTimer":
        self._started = self._trace._timer()
        return self

    def __setitem__(self, key: str, value: object) -> None:
        """Attach metadata discovered inside the block (cache verdicts)."""
        self._meta[key] = value

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = max(0.0, self._trace._timer() - self._started)
        if exc_type is not None:
            self._meta.setdefault("error", exc_type.__name__)
        self._trace.spans.append(
            Span(
                name=self._name,
                started=self._started,
                duration_seconds=duration,
                meta=self._meta,
            )
        )


class SlowQueryLog:
    """Ring buffer of the slowest recent statements.

    ``threshold_seconds`` keys admission: a trace whose total latency is
    below it is dropped on the floor (the log is for outliers, not a second
    query log).  Capacity-bounded, oldest evicted first.
    """

    def __init__(self, capacity: int = 128, threshold_seconds: float = 1.0):
        if capacity < 1:
            raise ValueError("slow-query log capacity must be at least 1")
        if threshold_seconds < 0:
            raise ValueError("slow-query threshold must be non-negative")
        self.threshold_seconds = threshold_seconds
        self._entries: deque[Trace] = deque(maxlen=capacity)
        self.admitted = 0
        self.observed = 0

    def offer(self, trace: Trace) -> bool:
        """Record the trace if it crossed the threshold; True when kept."""
        self.observed += 1
        if trace.total_seconds < self.threshold_seconds:
            return False
        self.admitted += 1
        self._entries.append(trace)
        return True

    def entries(self) -> list[Trace]:
        """Newest-last traces currently retained."""
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)
