"""The per-engine telemetry bundle the storage layer reports into.

:class:`EngineTelemetry` owns nothing exotic — it is a
:class:`~repro.obs.metrics.MetricsRegistry` (usually shared between the
user database and the Query Storage, distinguished by the ``engine``
label), a :class:`~repro.obs.tracing.SlowQueryLog`, and the handful of
observation methods ``Database.execute`` calls per statement.  Keeping the
methods here — rather than scattering ``registry.counter(...)`` calls
through the storage layer — pins the metric naming scheme in one place:

* every series carries the ``engine`` label (``database`` /
  ``query_storage``),
* counters end in ``_total`` and only go up; engine-internal running
  totals (ExecutorMetrics, PlanCacheStats, WalStats, BufferPoolStats) are
  mirrored with ``set_total``/``set`` at scrape time,
* latencies are histograms over the shared
  :data:`~repro.obs.metrics.DEFAULT_LATENCY_BUCKETS` ladder with
  p50/p90/p99 readout.

The module is duck-typed against the engine's stats dataclasses on purpose:
``obs`` sits *below* ``storage`` in the import order so the storage layer
may depend on it.
"""

from __future__ import annotations

from typing import Callable

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.tracing import SlowQueryLog, Trace


class EngineTelemetry:
    """Metrics + tracing attachment point for one database engine."""

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        engine: str = "database",
        clock: Callable[[], float] | None = None,
        timer: Callable[[], float] | None = None,
        slow_query_threshold_seconds: float = 1.0,
        slow_query_log_size: int = 128,
        trace_operators: bool = False,
    ):
        self.registry = registry or MetricsRegistry(clock=clock, timer=timer)
        self.engine = engine
        self.slow_queries = SlowQueryLog(
            capacity=slow_query_log_size,
            threshold_seconds=slow_query_threshold_seconds,
        )
        #: When True, regular execution collects per-operator NodeStats and
        #: reports them as trace spans + per-operator latency histograms
        #: (the EXPLAIN ANALYZE machinery, always on — costs a few percent).
        self.trace_operators = trace_operators
        self._clock = clock
        self.last_trace: Trace | None = None

    # -- time sources ---------------------------------------------------------

    @property
    def timer(self) -> Callable[[], float]:
        """The duration source every instrumented site shares."""
        return self.registry.timer

    def timestamp(self) -> float:
        """An injectable-clock timestamp (0.0 when no clock was provided)."""
        if self._clock is not None:
            return float(self._clock())
        return 0.0

    # -- per-statement observation --------------------------------------------

    def statement_histogram(self) -> Histogram:
        return self.registry.histogram(
            "statement_seconds",
            "wall latency of executed statements",
            engine=self.engine,
        )

    def begin_trace(self, sql: str) -> Trace:
        return Trace(sql=sql, timestamp=self.timestamp(), timer=self.timer)

    def observe_statement(
        self,
        kind: str,
        wall_seconds: float,
        stats: object | None = None,
        trace: Trace | None = None,
    ) -> None:
        """Record one completed statement (called by ``Database.execute``)."""
        self.registry.counter(
            "statements",
            "statements executed, by statement kind",
            engine=self.engine,
            kind=kind,
        ).inc()
        self.statement_histogram().observe(wall_seconds)
        if stats is not None:
            self._mirror_execution_stats(stats)
        if trace is not None:
            trace.total_seconds = wall_seconds
            self.last_trace = trace
            self.slow_queries.offer(trace)

    def statement_failed(self, error: str) -> None:
        self.registry.counter(
            "statements_failed",
            "statements that raised, by error class",
            engine=self.engine,
            error=error,
        ).inc()

    def statement_timed_out(self) -> None:
        self.registry.counter(
            "queries_timed_out",
            "statements cancelled at a batch boundary by their timeout budget",
            engine=self.engine,
        ).inc()

    def _mirror_execution_stats(self, stats: object) -> None:
        """Accumulate one statement's ExecutionStats counters."""
        for field_name, metric, help_text in (
            ("rows_scanned", "rows_scanned", "rows fetched by access paths"),
            ("rows_joined", "rows_joined", "rows produced by join operators"),
            ("result_cardinality", "rows_output", "rows returned to clients"),
            ("index_lookups", "index_lookups", "index probes performed"),
            ("batches", "exec_batches", "operator batches consumed"),
            ("columnar_batches", "columnar_batches", "columnar batches built"),
            ("groups_emitted", "groups_emitted", "aggregation groups formed"),
        ):
            amount = getattr(stats, field_name, 0) or 0
            if amount:
                self.registry.counter(metric, help_text, engine=self.engine).inc(amount)
        for field_name, metric, help_text in (
            ("agg_seconds", "agg_seconds", "seconds inside the aggregation stage"),
            ("kernel_seconds", "kernel_seconds", "seconds inside columnar kernels"),
        ):
            amount = getattr(stats, field_name, 0.0) or 0.0
            if amount:
                self.registry.counter(metric, help_text, engine=self.engine).inc(amount)

    # -- per-operator observation ---------------------------------------------

    def observe_operators(self, labeled_stats: list[tuple[str, object]]) -> None:
        """Record per-operator actuals (``(operator name, NodeStats)``)."""
        for op_name, stats in labeled_stats:
            wall = getattr(stats, "wall_seconds", 0.0)
            rows = getattr(stats, "rows", 0)
            self.registry.histogram(
                "operator_seconds",
                "inclusive wall time per plan operator execution",
                engine=self.engine,
                op=op_name,
            ).observe(wall)
            if rows:
                self.registry.counter(
                    "operator_rows",
                    "rows produced per plan operator",
                    engine=self.engine,
                    op=op_name,
                ).inc(rows)

    # -- cache / durability mirrors (scrape-time sync) --------------------------

    def sync_plan_cache(self, stats: object) -> None:
        engine = self.engine
        registry = self.registry
        for field_name, metric, help_text in (
            ("hits", "plan_cache_hits", "plan-cache template hits"),
            ("misses", "plan_cache_misses", "plan-cache template misses"),
            ("statement_hits", "statement_cache_hits", "statement-cache hits"),
            ("statement_misses", "statement_cache_misses", "statement-cache misses"),
            ("invalidated_ddl", "plan_cache_invalidated_ddl", "plans invalidated by DDL"),
            (
                "invalidated_drift",
                "plan_cache_invalidated_drift",
                "plans invalidated by statistics drift",
            ),
            ("evictions", "plan_cache_evictions", "plans evicted by capacity"),
        ):
            registry.counter(metric, help_text, engine=engine).set_total(
                getattr(stats, field_name, 0) or 0
            )
        registry.gauge(
            "plan_cache_size", "cached plan templates resident", engine=engine
        ).set(getattr(stats, "size", 0) or 0)
        registry.gauge(
            "plan_cache_capacity", "plan cache capacity", engine=engine
        ).set(getattr(stats, "capacity", 0) or 0)

    def sync_wal(self, stats: object | None) -> None:
        if stats is None:
            return
        engine = self.engine
        registry = self.registry
        for field_name, metric, help_text in (
            ("records", "wal_records", "WAL records appended"),
            ("bytes_written", "wal_bytes_written", "WAL bytes appended"),
            ("syncs", "wal_syncs", "WAL fsync calls"),
            ("flushes", "wal_flushes", "WAL group-commit flushes"),
            ("checkpoints", "wal_checkpoints", "checkpoints taken"),
        ):
            registry.counter(metric, help_text, engine=engine).set_total(
                getattr(stats, field_name, 0) or 0
            )
        for field_name, metric, help_text in (
            ("last_lsn", "wal_last_lsn", "newest assigned log sequence number"),
            (
                "records_since_checkpoint",
                "wal_records_since_checkpoint",
                "records pressing toward the next checkpoint",
            ),
            ("max_batch_records", "wal_max_batch_records", "largest group-commit batch"),
        ):
            registry.gauge(metric, help_text, engine=engine).set(
                getattr(stats, field_name, 0) or 0
            )

    def sync_buffer_pool(self, stats: object) -> None:
        engine = self.engine
        registry = self.registry
        for field_name, metric, help_text in (
            ("hits", "buffer_pool_hits", "page requests served from the pool"),
            ("misses", "buffer_pool_misses", "page requests that went to disk"),
            ("evictions", "buffer_pool_evictions", "pages evicted"),
            ("writebacks", "buffer_pool_writebacks", "dirty pages written back"),
            ("pages_allocated", "buffer_pool_pages_allocated", "pages ever allocated"),
        ):
            registry.counter(metric, help_text, engine=engine).set_total(
                getattr(stats, field_name, 0) or 0
            )
        for field_name, metric, help_text in (
            ("resident", "buffer_pool_resident", "pages resident in the pool"),
            ("dirty", "buffer_pool_dirty", "dirty pages resident"),
            ("pins", "buffer_pool_pins", "currently pinned pages"),
        ):
            registry.gauge(metric, help_text, engine=engine).set(
                getattr(stats, field_name, 0) or 0
            )
        capacity = getattr(stats, "capacity", None)
        registry.gauge(
            "buffer_pool_capacity",
            "pool page capacity (0 = unbounded in-memory store)",
            engine=engine,
        ).set(capacity if capacity is not None else 0)

    def sync_engine(self, database: object) -> None:
        """Mirror a Database's cache/durability stats (one scrape's worth)."""
        self.sync_plan_cache(database.plan_cache_stats())
        self.sync_wal(database.wal_stats())
        self.sync_buffer_pool(database.buffer_stats())
