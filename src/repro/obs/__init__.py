"""Engine observability: metrics registry, tracing, admission control.

This package is the telemetry substrate for the whole engine.  It sits
*below* ``repro.storage`` in the import order (stdlib + ``repro.errors``
only), so the storage layer can report into it without a cycle; ``core``
wires one shared :class:`~repro.obs.metrics.MetricsRegistry` across both
engines (the user database and the Query Storage) and puts the
:class:`~repro.obs.admission.AdmissionController` in front of
``CQMS.submit``.
"""

from repro.obs.admission import (
    AdmissionController,
    QueryLimits,
    StatementBudget,
    TokenBucket,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    engine_timer,
)
from repro.obs.telemetry import EngineTelemetry
from repro.obs.tracing import SlowQueryLog, Span, Trace

__all__ = [
    "AdmissionController",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "EngineTelemetry",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QueryLimits",
    "SlowQueryLog",
    "Span",
    "StatementBudget",
    "TokenBucket",
    "Trace",
    "engine_timer",
]
