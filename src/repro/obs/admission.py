"""Admission control: per-principal token buckets and statement budgets.

The paper's premise is many users sharing one system; a single misbehaving
tenant must shed load at the door rather than collapse everyone's latency.
Two cooperating guardrails:

* :class:`TokenBucket` — classic leaky-bucket rate limiting.  Refill is
  computed lazily from the injected clock at acquisition time, so a
  :class:`~repro.clock.SimulatedClock` drives fully deterministic tests.
* :class:`StatementBudget` — the per-statement timeout the executor
  enforces cooperatively at batch boundaries (see
  ``ExecutionContext.tick`` in :mod:`repro.storage.operators`).

:class:`AdmissionController` merges the per-principal
:class:`QueryLimits` stored in ``AccessControl`` with the config-wide
defaults, raises the typed :class:`~repro.errors.RateLimitedError` on a
dry bucket, and counts every verdict in the metrics registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import RateLimitedError
from repro.obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class QueryLimits:
    """Per-principal admission limits (None = inherit the config default)."""

    rate_limit_qps: float | None = None
    rate_limit_burst: float | None = None
    statement_timeout_seconds: float | None = None

    def merged_over(self, defaults: "QueryLimits") -> "QueryLimits":
        """This principal's limits with config defaults filling the gaps."""
        return QueryLimits(
            rate_limit_qps=(
                self.rate_limit_qps
                if self.rate_limit_qps is not None
                else defaults.rate_limit_qps
            ),
            rate_limit_burst=(
                self.rate_limit_burst
                if self.rate_limit_burst is not None
                else defaults.rate_limit_burst
            ),
            statement_timeout_seconds=(
                self.statement_timeout_seconds
                if self.statement_timeout_seconds is not None
                else defaults.statement_timeout_seconds
            ),
        )


@dataclass(frozen=True)
class StatementBudget:
    """What an admitted statement may spend (attached by the controller)."""

    timeout_seconds: float | None = None


class TokenBucket:
    """A refilling token bucket over an injectable clock.

    ``rate`` tokens arrive per clock second up to ``burst`` capacity; the
    bucket starts full so a fresh principal gets its burst immediately.
    """

    __slots__ = ("rate", "burst", "_clock", "_tokens", "_refilled_at")

    def __init__(self, rate: float, burst: float, clock: Callable[[], float]):
        if rate <= 0:
            raise ValueError("token bucket rate must be positive")
        if burst < 1:
            raise ValueError("token bucket burst must be at least 1")
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._tokens = float(burst)
        self._refilled_at = float(clock())

    def _refill(self) -> None:
        now = float(self._clock())
        elapsed = now - self._refilled_at
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._refilled_at = now

    def try_acquire(self, tokens: float = 1.0) -> bool:
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False

    @property
    def available(self) -> float:
        self._refill()
        return self._tokens


class AdmissionController:
    """Admit-or-reject gate in front of statement submission.

    One bucket per rate-limited principal, created lazily with that
    principal's effective (merged) limits.  Principals with no effective
    rate limit pass through without a bucket; every statement still gets a
    :class:`StatementBudget` carrying the effective timeout.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        clock: Callable[[], float],
        defaults: QueryLimits | None = None,
    ):
        self.registry = registry
        self._clock = clock
        self.defaults = defaults or QueryLimits()
        self._buckets: dict[str, TokenBucket] = {}

    def _bucket_for(self, principal: str, limits: QueryLimits) -> TokenBucket | None:
        qps = limits.rate_limit_qps
        if qps is None:
            return None
        bucket = self._buckets.get(principal)
        if bucket is None or bucket.rate != qps:
            burst = limits.rate_limit_burst
            if burst is None:
                burst = max(qps, 1.0)
            bucket = TokenBucket(rate=qps, burst=burst, clock=self._clock)
            self._buckets[principal] = bucket
        return bucket

    def admit(
        self, principal: str, limits: QueryLimits | None = None
    ) -> StatementBudget:
        """Admit one statement for ``principal`` or raise ``RateLimitedError``.

        The rejection is typed and *pre-execution*: nothing was parsed, run,
        or logged, so a shedding client can back off and retry untouched.
        """
        effective = (limits or QueryLimits()).merged_over(self.defaults)
        bucket = self._bucket_for(principal, effective)
        if bucket is not None and not bucket.try_acquire():
            self.registry.counter(
                "queries_rejected",
                "statements rejected at admission by the rate limiter",
                principal=principal,
            ).inc()
            raise RateLimitedError(
                f"principal {principal!r} exceeded its rate limit "
                f"({bucket.rate:g} qps, burst {bucket.burst:g}); retry later"
            )
        self.registry.counter(
            "queries_admitted",
            "statements admitted past the rate limiter",
            principal=principal,
        ).inc()
        return StatementBudget(timeout_seconds=effective.statement_timeout_seconds)
