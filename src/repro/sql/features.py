"""Query feature extraction — the heart of the paper's *query-by-feature* model.

The Query Profiler shreds every logged query into the feature relations shown
in Figure 1 of the paper::

    Queries(qid, qText)
    DataSources(qid, relName)
    Attributes(qid, attrName, relName)
    Predicates(qid, attrName, relName, op, const)

This module computes those features (plus projections, joins, grouping,
ordering, aggregates, and structural statistics) from a parsed statement.
Alias resolution uses the query's own FROM clause, optionally refined with the
database schema so that unqualified column references can be attributed to
the right relation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sql.ast_nodes import (
    Between,
    BinaryOp,
    ColumnRef,
    ExistsSubquery,
    Expression,
    FromItem,
    FunctionCall,
    InList,
    InSubquery,
    Join,
    Literal,
    ScalarSubquery,
    SelectStatement,
    Star,
    Statement,
    SubqueryRef,
    TableRef,
    UnaryOp,
    iter_expressions,
    statement_type,
)
from repro.sql.parser import parse

#: Marker used when an unqualified column cannot be attributed to a relation.
UNKNOWN_RELATION = "?"


@dataclass(frozen=True)
class PredicateFeature:
    """A selection predicate ``attr op const`` extracted from WHERE/HAVING."""

    attribute: str
    relation: str
    op: str
    constant: object

    def as_tuple(self) -> tuple[str, str, str, object]:
        return (self.attribute, self.relation, self.op, self.constant)


@dataclass(frozen=True)
class JoinFeature:
    """An equi-join condition between two attributes of two relations."""

    left_relation: str
    left_attribute: str
    right_relation: str
    right_attribute: str

    def normalized(self) -> "JoinFeature":
        """Return the join with its two sides in deterministic order."""
        left = (self.left_relation, self.left_attribute)
        right = (self.right_relation, self.right_attribute)
        if right < left:
            left, right = right, left
        return JoinFeature(
            left_relation=left[0],
            left_attribute=left[1],
            right_relation=right[0],
            right_attribute=right[1],
        )


@dataclass
class QueryFeatures:
    """The complete feature set of one query.

    Attributes map directly onto the Query Storage feature relations; see
    :mod:`repro.core.query_store`.
    """

    statement_kind: str = "select"
    tables: list[str] = field(default_factory=list)
    attributes: list[tuple[str, str]] = field(default_factory=list)
    projections: list[tuple[str, str]] = field(default_factory=list)
    predicates: list[PredicateFeature] = field(default_factory=list)
    joins: list[JoinFeature] = field(default_factory=list)
    group_by: list[tuple[str, str]] = field(default_factory=list)
    order_by: list[tuple[str, str]] = field(default_factory=list)
    aggregates: list[str] = field(default_factory=list)
    select_star: bool = False
    distinct: bool = False
    limit: int | None = None
    num_tables: int = 0
    num_predicates: int = 0
    num_joins: int = 0
    num_subqueries: int = 0
    nesting_depth: int = 0

    def table_set(self) -> frozenset[str]:
        """The set of referenced relations (lower-cased)."""
        return frozenset(self.tables)

    def attribute_set(self) -> frozenset[tuple[str, str]]:
        """The set of referenced ``(attribute, relation)`` pairs."""
        return frozenset(self.attributes)

    def predicate_signatures(self, with_constants: bool = False) -> frozenset[tuple]:
        """Predicate identities, optionally including the constant values."""
        if with_constants:
            return frozenset(p.as_tuple() for p in self.predicates)
        return frozenset((p.attribute, p.relation, p.op) for p in self.predicates)

    def join_signatures(self) -> frozenset[tuple[str, str, str, str]]:
        """Normalized join identities."""
        return frozenset(
            (
                j.normalized().left_relation,
                j.normalized().left_attribute,
                j.normalized().right_relation,
                j.normalized().right_attribute,
            )
            for j in self.joins
        )

    def token_bag(self) -> list[str]:
        """A bag of feature tokens used by TF-IDF / bag-of-features similarity."""
        tokens = [f"table:{t}" for t in self.tables]
        tokens += [f"attr:{rel}.{attr}" for attr, rel in self.attributes]
        tokens += [f"proj:{rel}.{attr}" for attr, rel in self.projections]
        tokens += [f"pred:{p.relation}.{p.attribute}{p.op}" for p in self.predicates]
        tokens += [
            "join:"
            f"{j.normalized().left_relation}.{j.normalized().left_attribute}"
            f"={j.normalized().right_relation}.{j.normalized().right_attribute}"
            for j in self.joins
        ]
        tokens += [f"agg:{name}" for name in self.aggregates]
        tokens += [f"group:{rel}.{attr}" for attr, rel in self.group_by]
        return tokens


def extract_features(
    query, schema_columns: dict[str, set[str]] | None = None
) -> QueryFeatures:
    """Extract :class:`QueryFeatures` from SQL text or a parsed statement.

    Parameters
    ----------
    query:
        SQL text or a parsed :class:`Statement`.
    schema_columns:
        Optional mapping of lower-cased table name to its set of lower-cased
        column names.  When provided it is used to resolve unqualified column
        references (e.g. ``temp`` in a two-table query) to their relation.
    """
    statement: Statement = parse(query) if isinstance(query, str) else query
    features = QueryFeatures(statement_kind=statement_type(statement))
    if not isinstance(statement, SelectStatement):
        # DML/DDL statements only contribute their target table.
        target = getattr(statement, "table", None)
        if target:
            features.tables = [target.lower()]
            features.num_tables = 1
        return features
    _extract_select(statement, features, schema_columns or {}, depth=0)
    _finalize(features)
    return features


# ---------------------------------------------------------------------------
# Extraction internals
# ---------------------------------------------------------------------------


def _extract_select(
    statement: SelectStatement,
    features: QueryFeatures,
    schema_columns: dict[str, set[str]],
    depth: int,
) -> None:
    features.nesting_depth = max(features.nesting_depth, depth)
    alias_map = _alias_map(statement.from_items)
    resolver = _ColumnResolver(alias_map, schema_columns)

    for table in alias_map.values():
        if table not in features.tables:
            features.tables.append(table)

    features.distinct = features.distinct or statement.distinct
    if depth == 0:
        features.limit = statement.limit

    for item in statement.select_items:
        expr = item.expression
        if isinstance(expr, Star):
            features.select_star = True
            continue
        for column in _column_refs_no_subquery(expr):
            resolved = resolver.resolve(column)
            _add_unique(features.projections, resolved)
            _add_unique(features.attributes, resolved)
        for node in iter_expressions(expr):
            if isinstance(node, FunctionCall) and node.is_aggregate:
                features.aggregates.append(node.name)

    if statement.where is not None:
        _extract_condition(statement.where, features, resolver)
    if statement.having is not None:
        _extract_condition(statement.having, features, resolver)

    for expr in statement.group_by:
        for column in _column_refs_no_subquery(expr):
            resolved = resolver.resolve(column)
            _add_unique(features.group_by, resolved)
            _add_unique(features.attributes, resolved)
    for item in statement.order_by:
        for column in _column_refs_no_subquery(item.expression):
            resolved = resolver.resolve(column)
            _add_unique(features.order_by, resolved)
            _add_unique(features.attributes, resolved)

    # Explicit JOIN ... ON conditions.
    for item in statement.from_items:
        _extract_join_item(item, features, resolver, schema_columns, depth)

    # Nested subqueries anywhere in expressions.
    for expr in _statement_expressions(statement):
        for node in iter_expressions(expr):
            if isinstance(node, (InSubquery, ExistsSubquery, ScalarSubquery)):
                features.num_subqueries += 1
                _extract_select(node.subquery, features, schema_columns, depth + 1)


def _extract_join_item(
    item: FromItem,
    features: QueryFeatures,
    resolver: "_ColumnResolver",
    schema_columns: dict[str, set[str]],
    depth: int,
) -> None:
    if isinstance(item, Join):
        if item.condition is not None:
            _extract_condition(item.condition, features, resolver)
        _extract_join_item(item.left, features, resolver, schema_columns, depth)
        _extract_join_item(item.right, features, resolver, schema_columns, depth)
    elif isinstance(item, SubqueryRef):
        features.num_subqueries += 1
        _extract_select(item.subquery, features, schema_columns, depth + 1)


def _extract_condition(
    expr: Expression, features: QueryFeatures, resolver: "_ColumnResolver"
) -> None:
    """Walk a boolean condition, collecting predicates and joins."""
    if isinstance(expr, BinaryOp) and expr.op in ("AND", "OR"):
        _extract_condition(expr.left, features, resolver)
        _extract_condition(expr.right, features, resolver)
        return
    if isinstance(expr, UnaryOp) and expr.op == "NOT":
        _extract_condition(expr.operand, features, resolver)
        return
    if isinstance(expr, BinaryOp):
        left_col = expr.left if isinstance(expr.left, ColumnRef) else None
        right_col = expr.right if isinstance(expr.right, ColumnRef) else None
        left_lit = expr.left if isinstance(expr.left, Literal) else None
        right_lit = expr.right if isinstance(expr.right, Literal) else None
        if left_col is not None and right_col is not None and expr.op == "=":
            left_attr, left_rel = resolver.resolve(left_col)[0], resolver.resolve(left_col)[1]
            right_attr, right_rel = (
                resolver.resolve(right_col)[0],
                resolver.resolve(right_col)[1],
            )
            join = JoinFeature(
                left_relation=left_rel,
                left_attribute=left_attr,
                right_relation=right_rel,
                right_attribute=right_attr,
            ).normalized()
            if join not in features.joins:
                features.joins.append(join)
            _add_unique(features.attributes, (left_attr, left_rel))
            _add_unique(features.attributes, (right_attr, right_rel))
            return
        if left_col is not None and right_lit is not None:
            _add_predicate(features, resolver, left_col, expr.op, right_lit.value)
            return
        if right_col is not None and left_lit is not None:
            mirrored = {"<": ">", ">": "<", "<=": ">=", ">=": "<=", "=": "=", "<>": "<>"}
            _add_predicate(
                features, resolver, right_col, mirrored.get(expr.op, expr.op), left_lit.value
            )
            return
        if expr.op == "LIKE" and left_col is not None and right_lit is not None:
            _add_predicate(features, resolver, left_col, "LIKE", right_lit.value)
            return
        # Fall through: record attribute usage for anything else.
        for column in _column_refs_no_subquery(expr):
            _add_unique(features.attributes, resolver.resolve(column))
        return
    if isinstance(expr, Between):
        if isinstance(expr.expr, ColumnRef):
            low = expr.low.value if isinstance(expr.low, Literal) else None
            high = expr.high.value if isinstance(expr.high, Literal) else None
            _add_predicate(features, resolver, expr.expr, ">=", low)
            _add_predicate(features, resolver, expr.expr, "<=", high)
        return
    if isinstance(expr, InList):
        if isinstance(expr.expr, ColumnRef):
            values = tuple(
                value.value for value in expr.values if isinstance(value, Literal)
            )
            op = "NOT IN" if expr.negated else "IN"
            _add_predicate(features, resolver, expr.expr, op, values)
        return
    if isinstance(expr, (InSubquery, ExistsSubquery, ScalarSubquery)):
        # Subquery extraction happens at the statement level.
        if isinstance(expr, InSubquery) and isinstance(expr.expr, ColumnRef):
            _add_unique(features.attributes, resolver.resolve(expr.expr))
        return
    if isinstance(expr, UnaryOp) and expr.op in ("IS NULL", "IS NOT NULL"):
        if isinstance(expr.operand, ColumnRef):
            _add_predicate(features, resolver, expr.operand, expr.op, None)
        return
    for column in _column_refs_no_subquery(expr):
        _add_unique(features.attributes, resolver.resolve(column))


def _add_predicate(
    features: QueryFeatures,
    resolver: "_ColumnResolver",
    column: ColumnRef,
    op: str,
    constant: object,
) -> None:
    attribute, relation = resolver.resolve(column)
    predicate = PredicateFeature(
        attribute=attribute, relation=relation, op=op, constant=constant
    )
    if predicate not in features.predicates:
        features.predicates.append(predicate)
    _add_unique(features.attributes, (attribute, relation))


def _finalize(features: QueryFeatures) -> None:
    features.num_tables = len(features.tables)
    features.num_predicates = len(features.predicates)
    features.num_joins = len(features.joins)


def _add_unique(collection: list, item) -> None:
    if item not in collection:
        collection.append(item)


def _statement_expressions(statement: SelectStatement) -> list[Expression]:
    expressions: list[Expression] = [item.expression for item in statement.select_items]
    if statement.where is not None:
        expressions.append(statement.where)
    if statement.having is not None:
        expressions.append(statement.having)
    expressions.extend(statement.group_by)
    expressions.extend(item.expression for item in statement.order_by)
    for item in statement.from_items:
        expressions.extend(_join_conditions(item))
    return expressions


def _join_conditions(item: FromItem) -> list[Expression]:
    if isinstance(item, Join):
        conditions = [] if item.condition is None else [item.condition]
        return conditions + _join_conditions(item.left) + _join_conditions(item.right)
    return []


def _column_refs_no_subquery(expr: Expression) -> list[ColumnRef]:
    """Column references in ``expr`` excluding those inside nested subqueries."""
    return [node for node in iter_expressions(expr) if isinstance(node, ColumnRef)]


def _alias_map(from_items: tuple[FromItem, ...]) -> dict[str, str]:
    """Map lower-cased binding (alias or name) to lower-cased base-table name."""
    mapping: dict[str, str] = {}
    _collect_alias_map(from_items, mapping)
    return mapping


def _collect_alias_map(from_items, mapping: dict[str, str]) -> None:
    for item in from_items:
        if isinstance(item, TableRef):
            mapping[item.binding.lower()] = item.name.lower()
        elif isinstance(item, SubqueryRef):
            mapping[item.alias.lower()] = item.alias.lower()
        elif isinstance(item, Join):
            _collect_alias_map((item.left, item.right), mapping)


class _ColumnResolver:
    """Resolve a :class:`ColumnRef` to an ``(attribute, relation)`` pair."""

    def __init__(self, alias_map: dict[str, str], schema_columns: dict[str, set[str]]):
        self._alias_map = alias_map
        self._schema_columns = {
            table.lower(): {column.lower() for column in columns}
            for table, columns in schema_columns.items()
        }

    def resolve(self, column: ColumnRef) -> tuple[str, str]:
        name = column.name.lower()
        if column.table:
            binding = column.table.lower()
            return name, self._alias_map.get(binding, binding)
        # Unqualified: if the schema tells us exactly one FROM table has this
        # column, attribute it there; if exactly one table is in scope, use it.
        candidates = [
            table
            for table in self._alias_map.values()
            if name in self._schema_columns.get(table, set())
        ]
        if len(candidates) == 1:
            return name, candidates[0]
        if len(set(self._alias_map.values())) == 1 and self._alias_map:
            return name, next(iter(set(self._alias_map.values())))
        return name, UNKNOWN_RELATION
