"""Generic parse-tree view of a SQL statement.

The paper discusses three candidate data models for queries (Section 4.1):
raw text, feature relations, and canonicalized parse trees.  This module
provides the parse-tree model:

* :func:`to_parse_tree` converts an AST into a uniform labelled ordered tree,
* :func:`match_pattern` implements *query-by-parse-tree* (structural
  conditions on joined relations, selections, projections, subqueries, ...),
* :func:`tree_edit_distance` computes an ordered tree edit distance
  (Zhang–Shasha) used as one of the query-similarity measures (Section 4.3
  suggests "parse tree similarity, perhaps after removing the constants").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.sql.ast_nodes import (
    Between,
    BinaryOp,
    CaseExpression,
    ColumnRef,
    ExistsSubquery,
    Expression,
    FromItem,
    FunctionCall,
    InList,
    InSubquery,
    Join,
    Literal,
    OrderItem,
    ScalarSubquery,
    SelectItem,
    SelectStatement,
    Star,
    Statement,
    SubqueryRef,
    TableRef,
    UnaryOp,
)
from repro.sql.parser import parse


@dataclass
class ParseTreeNode:
    """A labelled, ordered tree node.

    ``label`` identifies the node kind (e.g. ``select``, ``table``,
    ``predicate-op``); ``value`` carries the specific content (table name,
    operator, literal text).  Children are ordered.
    """

    label: str
    value: str = ""
    children: list["ParseTreeNode"] = field(default_factory=list)

    def add(self, child: "ParseTreeNode") -> "ParseTreeNode":
        self.children.append(child)
        return child

    def signature(self) -> str:
        """The node's comparison signature (label plus value)."""
        return f"{self.label}:{self.value}" if self.value else self.label

    def walk(self):
        """Yield this node and all descendants in pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, label: str) -> list["ParseTreeNode"]:
        """Return all descendant nodes (including self) with the given label."""
        return [node for node in self.walk() if node.label == label]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ParseTreeNode({self.signature()}, {len(self.children)} children)"


def to_parse_tree(query, strip_constants: bool = False) -> ParseTreeNode:
    """Build the parse tree for SQL text or a parsed statement."""
    statement: Statement = parse(query) if isinstance(query, str) else query
    if isinstance(statement, SelectStatement):
        return _select_tree(statement, strip_constants)
    root = ParseTreeNode("statement", type(statement).__name__.lower())
    table = getattr(statement, "table", None)
    if table:
        root.add(ParseTreeNode("table", table.lower()))
    return root


def tree_size(node: ParseTreeNode) -> int:
    """Number of nodes in the tree."""
    return sum(1 for _ in node.walk())


def tree_depth(node: ParseTreeNode) -> int:
    """Height of the tree (a single node has depth 1)."""
    if not node.children:
        return 1
    return 1 + max(tree_depth(child) for child in node.children)


# ---------------------------------------------------------------------------
# Tree construction
# ---------------------------------------------------------------------------


def _select_tree(statement: SelectStatement, strip: bool) -> ParseTreeNode:
    root = ParseTreeNode("select")
    if statement.distinct:
        root.add(ParseTreeNode("distinct"))
    projection = root.add(ParseTreeNode("projection"))
    for item in statement.select_items:
        projection.add(_select_item_tree(item, strip))
    if statement.from_items:
        from_node = root.add(ParseTreeNode("from"))
        for item in statement.from_items:
            from_node.add(_from_tree(item, strip))
    if statement.where is not None:
        where = root.add(ParseTreeNode("where"))
        where.add(_expr_tree(statement.where, strip))
    if statement.group_by:
        group = root.add(ParseTreeNode("group_by"))
        for expr in statement.group_by:
            group.add(_expr_tree(expr, strip))
    if statement.having is not None:
        having = root.add(ParseTreeNode("having"))
        having.add(_expr_tree(statement.having, strip))
    if statement.order_by:
        order = root.add(ParseTreeNode("order_by"))
        for item in statement.order_by:
            direction = "asc" if item.ascending else "desc"
            key = order.add(ParseTreeNode("order_key", direction))
            key.add(_expr_tree(item.expression, strip))
    if statement.limit is not None:
        root.add(ParseTreeNode("limit", str(statement.limit)))
    return root


def _select_item_tree(item: SelectItem, strip: bool) -> ParseTreeNode:
    node = ParseTreeNode("select_item", item.alias.lower() if item.alias else "")
    node.add(_expr_tree(item.expression, strip))
    return node


def _from_tree(item: FromItem, strip: bool) -> ParseTreeNode:
    if isinstance(item, TableRef):
        return ParseTreeNode("table", item.name.lower())
    if isinstance(item, SubqueryRef):
        node = ParseTreeNode("derived_table", item.alias.lower())
        node.add(_select_tree(item.subquery, strip))
        return node
    if isinstance(item, Join):
        node = ParseTreeNode("join", item.join_type.lower())
        node.add(_from_tree(item.left, strip))
        node.add(_from_tree(item.right, strip))
        if item.condition is not None:
            condition = node.add(ParseTreeNode("on"))
            condition.add(_expr_tree(item.condition, strip))
        return node
    raise TypeError(f"unsupported FROM item: {type(item).__name__}")


def _expr_tree(expr: Expression, strip: bool) -> ParseTreeNode:
    if isinstance(expr, Literal):
        value = "?" if strip and expr.value is not None else _literal_text(expr)
        return ParseTreeNode("literal", value)
    if isinstance(expr, ColumnRef):
        qualified = f"{expr.table.lower()}.{expr.name.lower()}" if expr.table else expr.name.lower()
        return ParseTreeNode("column", qualified)
    if isinstance(expr, Star):
        return ParseTreeNode("star", expr.table.lower() if expr.table else "")
    if isinstance(expr, BinaryOp):
        node = ParseTreeNode("op", expr.op)
        node.add(_expr_tree(expr.left, strip))
        node.add(_expr_tree(expr.right, strip))
        return node
    if isinstance(expr, UnaryOp):
        node = ParseTreeNode("op", expr.op)
        node.add(_expr_tree(expr.operand, strip))
        return node
    if isinstance(expr, FunctionCall):
        node = ParseTreeNode("function", expr.name.upper())
        for arg in expr.args:
            node.add(_expr_tree(arg, strip))
        return node
    if isinstance(expr, InList):
        node = ParseTreeNode("op", "NOT IN" if expr.negated else "IN")
        node.add(_expr_tree(expr.expr, strip))
        values = node.add(ParseTreeNode("values"))
        for value in expr.values:
            values.add(_expr_tree(value, strip))
        return node
    if isinstance(expr, InSubquery):
        node = ParseTreeNode("op", "NOT IN" if expr.negated else "IN")
        node.add(_expr_tree(expr.expr, strip))
        node.add(_select_tree(expr.subquery, strip))
        return node
    if isinstance(expr, ExistsSubquery):
        node = ParseTreeNode("op", "NOT EXISTS" if expr.negated else "EXISTS")
        node.add(_select_tree(expr.subquery, strip))
        return node
    if isinstance(expr, ScalarSubquery):
        node = ParseTreeNode("scalar_subquery")
        node.add(_select_tree(expr.subquery, strip))
        return node
    if isinstance(expr, Between):
        node = ParseTreeNode("op", "NOT BETWEEN" if expr.negated else "BETWEEN")
        node.add(_expr_tree(expr.expr, strip))
        node.add(_expr_tree(expr.low, strip))
        node.add(_expr_tree(expr.high, strip))
        return node
    if isinstance(expr, CaseExpression):
        node = ParseTreeNode("case")
        for condition, value in expr.whens:
            when = node.add(ParseTreeNode("when"))
            when.add(_expr_tree(condition, strip))
            when.add(_expr_tree(value, strip))
        if expr.default is not None:
            default = node.add(ParseTreeNode("else"))
            default.add(_expr_tree(expr.default, strip))
        return node
    raise TypeError(f"unsupported expression type: {type(expr).__name__}")


def _literal_text(literal: Literal) -> str:
    if literal.value is None:
        return "NULL"
    return str(literal.value)


# ---------------------------------------------------------------------------
# Structural pattern matching (query-by-parse-tree)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TreePattern:
    """A structural condition on a query's parse tree.

    A pattern node matches a tree node when their labels are equal and the
    pattern's value (if non-empty) equals the tree node's value.  A pattern
    matches the tree when there exists a descendant of the tree for which the
    pattern root matches and every pattern child matches *some* descendant of
    that tree node (unordered containment — the natural semantics for
    "the query joins R and S and selects on attribute a").
    """

    label: str
    value: str = ""
    children: tuple["TreePattern", ...] = ()


def match_pattern(tree: ParseTreeNode, pattern: TreePattern) -> bool:
    """Return True if ``pattern`` matches anywhere inside ``tree``."""
    return any(_matches_at(node, pattern) for node in tree.walk())


def _matches_at(node: ParseTreeNode, pattern: TreePattern) -> bool:
    if node.label != pattern.label:
        return False
    if pattern.value and node.value != pattern.value:
        return False
    for child_pattern in pattern.children:
        if not any(
            _matches_at(descendant, child_pattern)
            for child in node.children
            for descendant in child.walk()
        ):
            return False
    return True


# ---------------------------------------------------------------------------
# Tree edit distance (Zhang–Shasha, ordered trees)
# ---------------------------------------------------------------------------


def tree_edit_distance(first: ParseTreeNode, second: ParseTreeNode) -> int:
    """Ordered tree edit distance with unit costs (Zhang–Shasha algorithm).

    Node relabelling, insertion, and deletion all cost 1.  Two nodes are equal
    when their :meth:`ParseTreeNode.signature` strings match.
    """
    a_nodes, a_lmd, a_keyroots = _decompose(first)
    b_nodes, b_lmd, b_keyroots = _decompose(second)
    size_a, size_b = len(a_nodes), len(b_nodes)
    distance = [[0] * size_b for _ in range(size_a)]

    def cost(i: int | None, j: int | None) -> int:
        if i is None or j is None:
            return 1
        return 0 if a_nodes[i].signature() == b_nodes[j].signature() else 1

    for i in a_keyroots:
        for j in b_keyroots:
            _tree_distance(i, j, a_lmd, b_lmd, distance, cost)
    return distance[size_a - 1][size_b - 1] if size_a and size_b else max(size_a, size_b)


def normalized_tree_distance(first: ParseTreeNode, second: ParseTreeNode) -> float:
    """Tree edit distance normalized by the larger tree size, in [0, 1]."""
    larger = max(tree_size(first), tree_size(second))
    if larger == 0:
        return 0.0
    return min(1.0, tree_edit_distance(first, second) / larger)


def _decompose(root: ParseTreeNode):
    """Post-order nodes, left-most-leaf-descendant indexes, and keyroots."""
    nodes: list[ParseTreeNode] = []
    lmd: list[int] = []

    def visit(node: ParseTreeNode) -> int:
        if not node.children:
            nodes.append(node)
            index = len(nodes) - 1
            lmd.append(index)
            return index
        first_leaf = None
        for child in node.children:
            child_leaf = visit(child)
            if first_leaf is None:
                first_leaf = child_leaf
        nodes.append(node)
        lmd.append(first_leaf if first_leaf is not None else len(nodes) - 1)
        return first_leaf if first_leaf is not None else len(nodes) - 1

    visit(root)
    seen: set[int] = set()
    keyroots: list[int] = []
    for index in range(len(nodes) - 1, -1, -1):
        if lmd[index] not in seen:
            keyroots.append(index)
            seen.add(lmd[index])
    keyroots.sort()
    return nodes, lmd, keyroots


def _tree_distance(i: int, j: int, a_lmd, b_lmd, distance, cost) -> None:
    li, lj = a_lmd[i], b_lmd[j]
    rows = i - li + 2
    cols = j - lj + 2
    forest = [[0] * cols for _ in range(rows)]
    for x in range(1, rows):
        forest[x][0] = forest[x - 1][0] + cost(li + x - 1, None)
    for y in range(1, cols):
        forest[0][y] = forest[0][y - 1] + cost(None, lj + y - 1)
    for x in range(1, rows):
        for y in range(1, cols):
            a_index = li + x - 1
            b_index = lj + y - 1
            if a_lmd[a_index] == li and b_lmd[b_index] == lj:
                forest[x][y] = min(
                    forest[x - 1][y] + cost(a_index, None),
                    forest[x][y - 1] + cost(None, b_index),
                    forest[x - 1][y - 1] + cost(a_index, b_index),
                )
                distance[a_index][b_index] = forest[x][y]
            else:
                p = a_lmd[a_index] - li
                q = b_lmd[b_index] - lj
                forest[x][y] = min(
                    forest[x - 1][y] + cost(a_index, None),
                    forest[x][y - 1] + cost(None, b_index),
                    forest[p][q] + distance[a_index][b_index],
                )
