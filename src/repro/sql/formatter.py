"""Render AST nodes back to SQL text.

The formatter produces a deterministic, single-line rendering which the CQMS
uses for:

* storing a normalized query text in the Query Storage,
* displaying queries and completions in the client,
* round-trip testing of the parser (property-based tests parse, format, and
  re-parse to check the ASTs are identical).
"""

from __future__ import annotations

from repro.sql.ast_nodes import (
    AlterTableStatement,
    Between,
    BinaryOp,
    CaseExpression,
    ColumnDefinition,
    ColumnRef,
    CreateIndexStatement,
    CreateTableStatement,
    DeleteStatement,
    DropTableStatement,
    ExistsSubquery,
    Expression,
    FromItem,
    FunctionCall,
    InList,
    InSubquery,
    InsertStatement,
    Join,
    Literal,
    OrderItem,
    ScalarSubquery,
    SelectItem,
    SelectStatement,
    Star,
    Statement,
    SubqueryRef,
    TableRef,
    UnaryOp,
    UpdateStatement,
)

#: Operators that need surrounding parentheses decisions; we keep it simple and
#: parenthesize nested boolean operations to preserve semantics exactly.
_BOOLEAN_OPS = {"AND", "OR"}


def format_statement(statement: Statement) -> str:
    """Return a single-line SQL rendering of ``statement``."""
    if isinstance(statement, SelectStatement):
        return _format_select(statement)
    if isinstance(statement, InsertStatement):
        return _format_insert(statement)
    if isinstance(statement, UpdateStatement):
        return _format_update(statement)
    if isinstance(statement, DeleteStatement):
        return _format_delete(statement)
    if isinstance(statement, CreateTableStatement):
        return _format_create_table(statement)
    if isinstance(statement, DropTableStatement):
        suffix = "IF EXISTS " if statement.if_exists else ""
        return f"DROP TABLE {suffix}{statement.table}"
    if isinstance(statement, AlterTableStatement):
        return _format_alter(statement)
    if isinstance(statement, CreateIndexStatement):
        unique = "UNIQUE " if statement.unique else ""
        using = "" if statement.kind == "hash" else f" USING {statement.kind.upper()}"
        return (
            f"CREATE {unique}INDEX {statement.name} "
            f"ON {statement.table} ({statement.column}){using}"
        )
    raise TypeError(f"unsupported statement type: {type(statement).__name__}")


def format_expression(expr: Expression) -> str:
    """Return a SQL rendering of an expression."""
    if isinstance(expr, Literal):
        return str(expr)
    if isinstance(expr, ColumnRef):
        return str(expr)
    if isinstance(expr, Star):
        return str(expr)
    if isinstance(expr, BinaryOp):
        left = _maybe_parenthesize(expr.left, expr.op)
        right = _maybe_parenthesize(expr.right, expr.op)
        return f"{left} {expr.op} {right}"
    if isinstance(expr, UnaryOp):
        if expr.op == "NOT":
            return f"NOT ({format_expression(expr.operand)})"
        if expr.op in ("IS NULL", "IS NOT NULL"):
            return f"{format_expression(expr.operand)} {expr.op}"
        return f"{expr.op}{format_expression(expr.operand)}"
    if isinstance(expr, FunctionCall):
        distinct = "DISTINCT " if expr.distinct else ""
        args = ", ".join(format_expression(arg) for arg in expr.args)
        return f"{expr.name}({distinct}{args})"
    if isinstance(expr, InList):
        values = ", ".join(format_expression(value) for value in expr.values)
        negation = " NOT" if expr.negated else ""
        return f"{format_expression(expr.expr)}{negation} IN ({values})"
    if isinstance(expr, InSubquery):
        negation = " NOT" if expr.negated else ""
        return (
            f"{format_expression(expr.expr)}{negation} IN "
            f"({_format_select(expr.subquery)})"
        )
    if isinstance(expr, ExistsSubquery):
        prefix = "NOT EXISTS" if expr.negated else "EXISTS"
        return f"{prefix} ({_format_select(expr.subquery)})"
    if isinstance(expr, ScalarSubquery):
        return f"({_format_select(expr.subquery)})"
    if isinstance(expr, Between):
        negation = " NOT" if expr.negated else ""
        return (
            f"{format_expression(expr.expr)}{negation} BETWEEN "
            f"{format_expression(expr.low)} AND {format_expression(expr.high)}"
        )
    if isinstance(expr, CaseExpression):
        parts = ["CASE"]
        for condition, value in expr.whens:
            parts.append(
                f"WHEN {format_expression(condition)} THEN {format_expression(value)}"
            )
        if expr.default is not None:
            parts.append(f"ELSE {format_expression(expr.default)}")
        parts.append("END")
        return " ".join(parts)
    raise TypeError(f"unsupported expression type: {type(expr).__name__}")


def _maybe_parenthesize(expr: Expression, parent_op: str) -> str:
    """Parenthesize nested boolean operations with a different operator."""
    rendered = format_expression(expr)
    if isinstance(expr, BinaryOp) and expr.op in _BOOLEAN_OPS and expr.op != parent_op:
        return f"({rendered})"
    if isinstance(expr, BinaryOp) and parent_op in _BOOLEAN_OPS and expr.op in _BOOLEAN_OPS:
        # Same boolean operator: keep flat, associativity preserves meaning.
        return rendered
    return rendered


def _format_select(statement: SelectStatement) -> str:
    parts = ["SELECT"]
    if statement.distinct:
        parts.append("DISTINCT")
    parts.append(", ".join(_format_select_item(item) for item in statement.select_items))
    if statement.from_items:
        parts.append("FROM")
        parts.append(", ".join(_format_from_item(item) for item in statement.from_items))
    if statement.where is not None:
        parts.append("WHERE")
        parts.append(format_expression(statement.where))
    if statement.group_by:
        parts.append("GROUP BY")
        parts.append(", ".join(format_expression(expr) for expr in statement.group_by))
    if statement.having is not None:
        parts.append("HAVING")
        parts.append(format_expression(statement.having))
    if statement.order_by:
        parts.append("ORDER BY")
        parts.append(", ".join(_format_order_item(item) for item in statement.order_by))
    if statement.limit is not None:
        parts.append(f"LIMIT {statement.limit}")
        if statement.offset is not None:
            parts.append(f"OFFSET {statement.offset}")
    return " ".join(parts)


def _format_select_item(item: SelectItem) -> str:
    rendered = format_expression(item.expression)
    if item.alias:
        return f"{rendered} AS {item.alias}"
    return rendered


def _format_from_item(item: FromItem) -> str:
    if isinstance(item, TableRef):
        if item.alias:
            return f"{item.name} {item.alias}"
        return item.name
    if isinstance(item, SubqueryRef):
        return f"({_format_select(item.subquery)}) {item.alias}"
    if isinstance(item, Join):
        left = _format_from_item(item.left)
        right = _format_from_item(item.right)
        keyword = "JOIN" if item.join_type == "INNER" else f"{item.join_type} JOIN"
        if item.condition is None:
            return f"{left} {keyword} {right}"
        return f"{left} {keyword} {right} ON {format_expression(item.condition)}"
    raise TypeError(f"unsupported FROM item: {type(item).__name__}")


def _format_order_item(item: OrderItem) -> str:
    suffix = "" if item.ascending else " DESC"
    return f"{format_expression(item.expression)}{suffix}"


def _format_insert(statement: InsertStatement) -> str:
    columns = ""
    if statement.columns:
        columns = " (" + ", ".join(statement.columns) + ")"
    if statement.select is not None:
        return f"INSERT INTO {statement.table}{columns} {_format_select(statement.select)}"
    rows = ", ".join(
        "(" + ", ".join(format_expression(value) for value in row) + ")"
        for row in statement.rows
    )
    return f"INSERT INTO {statement.table}{columns} VALUES {rows}"


def _format_update(statement: UpdateStatement) -> str:
    assignments = ", ".join(
        f"{column} = {format_expression(value)}" for column, value in statement.assignments
    )
    sql = f"UPDATE {statement.table} SET {assignments}"
    if statement.where is not None:
        sql += f" WHERE {format_expression(statement.where)}"
    return sql


def _format_delete(statement: DeleteStatement) -> str:
    sql = f"DELETE FROM {statement.table}"
    if statement.where is not None:
        sql += f" WHERE {format_expression(statement.where)}"
    return sql


def _format_column_definition(column: ColumnDefinition) -> str:
    parts = [column.name, column.type_name]
    if column.primary_key:
        parts.append("PRIMARY KEY")
    elif column.not_null:
        parts.append("NOT NULL")
    if column.unique and not column.primary_key:
        parts.append("UNIQUE")
    return " ".join(parts)


def _format_create_table(statement: CreateTableStatement) -> str:
    prefix = "CREATE TABLE "
    if statement.if_not_exists:
        prefix += "IF NOT EXISTS "
    columns = ", ".join(_format_column_definition(column) for column in statement.columns)
    return f"{prefix}{statement.table} ({columns})"


def _format_alter(statement: AlterTableStatement) -> str:
    if statement.action == "add_column":
        assert statement.column is not None
        return (
            f"ALTER TABLE {statement.table} ADD COLUMN "
            f"{_format_column_definition(statement.column)}"
        )
    if statement.action == "drop_column":
        return f"ALTER TABLE {statement.table} DROP COLUMN {statement.column_name}"
    if statement.action == "rename_column":
        return (
            f"ALTER TABLE {statement.table} RENAME COLUMN "
            f"{statement.column_name} TO {statement.new_name}"
        )
    if statement.action == "rename_table":
        return f"ALTER TABLE {statement.table} RENAME TO {statement.new_name}"
    raise ValueError(f"unsupported ALTER action: {statement.action}")
