"""Structural diff between two queries.

Figure 2 of the paper visualizes a query session as a chain of queries whose
edges are labelled with the *difference* between consecutive queries (e.g.
"added relation WaterSalinity", "changed predicate to temp < 18", "added two
predicates").  Figure 3 shows a "Diff" column (e.g. "-1 col, -1 pred") next to
each recommended query.  This module computes exactly those differences from
the feature representation of the two queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sql.features import QueryFeatures, extract_features


@dataclass(frozen=True)
class DiffEntry:
    """One atomic difference between two queries.

    ``kind`` is one of ``table``, ``projection``, ``predicate``, ``join``,
    ``group_by``, ``order_by``, ``aggregate``, ``constant``; ``change`` is
    ``added``, ``removed``, or ``changed``; ``detail`` is a human-readable
    description of the element involved.
    """

    kind: str
    change: str
    detail: str

    def __str__(self) -> str:
        sign = {"added": "+", "removed": "-", "changed": "~"}[self.change]
        return f"{sign}{self.kind}:{self.detail}"


@dataclass
class QueryDiff:
    """The full diff between a source query and a target query."""

    entries: list[DiffEntry] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        return not self.entries

    def count(self, kind: str | None = None, change: str | None = None) -> int:
        """Number of entries, optionally filtered by kind and/or change."""
        return sum(
            1
            for entry in self.entries
            if (kind is None or entry.kind == kind)
            and (change is None or entry.change == change)
        )

    def summary(self) -> str:
        """Compact summary in the style of the paper's Figure 3 "Diff" column.

        Examples: ``"none"``, ``"-1 col, +2 pred"``, ``"+1 table, ~1 const"``.
        """
        if self.is_empty:
            return "none"
        labels = {
            "table": "table",
            "projection": "col",
            "predicate": "pred",
            "join": "join",
            "group_by": "group",
            "order_by": "order",
            "aggregate": "agg",
            "constant": "const",
        }
        counts: dict[tuple[str, str], int] = {}
        for entry in self.entries:
            key = (entry.change, labels.get(entry.kind, entry.kind))
            counts[key] = counts.get(key, 0) + 1
        sign = {"added": "+", "removed": "-", "changed": "~"}
        parts = [
            f"{sign[change]}{count} {label}"
            for (change, label), count in sorted(counts.items(), key=lambda kv: kv[0])
        ]
        return ", ".join(parts)

    def distance(self) -> int:
        """Edit-style distance: number of atomic differences."""
        return len(self.entries)

    def described(self) -> list[str]:
        """Human-readable description lines, one per entry."""
        verbs = {"added": "added", "removed": "removed", "changed": "changed"}
        nouns = {
            "table": "relation",
            "projection": "projected column",
            "predicate": "predicate",
            "join": "join condition",
            "group_by": "grouping column",
            "order_by": "ordering column",
            "aggregate": "aggregate",
            "constant": "constant",
        }
        return [
            f"{verbs[entry.change]} {nouns.get(entry.kind, entry.kind)} {entry.detail}"
            for entry in self.entries
        ]


def diff_queries(
    source,
    target,
    schema_columns: dict[str, set[str]] | None = None,
) -> QueryDiff:
    """Compute the :class:`QueryDiff` from ``source`` to ``target``.

    Both arguments may be SQL text, parsed statements, or already-extracted
    :class:`~repro.sql.features.QueryFeatures` (the Query Miner passes feature
    objects straight from the Query Storage to avoid re-parsing).
    """
    source_features = _as_features(source, schema_columns)
    target_features = _as_features(target, schema_columns)
    diff = QueryDiff()

    _diff_sets(
        diff,
        "table",
        set(source_features.tables),
        set(target_features.tables),
        lambda table: table,
    )
    _diff_sets(
        diff,
        "projection",
        set(source_features.projections),
        set(target_features.projections),
        _format_attribute,
    )
    _diff_predicates(diff, source_features, target_features)
    _diff_sets(
        diff,
        "join",
        source_features.join_signatures(),
        target_features.join_signatures(),
        lambda join: f"{join[0]}.{join[1]} = {join[2]}.{join[3]}",
    )
    _diff_sets(
        diff,
        "group_by",
        set(source_features.group_by),
        set(target_features.group_by),
        _format_attribute,
    )
    _diff_sets(
        diff,
        "order_by",
        set(source_features.order_by),
        set(target_features.order_by),
        _format_attribute,
    )
    _diff_sets(
        diff,
        "aggregate",
        set(source_features.aggregates),
        set(target_features.aggregates),
        lambda name: name,
    )
    return diff


def feature_distance(
    source,
    target,
    schema_columns: dict[str, set[str]] | None = None,
) -> int:
    """Shortcut: the number of atomic differences between two queries."""
    return diff_queries(source, target, schema_columns).distance()


# ---------------------------------------------------------------------------
# Internals
# ---------------------------------------------------------------------------


def _as_features(query, schema_columns) -> QueryFeatures:
    if isinstance(query, QueryFeatures):
        return query
    return extract_features(query, schema_columns)


def _format_attribute(pair: tuple[str, str]) -> str:
    attribute, relation = pair
    return f"{relation}.{attribute}"


def _diff_sets(diff: QueryDiff, kind: str, source: set, target: set, describe) -> None:
    for item in sorted(target - source, key=str):
        diff.entries.append(DiffEntry(kind=kind, change="added", detail=describe(item)))
    for item in sorted(source - target, key=str):
        diff.entries.append(DiffEntry(kind=kind, change="removed", detail=describe(item)))


def _diff_predicates(
    diff: QueryDiff, source: QueryFeatures, target: QueryFeatures
) -> None:
    """Diff predicates, reporting constant-only changes as ``constant`` entries.

    A predicate is identified by ``(attribute, relation, op)``; if the same
    identity appears on both sides but with a different constant, that is a
    "changed constant" (the Figure 2 session tries ``temp < 22``, ``< 10``,
    ``< 18`` — those edges are constant changes, not predicate add/removes).
    """
    source_map: dict[tuple[str, str, str], set] = {}
    for predicate in source.predicates:
        key = (predicate.attribute, predicate.relation, predicate.op)
        source_map.setdefault(key, set()).add(_hashable(predicate.constant))
    target_map: dict[tuple[str, str, str], set] = {}
    for predicate in target.predicates:
        key = (predicate.attribute, predicate.relation, predicate.op)
        target_map.setdefault(key, set()).add(_hashable(predicate.constant))

    for key in sorted(set(target_map) - set(source_map)):
        attribute, relation, op = key
        for constant in sorted(target_map[key], key=str):
            diff.entries.append(
                DiffEntry(
                    kind="predicate",
                    change="added",
                    detail=f"{relation}.{attribute} {op} {constant}",
                )
            )
    for key in sorted(set(source_map) - set(target_map)):
        attribute, relation, op = key
        for constant in sorted(source_map[key], key=str):
            diff.entries.append(
                DiffEntry(
                    kind="predicate",
                    change="removed",
                    detail=f"{relation}.{attribute} {op} {constant}",
                )
            )
    for key in sorted(set(source_map) & set(target_map)):
        if source_map[key] != target_map[key]:
            attribute, relation, op = key
            old = ", ".join(str(value) for value in sorted(source_map[key], key=str))
            new = ", ".join(str(value) for value in sorted(target_map[key], key=str))
            diff.entries.append(
                DiffEntry(
                    kind="constant",
                    change="changed",
                    detail=f"{relation}.{attribute} {op}: {old} -> {new}",
                )
            )


def _hashable(value: object) -> object:
    if isinstance(value, list):
        return tuple(value)
    return value
