"""Recursive-descent parser for the CQMS SQL dialect.

The grammar intentionally covers the fragment of SQL that appears in the
paper's examples and in exploratory scientific/analytic workloads:

* ``SELECT [DISTINCT] ... FROM ... [JOIN ... ON ...] [WHERE] [GROUP BY]
  [HAVING] [ORDER BY] [LIMIT [OFFSET]]`` with aggregates, nested subqueries
  (``IN``, ``EXISTS``, scalar), ``BETWEEN``, ``LIKE``, ``IS NULL`` and
  ``CASE`` expressions.
* ``INSERT`` (``VALUES`` and ``INSERT ... SELECT``), ``UPDATE``, ``DELETE``.
* ``CREATE TABLE``, ``DROP TABLE``, ``ALTER TABLE`` (add / drop / rename
  column, rename table) and ``CREATE INDEX`` — the DDL needed for the
  schema-evolution experiments (C7).
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.sql.ast_nodes import (
    AlterTableStatement,
    Between,
    BinaryOp,
    CaseExpression,
    ColumnDefinition,
    ColumnRef,
    CreateIndexStatement,
    CreateTableStatement,
    DeleteStatement,
    DropTableStatement,
    ExistsSubquery,
    Expression,
    FromItem,
    FunctionCall,
    InList,
    InSubquery,
    InsertStatement,
    Join,
    Literal,
    OrderItem,
    ScalarSubquery,
    SelectItem,
    SelectStatement,
    Star,
    Statement,
    SubqueryRef,
    TableRef,
    UnaryOp,
    UpdateStatement,
)
from repro.sql.tokenizer import Token, TokenType, tokenize


#: Keywords that may also be used as ordinary identifiers (column/table names).
#: Structural keywords (FROM, WHERE, GROUP, ...) are deliberately excluded so
#: that partially written queries fail to parse rather than mis-parse.
_NON_RESERVED_KEYWORDS = frozenset(
    {
        "COUNT", "SUM", "AVG", "MIN", "MAX", "KEY", "INDEX", "TO", "ADD",
        "COLUMN", "RENAME", "ASC", "DESC", "ALL", "VALUES", "SET",
    }
)


def parse(sql: str) -> Statement:
    """Parse a single SQL statement and return its AST.

    A trailing semicolon is allowed.  Raises :class:`~repro.errors.ParseError`
    on malformed input.
    """
    parser = _Parser(tokenize(sql))
    statement = parser.parse_statement()
    parser.expect_end()
    return statement


def parse_many(sql: str) -> list[Statement]:
    """Parse a semicolon-separated script into a list of statements."""
    parser = _Parser(tokenize(sql))
    statements: list[Statement] = []
    while not parser.at_end():
        statements.append(parser.parse_statement())
        while parser.match_punct(";"):
            pass
    return statements


def parse_expression(sql: str) -> Expression:
    """Parse a standalone SQL expression (used in tests and meta-query builders)."""
    parser = _Parser(tokenize(sql))
    expr = parser.parse_expr()
    parser.expect_end()
    return expr


class _Parser:
    """Token-stream cursor with one-token lookahead."""

    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- cursor helpers ----------------------------------------------------

    @property
    def current(self) -> Token:
        return self._tokens[self._pos]

    def advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def at_end(self) -> bool:
        return self.current.type is TokenType.EOF

    def check_keyword(self, *names: str) -> bool:
        return self.current.is_keyword(*names)

    def match_keyword(self, *names: str) -> bool:
        if self.check_keyword(*names):
            self.advance()
            return True
        return False

    def expect_keyword(self, name: str) -> Token:
        if not self.check_keyword(name):
            raise ParseError(f"expected {name}, found {self.current.value!r}", self.current)
        return self.advance()

    def check_punct(self, value: str) -> bool:
        return self.current.type is TokenType.PUNCTUATION and self.current.value == value

    def match_punct(self, value: str) -> bool:
        if self.check_punct(value):
            self.advance()
            return True
        return False

    def expect_punct(self, value: str) -> Token:
        if not self.check_punct(value):
            raise ParseError(f"expected {value!r}, found {self.current.value!r}", self.current)
        return self.advance()

    def check_operator(self, *values: str) -> bool:
        return self.current.type is TokenType.OPERATOR and self.current.value in values

    def match_operator(self, *values: str) -> str | None:
        if self.check_operator(*values):
            return self.advance().value
        return None

    def expect_identifier(self) -> str:
        token = self.current
        if token.type is TokenType.IDENTIFIER:
            self.advance()
            return token.value
        # Allow selected non-reserved keywords as identifiers (e.g. a column
        # named "count" or "key"); structural keywords such as FROM or WHERE
        # must never be treated as identifiers or partial queries mis-parse.
        if token.type is TokenType.KEYWORD and token.value in _NON_RESERVED_KEYWORDS:
            self.advance()
            return token.value
        raise ParseError(f"expected identifier, found {token.value!r}", token)

    def expect_end(self) -> None:
        self.match_punct(";")
        if not self.at_end():
            raise ParseError(
                f"unexpected trailing input {self.current.value!r}", self.current
            )

    # -- statements ---------------------------------------------------------

    def parse_statement(self) -> Statement:
        if self.check_keyword("SELECT"):
            return self.parse_select()
        if self.check_keyword("INSERT"):
            return self.parse_insert()
        if self.check_keyword("UPDATE"):
            return self.parse_update()
        if self.check_keyword("DELETE"):
            return self.parse_delete()
        if self.check_keyword("CREATE"):
            return self.parse_create()
        if self.check_keyword("DROP"):
            return self.parse_drop()
        if self.check_keyword("ALTER"):
            return self.parse_alter()
        raise ParseError(f"unsupported statement start {self.current.value!r}", self.current)

    def parse_select(self) -> SelectStatement:
        self.expect_keyword("SELECT")
        distinct = bool(self.match_keyword("DISTINCT"))
        self.match_keyword("ALL")
        select_items = self._parse_select_items()
        from_items: tuple[FromItem, ...] = ()
        where = None
        group_by: tuple[Expression, ...] = ()
        having = None
        order_by: tuple[OrderItem, ...] = ()
        limit = None
        offset = None
        if self.match_keyword("FROM"):
            from_items = self._parse_from_clause()
        if self.match_keyword("WHERE"):
            where = self.parse_expr()
        if self.match_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by = tuple(self._parse_expression_list())
        if self.match_keyword("HAVING"):
            having = self.parse_expr()
        if self.match_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by = tuple(self._parse_order_items())
        if self.match_keyword("LIMIT"):
            limit = self._parse_integer()
            if self.match_keyword("OFFSET"):
                offset = self._parse_integer()
        return SelectStatement(
            select_items=select_items,
            from_items=from_items,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def _parse_select_items(self) -> tuple[SelectItem, ...]:
        items = [self._parse_select_item()]
        while self.match_punct(","):
            items.append(self._parse_select_item())
        return tuple(items)

    def _parse_select_item(self) -> SelectItem:
        expr = self.parse_expr()
        alias = None
        if self.match_keyword("AS"):
            alias = self.expect_identifier()
        elif self.current.type is TokenType.IDENTIFIER:
            alias = self.advance().value
        return SelectItem(expression=expr, alias=alias)

    def _parse_from_clause(self) -> tuple[FromItem, ...]:
        items = [self._parse_from_item_with_joins()]
        while self.match_punct(","):
            items.append(self._parse_from_item_with_joins())
        return tuple(items)

    def _parse_from_item_with_joins(self) -> FromItem:
        left = self._parse_single_from_item()
        while True:
            join_type = self._match_join_type()
            if join_type is None:
                return left
            right = self._parse_single_from_item()
            condition = None
            if join_type != "CROSS":
                self.expect_keyword("ON")
                condition = self.parse_expr()
            left = Join(join_type=join_type, left=left, right=right, condition=condition)

    def _match_join_type(self) -> str | None:
        if self.match_keyword("JOIN"):
            return "INNER"
        if self.check_keyword("INNER", "LEFT", "RIGHT", "FULL", "CROSS"):
            kind = self.advance().value
            self.match_keyword("OUTER")
            self.expect_keyword("JOIN")
            return "INNER" if kind == "INNER" else kind
        return None

    def _parse_single_from_item(self) -> FromItem:
        if self.match_punct("("):
            subquery = self.parse_select()
            self.expect_punct(")")
            self.match_keyword("AS")
            alias = self.expect_identifier()
            return SubqueryRef(subquery=subquery, alias=alias)
        name = self.expect_identifier()
        alias = None
        if self.match_keyword("AS"):
            alias = self.expect_identifier()
        elif self.current.type is TokenType.IDENTIFIER:
            alias = self.advance().value
        return TableRef(name=name, alias=alias)

    def _parse_order_items(self) -> list[OrderItem]:
        items = [self._parse_order_item()]
        while self.match_punct(","):
            items.append(self._parse_order_item())
        return items

    def _parse_order_item(self) -> OrderItem:
        expr = self.parse_expr()
        ascending = True
        if self.match_keyword("DESC"):
            ascending = False
        else:
            self.match_keyword("ASC")
        return OrderItem(expression=expr, ascending=ascending)

    def _parse_expression_list(self) -> list[Expression]:
        items = [self.parse_expr()]
        while self.match_punct(","):
            items.append(self.parse_expr())
        return items

    def _parse_integer(self) -> int:
        token = self.current
        if token.type is not TokenType.NUMBER:
            raise ParseError(f"expected integer, found {token.value!r}", token)
        self.advance()
        try:
            return int(token.value)
        except ValueError as exc:
            raise ParseError(f"expected integer, found {token.value!r}", token) from exc

    def parse_insert(self) -> InsertStatement:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_identifier()
        columns: tuple[str, ...] = ()
        if self.check_punct("("):
            self.advance()
            names = [self.expect_identifier()]
            while self.match_punct(","):
                names.append(self.expect_identifier())
            self.expect_punct(")")
            columns = tuple(names)
        if self.check_keyword("SELECT"):
            select = self.parse_select()
            return InsertStatement(table=table, columns=columns, select=select)
        self.expect_keyword("VALUES")
        rows: list[tuple[Expression, ...]] = []
        while True:
            self.expect_punct("(")
            values = [self.parse_expr()]
            while self.match_punct(","):
                values.append(self.parse_expr())
            self.expect_punct(")")
            rows.append(tuple(values))
            if not self.match_punct(","):
                break
        return InsertStatement(table=table, columns=columns, rows=tuple(rows))

    def parse_update(self) -> UpdateStatement:
        self.expect_keyword("UPDATE")
        table = self.expect_identifier()
        self.expect_keyword("SET")
        assignments: list[tuple[str, Expression]] = []
        while True:
            column = self.expect_identifier()
            if self.match_operator("=") is None:
                raise ParseError("expected '=' in UPDATE assignment", self.current)
            assignments.append((column, self.parse_expr()))
            if not self.match_punct(","):
                break
        where = self.parse_expr() if self.match_keyword("WHERE") else None
        return UpdateStatement(table=table, assignments=tuple(assignments), where=where)

    def parse_delete(self) -> DeleteStatement:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect_identifier()
        where = self.parse_expr() if self.match_keyword("WHERE") else None
        return DeleteStatement(table=table, where=where)

    def parse_create(self) -> Statement:
        self.expect_keyword("CREATE")
        if self.match_keyword("UNIQUE"):
            self.expect_keyword("INDEX")
            return self._parse_create_index(unique=True)
        if self.match_keyword("INDEX"):
            return self._parse_create_index(unique=False)
        self.expect_keyword("TABLE")
        if_not_exists = False
        if self.match_keyword("IF"):
            self.expect_keyword("NOT")
            self.expect_keyword("EXISTS")
            if_not_exists = True
        table = self.expect_identifier()
        self.expect_punct("(")
        columns = [self._parse_column_definition()]
        while self.match_punct(","):
            columns.append(self._parse_column_definition())
        self.expect_punct(")")
        return CreateTableStatement(
            table=table, columns=tuple(columns), if_not_exists=if_not_exists
        )

    def _parse_create_index(self, unique: bool) -> CreateIndexStatement:
        name = self.expect_identifier()
        self.expect_keyword("ON")
        table = self.expect_identifier()
        self.expect_punct("(")
        column = self.expect_identifier()
        self.expect_punct(")")
        kind = "hash"
        # USING is matched contextually (not reserved): workloads that use
        # "using" as an ordinary identifier must keep parsing.
        if (
            self.current.type is TokenType.IDENTIFIER
            and self.current.value.upper() == "USING"
        ):
            self.advance()
            kind = self.expect_identifier().lower()
        return CreateIndexStatement(
            name=name, table=table, column=column, unique=unique, kind=kind
        )

    def _parse_column_definition(self) -> ColumnDefinition:
        name = self.expect_identifier()
        type_name = self.expect_identifier().upper()
        # Consume an optional length such as VARCHAR(32); the engine ignores it.
        if self.match_punct("("):
            self._parse_integer()
            self.expect_punct(")")
        not_null = False
        primary_key = False
        unique = False
        while True:
            if self.match_keyword("NOT"):
                self.expect_keyword("NULL")
                not_null = True
            elif self.match_keyword("PRIMARY"):
                self.expect_keyword("KEY")
                primary_key = True
                not_null = True
            elif self.match_keyword("UNIQUE"):
                unique = True
            else:
                break
        return ColumnDefinition(
            name=name,
            type_name=type_name,
            not_null=not_null,
            primary_key=primary_key,
            unique=unique,
        )

    def parse_drop(self) -> DropTableStatement:
        self.expect_keyword("DROP")
        self.expect_keyword("TABLE")
        if_exists = False
        if self.match_keyword("IF"):
            self.expect_keyword("EXISTS")
            if_exists = True
        table = self.expect_identifier()
        return DropTableStatement(table=table, if_exists=if_exists)

    def parse_alter(self) -> AlterTableStatement:
        self.expect_keyword("ALTER")
        self.expect_keyword("TABLE")
        table = self.expect_identifier()
        if self.match_keyword("ADD"):
            self.match_keyword("COLUMN")
            column = self._parse_column_definition()
            return AlterTableStatement(table=table, action="add_column", column=column)
        if self.match_keyword("DROP"):
            self.match_keyword("COLUMN")
            column_name = self.expect_identifier()
            return AlterTableStatement(
                table=table, action="drop_column", column_name=column_name
            )
        if self.match_keyword("RENAME"):
            if self.match_keyword("COLUMN"):
                old = self.expect_identifier()
                self.expect_keyword("TO")
                new = self.expect_identifier()
                return AlterTableStatement(
                    table=table, action="rename_column", column_name=old, new_name=new
                )
            self.expect_keyword("TO")
            new = self.expect_identifier()
            return AlterTableStatement(table=table, action="rename_table", new_name=new)
        raise ParseError(
            f"unsupported ALTER TABLE action {self.current.value!r}", self.current
        )

    # -- expressions ---------------------------------------------------------
    #
    # Precedence (loosest to tightest):
    #   OR
    #   AND
    #   NOT
    #   comparison / IN / BETWEEN / LIKE / IS
    #   additive (+ - ||)
    #   multiplicative (* / %)
    #   unary minus
    #   primary

    def parse_expr(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        left = self._parse_and()
        while self.match_keyword("OR"):
            right = self._parse_and()
            left = BinaryOp(op="OR", left=left, right=right)
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_not()
        while self.match_keyword("AND"):
            right = self._parse_not()
            left = BinaryOp(op="AND", left=left, right=right)
        return left

    def _parse_not(self) -> Expression:
        if self.match_keyword("NOT"):
            return UnaryOp(op="NOT", operand=self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> Expression:
        left = self._parse_additive()
        while True:
            negated = False
            if self.check_keyword("NOT"):
                # Lookahead: NOT IN / NOT BETWEEN / NOT LIKE
                next_token = self._tokens[self._pos + 1]
                if next_token.is_keyword("IN", "BETWEEN", "LIKE"):
                    self.advance()
                    negated = True
                else:
                    return left
            op = self.match_operator("=", "<>", "!=", "<", "<=", ">", ">=")
            if op is not None and not negated:
                right = self._parse_additive()
                normalized = "<>" if op == "!=" else op
                left = BinaryOp(op=normalized, left=left, right=right)
                continue
            if self.match_keyword("IN"):
                left = self._parse_in(left, negated)
                continue
            if self.match_keyword("BETWEEN"):
                low = self._parse_additive()
                self.expect_keyword("AND")
                high = self._parse_additive()
                left = Between(expr=left, low=low, high=high, negated=negated)
                continue
            if self.match_keyword("LIKE"):
                right = self._parse_additive()
                like = BinaryOp(op="LIKE", left=left, right=right)
                left = UnaryOp(op="NOT", operand=like) if negated else like
                continue
            if self.match_keyword("IS"):
                is_negated = bool(self.match_keyword("NOT"))
                self.expect_keyword("NULL")
                left = UnaryOp(op="IS NOT NULL" if is_negated else "IS NULL", operand=left)
                continue
            return left

    def _parse_in(self, left: Expression, negated: bool) -> Expression:
        self.expect_punct("(")
        if self.check_keyword("SELECT"):
            subquery = self.parse_select()
            self.expect_punct(")")
            return InSubquery(expr=left, subquery=subquery, negated=negated)
        values = [self.parse_expr()]
        while self.match_punct(","):
            values.append(self.parse_expr())
        self.expect_punct(")")
        return InList(expr=left, values=tuple(values), negated=negated)

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while True:
            op = self.match_operator("+", "-", "||")
            if op is None:
                return left
            right = self._parse_multiplicative()
            left = BinaryOp(op=op, left=left, right=right)

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_unary()
        while True:
            op = self.match_operator("*", "/", "%")
            if op is None:
                return left
            # ``*`` directly followed by , or FROM etc. never reaches here
            # because _parse_unary consumed it as a Star only in primary
            # position; in infix position it is always multiplication.
            right = self._parse_unary()
            left = BinaryOp(op=op, left=left, right=right)

    def _parse_unary(self) -> Expression:
        if self.match_operator("-"):
            return UnaryOp(op="-", operand=self._parse_unary())
        if self.match_operator("+"):
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> Expression:
        token = self.current
        if token.type is TokenType.NUMBER:
            self.advance()
            return Literal(_number_value(token.value))
        if token.type is TokenType.STRING:
            self.advance()
            return Literal(token.value)
        if token.is_keyword("NULL"):
            self.advance()
            return Literal(None)
        if token.is_keyword("TRUE"):
            self.advance()
            return Literal(True)
        if token.is_keyword("FALSE"):
            self.advance()
            return Literal(False)
        if token.is_keyword("CASE"):
            return self._parse_case()
        if token.is_keyword("EXISTS"):
            self.advance()
            self.expect_punct("(")
            subquery = self.parse_select()
            self.expect_punct(")")
            return ExistsSubquery(subquery=subquery)
        if token.is_keyword("CAST"):
            return self._parse_cast()
        if token.type is TokenType.OPERATOR and token.value == "*":
            self.advance()
            return Star()
        if self.check_punct("("):
            self.advance()
            if self.check_keyword("SELECT"):
                subquery = self.parse_select()
                self.expect_punct(")")
                return ScalarSubquery(subquery=subquery)
            expr = self.parse_expr()
            self.expect_punct(")")
            return expr
        if token.is_keyword("COUNT", "SUM", "AVG", "MIN", "MAX"):
            return self._parse_function_call(self.advance().value)
        if token.type is TokenType.IDENTIFIER or (
            token.type is TokenType.KEYWORD and token.value in _NON_RESERVED_KEYWORDS
        ):
            return self._parse_identifier_expression()
        raise ParseError(f"unexpected token {token.value!r} in expression", token)

    def _parse_identifier_expression(self) -> Expression:
        name = self.expect_identifier()
        if self.check_punct("("):
            return self._parse_function_call(name)
        if self.check_punct("."):
            self.advance()
            if self.check_operator("*"):
                self.advance()
                return Star(table=name)
            column = self.expect_identifier()
            return ColumnRef(name=column, table=name)
        return ColumnRef(name=name)

    def _parse_function_call(self, name: str) -> FunctionCall:
        self.expect_punct("(")
        distinct = bool(self.match_keyword("DISTINCT"))
        args: list[Expression] = []
        if not self.check_punct(")"):
            args.append(self.parse_expr())
            while self.match_punct(","):
                args.append(self.parse_expr())
        self.expect_punct(")")
        return FunctionCall(name=name.upper(), args=tuple(args), distinct=distinct)

    def _parse_case(self) -> CaseExpression:
        self.expect_keyword("CASE")
        whens: list[tuple[Expression, Expression]] = []
        default: Expression | None = None
        while self.match_keyword("WHEN"):
            condition = self.parse_expr()
            self.expect_keyword("THEN")
            value = self.parse_expr()
            whens.append((condition, value))
        if self.match_keyword("ELSE"):
            default = self.parse_expr()
        self.expect_keyword("END")
        if not whens:
            raise ParseError("CASE expression requires at least one WHEN", self.current)
        return CaseExpression(whens=tuple(whens), default=default)

    def _parse_cast(self) -> Expression:
        self.expect_keyword("CAST")
        self.expect_punct("(")
        expr = self.parse_expr()
        self.expect_keyword("AS")
        type_name = self.expect_identifier().upper()
        if self.match_punct("("):
            self._parse_integer()
            self.expect_punct(")")
        self.expect_punct(")")
        return FunctionCall(name="CAST", args=(expr, Literal(type_name)))


def _number_value(text: str) -> int | float:
    """Convert a numeric literal's text to int when possible, else float."""
    if "." in text or "e" in text or "E" in text:
        return float(text)
    return int(text)
