"""Lexical analysis for the SQL dialect understood by the CQMS.

The tokenizer is deliberately standalone (no third-party dependency) because
the Query Profiler must be able to shred every incoming query with very low
overhead (paper Section 2.1), and the assisted-interaction client needs to
tokenize partially written queries that may end mid-clause.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import TokenizeError


class TokenType(enum.Enum):
    """Classification of a lexical token."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCTUATION = "punctuation"
    PARAMETER = "parameter"
    EOF = "eof"


#: Reserved words recognised as keywords (upper-cased).  Anything else that
#: looks like a word is an identifier.
KEYWORDS = frozenset(
    {
        "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
        "OFFSET", "AS", "AND", "OR", "NOT", "IN", "IS", "NULL", "LIKE",
        "BETWEEN", "EXISTS", "DISTINCT", "JOIN", "INNER", "LEFT", "RIGHT",
        "FULL", "OUTER", "CROSS", "ON", "UNION", "ALL", "INSERT", "INTO",
        "VALUES", "UPDATE", "SET", "DELETE", "CREATE", "TABLE", "DROP",
        "ALTER", "ADD", "COLUMN", "RENAME", "TO", "PRIMARY", "KEY", "UNIQUE",
        "ASC", "DESC", "CASE", "WHEN", "THEN", "ELSE", "END", "TRUE", "FALSE",
        "COUNT", "SUM", "AVG", "MIN", "MAX", "CAST", "INDEX", "IF",
    }
)

#: Multi-character operators, longest first so that e.g. ``<=`` wins over ``<``.
_MULTI_CHAR_OPERATORS = ("<>", "<=", ">=", "!=", "||")
_SINGLE_CHAR_OPERATORS = "=<>+-*/%"
_PUNCTUATION = "(),.;"


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    Attributes
    ----------
    type:
        The :class:`TokenType` of the token.
    value:
        The token text.  Keywords are upper-cased; identifiers keep their
        original case (SQL identifiers are matched case-insensitively later);
        string literals are stored *without* the surrounding quotes.
    position:
        Character offset of the first character of the token in the input.
    """

    type: TokenType
    value: str
    position: int

    def is_keyword(self, *names: str) -> bool:
        """Return True when this token is one of the given keywords."""
        return self.type is TokenType.KEYWORD and self.value in names

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.value!r}@{self.position})"


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text`` into a list of :class:`Token`.

    The returned list always ends with a single ``EOF`` token, which
    simplifies the parser's lookahead logic.

    Raises
    ------
    TokenizeError
        If an unterminated string literal or an illegal character is found.
    """
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and i + 1 < n and text[i + 1] == "-":
            # Line comment: skip to end of line.
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch == "/" and i + 1 < n and text[i + 1] == "*":
            end = text.find("*/", i + 2)
            if end == -1:
                raise TokenizeError("unterminated block comment", position=i)
            i = end + 2
            continue
        if ch == "'":
            token, i = _read_string(text, i)
            tokens.append(token)
            continue
        if ch == '"':
            token, i = _read_quoted_identifier(text, i)
            tokens.append(token)
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            token, i = _read_number(text, i)
            tokens.append(token)
            continue
        if ch.isalpha() or ch == "_":
            token, i = _read_word(text, i)
            tokens.append(token)
            continue
        if ch == "?":
            tokens.append(Token(TokenType.PARAMETER, "?", i))
            i += 1
            continue
        multi = _match_multi_char_operator(text, i)
        if multi is not None:
            tokens.append(Token(TokenType.OPERATOR, multi, i))
            i += len(multi)
            continue
        if ch in _SINGLE_CHAR_OPERATORS:
            tokens.append(Token(TokenType.OPERATOR, ch, i))
            i += 1
            continue
        if ch in _PUNCTUATION:
            tokens.append(Token(TokenType.PUNCTUATION, ch, i))
            i += 1
            continue
        raise TokenizeError(f"illegal character {ch!r}", position=i)
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens


def _match_multi_char_operator(text: str, i: int) -> str | None:
    for op in _MULTI_CHAR_OPERATORS:
        if text.startswith(op, i):
            return op
    return None


def _read_string(text: str, start: int) -> tuple[Token, int]:
    """Read a single-quoted string literal; ``''`` escapes a quote."""
    i = start + 1
    parts: list[str] = []
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "'":
            if i + 1 < n and text[i + 1] == "'":
                parts.append("'")
                i += 2
                continue
            return Token(TokenType.STRING, "".join(parts), start), i + 1
        parts.append(ch)
        i += 1
    raise TokenizeError("unterminated string literal", position=start)


def _read_quoted_identifier(text: str, start: int) -> tuple[Token, int]:
    """Read a double-quoted identifier."""
    i = start + 1
    parts: list[str] = []
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == '"':
            return Token(TokenType.IDENTIFIER, "".join(parts), start), i + 1
        parts.append(ch)
        i += 1
    raise TokenizeError("unterminated quoted identifier", position=start)


def _read_number(text: str, start: int) -> tuple[Token, int]:
    i = start
    n = len(text)
    seen_dot = False
    seen_exp = False
    while i < n:
        ch = text[i]
        if ch.isdigit():
            i += 1
        elif ch == "." and not seen_dot and not seen_exp:
            seen_dot = True
            i += 1
        elif ch in "eE" and not seen_exp and i > start:
            seen_exp = True
            i += 1
            if i < n and text[i] in "+-":
                i += 1
        else:
            break
    return Token(TokenType.NUMBER, text[start:i], start), i


def _read_word(text: str, start: int) -> tuple[Token, int]:
    i = start
    n = len(text)
    while i < n and (text[i].isalnum() or text[i] == "_"):
        i += 1
    word = text[start:i]
    upper = word.upper()
    if upper in KEYWORDS:
        return Token(TokenType.KEYWORD, upper, start), i
    return Token(TokenType.IDENTIFIER, word, start), i


def strip_comments(text: str) -> str:
    """Return ``text`` with SQL comments removed (whitespace preserved).

    Used by the profiler when storing raw query text so that meta-query
    substring search does not match inside comments.
    """
    out: list[str] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "'":
            token, j = _read_string(text, i)
            out.append(text[i:j])
            i = j
            continue
        if ch == "-" and i + 1 < n and text[i + 1] == "-":
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch == "/" and i + 1 < n and text[i + 1] == "*":
            end = text.find("*/", i + 2)
            if end == -1:
                raise TokenizeError("unterminated block comment", position=i)
            i = end + 2
            continue
        out.append(ch)
        i += 1
    return "".join(out)
