"""Typed AST node classes for the CQMS SQL dialect.

The AST is the common currency of the SQL substrate: the parser produces it,
the storage engine executes it, the feature extractor shreds it, the
canonicalizer and differ normalise and compare it, and the parse-tree view
exposes it for query-by-parse-tree meta-queries.

All nodes are plain dataclasses so they are cheap to construct, easy to test,
and structural equality works out of the box.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Literal:
    """A constant value: number, string, boolean, or NULL (``value is None``)."""

    value: object

    def __str__(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return str(self.value)


@dataclass(frozen=True)
class ColumnRef:
    """A (possibly qualified) column reference such as ``S.temp`` or ``temp``."""

    name: str
    table: str | None = None

    def __str__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Star:
    """``*`` or ``alias.*`` in a select list or in ``COUNT(*)``."""

    table: str | None = None

    def __str__(self) -> str:
        return f"{self.table}.*" if self.table else "*"


@dataclass(frozen=True)
class BinaryOp:
    """A binary operation: comparisons, arithmetic, AND/OR, LIKE, string concat."""

    op: str
    left: "Expression"
    right: "Expression"


@dataclass(frozen=True)
class UnaryOp:
    """A unary operation: NOT, unary minus, IS NULL / IS NOT NULL."""

    op: str
    operand: "Expression"


@dataclass(frozen=True)
class FunctionCall:
    """A function call, including aggregates (COUNT, SUM, AVG, MIN, MAX)."""

    name: str
    args: tuple["Expression", ...] = ()
    distinct: bool = False

    @property
    def is_aggregate(self) -> bool:
        return self.name.upper() in {"COUNT", "SUM", "AVG", "MIN", "MAX"}


@dataclass(frozen=True)
class InList:
    """``expr [NOT] IN (v1, v2, ...)``."""

    expr: "Expression"
    values: tuple["Expression", ...]
    negated: bool = False


@dataclass(frozen=True)
class InSubquery:
    """``expr [NOT] IN (SELECT ...)``."""

    expr: "Expression"
    subquery: "SelectStatement"
    negated: bool = False


@dataclass(frozen=True)
class ExistsSubquery:
    """``[NOT] EXISTS (SELECT ...)``."""

    subquery: "SelectStatement"
    negated: bool = False


@dataclass(frozen=True)
class ScalarSubquery:
    """A subquery used as a scalar expression, e.g. ``x > (SELECT MAX(...) ...)``."""

    subquery: "SelectStatement"


@dataclass(frozen=True)
class Between:
    """``expr [NOT] BETWEEN low AND high``."""

    expr: "Expression"
    low: "Expression"
    high: "Expression"
    negated: bool = False


@dataclass(frozen=True)
class CaseExpression:
    """``CASE [WHEN cond THEN value]... [ELSE value] END``."""

    whens: tuple[tuple["Expression", "Expression"], ...]
    default: "Expression | None" = None


Expression = Union[
    Literal,
    ColumnRef,
    Star,
    BinaryOp,
    UnaryOp,
    FunctionCall,
    InList,
    InSubquery,
    ExistsSubquery,
    ScalarSubquery,
    Between,
    CaseExpression,
]


# ---------------------------------------------------------------------------
# SELECT statement parts
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    """One entry in the select list: an expression with an optional alias."""

    expression: Expression
    alias: str | None = None


@dataclass(frozen=True)
class TableRef:
    """A base table in the FROM clause, optionally aliased."""

    name: str
    alias: str | None = None

    @property
    def binding(self) -> str:
        """The name under which columns of this table may be qualified."""
        return self.alias or self.name


@dataclass(frozen=True)
class SubqueryRef:
    """A derived table ``(SELECT ...) alias`` in the FROM clause."""

    subquery: "SelectStatement"
    alias: str

    @property
    def binding(self) -> str:
        return self.alias


@dataclass(frozen=True)
class Join:
    """An explicit join between a left FROM item and a right table."""

    join_type: str  # "INNER", "LEFT", "RIGHT", "CROSS"
    left: "FromItem"
    right: "FromItem"
    condition: Expression | None = None


FromItem = Union[TableRef, SubqueryRef, Join]


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key."""

    expression: Expression
    ascending: bool = True


@dataclass(frozen=True)
class SelectStatement:
    """A full SELECT statement."""

    select_items: tuple[SelectItem, ...]
    from_items: tuple[FromItem, ...] = ()
    where: Expression | None = None
    group_by: tuple[Expression, ...] = ()
    having: Expression | None = None
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    offset: int | None = None
    distinct: bool = False


# ---------------------------------------------------------------------------
# DML / DDL statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class InsertStatement:
    """``INSERT INTO table [(cols)] VALUES (...), (...)`` or ``INSERT ... SELECT``."""

    table: str
    columns: tuple[str, ...] = ()
    rows: tuple[tuple[Expression, ...], ...] = ()
    select: SelectStatement | None = None


@dataclass(frozen=True)
class UpdateStatement:
    """``UPDATE table SET col = expr [, ...] [WHERE expr]``."""

    table: str
    assignments: tuple[tuple[str, Expression], ...]
    where: Expression | None = None


@dataclass(frozen=True)
class DeleteStatement:
    """``DELETE FROM table [WHERE expr]``."""

    table: str
    where: Expression | None = None


@dataclass(frozen=True)
class ColumnDefinition:
    """A column definition in CREATE TABLE."""

    name: str
    type_name: str
    not_null: bool = False
    primary_key: bool = False
    unique: bool = False


@dataclass(frozen=True)
class CreateTableStatement:
    """``CREATE TABLE name (col type [constraints], ...)``."""

    table: str
    columns: tuple[ColumnDefinition, ...]
    if_not_exists: bool = False


@dataclass(frozen=True)
class DropTableStatement:
    """``DROP TABLE [IF EXISTS] name``."""

    table: str
    if_exists: bool = False


@dataclass(frozen=True)
class AlterTableStatement:
    """``ALTER TABLE name <action>``.

    ``action`` is one of ``add_column``, ``drop_column``, ``rename_column``,
    ``rename_table``; the relevant payload fields are set accordingly.
    """

    table: str
    action: str
    column: ColumnDefinition | None = None
    column_name: str | None = None
    new_name: str | None = None


@dataclass(frozen=True)
class CreateIndexStatement:
    """``CREATE [UNIQUE] INDEX name ON table (col) [USING kind]``."""

    name: str
    table: str
    column: str
    unique: bool = False
    kind: str = "hash"


Statement = Union[
    SelectStatement,
    InsertStatement,
    UpdateStatement,
    DeleteStatement,
    CreateTableStatement,
    DropTableStatement,
    AlterTableStatement,
    CreateIndexStatement,
]


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------


def iter_expressions(expr: Expression):
    """Yield ``expr`` and every sub-expression, depth first."""
    yield expr
    if isinstance(expr, BinaryOp):
        yield from iter_expressions(expr.left)
        yield from iter_expressions(expr.right)
    elif isinstance(expr, UnaryOp):
        yield from iter_expressions(expr.operand)
    elif isinstance(expr, FunctionCall):
        for arg in expr.args:
            yield from iter_expressions(arg)
    elif isinstance(expr, InList):
        yield from iter_expressions(expr.expr)
        for value in expr.values:
            yield from iter_expressions(value)
    elif isinstance(expr, InSubquery):
        yield from iter_expressions(expr.expr)
    elif isinstance(expr, Between):
        yield from iter_expressions(expr.expr)
        yield from iter_expressions(expr.low)
        yield from iter_expressions(expr.high)
    elif isinstance(expr, CaseExpression):
        for condition, value in expr.whens:
            yield from iter_expressions(condition)
            yield from iter_expressions(value)
        if expr.default is not None:
            yield from iter_expressions(expr.default)


def iter_subqueries(expr: Expression):
    """Yield every :class:`SelectStatement` nested inside ``expr``."""
    for node in iter_expressions(expr):
        if isinstance(node, (InSubquery, ExistsSubquery, ScalarSubquery)):
            yield node.subquery


def iter_from_tables(from_items: tuple[FromItem, ...]):
    """Yield every :class:`TableRef` reachable from the given FROM items."""
    for item in from_items:
        yield from _iter_from_item_tables(item)


def _iter_from_item_tables(item: FromItem):
    if isinstance(item, TableRef):
        yield item
    elif isinstance(item, SubqueryRef):
        yield from iter_from_tables(item.subquery.from_items)
    elif isinstance(item, Join):
        yield from _iter_from_item_tables(item.left)
        yield from _iter_from_item_tables(item.right)


def column_refs(expr: Expression) -> list[ColumnRef]:
    """Return all column references appearing in ``expr`` (excluding subqueries)."""
    return [node for node in iter_expressions(expr) if isinstance(node, ColumnRef)]


def contains_aggregate(expr: Expression) -> bool:
    """Return True when ``expr`` contains an aggregate function call."""
    return any(
        isinstance(node, FunctionCall) and node.is_aggregate
        for node in iter_expressions(expr)
    )


def select_statement_tables(statement: SelectStatement) -> list[TableRef]:
    """Return every base table referenced by ``statement`` including subqueries."""
    tables = list(iter_from_tables(statement.from_items))
    expressions: list[Expression] = [item.expression for item in statement.select_items]
    if statement.where is not None:
        expressions.append(statement.where)
    if statement.having is not None:
        expressions.append(statement.having)
    expressions.extend(statement.group_by)
    expressions.extend(item.expression for item in statement.order_by)
    for expr in expressions:
        for subquery in iter_subqueries(expr):
            tables.extend(select_statement_tables(subquery))
    for item in statement.from_items:
        for table in _iter_subquery_refs(item):
            tables.extend(select_statement_tables(table.subquery))
    return tables


def _iter_subquery_refs(item: FromItem):
    if isinstance(item, SubqueryRef):
        yield item
    elif isinstance(item, Join):
        yield from _iter_subquery_refs(item.left)
        yield from _iter_subquery_refs(item.right)


def statement_type(statement: Statement) -> str:
    """Return a short lower-case tag for the statement kind (``select`` etc.)."""
    mapping = {
        SelectStatement: "select",
        InsertStatement: "insert",
        UpdateStatement: "update",
        DeleteStatement: "delete",
        CreateTableStatement: "create_table",
        DropTableStatement: "drop_table",
        AlterTableStatement: "alter_table",
        CreateIndexStatement: "create_index",
    }
    return mapping[type(statement)]
