"""SQL language substrate: tokenizer, parser, AST, features, diffs.

This package provides everything the CQMS needs to understand SQL text:

* :mod:`repro.sql.tokenizer` — lexical analysis.
* :mod:`repro.sql.ast_nodes` — typed AST dataclasses.
* :mod:`repro.sql.parser` — recursive-descent parser producing the AST.
* :mod:`repro.sql.formatter` — render an AST back to SQL text.
* :mod:`repro.sql.canonicalize` — normalization used for equality/similarity.
* :mod:`repro.sql.features` — query-feature extraction (the Figure 1 relations).
* :mod:`repro.sql.parse_tree` — generic parse-tree view and structural matching.
* :mod:`repro.sql.diff` — structural diff between two queries (Figure 2 edges).
"""

from repro.sql.tokenizer import Token, TokenType, tokenize
from repro.sql.parser import parse, parse_expression
from repro.sql.formatter import format_statement, format_expression
from repro.sql.canonicalize import canonicalize, canonical_text, queries_equivalent
from repro.sql.features import QueryFeatures, extract_features
from repro.sql.diff import QueryDiff, DiffEntry, diff_queries
from repro.sql.parse_tree import ParseTreeNode, to_parse_tree, tree_size, tree_edit_distance

__all__ = [
    "Token",
    "TokenType",
    "tokenize",
    "parse",
    "parse_expression",
    "format_statement",
    "format_expression",
    "canonicalize",
    "canonical_text",
    "queries_equivalent",
    "QueryFeatures",
    "extract_features",
    "QueryDiff",
    "DiffEntry",
    "diff_queries",
    "ParseTreeNode",
    "to_parse_tree",
    "tree_size",
    "tree_edit_distance",
]
