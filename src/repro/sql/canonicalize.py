"""Query canonicalization and plan-template parameterization.

The miner and the similarity functions need to decide when two queries are
"the same analysis" even if they differ in irrelevant surface details such as
identifier case, alias names, the order of FROM tables, or the order of the
conjuncts in the WHERE clause.  The paper (Section 4.3) additionally suggests
comparing parse trees *after removing constants*; :func:`canonicalize`
supports that through ``strip_constants=True``.

The same constant-stripped canonical form keys the engine's plan cache
(:mod:`repro.storage.plan_cache`): :func:`parameterize_statement` replaces
every literal constant with a :class:`ParamLiteral` that *carries its value*
but *renders as* ``'?'``, so canonicalizing the parameterized statement yields
the template text directly while the planner still sees real constants.
:func:`collect_parameters` then enumerates the parameter sites in a
deterministic traversal order, which is what lets a cached plan be re-bound
positionally to a later statement instance of the same template.
"""

from __future__ import annotations

from dataclasses import replace

from repro.sql.ast_nodes import (
    Between,
    BinaryOp,
    CaseExpression,
    ColumnRef,
    DeleteStatement,
    ExistsSubquery,
    Expression,
    FromItem,
    FunctionCall,
    InList,
    InSubquery,
    Join,
    Literal,
    OrderItem,
    ScalarSubquery,
    SelectItem,
    SelectStatement,
    Star,
    Statement,
    SubqueryRef,
    TableRef,
    UnaryOp,
    UpdateStatement,
)
from repro.sql.formatter import format_statement
from repro.sql.parser import parse

#: Placeholder used in place of literals when ``strip_constants`` is requested.
_CONSTANT_PLACEHOLDER = "?"


class ParamLiteral(Literal):
    """A literal constant captured as a plan-template parameter.

    Behaves exactly like :class:`~repro.sql.ast_nodes.Literal` everywhere the
    engine evaluates or pattern-matches expressions (``value`` holds the real
    constant), but *formats* as the placeholder ``'?'``.  That single property
    makes canonicalization of a parameterized statement instance-independent:
    conjunct sorting, IN-list sorting, and the rendered template text all see
    ``'?'`` regardless of the constant, so every instance of a query template
    produces the same canonical text and the same parameter order.

    The plan cache re-binds cached plans in place by assigning ``value`` on
    the shared parameter nodes (via ``object.__setattr__`` since ``Literal``
    is frozen); the engine is single-threaded and plans never execute
    concurrently, which is what makes the in-place swap safe.
    """

    def __str__(self) -> str:  # renders like a stripped constant
        return f"'{_CONSTANT_PLACEHOLDER}'"

#: Comparison operators and their mirror when operands are swapped.
_MIRROR_OPS = {"<": ">", ">": "<", "<=": ">=", ">=": "<=", "=": "=", "<>": "<>"}


def canonicalize(
    statement: SelectStatement, strip_constants: bool = False
) -> SelectStatement:
    """Return a canonical form of a SELECT statement.

    The canonical form:

    * lower-cases table, alias, and column identifiers,
    * replaces alias bindings with the lower-cased base-table name whenever the
      alias is unambiguous (each base table appears once),
    * sorts comma-separated FROM tables by name,
    * flattens and sorts AND conjuncts (and OR disjuncts) deterministically,
    * orients comparisons so the column reference is on the left when the
      other side is a literal,
    * optionally replaces every literal with the placeholder ``'?'``.

    The result is *not* guaranteed to be semantically minimal — it is a
    normal form good enough for equality and similarity comparisons, which is
    exactly how the paper proposes to use it.
    """
    alias_map = _build_alias_map(statement.from_items)
    return _canonicalize_select(statement, alias_map, strip_constants)


def canonical_text(sql_or_statement, strip_constants: bool = False) -> str:
    """Return the canonical SQL text for a query given as text or AST.

    Non-SELECT statements are formatted directly (lower-casing identifiers is
    not needed for them because the CQMS only mines SELECT workloads).
    """
    statement = sql_or_statement
    if isinstance(statement, str):
        statement = parse(statement)
    if isinstance(statement, SelectStatement):
        statement = canonicalize(statement, strip_constants=strip_constants)
    return format_statement(statement)


def queries_equivalent(first, second, strip_constants: bool = False) -> bool:
    """Return True when two queries have the same canonical form.

    Accepts SQL text or parsed statements.  This is a syntactic (not semantic)
    equivalence: it is the notion of "duplicate query" used by the Query Miner
    for deduplication and popularity counting.
    """
    return canonical_text(first, strip_constants) == canonical_text(second, strip_constants)


# ---------------------------------------------------------------------------
# Internal helpers
# ---------------------------------------------------------------------------


def _build_alias_map(from_items: tuple[FromItem, ...]) -> dict[str, str]:
    """Map each binding (alias or table name), lower-cased, to its target name.

    If the same base table is aliased more than once (self-join), each alias
    keeps its own identity (we cannot merge them without changing semantics),
    so aliases map to themselves in that case.
    """
    bindings: list[tuple[str, str]] = []  # (binding, base table)
    _collect_bindings(from_items, bindings)
    table_counts: dict[str, int] = {}
    for _, table in bindings:
        table_counts[table] = table_counts.get(table, 0) + 1
    alias_map: dict[str, str] = {}
    for binding, table in bindings:
        if table_counts[table] == 1:
            alias_map[binding.lower()] = table.lower()
        else:
            alias_map[binding.lower()] = binding.lower()
    return alias_map


def _collect_bindings(from_items, bindings: list[tuple[str, str]]) -> None:
    for item in from_items:
        if isinstance(item, TableRef):
            bindings.append((item.binding, item.name))
        elif isinstance(item, SubqueryRef):
            bindings.append((item.alias, item.alias))
        elif isinstance(item, Join):
            _collect_bindings((item.left, item.right), bindings)


def _canonicalize_select(
    statement: SelectStatement, alias_map: dict[str, str], strip_constants: bool
) -> SelectStatement:
    select_items = tuple(
        SelectItem(
            expression=_canon_expr(item.expression, alias_map, strip_constants),
            alias=item.alias.lower() if item.alias else None,
        )
        for item in statement.select_items
    )
    from_items = _canon_from_items(statement.from_items, alias_map, strip_constants)
    where = (
        _canon_expr(statement.where, alias_map, strip_constants)
        if statement.where is not None
        else None
    )
    group_by = tuple(
        sorted(
            (_canon_expr(expr, alias_map, strip_constants) for expr in statement.group_by),
            key=_expr_sort_key,
        )
    )
    having = (
        _canon_expr(statement.having, alias_map, strip_constants)
        if statement.having is not None
        else None
    )
    order_by = tuple(
        OrderItem(
            expression=_canon_expr(item.expression, alias_map, strip_constants),
            ascending=item.ascending,
        )
        for item in statement.order_by
    )
    return SelectStatement(
        select_items=select_items,
        from_items=from_items,
        where=where,
        group_by=group_by,
        having=having,
        order_by=order_by,
        limit=statement.limit,
        offset=statement.offset,
        distinct=statement.distinct,
    )


def _canon_from_items(
    from_items: tuple[FromItem, ...], alias_map: dict[str, str], strip_constants: bool
) -> tuple[FromItem, ...]:
    canonical: list[FromItem] = []
    for item in from_items:
        canonical.append(_canon_from_item(item, alias_map, strip_constants))
    # Sort only the comma-separated top-level items; join trees keep structure.
    return tuple(sorted(canonical, key=_from_sort_key))


def _canon_from_item(
    item: FromItem, alias_map: dict[str, str], strip_constants: bool
) -> FromItem:
    if isinstance(item, TableRef):
        name = item.name.lower()
        binding = alias_map.get(item.binding.lower(), item.binding.lower())
        alias = None if binding == name else binding
        return TableRef(name=name, alias=alias)
    if isinstance(item, SubqueryRef):
        inner_alias_map = _build_alias_map(item.subquery.from_items)
        return SubqueryRef(
            subquery=_canonicalize_select(item.subquery, inner_alias_map, strip_constants),
            alias=item.alias.lower(),
        )
    if isinstance(item, Join):
        return Join(
            join_type=item.join_type,
            left=_canon_from_item(item.left, alias_map, strip_constants),
            right=_canon_from_item(item.right, alias_map, strip_constants),
            condition=(
                _canon_expr(item.condition, alias_map, strip_constants)
                if item.condition is not None
                else None
            ),
        )
    raise TypeError(f"unsupported FROM item: {type(item).__name__}")


def _from_sort_key(item: FromItem) -> str:
    if isinstance(item, TableRef):
        return item.name
    if isinstance(item, SubqueryRef):
        return f"~subquery:{item.alias}"
    if isinstance(item, Join):
        return f"~join:{_from_sort_key(item.left)}"
    return "~"


def _canon_expr(expr: Expression, alias_map: dict[str, str], strip: bool) -> Expression:
    if isinstance(expr, Literal):
        if strip and expr.value is not None:
            return Literal(_CONSTANT_PLACEHOLDER)
        return expr
    if isinstance(expr, ColumnRef):
        table = alias_map.get(expr.table.lower(), expr.table.lower()) if expr.table else None
        return ColumnRef(name=expr.name.lower(), table=table)
    if isinstance(expr, Star):
        table = alias_map.get(expr.table.lower(), expr.table.lower()) if expr.table else None
        return Star(table=table)
    if isinstance(expr, BinaryOp):
        left = _canon_expr(expr.left, alias_map, strip)
        right = _canon_expr(expr.right, alias_map, strip)
        if expr.op in ("AND", "OR"):
            conjuncts = _flatten_boolean(expr.op, left, right)
            conjuncts.sort(key=_expr_sort_key)
            return _rebuild_boolean(expr.op, conjuncts)
        if expr.op in _MIRROR_OPS:
            left, right, op = _orient_comparison(left, right, expr.op)
            return BinaryOp(op=op, left=left, right=right)
        return BinaryOp(op=expr.op, left=left, right=right)
    if isinstance(expr, UnaryOp):
        return UnaryOp(op=expr.op, operand=_canon_expr(expr.operand, alias_map, strip))
    if isinstance(expr, FunctionCall):
        return FunctionCall(
            name=expr.name.upper(),
            args=tuple(_canon_expr(arg, alias_map, strip) for arg in expr.args),
            distinct=expr.distinct,
        )
    if isinstance(expr, InList):
        values = tuple(
            sorted(
                (_canon_expr(value, alias_map, strip) for value in expr.values),
                key=_expr_sort_key,
            )
        )
        return InList(
            expr=_canon_expr(expr.expr, alias_map, strip), values=values, negated=expr.negated
        )
    if isinstance(expr, InSubquery):
        inner_alias_map = _build_alias_map(expr.subquery.from_items)
        return InSubquery(
            expr=_canon_expr(expr.expr, alias_map, strip),
            subquery=_canonicalize_select(expr.subquery, inner_alias_map, strip),
            negated=expr.negated,
        )
    if isinstance(expr, ExistsSubquery):
        inner_alias_map = _build_alias_map(expr.subquery.from_items)
        return ExistsSubquery(
            subquery=_canonicalize_select(expr.subquery, inner_alias_map, strip),
            negated=expr.negated,
        )
    if isinstance(expr, ScalarSubquery):
        inner_alias_map = _build_alias_map(expr.subquery.from_items)
        return ScalarSubquery(
            subquery=_canonicalize_select(expr.subquery, inner_alias_map, strip)
        )
    if isinstance(expr, Between):
        return Between(
            expr=_canon_expr(expr.expr, alias_map, strip),
            low=_canon_expr(expr.low, alias_map, strip),
            high=_canon_expr(expr.high, alias_map, strip),
            negated=expr.negated,
        )
    if isinstance(expr, CaseExpression):
        whens = tuple(
            (
                _canon_expr(condition, alias_map, strip),
                _canon_expr(value, alias_map, strip),
            )
            for condition, value in expr.whens
        )
        default = (
            _canon_expr(expr.default, alias_map, strip) if expr.default is not None else None
        )
        return CaseExpression(whens=whens, default=default)
    raise TypeError(f"unsupported expression type: {type(expr).__name__}")


def _flatten_boolean(op: str, *operands: Expression) -> list[Expression]:
    flat: list[Expression] = []
    for operand in operands:
        if isinstance(operand, BinaryOp) and operand.op == op:
            flat.extend(_flatten_boolean(op, operand.left, operand.right))
        else:
            flat.append(operand)
    return flat


def _rebuild_boolean(op: str, operands: list[Expression]) -> Expression:
    result = operands[0]
    for operand in operands[1:]:
        result = BinaryOp(op=op, left=result, right=operand)
    return result


def _orient_comparison(
    left: Expression, right: Expression, op: str
) -> tuple[Expression, Expression, str]:
    """Put the column reference on the left when compared against a literal."""
    if isinstance(left, Literal) and isinstance(right, ColumnRef):
        return right, left, _MIRROR_OPS[op]
    if op == "=" and isinstance(left, ColumnRef) and isinstance(right, ColumnRef):
        # Orient equality joins deterministically.
        if _expr_sort_key(right) < _expr_sort_key(left):
            return right, left, op
    return left, right, op


def _expr_sort_key(expr: Expression) -> str:
    """A deterministic textual sort key for canonical ordering."""
    from repro.sql.formatter import format_expression

    return format_expression(expr)


def strip_constants_statement(statement: SelectStatement) -> SelectStatement:
    """Convenience wrapper: canonicalize with constants replaced by ``'?'``."""
    return canonicalize(statement, strip_constants=True)


# ---------------------------------------------------------------------------
# Plan-template parameterization (used by the plan cache)
# ---------------------------------------------------------------------------


def canonical_statement(statement: Statement) -> Statement:
    """A canonical form of a statement for plan-cache keying.

    SELECTs go through :func:`canonicalize`.  UPDATE/DELETE get the subset
    that is safe without join analysis: a lower-cased table name plus
    canonicalized (flattened, sorted, oriented) WHERE conjuncts and SET
    expressions.  Other statements are returned unchanged.
    """
    if isinstance(statement, SelectStatement):
        return canonicalize(statement)
    if isinstance(statement, UpdateStatement):
        alias_map = {statement.table.lower(): statement.table.lower()}
        return UpdateStatement(
            table=statement.table.lower(),
            assignments=tuple(
                (column.lower(), _canon_expr(value, alias_map, False))
                for column, value in statement.assignments
            ),
            where=(
                _canon_expr(statement.where, alias_map, False)
                if statement.where is not None
                else None
            ),
        )
    if isinstance(statement, DeleteStatement):
        alias_map = {statement.table.lower(): statement.table.lower()}
        return DeleteStatement(
            table=statement.table.lower(),
            where=(
                _canon_expr(statement.where, alias_map, False)
                if statement.where is not None
                else None
            ),
        )
    return statement


def parameterize_statement(statement: Statement) -> tuple[Statement, list[ParamLiteral]]:
    """Replace every non-NULL literal with a value-carrying :class:`ParamLiteral`.

    Returns the rewritten statement plus the parameter nodes in source order.
    NULL literals stay as plain literals: NULL-ness changes the meaning of a
    comparison, so it is part of the template, not a parameter.  The rewritten
    statement is execution-equivalent to the original (parameters carry the
    original values) while formatting as the constant-stripped template.
    """
    params: list[ParamLiteral] = []
    rewritten = _param_statement(statement, params)
    return rewritten, params


def collect_parameters(statement: Statement) -> list[ParamLiteral]:
    """The statement's :class:`ParamLiteral` nodes in deterministic order.

    The traversal order is a pure function of the statement's template
    structure, so two instances of the same template (e.g. the original
    parameterized statement of a cached plan and a freshly canonicalized
    incoming instance) enumerate corresponding parameter sites at the same
    positions — which is what makes positional re-binding sound.
    """
    params: list[ParamLiteral] = []
    _walk_statement_params(statement, params)
    return params


def _param_statement(statement: Statement, params: list[ParamLiteral]) -> Statement:
    if isinstance(statement, SelectStatement):
        return _param_select(statement, params)
    if isinstance(statement, UpdateStatement):
        return UpdateStatement(
            table=statement.table,
            assignments=tuple(
                (column, _param_expr(value, params))
                for column, value in statement.assignments
            ),
            where=(
                _param_expr(statement.where, params)
                if statement.where is not None
                else None
            ),
        )
    if isinstance(statement, DeleteStatement):
        return DeleteStatement(
            table=statement.table,
            where=(
                _param_expr(statement.where, params)
                if statement.where is not None
                else None
            ),
        )
    return statement


def _param_select(statement: SelectStatement, params: list[ParamLiteral]) -> SelectStatement:
    return SelectStatement(
        select_items=tuple(
            SelectItem(expression=_param_expr(item.expression, params), alias=item.alias)
            for item in statement.select_items
        ),
        from_items=tuple(
            _param_from_item(item, params) for item in statement.from_items
        ),
        where=_param_expr(statement.where, params) if statement.where is not None else None,
        group_by=tuple(_param_expr(expr, params) for expr in statement.group_by),
        having=_param_expr(statement.having, params) if statement.having is not None else None,
        order_by=tuple(
            OrderItem(expression=_param_expr(item.expression, params), ascending=item.ascending)
            for item in statement.order_by
        ),
        limit=statement.limit,
        offset=statement.offset,
        distinct=statement.distinct,
    )


def _param_from_item(item: FromItem, params: list[ParamLiteral]) -> FromItem:
    if isinstance(item, TableRef):
        return item
    if isinstance(item, SubqueryRef):
        return SubqueryRef(subquery=_param_select(item.subquery, params), alias=item.alias)
    if isinstance(item, Join):
        return Join(
            join_type=item.join_type,
            left=_param_from_item(item.left, params),
            right=_param_from_item(item.right, params),
            condition=(
                _param_expr(item.condition, params) if item.condition is not None else None
            ),
        )
    raise TypeError(f"unsupported FROM item: {type(item).__name__}")


def _param_expr(expr: Expression, params: list[ParamLiteral]) -> Expression:
    if isinstance(expr, Literal):
        if expr.value is None:
            return expr
        param = ParamLiteral(expr.value)
        params.append(param)
        return param
    if isinstance(expr, (ColumnRef, Star)):
        return expr
    if isinstance(expr, BinaryOp):
        return BinaryOp(
            op=expr.op,
            left=_param_expr(expr.left, params),
            right=_param_expr(expr.right, params),
        )
    if isinstance(expr, UnaryOp):
        return UnaryOp(op=expr.op, operand=_param_expr(expr.operand, params))
    if isinstance(expr, FunctionCall):
        return FunctionCall(
            name=expr.name,
            args=tuple(_param_expr(arg, params) for arg in expr.args),
            distinct=expr.distinct,
        )
    if isinstance(expr, InList):
        return InList(
            expr=_param_expr(expr.expr, params),
            values=tuple(_param_expr(value, params) for value in expr.values),
            negated=expr.negated,
        )
    if isinstance(expr, InSubquery):
        return InSubquery(
            expr=_param_expr(expr.expr, params),
            subquery=_param_select(expr.subquery, params),
            negated=expr.negated,
        )
    if isinstance(expr, ExistsSubquery):
        return ExistsSubquery(
            subquery=_param_select(expr.subquery, params), negated=expr.negated
        )
    if isinstance(expr, ScalarSubquery):
        return ScalarSubquery(subquery=_param_select(expr.subquery, params))
    if isinstance(expr, Between):
        return Between(
            expr=_param_expr(expr.expr, params),
            low=_param_expr(expr.low, params),
            high=_param_expr(expr.high, params),
            negated=expr.negated,
        )
    if isinstance(expr, CaseExpression):
        return CaseExpression(
            whens=tuple(
                (_param_expr(condition, params), _param_expr(value, params))
                for condition, value in expr.whens
            ),
            default=(
                _param_expr(expr.default, params) if expr.default is not None else None
            ),
        )
    raise TypeError(f"unsupported expression type: {type(expr).__name__}")


def _walk_statement_params(statement: Statement, params: list[ParamLiteral]) -> None:
    if isinstance(statement, SelectStatement):
        for item in statement.select_items:
            _walk_expr_params(item.expression, params)
        for from_item in statement.from_items:
            _walk_from_item_params(from_item, params)
        if statement.where is not None:
            _walk_expr_params(statement.where, params)
        for expr in statement.group_by:
            _walk_expr_params(expr, params)
        if statement.having is not None:
            _walk_expr_params(statement.having, params)
        for order_item in statement.order_by:
            _walk_expr_params(order_item.expression, params)
    elif isinstance(statement, UpdateStatement):
        for _, value in statement.assignments:
            _walk_expr_params(value, params)
        if statement.where is not None:
            _walk_expr_params(statement.where, params)
    elif isinstance(statement, DeleteStatement):
        if statement.where is not None:
            _walk_expr_params(statement.where, params)


def _walk_from_item_params(item: FromItem, params: list[ParamLiteral]) -> None:
    if isinstance(item, SubqueryRef):
        _walk_statement_params(item.subquery, params)
    elif isinstance(item, Join):
        _walk_from_item_params(item.left, params)
        _walk_from_item_params(item.right, params)
        if item.condition is not None:
            _walk_expr_params(item.condition, params)


def _walk_expr_params(expr: Expression, params: list[ParamLiteral]) -> None:
    if isinstance(expr, ParamLiteral):
        params.append(expr)
        return
    if isinstance(expr, (Literal, ColumnRef, Star)):
        return
    if isinstance(expr, BinaryOp):
        _walk_expr_params(expr.left, params)
        _walk_expr_params(expr.right, params)
    elif isinstance(expr, UnaryOp):
        _walk_expr_params(expr.operand, params)
    elif isinstance(expr, FunctionCall):
        for arg in expr.args:
            _walk_expr_params(arg, params)
    elif isinstance(expr, InList):
        _walk_expr_params(expr.expr, params)
        for value in expr.values:
            _walk_expr_params(value, params)
    elif isinstance(expr, InSubquery):
        _walk_expr_params(expr.expr, params)
        _walk_statement_params(expr.subquery, params)
    elif isinstance(expr, ExistsSubquery):
        _walk_statement_params(expr.subquery, params)
    elif isinstance(expr, ScalarSubquery):
        _walk_statement_params(expr.subquery, params)
    elif isinstance(expr, Between):
        _walk_expr_params(expr.expr, params)
        _walk_expr_params(expr.low, params)
        _walk_expr_params(expr.high, params)
    elif isinstance(expr, CaseExpression):
        for condition, value in expr.whens:
            _walk_expr_params(condition, params)
            _walk_expr_params(value, params)
        if expr.default is not None:
            _walk_expr_params(expr.default, params)


def replace_limit(statement: SelectStatement, limit: int | None) -> SelectStatement:
    """Return a copy of ``statement`` with a different LIMIT (used by browsing)."""
    return replace(statement, limit=limit)
