"""Query canonicalization.

The miner and the similarity functions need to decide when two queries are
"the same analysis" even if they differ in irrelevant surface details such as
identifier case, alias names, the order of FROM tables, or the order of the
conjuncts in the WHERE clause.  The paper (Section 4.3) additionally suggests
comparing parse trees *after removing constants*; :func:`canonicalize`
supports that through ``strip_constants=True``.
"""

from __future__ import annotations

from dataclasses import replace

from repro.sql.ast_nodes import (
    Between,
    BinaryOp,
    CaseExpression,
    ColumnRef,
    ExistsSubquery,
    Expression,
    FromItem,
    FunctionCall,
    InList,
    InSubquery,
    Join,
    Literal,
    OrderItem,
    ScalarSubquery,
    SelectItem,
    SelectStatement,
    Star,
    Statement,
    SubqueryRef,
    TableRef,
    UnaryOp,
)
from repro.sql.formatter import format_statement
from repro.sql.parser import parse

#: Placeholder used in place of literals when ``strip_constants`` is requested.
_CONSTANT_PLACEHOLDER = "?"

#: Comparison operators and their mirror when operands are swapped.
_MIRROR_OPS = {"<": ">", ">": "<", "<=": ">=", ">=": "<=", "=": "=", "<>": "<>"}


def canonicalize(
    statement: SelectStatement, strip_constants: bool = False
) -> SelectStatement:
    """Return a canonical form of a SELECT statement.

    The canonical form:

    * lower-cases table, alias, and column identifiers,
    * replaces alias bindings with the lower-cased base-table name whenever the
      alias is unambiguous (each base table appears once),
    * sorts comma-separated FROM tables by name,
    * flattens and sorts AND conjuncts (and OR disjuncts) deterministically,
    * orients comparisons so the column reference is on the left when the
      other side is a literal,
    * optionally replaces every literal with the placeholder ``'?'``.

    The result is *not* guaranteed to be semantically minimal — it is a
    normal form good enough for equality and similarity comparisons, which is
    exactly how the paper proposes to use it.
    """
    alias_map = _build_alias_map(statement.from_items)
    return _canonicalize_select(statement, alias_map, strip_constants)


def canonical_text(sql_or_statement, strip_constants: bool = False) -> str:
    """Return the canonical SQL text for a query given as text or AST.

    Non-SELECT statements are formatted directly (lower-casing identifiers is
    not needed for them because the CQMS only mines SELECT workloads).
    """
    statement = sql_or_statement
    if isinstance(statement, str):
        statement = parse(statement)
    if isinstance(statement, SelectStatement):
        statement = canonicalize(statement, strip_constants=strip_constants)
    return format_statement(statement)


def queries_equivalent(first, second, strip_constants: bool = False) -> bool:
    """Return True when two queries have the same canonical form.

    Accepts SQL text or parsed statements.  This is a syntactic (not semantic)
    equivalence: it is the notion of "duplicate query" used by the Query Miner
    for deduplication and popularity counting.
    """
    return canonical_text(first, strip_constants) == canonical_text(second, strip_constants)


# ---------------------------------------------------------------------------
# Internal helpers
# ---------------------------------------------------------------------------


def _build_alias_map(from_items: tuple[FromItem, ...]) -> dict[str, str]:
    """Map each binding (alias or table name), lower-cased, to its target name.

    If the same base table is aliased more than once (self-join), each alias
    keeps its own identity (we cannot merge them without changing semantics),
    so aliases map to themselves in that case.
    """
    bindings: list[tuple[str, str]] = []  # (binding, base table)
    _collect_bindings(from_items, bindings)
    table_counts: dict[str, int] = {}
    for _, table in bindings:
        table_counts[table] = table_counts.get(table, 0) + 1
    alias_map: dict[str, str] = {}
    for binding, table in bindings:
        if table_counts[table] == 1:
            alias_map[binding.lower()] = table.lower()
        else:
            alias_map[binding.lower()] = binding.lower()
    return alias_map


def _collect_bindings(from_items, bindings: list[tuple[str, str]]) -> None:
    for item in from_items:
        if isinstance(item, TableRef):
            bindings.append((item.binding, item.name))
        elif isinstance(item, SubqueryRef):
            bindings.append((item.alias, item.alias))
        elif isinstance(item, Join):
            _collect_bindings((item.left, item.right), bindings)


def _canonicalize_select(
    statement: SelectStatement, alias_map: dict[str, str], strip_constants: bool
) -> SelectStatement:
    select_items = tuple(
        SelectItem(
            expression=_canon_expr(item.expression, alias_map, strip_constants),
            alias=item.alias.lower() if item.alias else None,
        )
        for item in statement.select_items
    )
    from_items = _canon_from_items(statement.from_items, alias_map, strip_constants)
    where = (
        _canon_expr(statement.where, alias_map, strip_constants)
        if statement.where is not None
        else None
    )
    group_by = tuple(
        sorted(
            (_canon_expr(expr, alias_map, strip_constants) for expr in statement.group_by),
            key=_expr_sort_key,
        )
    )
    having = (
        _canon_expr(statement.having, alias_map, strip_constants)
        if statement.having is not None
        else None
    )
    order_by = tuple(
        OrderItem(
            expression=_canon_expr(item.expression, alias_map, strip_constants),
            ascending=item.ascending,
        )
        for item in statement.order_by
    )
    return SelectStatement(
        select_items=select_items,
        from_items=from_items,
        where=where,
        group_by=group_by,
        having=having,
        order_by=order_by,
        limit=statement.limit,
        offset=statement.offset,
        distinct=statement.distinct,
    )


def _canon_from_items(
    from_items: tuple[FromItem, ...], alias_map: dict[str, str], strip_constants: bool
) -> tuple[FromItem, ...]:
    canonical: list[FromItem] = []
    for item in from_items:
        canonical.append(_canon_from_item(item, alias_map, strip_constants))
    # Sort only the comma-separated top-level items; join trees keep structure.
    return tuple(sorted(canonical, key=_from_sort_key))


def _canon_from_item(
    item: FromItem, alias_map: dict[str, str], strip_constants: bool
) -> FromItem:
    if isinstance(item, TableRef):
        name = item.name.lower()
        binding = alias_map.get(item.binding.lower(), item.binding.lower())
        alias = None if binding == name else binding
        return TableRef(name=name, alias=alias)
    if isinstance(item, SubqueryRef):
        inner_alias_map = _build_alias_map(item.subquery.from_items)
        return SubqueryRef(
            subquery=_canonicalize_select(item.subquery, inner_alias_map, strip_constants),
            alias=item.alias.lower(),
        )
    if isinstance(item, Join):
        return Join(
            join_type=item.join_type,
            left=_canon_from_item(item.left, alias_map, strip_constants),
            right=_canon_from_item(item.right, alias_map, strip_constants),
            condition=(
                _canon_expr(item.condition, alias_map, strip_constants)
                if item.condition is not None
                else None
            ),
        )
    raise TypeError(f"unsupported FROM item: {type(item).__name__}")


def _from_sort_key(item: FromItem) -> str:
    if isinstance(item, TableRef):
        return item.name
    if isinstance(item, SubqueryRef):
        return f"~subquery:{item.alias}"
    if isinstance(item, Join):
        return f"~join:{_from_sort_key(item.left)}"
    return "~"


def _canon_expr(expr: Expression, alias_map: dict[str, str], strip: bool) -> Expression:
    if isinstance(expr, Literal):
        if strip and expr.value is not None:
            return Literal(_CONSTANT_PLACEHOLDER)
        return expr
    if isinstance(expr, ColumnRef):
        table = alias_map.get(expr.table.lower(), expr.table.lower()) if expr.table else None
        return ColumnRef(name=expr.name.lower(), table=table)
    if isinstance(expr, Star):
        table = alias_map.get(expr.table.lower(), expr.table.lower()) if expr.table else None
        return Star(table=table)
    if isinstance(expr, BinaryOp):
        left = _canon_expr(expr.left, alias_map, strip)
        right = _canon_expr(expr.right, alias_map, strip)
        if expr.op in ("AND", "OR"):
            conjuncts = _flatten_boolean(expr.op, left, right)
            conjuncts.sort(key=_expr_sort_key)
            return _rebuild_boolean(expr.op, conjuncts)
        if expr.op in _MIRROR_OPS:
            left, right, op = _orient_comparison(left, right, expr.op)
            return BinaryOp(op=op, left=left, right=right)
        return BinaryOp(op=expr.op, left=left, right=right)
    if isinstance(expr, UnaryOp):
        return UnaryOp(op=expr.op, operand=_canon_expr(expr.operand, alias_map, strip))
    if isinstance(expr, FunctionCall):
        return FunctionCall(
            name=expr.name.upper(),
            args=tuple(_canon_expr(arg, alias_map, strip) for arg in expr.args),
            distinct=expr.distinct,
        )
    if isinstance(expr, InList):
        values = tuple(
            sorted(
                (_canon_expr(value, alias_map, strip) for value in expr.values),
                key=_expr_sort_key,
            )
        )
        return InList(
            expr=_canon_expr(expr.expr, alias_map, strip), values=values, negated=expr.negated
        )
    if isinstance(expr, InSubquery):
        inner_alias_map = _build_alias_map(expr.subquery.from_items)
        return InSubquery(
            expr=_canon_expr(expr.expr, alias_map, strip),
            subquery=_canonicalize_select(expr.subquery, inner_alias_map, strip),
            negated=expr.negated,
        )
    if isinstance(expr, ExistsSubquery):
        inner_alias_map = _build_alias_map(expr.subquery.from_items)
        return ExistsSubquery(
            subquery=_canonicalize_select(expr.subquery, inner_alias_map, strip),
            negated=expr.negated,
        )
    if isinstance(expr, ScalarSubquery):
        inner_alias_map = _build_alias_map(expr.subquery.from_items)
        return ScalarSubquery(
            subquery=_canonicalize_select(expr.subquery, inner_alias_map, strip)
        )
    if isinstance(expr, Between):
        return Between(
            expr=_canon_expr(expr.expr, alias_map, strip),
            low=_canon_expr(expr.low, alias_map, strip),
            high=_canon_expr(expr.high, alias_map, strip),
            negated=expr.negated,
        )
    if isinstance(expr, CaseExpression):
        whens = tuple(
            (
                _canon_expr(condition, alias_map, strip),
                _canon_expr(value, alias_map, strip),
            )
            for condition, value in expr.whens
        )
        default = (
            _canon_expr(expr.default, alias_map, strip) if expr.default is not None else None
        )
        return CaseExpression(whens=whens, default=default)
    raise TypeError(f"unsupported expression type: {type(expr).__name__}")


def _flatten_boolean(op: str, *operands: Expression) -> list[Expression]:
    flat: list[Expression] = []
    for operand in operands:
        if isinstance(operand, BinaryOp) and operand.op == op:
            flat.extend(_flatten_boolean(op, operand.left, operand.right))
        else:
            flat.append(operand)
    return flat


def _rebuild_boolean(op: str, operands: list[Expression]) -> Expression:
    result = operands[0]
    for operand in operands[1:]:
        result = BinaryOp(op=op, left=result, right=operand)
    return result


def _orient_comparison(
    left: Expression, right: Expression, op: str
) -> tuple[Expression, Expression, str]:
    """Put the column reference on the left when compared against a literal."""
    if isinstance(left, Literal) and isinstance(right, ColumnRef):
        return right, left, _MIRROR_OPS[op]
    if op == "=" and isinstance(left, ColumnRef) and isinstance(right, ColumnRef):
        # Orient equality joins deterministically.
        if _expr_sort_key(right) < _expr_sort_key(left):
            return right, left, op
    return left, right, op


def _expr_sort_key(expr: Expression) -> str:
    """A deterministic textual sort key for canonical ordering."""
    from repro.sql.formatter import format_expression

    return format_expression(expr)


def strip_constants_statement(statement: SelectStatement) -> SelectStatement:
    """Convenience wrapper: canonicalize with constants replaced by ``'?'``."""
    return canonicalize(statement, strip_constants=True)


def replace_limit(statement: SelectStatement, limit: int | None) -> SelectStatement:
    """Return a copy of ``statement`` with a different LIMIT (used by browsing)."""
    return replace(statement, limit=limit)
