"""repro — a Collaborative Query Management System (CQMS).

A full reproduction of the system proposed in *"A Case for A Collaborative
Query Management System"* (Khoussainova et al., CIDR 2009): a query-log
management engine with profiling, meta-querying (search over queries),
mining, recommendation, completion, correction, maintenance, and access
control — together with the relational storage engine, SQL substrate,
mining algorithms, and synthetic workload generators it needs.

Quickstart::

    from repro import CQMS, build_database

    db = build_database("limnology", scale=1)
    cqms = CQMS(db)
    cqms.register_user("nodira", group="uw-db")
    cqms.submit("nodira", "SELECT * FROM WaterTemp T WHERE T.temp < 18")
    cqms.run_miner()
    print(cqms.assist("nodira", "SELECT * FROM WaterSalinity S, "))
"""

from repro.clock import SimulatedClock
from repro.core import (
    CQMS,
    CQMSConfig,
    AccessControl,
    Administrator,
    CompletionEngine,
    CorrectionEngine,
    FeatureCondition,
    LoggedQuery,
    MetaQueryExecutor,
    QueryBrowser,
    QueryMaintenance,
    QueryMiner,
    QueryProfiler,
    QueryRecommender,
    QueryStore,
    RankingFunction,
    RankingWeights,
    SessionDetector,
    TutorialGenerator,
)
from repro.core.meta_query import DataCondition
from repro.obs import (
    AdmissionController,
    EngineTelemetry,
    MetricsRegistry,
    QueryLimits,
    SlowQueryLog,
    Trace,
)
from repro.sql import (
    canonical_text,
    diff_queries,
    extract_features,
    format_statement,
    parse,
    to_parse_tree,
)
from repro.sql.parse_tree import TreePattern
from repro.storage import Database, ExecutionSettings, PlanExplanation
from repro.workloads import (
    QueryLogGenerator,
    WorkloadConfig,
    build_database,
    evolution_scenario,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "CQMS",
    "CQMSConfig",
    "SimulatedClock",
    "AccessControl",
    "Administrator",
    "CompletionEngine",
    "CorrectionEngine",
    "FeatureCondition",
    "DataCondition",
    "TreePattern",
    "LoggedQuery",
    "MetaQueryExecutor",
    "QueryBrowser",
    "QueryMaintenance",
    "QueryMiner",
    "QueryProfiler",
    "QueryRecommender",
    "QueryStore",
    "RankingFunction",
    "RankingWeights",
    "SessionDetector",
    "TutorialGenerator",
    "Database",
    "ExecutionSettings",
    "PlanExplanation",
    "AdmissionController",
    "EngineTelemetry",
    "MetricsRegistry",
    "QueryLimits",
    "SlowQueryLog",
    "Trace",
    "parse",
    "format_statement",
    "extract_features",
    "canonical_text",
    "diff_queries",
    "to_parse_tree",
    "QueryLogGenerator",
    "WorkloadConfig",
    "build_database",
    "evolution_scenario",
]
