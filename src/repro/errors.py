"""Exception hierarchy for the CQMS reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without also swallowing programming errors
such as ``TypeError`` raised by misuse of the Python API itself.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SQLError(ReproError):
    """Base class for errors in the SQL substrate (tokenizing / parsing)."""


class TokenizeError(SQLError):
    """Raised when the SQL tokenizer encounters an invalid character sequence.

    Attributes
    ----------
    position:
        Character offset in the input string where tokenization failed.
    """

    def __init__(self, message: str, position: int | None = None):
        super().__init__(message)
        self.position = position


class ParseError(SQLError):
    """Raised when the SQL parser cannot build an AST from a token stream.

    Attributes
    ----------
    token:
        The offending token (if known), useful for error reporting in the
        assisted-interaction client.
    """

    def __init__(self, message: str, token: object | None = None):
        super().__init__(message)
        self.token = token


class StorageError(ReproError):
    """Base class for errors raised by the relational storage engine."""


class CatalogError(StorageError):
    """Raised for catalog problems: unknown/duplicate tables or columns."""


class SchemaError(StorageError):
    """Raised when a row or value does not conform to a table schema."""


class ExecutionError(StorageError):
    """Raised when query execution fails (e.g. ambiguous column, bad types)."""


class IntegrityError(StorageError):
    """Raised when a uniqueness or not-null constraint is violated."""


class QueryTimeoutError(ExecutionError):
    """Raised when a statement exceeds its admission-control time budget.

    The executor checks the budget cooperatively at batch boundaries, so a
    cancelled statement never leaves a half-applied mutation behind: DML
    target scans are materialized (and therefore cancelled) before the
    first write.
    """


class DurabilityError(StorageError):
    """Raised by the durability subsystem: WAL misuse, lock conflicts on a
    ``data_dir``, operations on a closed database, or unrecoverable
    snapshot/log corruption found during crash recovery."""


class CQMSError(ReproError):
    """Base class for errors raised by the CQMS engine itself."""


class AccessControlError(CQMSError):
    """Raised when a principal attempts an operation it is not allowed."""


class MetaQueryError(CQMSError):
    """Raised when a meta-query is malformed or cannot be executed."""


class ProfilerError(CQMSError):
    """Raised when the query profiler cannot log or shred a query."""


class MaintenanceError(CQMSError):
    """Raised for failures in the query-maintenance component."""


class RateLimitedError(CQMSError):
    """Raised when admission control rejects a statement before execution.

    A typed, pre-execution rejection: nothing was parsed, executed, or
    logged, so the client can back off and resubmit unchanged.
    """


class WorkloadError(ReproError):
    """Raised when a workload generator is configured inconsistently."""
