"""Schema-evolution scenarios for the query-maintenance experiments (C7).

The paper (Section 4.4) observes that "schema evolution can cause some of the
stored queries to stop working" and that the CQMS "should be able to
efficiently identify affected queries and handle them appropriately".  An
evolution scenario is an ordered list of DDL statements applied to the
workload database *after* a query log has been collected; the experiment then
checks that Query Maintenance flags exactly the queries that reference the
changed relations/columns.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.storage.database import Database


@dataclass(frozen=True)
class EvolutionStep:
    """One schema change with the ground truth of what it invalidates."""

    ddl: str
    kind: str              # drop_column, rename_column, drop_table, rename_table, add_column
    table: str
    column: str | None = None

    @property
    def breaks_queries(self) -> bool:
        """Whether the change can invalidate existing queries at all.

        Adding a column never invalidates old queries; drops and renames do.
        """
        return self.kind != "add_column"


#: Built-in scenarios keyed by workload domain.  Columns were chosen so that a
#: realistic fraction of the generated workload references them.
_SCENARIOS: dict[str, list[EvolutionStep]] = {
    "limnology": [
        EvolutionStep(
            ddl="ALTER TABLE WaterTemp RENAME COLUMN depth TO depth_m",
            kind="rename_column",
            table="WaterTemp",
            column="depth",
        ),
        EvolutionStep(
            ddl="ALTER TABLE CityLocations DROP COLUMN population",
            kind="drop_column",
            table="CityLocations",
            column="population",
        ),
        EvolutionStep(
            ddl="ALTER TABLE Lakes ADD COLUMN trophic_state TEXT",
            kind="add_column",
            table="Lakes",
            column="trophic_state",
        ),
        EvolutionStep(
            ddl="ALTER TABLE SensorReadings RENAME TO SensorMeasurements",
            kind="rename_table",
            table="SensorReadings",
        ),
    ],
    "sky_survey": [
        EvolutionStep(
            ddl="ALTER TABLE PhotoObj RENAME COLUMN mag_g TO psf_mag_g",
            kind="rename_column",
            table="PhotoObj",
            column="mag_g",
        ),
        EvolutionStep(
            ddl="ALTER TABLE Runs DROP COLUMN quality",
            kind="drop_column",
            table="Runs",
            column="quality",
        ),
        EvolutionStep(
            ddl="ALTER TABLE Neighbors RENAME TO NeighborPairs",
            kind="rename_table",
            table="Neighbors",
        ),
    ],
    "web_analytics": [
        EvolutionStep(
            ddl="ALTER TABLE PageViews RENAME COLUMN duration_s TO dwell_seconds",
            kind="rename_column",
            table="PageViews",
            column="duration_s",
        ),
        EvolutionStep(
            ddl="ALTER TABLE Searches DROP COLUMN clicks",
            kind="drop_column",
            table="Searches",
            column="clicks",
        ),
        EvolutionStep(
            ddl="ALTER TABLE Users ADD COLUMN churned BOOLEAN",
            kind="add_column",
            table="Users",
            column="churned",
        ),
    ],
}


def evolution_scenario(domain: str = "limnology") -> list[EvolutionStep]:
    """The built-in evolution scenario for a workload domain."""
    if domain not in _SCENARIOS:
        raise WorkloadError(
            f"no evolution scenario for domain {domain!r}; choose from {sorted(_SCENARIOS)}"
        )
    return list(_SCENARIOS[domain])


def apply_scenario(db: Database, steps: list[EvolutionStep]) -> list[EvolutionStep]:
    """Apply each step's DDL to the database; returns the steps applied."""
    for step in steps:
        db.execute(step.ddl)
    return list(steps)
